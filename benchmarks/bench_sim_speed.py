"""Simulator performance micro-benchmarks.

Not a paper table — these track the speed of the infrastructure itself
(instructions/second of each simulator, assembler throughput, predictor
and fold-unit hot paths), which bounds how large an input the
experiments can afford.
"""

from repro.asbr import ASBRUnit, extract_branch_info
from repro.asm import assemble
from repro.predictors import BimodalPredictor, GSharePredictor
from repro.sim.functional import FunctionalSimulator
from repro.sim.ooo import OoOConfig, OoOSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import get_workload
from repro.workloads.inputs import speech_like

_PCM = speech_like(200, seed=42)


def test_functional_sim_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = FunctionalSimulator(wl.program, mem.copy())
        return sim.run()

    retired = benchmark(run)
    assert retired > 5000


def test_pipeline_sim_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = PipelineSimulator(wl.program, mem.copy())
        return sim.run().cycles

    cycles = benchmark(run)
    assert cycles > 5000


def test_pipeline_with_asbr_speed(benchmark):
    wl = get_workload("adpcm_enc")
    prog = wl.program
    mem = wl.build_memory(_PCM)
    infos = [extract_branch_info(prog, prog.labels[n])
             for n in ("br_sign", "br_bit2", "br_bit1", "br_bit0")]

    def run():
        unit = ASBRUnit.from_branch_infos(infos, bdt_update="execute")
        sim = PipelineSimulator(prog, mem.copy(),
                                predictor=BimodalPredictor(512, 512),
                                asbr=unit)
        return sim.run().cycles

    benchmark(run)


def test_assembler_speed(benchmark):
    import os
    from repro.workloads import loader
    path = os.path.join(os.path.dirname(loader.__file__), "asm",
                        "g721_enc.s")
    with open(path) as f:
        source = f.read()
    prog = benchmark(lambda: assemble(source))
    assert len(prog.instrs) > 100


def test_predictor_throughput(benchmark):
    pred = GSharePredictor(11, 2048)
    pcs = [0x400000 + 4 * i for i in range(64)]

    def run():
        for i, pc in enumerate(pcs):
            pred.predict(pc)
            pred.update(pc, bool(i & 1), pc + 64)

    benchmark(run)


def test_functional_blocks_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = FunctionalSimulator(wl.program, mem.copy(), engine="blocks")
        return sim.run()

    retired = benchmark(run)
    assert retired > 5000


def test_pipeline_blocks_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = PipelineSimulator(wl.program, mem.copy(), engine="blocks")
        return sim.run().cycles

    cycles = benchmark(run)
    assert cycles > 5000


def test_ooo_sim_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = OoOSimulator(wl.program, mem.copy())
        return sim.run().cycles

    cycles = benchmark(run)
    assert cycles > 2500


def test_pipeline_superblocks_speed(benchmark):
    wl = get_workload("adpcm_enc")
    prog = wl.program
    mem = wl.build_memory(_PCM)
    infos = [extract_branch_info(prog, prog.labels[n])
             for n in ("br_sign", "br_bit2", "br_bit1", "br_bit0")]

    def run():
        unit = ASBRUnit.from_branch_infos(infos, bdt_update="execute")
        sim = PipelineSimulator(prog, mem.copy(),
                                predictor=BimodalPredictor(512, 512),
                                asbr=unit, engine="superblocks")
        return sim.run().cycles

    cycles = benchmark(run)
    assert cycles > 5000


def test_functional_batch_speed(benchmark):
    from repro.sim.batch import run_batch

    wl = get_workload("adpcm_enc")
    mems = [wl.build_memory(_PCM)] * 16

    def run():
        return run_batch(wl.program, mems).total_retired

    retired = benchmark(run)
    assert retired > 16 * 5000


def test_sim_speed_summary(save_table):
    """Record simulator × engine throughput (ops/sec) under results/.

    Best-of-3 wall-clock on the adpcm_enc workload: an 8-way matrix —
    the functional simulator's interpreted, block-compiled and 64-lane
    lockstep-batch engines; the pipeline's interpreted, block-compiled
    and fold-specialized superblock engines (all three with the ASBR
    unit and auxiliary predictor attached, and their ``PipelineStats``
    asserted bit-identical); and the out-of-order backend at 1- and
    2-wide.  Speedups are *per backend*, against the baseline named in
    the ``baseline`` column — never across simulators, whose ops are
    different quantities.  The 2-wide OoO row reports raw cycles/s with
    no speedup: a wider machine retires the same program in *fewer*
    cycles, so a cycles/s ratio against the 1-wide row reads as a
    slowdown while wall-clock per run barely moves.  A machine-readable
    ``BENCH_sim_speed.json`` perf-trajectory artifact (engine →
    ops/s + work, stamped with git rev and date) is written at the
    repository top level so cross-PR regressions diff directly.  A long
    input (not the micro-benchmarks' ``_PCM``) keeps per-run setup out
    of the measured ratio.
    """
    import dataclasses
    import json
    import os
    import subprocess
    import time

    from repro.experiments.common import render_table
    from repro.sim.batch import run_batch

    wl = get_workload("adpcm_enc")
    prog = wl.program
    pcm = speech_like(8000, seed=42)
    batch_lanes = 64
    batch_pcm = speech_like(2000, seed=42)
    infos = [extract_branch_info(prog, prog.labels[n])
             for n in ("br_sign", "br_bit2", "br_bit1", "br_bit0")]
    rows = []
    engines_json = {}
    pipeline_stats = {}

    def measure(simulator, engine):
        best = work = 0
        for _ in range(3):
            if simulator == "functional" and engine == "batch64":
                mems = [wl.build_memory(batch_pcm)] * batch_lanes
                t0 = time.perf_counter()
                res = run_batch(prog, mems)
                dt = time.perf_counter() - t0
                ops, unit = res.total_retired, "instructions/s"
            elif simulator == "functional":
                sim = FunctionalSimulator(prog, wl.build_memory(pcm),
                                          engine=engine)
                t0 = time.perf_counter()
                sim.run()
                dt = time.perf_counter() - t0
                ops, unit = sim.instructions_retired, "instructions/s"
            elif simulator == "ooo":
                width = int(engine[1:])            # "w1" / "w2"
                sim = OoOSimulator(prog, wl.build_memory(pcm),
                                   config=OoOConfig(issue_width=width))
                t0 = time.perf_counter()
                stats = sim.run()
                dt = time.perf_counter() - t0
                ops, unit = stats.cycles, "cycles/s"
            else:
                unit_ = ASBRUnit.from_branch_infos(infos,
                                                   bdt_update="execute")
                sim = PipelineSimulator(prog, wl.build_memory(pcm),
                                        predictor=BimodalPredictor(512,
                                                                   512),
                                        asbr=unit_, engine=engine)
                t0 = time.perf_counter()
                stats = sim.run()
                dt = time.perf_counter() - t0
                ops, unit = stats.cycles, "cycles/s"
                pipeline_stats[engine] = dataclasses.asdict(stats)
            if ops / dt > best:
                best, work = ops / dt, ops
        assert best > 0
        return best, work, unit

    # (simulator, engines, baseline engine or None)
    matrix = (("functional", ("interp", "blocks", "batch64"), "interp"),
              ("pipeline", ("interp", "blocks", "superblocks"),
               "interp"),
              ("ooo", ("w1", "w2"), "w1"))
    rates = {}
    for simulator, engines, base in matrix:
        for engine in engines:
            rate, work, unit = measure(simulator, engine)
            rates[(simulator, engine)] = rate
            name = "%s/%s" % (simulator, engine)
            comparable = not (simulator == "ooo" and engine != base)
            if comparable:
                baseline = "%s/%s" % (simulator, base)
                speedup = rate / rates[(simulator, base)]
                speedup_txt = "%.2fx" % speedup
            else:
                # different work per run: wider issue retires the same
                # program in fewer cycles — a ratio would mislead
                baseline, speedup = "n/a (different work)", None
                speedup_txt = "n/a"
            rows.append([simulator, engine, unit,
                         "{:,.0f}".format(rate), "{:,}".format(work),
                         baseline, speedup_txt])
            engines_json[name] = {
                "ops_per_sec": round(rate), "unit": unit,
                "work_per_run": work, "baseline": baseline,
                "speedup_vs_baseline":
                    round(speedup, 3) if speedup is not None else None,
            }

    # the three pipeline engines must be measuring the same machine
    assert pipeline_stats["blocks"] == pipeline_stats["interp"]
    assert pipeline_stats["superblocks"] == pipeline_stats["interp"]

    save_table("sim_speed", render_table(
        ["simulator", "engine", "unit", "ops/sec", "work per run",
         "baseline", "speedup"], rows,
        "Simulator throughput (adpcm_enc, %d samples, pipeline rows "
        "with ASBR, batch row %d lanes x %d samples, best of 3)"
        % (len(pcm), batch_lanes, len(batch_pcm))))

    try:
        rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True,
                             cwd=os.path.dirname(__file__),
                             timeout=10).stdout.strip() or "unknown"
    except Exception:
        rev = "unknown"
    payload = {
        "schema": "bench-sim-speed/v2",
        "git_rev": rev,
        "date": time.strftime("%Y-%m-%d"),
        "workload": "adpcm_enc", "samples": len(pcm), "reps": 3,
        "batch_lanes": batch_lanes, "batch_samples": len(batch_pcm),
        "engines": engines_json,
    }
    top = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_sim_speed.json")
    with open(top, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
