"""Simulator performance micro-benchmarks.

Not a paper table — these track the speed of the infrastructure itself
(instructions/second of each simulator, assembler throughput, predictor
and fold-unit hot paths), which bounds how large an input the
experiments can afford.
"""

from repro.asbr import ASBRUnit, extract_branch_info
from repro.asm import assemble
from repro.predictors import BimodalPredictor, GSharePredictor
from repro.sim.functional import FunctionalSimulator
from repro.sim.ooo import OoOConfig, OoOSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import get_workload
from repro.workloads.inputs import speech_like

_PCM = speech_like(200, seed=42)


def test_functional_sim_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = FunctionalSimulator(wl.program, mem.copy())
        return sim.run()

    retired = benchmark(run)
    assert retired > 5000


def test_pipeline_sim_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = PipelineSimulator(wl.program, mem.copy())
        return sim.run().cycles

    cycles = benchmark(run)
    assert cycles > 5000


def test_pipeline_with_asbr_speed(benchmark):
    wl = get_workload("adpcm_enc")
    prog = wl.program
    mem = wl.build_memory(_PCM)
    infos = [extract_branch_info(prog, prog.labels[n])
             for n in ("br_sign", "br_bit2", "br_bit1", "br_bit0")]

    def run():
        unit = ASBRUnit.from_branch_infos(infos, bdt_update="execute")
        sim = PipelineSimulator(prog, mem.copy(),
                                predictor=BimodalPredictor(512, 512),
                                asbr=unit)
        return sim.run().cycles

    benchmark(run)


def test_assembler_speed(benchmark):
    import os
    from repro.workloads import loader
    path = os.path.join(os.path.dirname(loader.__file__), "asm",
                        "g721_enc.s")
    with open(path) as f:
        source = f.read()
    prog = benchmark(lambda: assemble(source))
    assert len(prog.instrs) > 100


def test_predictor_throughput(benchmark):
    pred = GSharePredictor(11, 2048)
    pcs = [0x400000 + 4 * i for i in range(64)]

    def run():
        for i, pc in enumerate(pcs):
            pred.predict(pc)
            pred.update(pc, bool(i & 1), pc + 64)

    benchmark(run)


def test_functional_blocks_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = FunctionalSimulator(wl.program, mem.copy(), engine="blocks")
        return sim.run()

    retired = benchmark(run)
    assert retired > 5000


def test_pipeline_blocks_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = PipelineSimulator(wl.program, mem.copy(), engine="blocks")
        return sim.run().cycles

    cycles = benchmark(run)
    assert cycles > 5000


def test_ooo_sim_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = OoOSimulator(wl.program, mem.copy())
        return sim.run().cycles

    cycles = benchmark(run)
    assert cycles > 2500


def test_sim_speed_summary(save_table):
    """Record simulator × engine throughput (ops/sec) under results/.

    Best-of-3 wall-clock on the adpcm_enc workload: a 6-way matrix of
    the interpreted fast path and the block-compiled engine on both
    classic simulators (see DESIGN.md), plus the out-of-order backend
    at 1- and 2-wide (``engine`` column carries the width — the OoO
    machine has no blocks variant; its speedup column is vs its own
    1-wide row).  A machine-readable ``BENCH_sim_speed.json`` tracks
    the perf trajectory across PRs.  A long input (not the
    micro-benchmarks' ``_PCM``) keeps per-run setup out of the
    measured ratio.
    """
    import json
    import os
    import time

    from conftest import RESULTS_DIR
    from repro.experiments.common import render_table

    wl = get_workload("adpcm_enc")
    pcm = speech_like(8000, seed=42)
    rows = []
    records = []

    def measure(simulator, engine):
        best = work = 0
        for _ in range(3):
            mem = wl.build_memory(pcm)
            if simulator == "functional":
                sim = FunctionalSimulator(wl.program, mem, engine=engine)
                t0 = time.perf_counter()
                sim.run()
                dt = time.perf_counter() - t0
                ops, unit = sim.instructions_retired, "instructions/s"
            elif simulator == "ooo":
                width = int(engine[1:])            # "w1" / "w2"
                sim = OoOSimulator(wl.program, mem,
                                   config=OoOConfig(issue_width=width))
                t0 = time.perf_counter()
                stats = sim.run()
                dt = time.perf_counter() - t0
                ops, unit = stats.cycles, "cycles/s"
            else:
                sim = PipelineSimulator(wl.program, mem, engine=engine)
                t0 = time.perf_counter()
                stats = sim.run()
                dt = time.perf_counter() - t0
                ops, unit = stats.cycles, "cycles/s"
            if ops / dt > best:
                best, work = ops / dt, ops
        assert best > 0
        return best, work, unit

    matrix = (("functional", ("interp", "blocks")),
              ("pipeline", ("interp", "blocks")),
              ("ooo", ("w1", "w2")))
    rates = {}
    for simulator, engines in matrix:
        for engine in engines:
            rate, work, unit = measure(simulator, engine)
            rates[(simulator, engine)] = rate
            speedup = rate / rates[(simulator, engines[0])]
            rows.append([simulator, engine, unit,
                         "{:,.0f}".format(rate), "{:,}".format(work),
                         "%.2fx" % speedup])
            records.append({
                "simulator": simulator, "engine": engine, "unit": unit,
                "ops_per_sec": round(rate), "work_per_run": work,
                "speedup_vs_interp": round(speedup, 3),
            })

    save_table("sim_speed", render_table(
        ["simulator", "engine", "unit", "ops/sec", "work per run",
         "speedup"], rows,
        "Simulator throughput (adpcm_enc, %d samples, best of 3)"
        % len(pcm)))
    payload = {
        "benchmark": "sim_speed", "workload": "adpcm_enc",
        "samples": len(pcm), "reps": 3, "results": records,
    }
    with open(os.path.join(RESULTS_DIR, "BENCH_sim_speed.json"),
              "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
