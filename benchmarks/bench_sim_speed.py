"""Simulator performance micro-benchmarks.

Not a paper table — these track the speed of the infrastructure itself
(instructions/second of each simulator, assembler throughput, predictor
and fold-unit hot paths), which bounds how large an input the
experiments can afford.
"""

from repro.asbr import ASBRUnit, extract_branch_info
from repro.asm import assemble
from repro.predictors import BimodalPredictor, GSharePredictor
from repro.sim.functional import FunctionalSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import get_workload
from repro.workloads.inputs import speech_like

_PCM = speech_like(200, seed=42)


def test_functional_sim_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = FunctionalSimulator(wl.program, mem.copy())
        return sim.run()

    retired = benchmark(run)
    assert retired > 5000


def test_pipeline_sim_speed(benchmark):
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        sim = PipelineSimulator(wl.program, mem.copy())
        return sim.run().cycles

    cycles = benchmark(run)
    assert cycles > 5000


def test_pipeline_with_asbr_speed(benchmark):
    wl = get_workload("adpcm_enc")
    prog = wl.program
    mem = wl.build_memory(_PCM)
    infos = [extract_branch_info(prog, prog.labels[n])
             for n in ("br_sign", "br_bit2", "br_bit1", "br_bit0")]

    def run():
        unit = ASBRUnit.from_branch_infos(infos, bdt_update="execute")
        sim = PipelineSimulator(prog, mem.copy(),
                                predictor=BimodalPredictor(512, 512),
                                asbr=unit)
        return sim.run().cycles

    benchmark(run)


def test_assembler_speed(benchmark):
    import os
    from repro.workloads import loader
    path = os.path.join(os.path.dirname(loader.__file__), "asm",
                        "g721_enc.s")
    with open(path) as f:
        source = f.read()
    prog = benchmark(lambda: assemble(source))
    assert len(prog.instrs) > 100


def test_predictor_throughput(benchmark):
    pred = GSharePredictor(11, 2048)
    pcs = [0x400000 + 4 * i for i in range(64)]

    def run():
        for i, pc in enumerate(pcs):
            pred.predict(pc)
            pred.update(pc, bool(i & 1), pc + 64)

    benchmark(run)


def test_sim_speed_summary(save_table):
    """Record simulator throughput (ops/sec) under results/.

    Best-of-3 wall-clock on the adpcm_enc workload; the decoded-dispatch
    fast path (see DESIGN.md) is what these numbers track.
    """
    import time

    from repro.experiments.common import render_table

    wl = get_workload("adpcm_enc")
    rows = []

    best = work = 0
    for _ in range(3):
        sim = FunctionalSimulator(wl.program, wl.build_memory(_PCM))
        t0 = time.perf_counter()
        sim.run()
        dt = time.perf_counter() - t0
        if sim.instructions_retired / dt > best:
            best, work = sim.instructions_retired / dt, \
                sim.instructions_retired
    rows.append(["functional", "instructions/s",
                 "{:,.0f}".format(best), "{:,}".format(work)])
    assert best > 0

    best = work = 0
    for _ in range(3):
        sim = PipelineSimulator(wl.program, wl.build_memory(_PCM))
        t0 = time.perf_counter()
        stats = sim.run()
        dt = time.perf_counter() - t0
        if stats.cycles / dt > best:
            best, work = stats.cycles / dt, stats.cycles
    rows.append(["pipeline", "cycles/s",
                 "{:,.0f}".format(best), "{:,}".format(work)])
    assert best > 0

    save_table("sim_speed", render_table(
        ["simulator", "unit", "ops/sec", "work per run"], rows,
        "Simulator throughput (adpcm_enc, %d samples, best of 3)"
        % len(_PCM)))
