"""Ablation A1 — the BDT forwarding path (paper Section 5.2).

Sweeps the early-condition-evaluation update point: commit (threshold
4, no extra hardware), post-MEM (3), post-EX (2).  The paper argues the
forwarding paths are what make realistic code foldable; the sweep shows
selection collapsing at threshold 4.
"""

from repro.experiments import ablations


def test_ablation_threshold(benchmark, setup, save_table):
    rows = benchmark.pedantic(
        lambda: ablations.threshold_sweep("adpcm_enc", setup),
        rounds=1, iterations=1)
    save_table("ablation_threshold",
               ablations.render_threshold(rows, "adpcm_enc"))

    by_update = {r.bdt_update: r for r in rows}
    # aggressive forwarding folds more branches and saves more cycles
    assert by_update["execute"].selected >= by_update["commit"].selected
    assert by_update["execute"].cycles <= by_update["commit"].cycles
