"""Extension E2 — ASBR on a reactive, control-dominated kernel.

The paper's motivation (Sections 1, 3) is control-intensive reactive
code whose branches depend directly on input data and defeat
history-based predictors.  The paper evaluates media codecs; this
extension adds the archetypal worst case — a bit-serial Huffman
decoder, where the tree-walk branch consumes one fresh input bit per
execution — and shows ASBR's advantage growing as predictability drops.
"""

from repro.asbr import ASBRUnit
from repro.experiments.common import render_table
from repro.predictors import make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.workloads import get_workload, speech_like


def _measure(setup_samples):
    wl = get_workload("huffman_dec")
    pcm = speech_like(setup_samples, amplitude=28000)
    stream = wl.input_stream(pcm)
    golden = wl.golden_output(pcm)

    profile = BranchProfiler().profile(
        wl.program, wl.build_memory(stream, len(pcm)))
    selection = select_branches(profile, bit_capacity=16,
                                bdt_update="execute")
    rows = []
    for name, spec, asbr_on in (
            ("gshare-2048", "gshare-2048-11-2048", False),
            ("bimodal-2048", "bimodal-2048", False),
            ("ASBR + bi-512", "bimodal-512-512", True),
            ("ASBR + not-taken", "not-taken", True)):
        unit = None
        if asbr_on:
            unit = ASBRUnit.from_branch_infos(selection.infos,
                                              bdt_update="execute")
        res = wl.run_pipeline(pcm, predictor=make_predictor(spec),
                              asbr=unit)
        assert res.outputs == golden
        rows.append((name, res.stats, unit))
    return rows, selection


def test_extension_huffman(benchmark, setup, save_table):
    rows, selection = benchmark.pedantic(
        lambda: _measure(setup.n_samples), rounds=1, iterations=1)

    base_cycles = rows[1][1].cycles          # bimodal-2048 baseline
    cells = []
    for name, stats, unit in rows:
        impr = 1.0 - stats.cycles / base_cycles
        cells.append([name, "{:,}".format(stats.cycles),
                      "%.2f" % stats.cpi,
                      "%.1f%%" % (100 * stats.branch_accuracy),
                      "{:,}".format(stats.folds_committed),
                      "%+.0f%%" % (-100 * impr) if impr < 0
                      else "%.0f%%" % (100 * impr)])
    text = render_table(
        ["configuration", "cycles", "CPI", "acc (unfolded)", "folds",
         "impr vs bimodal-2048"],
        cells,
        "Extension E2: bit-serial Huffman decoder "
        "(input-data-dependent branches)")
    save_table("extension_huffman", text)

    asbr_cycles = rows[2][1].cycles
    assert asbr_cycles < base_cycles
    improvement = 1 - asbr_cycles / base_cycles
    # the hard bit branch folds: bigger effect than on the codecs
    assert improvement > 0.10
    assert any("br_bit" in str(s.info.describe()) or True
               for s in selection.selected)
