"""Ablation A2 — BIT capacity (paper Section 6).

"Since only the most frequently executed branches within the important
application loops are targeted, a small number of BIT entries would
suffice."  The sweep shows Amdahl-style diminishing returns.
"""

from repro.experiments import ablations


def test_ablation_bit_size(benchmark, setup, save_table):
    rows = benchmark.pedantic(
        lambda: ablations.bit_size_sweep("g721_enc",
                                         capacities=(1, 2, 4, 8, 16),
                                         setup=setup),
        rounds=1, iterations=1)
    save_table("ablation_bit_size",
               ablations.render_bit_size(rows, "g721_enc"))

    cycles = [r.cycles for r in rows]
    assert cycles == sorted(cycles, reverse=True)   # more entries, faster
    # first few entries capture most of the benefit
    total_gain = cycles[0] - cycles[-1]
    early_gain = cycles[0] - cycles[2]
    assert early_gain > 0.5 * total_gain
