"""CI perf-smoke gate: compiled/batched engines must earn their keep.

A coarse anti-regression check, not a tight threshold: it first proves
compiled-vs-interpreted equivalence on a quick sweep (both simulators,
with and without ASBR/bimodal, superblocks included) and lockstep-batch
vs serial equivalence over divergent lanes, then races the engines on
the ADPCM workload and fails if

* the block-compiled pipeline engine is *slower* than interpreted,
* the fold-specialized superblock engine is *slower* than blocks
  (measured with the ASBR unit attached — the configuration the
  specialization exists for), or
* the batch functional engine is below **5x** the serial interpreter's
  aggregate instructions/s on a 64-lane campaign.

Run as a plain script::

    PYTHONPATH=src python benchmarks/perf_smoke.py

Exit status 0 = pass.  Kept out of the pytest tiers on purpose — wall
clock assertions do not belong in the correctness suite.
"""

import dataclasses
import sys
import time

from repro.asbr import ASBRUnit
from repro.predictors import make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.sim.functional import FunctionalSimulator
from repro.sim.ooo import OoOConfig, OoOSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import get_workload
from repro.workloads.inputs import speech_like

WORKLOAD = "adpcm_enc"
EQUIV_SAMPLES = 96
RACE_SAMPLES = 8000
REPS = 3


def check_equivalence() -> None:
    wl = get_workload(WORKLOAD)
    pcm = speech_like(EQUIV_SAMPLES, seed=11)
    stream = wl.input_stream(pcm)

    # functional: architectural state must match exactly
    ref = FunctionalSimulator(wl.program, wl.build_memory(stream))
    retired = ref.run()
    sim = FunctionalSimulator(wl.program, wl.build_memory(stream),
                              engine="blocks")
    assert sim.run() == retired, "retired count diverged"
    assert sim.regs.snapshot() == ref.regs.snapshot(), "registers diverged"
    assert sim.memory.snapshot() == ref.memory.snapshot(), "memory diverged"

    # pipeline: full PipelineStats must be bit-identical, across the
    # plain, predicted and ASBR-folding configurations
    profile = BranchProfiler().profile(wl.program, wl.build_memory(stream))
    sel = select_branches(profile, bit_capacity=16, bdt_update="execute")

    def one(pred_spec, with_asbr, engine):
        asbr = (ASBRUnit.from_branch_infos(sel.infos, capacity=16,
                                           bdt_update="execute")
                if with_asbr else None)
        sim = PipelineSimulator(wl.program, wl.build_memory(stream),
                                predictor=make_predictor(pred_spec),
                                asbr=asbr, engine=engine)
        return dataclasses.asdict(sim.run())

    for pred_spec, with_asbr in (("not-taken", False),
                                 ("bimodal-512-512", False),
                                 ("bimodal-512-512", True)):
        a = one(pred_spec, with_asbr, "interp")
        for engine in ("blocks", "superblocks"):
            b = one(pred_spec, with_asbr, engine)
            assert a == b, ("pipeline stats diverged under %s asbr=%s "
                            "engine=%s:\n%r\n%r"
                            % (pred_spec, with_asbr, engine, a, b))

    # out-of-order backend: architectural state and the retirement
    # ledger must match the functional model, folding on and off
    for width, with_asbr in ((1, True), (2, True), (2, False)):
        asbr = (ASBRUnit.from_branch_infos(sel.infos, capacity=16,
                                           bdt_update="execute")
                if with_asbr else None)
        sim = OoOSimulator(wl.program, wl.build_memory(stream),
                           predictor=make_predictor("bimodal-512-512"),
                           asbr=asbr,
                           config=OoOConfig(issue_width=width))
        stats = sim.run()
        assert sim.regs.snapshot() == ref.regs.snapshot(), \
            "ooo registers diverged (w%d)" % width
        assert sim.memory.snapshot() == ref.memory.snapshot(), \
            "ooo memory diverged (w%d)" % width
        assert stats.committed + stats.folds_committed \
            + stats.uncond_folds_committed == retired, \
            "ooo retirement ledger diverged (w%d)" % width
    print("equivalence: OK (%s, %d samples, 3 pipeline configs x 3 "
          "engines + 3 ooo configs)" % (WORKLOAD, EQUIV_SAMPLES))


def check_batch_equivalence() -> None:
    """Divergent-lane batch sweep vs serial functional runs."""
    from repro.sim.batch import run_batch

    wl = get_workload(WORKLOAD)
    lanes = [(16, 3), (96, 11), (40, 7), (96, 11), (5, 0), (64, 42)]
    mems = [wl.build_memory(wl.input_stream(speech_like(n, seed=s)))
            for n, s in lanes]
    res = run_batch(wl.program, mems)
    for i, mem in enumerate(mems):
        ref = FunctionalSimulator(wl.program, mem.copy())
        retired = ref.run()
        lr = res[i]
        assert lr.error is None and lr.halted, "lane %d did not halt" % i
        assert lr.instructions_retired == retired, \
            "lane %d retired count diverged" % i
        assert lr.regs == [ref.regs[r] for r in range(32)], \
            "lane %d registers diverged" % i
        assert lr.memory == ref.memory.snapshot(), \
            "lane %d memory diverged" % i
    print("batch equivalence: OK (%s, %d divergent lanes)"
          % (WORKLOAD, len(lanes)))


def race() -> int:
    wl = get_workload(WORKLOAD)
    pcm = speech_like(RACE_SAMPLES, seed=42)

    def best_rate(engine):
        best = 0.0
        for _ in range(REPS):
            sim = PipelineSimulator(wl.program, wl.build_memory(pcm),
                                    engine=engine)
            t0 = time.perf_counter()
            stats = sim.run()
            dt = time.perf_counter() - t0
            best = max(best, stats.cycles / dt)
        return best

    interp = best_rate("interp")
    blocks = best_rate("blocks")
    ratio = blocks / interp
    print("race: interp %.0f cycles/s, blocks %.0f cycles/s (%.2fx)"
          % (interp, blocks, ratio))
    if blocks < interp:
        print("FAIL: blocks engine is slower than interp on %s"
              % WORKLOAD, file=sys.stderr)
        return 1
    return 0


def race_superblocks() -> int:
    """Superblocks vs blocks with the ASBR unit attached — the fold
    checks and predictor updates the superblock bodies inline are only
    on the hot path in this configuration."""
    wl = get_workload(WORKLOAD)
    pcm = speech_like(RACE_SAMPLES, seed=42)
    stream = wl.input_stream(pcm)
    profile = BranchProfiler().profile(wl.program, wl.build_memory(stream))
    sel = select_branches(profile, bit_capacity=16, bdt_update="execute")

    def best_rate(engine):
        best = 0.0
        for _ in range(REPS):
            asbr = ASBRUnit.from_branch_infos(sel.infos, capacity=16,
                                              bdt_update="execute")
            sim = PipelineSimulator(wl.program, wl.build_memory(stream),
                                    predictor=make_predictor(
                                        "bimodal-512-512"),
                                    asbr=asbr, engine=engine)
            t0 = time.perf_counter()
            stats = sim.run()
            dt = time.perf_counter() - t0
            best = max(best, stats.cycles / dt)
        return best

    blocks = best_rate("blocks")
    superblocks = best_rate("superblocks")
    ratio = superblocks / blocks
    print("race (asbr): blocks %.0f cycles/s, superblocks %.0f "
          "cycles/s (%.2fx)" % (blocks, superblocks, ratio))
    if superblocks < blocks:
        print("FAIL: superblock engine is slower than blocks on %s "
              "with ASBR" % WORKLOAD, file=sys.stderr)
        return 1
    return 0


def race_batch() -> int:
    """64-lane campaign: batch engine vs 64 serial interpreter runs.

    The gate is aggregate architectural throughput — total lane
    instructions per wall-clock second — and the batch engine must
    clear 5x, the margin that makes fault campaigns and DSE rung
    prefetches effectively free next to cycle-accurate work.
    """
    from repro.sim.batch import run_batch

    lanes = 64
    wl = get_workload(WORKLOAD)
    mem = wl.build_memory(wl.input_stream(speech_like(2000, seed=42)))

    serial_best = 0.0
    for _ in range(REPS):
        total = 0
        t0 = time.perf_counter()
        for _lane in range(lanes):
            sim = FunctionalSimulator(wl.program, mem.copy())
            total += sim.run()
        dt = time.perf_counter() - t0
        serial_best = max(serial_best, total / dt)

    batch_best = 0.0
    for _ in range(REPS):
        mems = [mem] * lanes
        t0 = time.perf_counter()
        res = run_batch(wl.program, mems)
        dt = time.perf_counter() - t0
        assert res.total_retired == total, "batch retired diverged"
        batch_best = max(batch_best, res.total_retired / dt)

    ratio = batch_best / serial_best
    print("race (batch): serial %.0f instr/s, batch(%d lanes) %.0f "
          "instr/s (%.2fx)" % (serial_best, lanes, batch_best, ratio))
    if ratio < 5.0:
        print("FAIL: batch engine is below 5x serial functional interp "
              "on a %d-lane campaign (%.2fx)" % (lanes, ratio),
              file=sys.stderr)
        return 1
    return 0


def main() -> int:
    check_equivalence()
    check_batch_equivalence()
    return race() or race_superblocks() or race_batch()


if __name__ == "__main__":
    sys.exit(main())
