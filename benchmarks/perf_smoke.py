"""CI perf-smoke gate: blocks engine must beat interp on ADPCM.

A coarse anti-regression check, not a tight threshold: it first proves
compiled-vs-interpreted equivalence on a quick sweep (both simulators,
with and without ASBR/bimodal), then races the two engines on the
ADPCM workload and fails if the block-compiled engine is *slower* than
the interpreted one.  Run as a plain script::

    PYTHONPATH=src python benchmarks/perf_smoke.py

Exit status 0 = pass.  Kept out of the pytest tiers on purpose — wall
clock assertions do not belong in the correctness suite.
"""

import dataclasses
import sys
import time

from repro.asbr import ASBRUnit
from repro.predictors import make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.sim.functional import FunctionalSimulator
from repro.sim.ooo import OoOConfig, OoOSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import get_workload
from repro.workloads.inputs import speech_like

WORKLOAD = "adpcm_enc"
EQUIV_SAMPLES = 96
RACE_SAMPLES = 8000
REPS = 3


def check_equivalence() -> None:
    wl = get_workload(WORKLOAD)
    pcm = speech_like(EQUIV_SAMPLES, seed=11)
    stream = wl.input_stream(pcm)

    # functional: architectural state must match exactly
    ref = FunctionalSimulator(wl.program, wl.build_memory(stream))
    retired = ref.run()
    sim = FunctionalSimulator(wl.program, wl.build_memory(stream),
                              engine="blocks")
    assert sim.run() == retired, "retired count diverged"
    assert sim.regs.snapshot() == ref.regs.snapshot(), "registers diverged"
    assert sim.memory.snapshot() == ref.memory.snapshot(), "memory diverged"

    # pipeline: full PipelineStats must be bit-identical, across the
    # plain, predicted and ASBR-folding configurations
    profile = BranchProfiler().profile(wl.program, wl.build_memory(stream))
    sel = select_branches(profile, bit_capacity=16, bdt_update="execute")

    def one(pred_spec, with_asbr, engine):
        asbr = (ASBRUnit.from_branch_infos(sel.infos, capacity=16,
                                           bdt_update="execute")
                if with_asbr else None)
        sim = PipelineSimulator(wl.program, wl.build_memory(stream),
                                predictor=make_predictor(pred_spec),
                                asbr=asbr, engine=engine)
        return dataclasses.asdict(sim.run())

    for pred_spec, with_asbr in (("not-taken", False),
                                 ("bimodal-512-512", False),
                                 ("bimodal-512-512", True)):
        a = one(pred_spec, with_asbr, "interp")
        b = one(pred_spec, with_asbr, "blocks")
        assert a == b, ("pipeline stats diverged under %s asbr=%s:\n%r\n%r"
                        % (pred_spec, with_asbr, a, b))

    # out-of-order backend: architectural state and the retirement
    # ledger must match the functional model, folding on and off
    for width, with_asbr in ((1, True), (2, True), (2, False)):
        asbr = (ASBRUnit.from_branch_infos(sel.infos, capacity=16,
                                           bdt_update="execute")
                if with_asbr else None)
        sim = OoOSimulator(wl.program, wl.build_memory(stream),
                           predictor=make_predictor("bimodal-512-512"),
                           asbr=asbr,
                           config=OoOConfig(issue_width=width))
        stats = sim.run()
        assert sim.regs.snapshot() == ref.regs.snapshot(), \
            "ooo registers diverged (w%d)" % width
        assert sim.memory.snapshot() == ref.memory.snapshot(), \
            "ooo memory diverged (w%d)" % width
        assert stats.committed + stats.folds_committed \
            + stats.uncond_folds_committed == retired, \
            "ooo retirement ledger diverged (w%d)" % width
    print("equivalence: OK (%s, %d samples, 3 pipeline + 3 ooo configs)"
          % (WORKLOAD, EQUIV_SAMPLES))


def race() -> int:
    wl = get_workload(WORKLOAD)
    pcm = speech_like(RACE_SAMPLES, seed=42)

    def best_rate(engine):
        best = 0.0
        for _ in range(REPS):
            sim = PipelineSimulator(wl.program, wl.build_memory(pcm),
                                    engine=engine)
            t0 = time.perf_counter()
            stats = sim.run()
            dt = time.perf_counter() - t0
            best = max(best, stats.cycles / dt)
        return best

    interp = best_rate("interp")
    blocks = best_rate("blocks")
    ratio = blocks / interp
    print("race: interp %.0f cycles/s, blocks %.0f cycles/s (%.2fx)"
          % (interp, blocks, ratio))
    if blocks < interp:
        print("FAIL: blocks engine is slower than interp on %s"
              % WORKLOAD, file=sys.stderr)
        return 1
    return 0


def main() -> int:
    check_equivalence()
    return race()


if __name__ == "__main__":
    sys.exit(main())
