"""CI serve-restart-smoke gate: SIGKILL the daemon mid-job, restart
it on the same state dir, and watch the job finish.

Boots the real daemon (``repro serve --state-dir``) as a subprocess,
submits a sweep big enough to straddle a kill, SIGKILLs the *daemon
process* (not a worker — that's ``serve_smoke.py``) partway through,
then restarts on the same ``--state-dir`` and ``--cache-dir`` and
asserts the contract of PR 9:

1. the restarted daemon recovers the job from its WAL
   (``jobs_recovered`` in ``/stats``) and drives it to a terminal
   state;
2. specs settled before the kill are not re-executed: the journaled
   results replay, and anything that finished between its journal
   write and the kill resolves from the result cache — the
   ``executions`` counter of the second daemon stays below the
   job's total;
3. both daemon logs are **zero-traceback**, and the second exits 0 on
   ``POST /shutdown``.

Run as a plain script::

    PYTHONPATH=src python benchmarks/serve_restart_smoke.py

Exit status 0 = pass.  Kept out of the pytest tiers on purpose — the
in-process durability suite (tests/test_serve_durability.py) covers
the replay semantics deterministically; this proves the shipped CLI
entrypoint survives a real ``kill -9``.
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

from repro.serve import ServeClient

# long enough that a kill lands mid-sweep, short enough for CI
SPECS = [{"benchmark": "adpcm_enc", "n_samples": 4000, "seed": 200 + i,
          "predictor_spec": "bimodal-512-512"} for i in range(8)]


def start_daemon(tmp, log_name):
    log_path = os.path.join(tmp, log_name)
    # the daemon leads its own process group so the kill below takes
    # out daemon *and* pool workers in one blow, like a machine dying
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--cache-dir", os.path.join(tmp, "cache"),
         "--state-dir", os.path.join(tmp, "state"),
         "--workers", "2", "--task-timeout", "30", "--retries", "0",
         "--shards", "16"],
        stderr=open(log_path, "w"), stdout=subprocess.DEVNULL,
        start_new_session=True), log_path


def kill_group(daemon) -> None:
    try:
        os.killpg(daemon.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    daemon.wait(timeout=30)


def wait_for_port(log_path: str, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        text = open(log_path).read()
        m = re.search(r"listening on [\d.]+:(\d+)", text)
        if m:
            return int(m.group(1))
        time.sleep(0.1)
    raise TimeoutError("daemon never logged its port:\n" +
                       open(log_path).read())


def wait_for_progress(client: ServeClient, job_id: str, at_least: int,
                      timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = client.job(job_id)
        if job["n_done"] >= at_least or job["state"] in ("done",
                                                         "failed"):
            return job
        time.sleep(0.1)
    raise TimeoutError("job %s made no progress" % job_id)


def assert_no_tracebacks(log_path: str) -> None:
    log_text = open(log_path).read()
    assert "Traceback" not in log_text, \
        "daemon log contains a traceback:\n" + log_text


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="serve-restart-smoke-")

    # -- first life: submit, make partial progress, kill -9 ------------
    daemon, log1 = start_daemon(tmp, "daemon-1.log")
    try:
        port = wait_for_port(log1)
        client = ServeClient(port=port, timeout=120.0)
        job_id = client.sweep(SPECS)["id"]
        partial = wait_for_progress(client, job_id, at_least=2)
        assert partial["state"] not in ("done", "failed"), \
            "job finished before the kill could land: %r" % partial
        kill_group(daemon)
        print("restart-smoke: killed daemon with %d/%d specs settled"
              % (partial["n_done"], partial["n_total"]))
    finally:
        if daemon.poll() is None:
            kill_group(daemon)
    settled_before_kill = partial["n_done"]

    # -- second life: same state dir; the job must finish --------------
    daemon, log2 = start_daemon(tmp, "daemon-2.log")
    try:
        port = wait_for_port(log2)
        client = ServeClient(port=port, timeout=120.0)
        stats = client.stats()
        assert stats["counters"]["jobs_recovered"] >= 1, stats
        job = client.wait_job(job_id, timeout=300)
        assert job["state"] in ("done", "failed"), job
        assert job["n_done"] == job["n_total"] == len(SPECS), job
        assert job["n_recovered"] >= settled_before_kill, job
        stats = client.stats()
        # settled specs were not re-executed: the second daemon ran at
        # most the work that was pending at the kill
        assert stats["counters"]["executions"] \
            <= len(SPECS) - settled_before_kill, stats
        print("restart-smoke: job %s %s after restart "
              "(%d replayed from WAL, %d executions in second life)"
              % (job_id, job["state"], job["n_recovered"],
               stats["counters"]["executions"]))

        client.shutdown()
        code = daemon.wait(timeout=30)
        assert code == 0, "daemon exited %r" % code
        assert_no_tracebacks(log1)
        assert_no_tracebacks(log2)
        print("restart-smoke: clean shutdown, both logs traceback-free")
        return 0
    finally:
        if daemon.poll() is None:
            kill_group(daemon)


if __name__ == "__main__":
    sys.exit(main())
