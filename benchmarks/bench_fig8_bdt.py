"""Figure 8 — the Branch Direction Table.

Figure 8 is a structural diagram (a 4-register BDT with ``!=0`` and
``<=0`` direction bits and validity counters).  This bench reproduces
the structure as a table and measures the early-condition-evaluation
update rate — the operation the BDT hardware performs on every register
writeback.
"""

from repro.asbr.bdt import BranchDirectionTable
from repro.experiments.common import render_table
from repro.isa.alu import to_unsigned
from repro.isa.conditions import Condition


def test_fig8_bdt_structure(benchmark, save_table):
    bdt = BranchDirectionTable(num_regs=4)
    values = [0, 5, to_unsigned(-2), 1]

    def update_all():
        for reg, value in enumerate(values):
            bdt.acquire(reg if reg else 1)      # r0-style guard aside
            bdt.release(reg if reg else 1, value)
        # direct set for the table below
        for reg, value in enumerate(values):
            bdt.set_value(reg, value)
        return bdt

    benchmark(update_all)

    rows = []
    for reg, value in enumerate(values):
        rows.append(["R%d" % reg, str(to_unsigned(value) if value >= 0
                                      else value),
                     "1" if bdt.lookup(reg, Condition.NEZ) else "0",
                     "1" if bdt.lookup(reg, Condition.LEZ) else "0",
                     str(bdt.entries[reg].counter)])
    text = render_table(
        ["register", "value", "!=0", "<=0", "validity counter"], rows,
        "Figure 8: four-entry BDT with !=0 and <=0 direction bits "
        "(structural reproduction)")
    save_table("fig8_bdt", text)

    assert bdt.lookup(0, Condition.NEZ) is False
    assert bdt.lookup(2, Condition.LEZ) is True


def test_fig8_bdt_update_throughput(benchmark):
    """Raw acquire/release protocol rate (simulator hot path)."""
    bdt = BranchDirectionTable()

    def one_writeback():
        bdt.acquire(7)
        bdt.release(7, 123456)

    benchmark(one_writeback)
    assert bdt.lookup(7, Condition.GTZ) is True
