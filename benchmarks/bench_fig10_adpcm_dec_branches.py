"""Figure 10 — per-branch statistics for the ADPCM-decode fold set.

The paper folds 3 decoder branches (the delta bit tests); ours are
labelled ``br_b4``/``br_b2``/``br_b1`` plus the naturally-distant sign
branches the selector also finds profitable.
"""

from repro.experiments import fig10


def test_fig10_adpcm_dec_branches(benchmark, setup, save_table):
    table = benchmark.pedantic(lambda: fig10.run(setup),
                               rounds=1, iterations=1)
    save_table("fig10_adpcm_dec_branches", fig10.render(table))

    labels = {r.label for r in table.rows}
    assert {"br_b4", "br_b2", "br_b1"} <= labels
