"""Ablation A4 — hardware area vs accuracy vs cycles.

Backs the paper's claim that "comparable branch prediction accuracies
can be achieved at significantly lower area costs": ASBR plus a
quarter-size bimodal beats every large general-purpose predictor on
cycles while holding far less SRAM state.
"""

from repro.experiments import ablations


def test_ablation_area(benchmark, setup, save_table):
    rows = benchmark.pedantic(
        lambda: ablations.area_table("adpcm_enc", setup),
        rounds=1, iterations=1)
    save_table("ablation_area", ablations.render_area(rows, "adpcm_enc"))

    by = {r.config: r for r in rows}
    asbr = by["ASBR+bimodal-512-512"]
    assert asbr.cycles < by["bimodal-2048"].cycles
    assert asbr.cycles < by["gshare-2048-11-2048"].cycles
    assert asbr.state_bits < by["bimodal-2048"].state_bits / 3
