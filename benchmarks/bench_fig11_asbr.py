"""Figure 11 — the headline ASBR results.

Regenerates the paper's final table: cycles and improvement for ASBR
with not-taken / bi-512 / bi-256 auxiliary predictors across all four
benchmarks, improvements computed against the matching Figure 6
baselines exactly as in the paper.
"""

from repro.experiments import fig11, paper_data


def test_fig11_asbr_results(benchmark, setup, save_table):
    rows = benchmark.pedantic(lambda: fig11.run(setup),
                              rounds=1, iterations=1)
    text = fig11.render(rows)
    save_table("fig11_asbr", text)

    by = {(r.benchmark, r.aux_predictor): r for r in rows}
    # the paper's headline: improvements across the board
    for bench in paper_data.BENCHMARK_NAMES:
        for aux in ("not-taken", "bi-512", "bi-256"):
            assert by[(bench, aux)].improvement > 0
    # shape: ADPCM gains more than G.721 (paper: 20-22% vs 6-7%)
    assert by[("adpcm_enc", "bi-512")].improvement > \
        by[("g721_enc", "bi-512")].improvement
    # shape: quartering the auxiliary predictor costs almost nothing
    for bench in paper_data.BENCHMARK_NAMES:
        a = by[(bench, "bi-512")].cycles
        b = by[(bench, "bi-256")].cycles
        assert abs(a - b) / a < 0.02
