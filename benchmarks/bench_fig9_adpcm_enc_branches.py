"""Figure 9 — per-branch statistics for the ADPCM-encode fold set.

The paper folds 4 branches, all executed once per sample, with bimodal
accuracies 0.43-0.63 — the sign and magnitude comparisons of the step
quantizer.  Our selection finds the same branches (they are labelled
``br_sign``/``br_bit2``/``br_bit1``/``br_bit0`` in the assembly).
"""

from repro.experiments import fig9


def test_fig9_adpcm_enc_branches(benchmark, setup, save_table):
    table = benchmark.pedantic(lambda: fig9.run(setup),
                               rounds=1, iterations=1)
    save_table("fig9_adpcm_enc_branches", fig9.render(table))

    labels = {r.label for r in table.rows}
    assert {"br_sign", "br_bit2", "br_bit1", "br_bit0"} <= labels
    # every selected branch executes ~once per sample, like the paper's
    for r in table.rows:
        assert r.exec_count >= setup.n_samples * 0.9
