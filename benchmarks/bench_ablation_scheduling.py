"""Ablation A3 — compiler scheduling support (paper Section 5.1).

Three points: naive code (predicates defined right before branches,
nothing folds), the automatic local list scheduler, and the
hand-scheduled production assembly (the paper's "manual scheduling").
"""

from repro.experiments import ablations


def test_ablation_scheduling(benchmark, setup, save_table):
    study = benchmark.pedantic(lambda: ablations.scheduling_study(setup),
                               rounds=1, iterations=1)
    save_table("ablation_scheduling", ablations.render_scheduling(study))

    assert study.folds_after >= study.folds_before
    assert study.cycles_after <= study.cycles_before
    # manual/global scheduling reaches branches local scheduling cannot
    assert study.folds_hand > study.folds_after
    assert study.cycles_hand < study.cycles_before
