"""CI serve-smoke gate: one daemon lifetime, end to end.

Boots the real daemon as a subprocess (``repro serve`` on an ephemeral
port), then walks the contract the service makes:

1. a sweep submitted twice is 100% cached the second time;
2. a pool worker SIGKILLed mid-sweep degrades to a ``failed`` job
   record — the daemon keeps serving and the kill is visible in the
   failed-job count;
3. ``POST /shutdown`` exits cleanly: status 0 and **zero tracebacks**
   anywhere in the daemon log.

Run as a plain script::

    PYTHONPATH=src python benchmarks/serve_smoke.py

Exit status 0 = pass.  Kept out of the pytest tiers on purpose — the
in-process serve suites (tests/test_serve_*.py) cover correctness;
this proves the shipped CLI entrypoint and process lifecycle.
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

from repro.serve import ServeClient

SPECS = [{"benchmark": "adpcm_enc", "n_samples": 64, "seed": 11 + i,
          "predictor_spec": "not-taken"} for i in range(4)]

# big enough that each run takes real time, so the kill lands mid-task
SLOW_SPECS = [{"benchmark": "adpcm_enc", "n_samples": 8000,
               "seed": 100 + i, "predictor_spec": "bimodal-512-512"}
              for i in range(6)]


def wait_for_port(log_path: str, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        text = open(log_path).read()
        m = re.search(r"listening on [\d.]+:(\d+)", text)
        if m:
            return int(m.group(1))
        time.sleep(0.1)
    raise TimeoutError("daemon never logged its port:\n" +
                       open(log_path).read())


def kill_one_worker(client: ServeClient, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pids = client.stats()["worker_pids"]
        if pids:
            os.kill(pids[0], signal.SIGKILL)
            return pids[0]
        time.sleep(0.05)
    raise TimeoutError("no pool workers appeared to kill")


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    log_path = os.path.join(tmp, "daemon.log")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--cache-dir", os.path.join(tmp, "cache"),
         "--workers", "2", "--task-timeout", "6", "--retries", "0",
         "--shards", "256"],
        stderr=open(log_path, "w"), stdout=subprocess.DEVNULL)
    try:
        port = wait_for_port(log_path)
        client = ServeClient(port=port, timeout=120.0)
        assert client.healthz()["ok"] is True

        # 1. sweep twice: the second pass must be 100% cached
        cold = client.wait_job(client.sweep(SPECS)["id"])
        assert cold["state"] == "done", cold
        assert cold["n_done"] == len(SPECS)
        warm = client.wait_job(client.sweep(SPECS)["id"])
        assert warm["state"] == "done", warm
        assert warm["n_cached"] == warm["n_total"] == len(SPECS), warm
        print("smoke: warm sweep 100%% cached (%d/%d)"
              % (warm["n_cached"], warm["n_total"]))

        # 2. SIGKILL a pool worker mid-sweep: failed job record, daemon
        #    keeps serving
        chaos = client.sweep(SLOW_SPECS)
        pid = kill_one_worker(client)
        chaos = client.wait_job(chaos["id"], timeout=300)
        assert chaos["state"] == "failed", chaos
        assert chaos["n_failed"] >= 1, chaos
        print("smoke: killed worker %d -> job %s failed (%d/%d specs)"
              % (pid, chaos["id"], chaos["n_failed"], chaos["n_total"]))
        assert client.healthz()["ok"] is True
        stats = client.stats()
        assert stats["jobs"]["failed"] >= 1, stats

        # 3. clean shutdown: exit 0, no tracebacks in the log
        client.shutdown()
        code = daemon.wait(timeout=30)
        assert code == 0, "daemon exited %r" % code
        log_text = open(log_path).read()
        assert "Traceback" not in log_text, \
            "daemon log contains a traceback:\n" + log_text
        print("smoke: clean shutdown, log traceback-free")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    sys.exit(main())
