"""Figure 7 — per-branch statistics for the G.721 fold sets.

Regenerates the execution-count / per-predictor-accuracy table for the
branches selected for the G.721 encoder (paper Figure 7: 16 branches)
and decoder (same set minus one in the paper).
"""

from repro.experiments import fig7


def test_fig7_g721_encode_branches(benchmark, setup, save_table):
    table = benchmark.pedantic(lambda: fig7.run(setup, "g721_enc"),
                               rounds=1, iterations=1)
    save_table("fig7_g721_enc_branches", fig7.render(table))
    assert len(table.rows) >= 5
    # hard-to-predict branches are present (the reason they're selected)
    assert min(r.accuracy["bimodal"] for r in table.rows) < 0.8


def test_fig7_g721_decode_branches(benchmark, setup, save_table):
    table = benchmark.pedantic(lambda: fig7.run(setup, "g721_dec"),
                               rounds=1, iterations=1)
    save_table("fig7_g721_dec_branches", fig7.render(table))
    assert len(table.rows) >= 4
