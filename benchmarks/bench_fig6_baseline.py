"""Figure 6 — baseline branch predictability.

Regenerates the cycles/CPI/accuracy table for not-taken, bimodal-2048
and gshare across the four benchmarks, next to the paper's values.
"""

from repro.experiments import fig6


def test_fig6_baseline_predictability(benchmark, setup, save_table):
    rows = benchmark.pedantic(lambda: fig6.run(setup),
                              rounds=1, iterations=1)
    text = fig6.render(rows)
    save_table("fig6_baseline", text)

    # shape assertions mirroring the paper
    by = {(r.benchmark, r.predictor): r for r in rows}
    for bench in ("adpcm_enc", "adpcm_dec", "g721_enc", "g721_dec"):
        assert by[(bench, "not-taken")].cycles > \
            by[(bench, "bimodal")].cycles
