"""Extension E1 — energy comparison (the paper's power claims).

The paper claims power reduction from fewer pipeline instructions and
smaller tables but reports no numbers; this bench produces the table
with our activity-based model.
"""

from repro.experiments import energy


def test_extension_energy(benchmark, setup, save_table):
    rows = benchmark.pedantic(lambda: energy.run(setup),
                              rounds=1, iterations=1)
    save_table("extension_energy", energy.render(rows))

    for r in rows:
        assert r.saving > 0
        assert r.customized_fetched < r.baseline_fetched
