"""Shared infrastructure for the benchmark harness.

Every ``bench_fig*.py`` regenerates one table/figure of the paper: it
runs the real experiment (at ``REPRO_SAMPLES`` input samples, default
600 here), prints the measured-vs-paper table, and saves it under
``benchmarks/results/``.  The pytest-benchmark timing wraps the
experiment's first full computation; repeated configurations within one
session are memoised by the shared ExperimentSetup.
"""

import os

import pytest

from repro.experiments.common import ExperimentSetup

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

BENCH_SAMPLES = int(os.environ.get("REPRO_SAMPLES", "600"))


@pytest.fixture(scope="session")
def setup():
    return ExperimentSetup(n_samples=BENCH_SAMPLES)


@pytest.fixture(scope="session")
def save_table():
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name, text):
        path = os.path.join(RESULTS_DIR, name + ".txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print()
        print(text)
        return path

    return _save
