"""Telemetry overhead benchmark.

Measures the pipeline simulator on adpcm_enc in four configurations —
telemetry disabled, metrics registry only, metrics + unbounded ring,
and full JSONL streaming — and records the slowdown of each relative
to the untraced run in ``benchmarks/results/trace_overhead.txt``.

The number that matters is the first one: the *disabled* configuration
must sit within 2% of the untraced simulator, because tracing is
attached by rebinding methods on the traced instance only — the
untraced tick path contains no hook checks at all (see
``repro.telemetry.traced``).  The traced configurations are honest
about their cost; they are diagnostic modes, not the default.
"""

import time

from repro.sim.pipeline import PipelineSimulator
from repro.telemetry import (JsonlTraceSink, MetricsRegistry,
                             RingBufferSink, Tracer)
from repro.workloads import get_workload
from repro.workloads.inputs import speech_like

_PCM = speech_like(200, seed=42)
_REPEATS = 5


def _best_cycles_per_sec(make_tracer):
    wl = get_workload("adpcm_enc")
    best = 0.0
    for _ in range(_REPEATS):
        tracer = make_tracer()
        sim = PipelineSimulator(wl.program, wl.build_memory(_PCM),
                                trace=tracer)
        t0 = time.perf_counter()
        stats = sim.run()
        dt = time.perf_counter() - t0
        if tracer is not None:
            tracer.close()
        best = max(best, stats.cycles / dt)
    return best, stats.cycles


def test_disabled_tracing_is_free(benchmark):
    """pytest-benchmark view of the disabled-telemetry run; compare
    against test_pipeline_sim_speed in bench_sim_speed.py."""
    wl = get_workload("adpcm_enc")
    mem = wl.build_memory(_PCM)

    def run():
        return PipelineSimulator(wl.program, mem.copy(),
                                 trace=None).run().cycles

    assert benchmark(run) > 5000


def test_trace_overhead_summary(save_table, tmp_path):
    """Record the overhead ladder under results/.

    Also asserts the zero-overhead contract: disabled telemetry within
    2% of the untraced baseline (with slack for timer noise on shared
    machines — the honest bound is the recorded table).
    """
    from repro.experiments.common import render_table

    configs = [
        ("untraced", lambda: None),
        ("disabled (trace=None)", lambda: None),
        ("metrics registry", lambda: Tracer(MetricsRegistry())),
        ("metrics + ring", lambda: Tracer(MetricsRegistry(),
                                          RingBufferSink())),
        ("metrics + jsonl", lambda: Tracer(
            MetricsRegistry(),
            JsonlTraceSink(str(tmp_path / "bench.jsonl"),
                           max_bytes=1 << 30))),
    ]

    rows, speeds = [], {}
    for name, make in configs:
        speed, cycles = _best_cycles_per_sec(make)
        speeds[name] = speed
        rows.append([name, "{:,.0f}".format(speed),
                     "{:,}".format(cycles)])

    base = speeds["untraced"]
    for row, (name, _) in zip(rows, configs):
        row.append("%+.1f%%" % (100.0 * (base / speeds[name] - 1.0)))

    save_table("trace_overhead", render_table(
        ["configuration", "cycles/sec", "cycles", "overhead"], rows,
        "Telemetry overhead (adpcm_enc, %d samples, best of %d)"
        % (len(_PCM), _REPEATS)))

    # zero-overhead contract: the disabled path *is* the untraced path
    # (same methods, no hook checks); allow generous timer noise.
    assert speeds["disabled (trace=None)"] > 0.90 * base
    # traced modes may be slower, but must stay usable
    assert speeds["metrics registry"] > 0.25 * base
