"""Telemetry contracts of the out-of-order backend.

Two locks, mirroring the in-order pipeline's telemetry tests:

* **traced ≡ plain** — attaching a :class:`Tracer` must not perturb a
  single stats field, so cached metric-less results and traced reruns
  stay interchangeable;
* the event stream must carry the OoO lifecycle (rename_alloc,
  iq_wakeup, issue, commit, checkpoint_restore, squash_depth) with
  cycles/seqs consistent enough for the ASCII pipeview to reconstruct
  out-of-order issue against in-order commit.
"""

import dataclasses

from repro.asbr import ASBRUnit, FoldabilityError, extract_branch_info
from repro.sim.ooo import OoOConfig, OoOSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.telemetry import Tracer
from repro.telemetry import events as ev
from repro.telemetry.sinks import RingBufferSink
from repro.telemetry.timeline import lifecycle_cycles, render_pipeview
from repro.testing import random_program


def _asbr_for(prog, update="execute"):
    infos = []
    for i, ins in enumerate(prog.instrs):
        if ins.is_branch:
            try:
                infos.append(extract_branch_info(prog, prog.pc_of(i)))
            except FoldabilityError:
                pass
    return ASBRUnit.from_branch_infos(infos[:16], bdt_update=update)


def _traced_run(seed, frontend=None, width=2):
    prog = random_program(seed, units=14)
    ring = RingBufferSink(capacity=1_000_000)
    sim = OoOSimulator(prog, asbr=_asbr_for(prog),
                       config=OoOConfig(issue_width=width),
                       trace=Tracer(ring), frontend=frontend)
    stats = sim.run()
    return stats, ring.events


def test_traced_equals_plain():
    for seed in range(6):
        prog = random_program(seed, units=14)
        plain = OoOSimulator(prog, asbr=_asbr_for(prog)).run()
        traced, _events = _traced_run(seed)
        assert dataclasses.asdict(traced) == dataclasses.asdict(plain), \
            "tracing perturbed the machine (seed %d)" % seed


def test_traced_equals_plain_with_frontend():
    from repro.frontend import FrontendConfig

    prog = random_program(2, units=14)
    plain = OoOSimulator(prog, asbr=_asbr_for(prog),
                         frontend=FrontendConfig(fdip=True)).run()
    traced, events = _traced_run(2, frontend=FrontendConfig(fdip=True))
    assert dataclasses.asdict(traced) == dataclasses.asdict(plain)
    kinds = set(e.kind for e in events)
    assert ev.BTB_HIT in kinds or ev.BTB_MISS in kinds


def test_event_stream_carries_ooo_lifecycle():
    stats, events = _traced_run(0)
    kinds = set(e.kind for e in events)
    for want in (ev.FETCH, ev.DECODE, ev.RENAME_ALLOC, ev.ISSUE,
                 ev.IQ_WAKEUP, ev.COMMIT, ev.BRANCH, ev.SQUASH,
                 ev.CHECKPOINT_RESTORE, ev.SQUASH_DEPTH):
        assert want in kinds, "missing %s events" % want
    restores = [e for e in events if e.kind == ev.CHECKPOINT_RESTORE]
    assert len(restores) == stats.checkpoint_restores
    assert sum(e.data["depth"] for e in restores) \
        == stats.squash_depth_sum


def test_commit_in_order_issue_out_of_order():
    _stats, events = _traced_run(0, width=4)
    rows = lifecycle_cycles(events)
    commits = [(seq, c) for seq, _f, _d, i, c, _s in rows
               if c is not None]
    # commit cycles never invert in seq order (the active list is the
    # paper-facing guarantee: folding's precision argument survives)
    assert all(a[1] <= b[1] for a, b in zip(commits, commits[1:]))
    issues = [(seq, i) for seq, _f, _d, i, c, _s in rows
              if i is not None and c is not None]
    assert any(a[1] > b[1] for a, b in zip(issues, issues[1:])), \
        "4-wide machine never issued out of order"


def test_pipeview_flags_ooo_issue():
    _stats, events = _traced_run(0, width=4)
    view = render_pipeview(events, limit=200)
    assert "<ooo" in view
    # the in-order pipeline must never trip the flag
    prog = random_program(0, units=14)
    ring = RingBufferSink(capacity=1_000_000)
    PipelineSimulator(prog, trace=Tracer(ring)).run()
    assert "<ooo" not in render_pipeview(ring.events, limit=200)
