"""Tests for the Huffman decoder workload (golden model + assembly)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import get_workload
from repro.workloads.huffman import (
    LEAF_FLAG,
    build_tree,
    code_table,
    huffman_decode,
    huffman_encode,
    quantize,
)
from repro.workloads.inputs import speech_like

SYMBOLS = st.lists(st.integers(min_value=0, max_value=15),
                   min_size=1, max_size=200)


class TestCode:
    def test_prefix_free(self):
        table = code_table()
        items = [(format(code, "0%db" % length))
                 for code, length in table.values()]
        for a in items:
            for b in items:
                if a != b:
                    assert not b.startswith(a)

    def test_kraft_equality(self):
        table = code_table()
        assert sum(2.0 ** -length for _c, length in table.values()) \
            == pytest.approx(1.0)

    def test_frequent_symbols_get_short_codes(self):
        table = code_table()
        assert table[8][1] <= 2
        assert table[0][1] >= 10

    def test_all_16_symbols(self):
        assert set(code_table()) == set(range(16))


class TestTree:
    def test_full_binary_tree(self):
        tree = build_tree()
        assert len(tree) == 2 * 15          # 15 internal nodes
        leaves = [v & 0xFF for v in tree if v & LEAF_FLAG]
        assert sorted(leaves) == list(range(16))

    def test_internal_indices_in_range(self):
        tree = build_tree()
        for v in tree:
            if not v & LEAF_FLAG:
                assert 0 < v < 15

    def test_assembly_table_matches_build_tree(self):
        """The .data table in huffman_dec.s must be build_tree()'s
        output, word for word."""
        wl = get_workload("huffman_dec")
        prog = wl.program
        base = prog.address_of("tree")
        flat = build_tree()
        for i, value in enumerate(flat):
            assert prog.data[base + 4 * i] == value, "tree[%d]" % i


class TestRoundTrip:
    @given(SYMBOLS)
    @settings(max_examples=40)
    def test_encode_decode_identity(self, symbols):
        stream = huffman_encode(symbols)
        assert huffman_decode(stream, len(symbols)) == symbols

    @given(SYMBOLS)
    @settings(max_examples=20)
    def test_stream_is_bytes(self, symbols):
        assert all(0 <= b <= 255 for b in huffman_encode(symbols))

    def test_compression_on_biased_input(self):
        # mostly-symbol-8 input compresses well below 4 bits/symbol
        stream = huffman_encode([8] * 800)
        assert len(stream) <= 800 * 2 // 8 + 1

    def test_quantize_range(self):
        q = quantize([-32768, 0, 32767])
        assert q == [0, 8, 15]


class TestAssemblyDecoder:
    def test_bit_exact_speech(self):
        wl = get_workload("huffman_dec")
        pcm = speech_like(300, amplitude=28000)
        res = wl.run_functional(pcm)
        assert res.outputs == wl.golden_output(pcm)

    def test_bit_exact_extremes(self):
        wl = get_workload("huffman_dec")
        pcm = [32767, -32768, 0, 1, -1] * 40
        res = wl.run_functional(pcm)
        assert res.outputs == wl.golden_output(pcm)

    def test_pipeline_with_asbr_bit_exact(self):
        from repro.asbr import ASBRUnit
        from repro.predictors import make_predictor
        from repro.profiling import BranchProfiler, select_branches

        wl = get_workload("huffman_dec")
        pcm = speech_like(250, amplitude=28000)
        stream = wl.input_stream(pcm)
        profile = BranchProfiler().profile(
            wl.program, wl.build_memory(stream, len(pcm)))
        sel = select_branches(profile, bit_capacity=16,
                              bdt_update="execute")
        unit = ASBRUnit.from_branch_infos(sel.infos, bdt_update="execute")
        res = wl.run_pipeline(pcm, predictor=make_predictor("not-taken"),
                              asbr=unit)
        assert res.outputs == wl.golden_output(pcm)
        assert res.stats.folds_committed > 0

    def test_bit_branch_is_hard_and_foldable(self):
        """br_bit consumes fresh input data each execution: near-50%
        taken rate on mixed input, yet 100% foldable."""
        from repro.profiling import BranchProfiler
        wl = get_workload("huffman_dec")
        pcm = speech_like(300, amplitude=28000)
        stream = wl.input_stream(pcm)
        profile = BranchProfiler().profile(
            wl.program, wl.build_memory(stream, len(pcm)))
        br_bit = wl.program.labels["br_bit"]
        stats = profile.branches[br_bit]
        assert 0.1 < stats.taken_rate < 0.9
        assert stats.fold_fraction("execute") == 1.0

    def test_asbr_beats_gshare_here(self):
        """On input-data-dependent branches even the big gshare loses
        to folding (the paper's Figure 2 argument, quantified)."""
        from repro.asbr import ASBRUnit
        from repro.predictors import make_predictor
        from repro.profiling import BranchProfiler, select_branches

        wl = get_workload("huffman_dec")
        pcm = speech_like(300, amplitude=28000)
        stream = wl.input_stream(pcm)
        profile = BranchProfiler().profile(
            wl.program, wl.build_memory(stream, len(pcm)))
        sel = select_branches(profile, bit_capacity=16,
                              bdt_update="execute")
        unit = ASBRUnit.from_branch_infos(sel.infos, bdt_update="execute")
        gshare = wl.run_pipeline(
            pcm, predictor=make_predictor("gshare-2048-11-2048"))
        asbr = wl.run_pipeline(
            pcm, predictor=make_predictor("bimodal-512-512"), asbr=unit)
        assert asbr.stats.cycles < gshare.stats.cycles
