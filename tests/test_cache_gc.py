"""Size-capped result cache: parse_size, LRU gc, read-touch, auto-gc."""

import os

import pytest

from repro.runner import GCResult, ResultCache, parse_size
from repro.sim.pipeline import PipelineStats


def stats(cycles=100):
    return PipelineStats(cycles=cycles, committed=80, fetched=90)


def fill(cache, keys, metrics=False):
    for i, key in enumerate(keys):
        cache.put(key, stats(100 + i),
                  metrics={"counters": {}} if metrics else None)


def set_ages(cache, keys, start=1_000_000):
    """Give entries strictly increasing mtimes, keys[0] oldest."""
    for i, key in enumerate(keys):
        os.utime(cache._path(key), (start + i, start + i))


def entry_names(cache):
    return {n[:-len(".json")] for n in os.listdir(cache.root)
            if n.endswith(".json")}


class TestParseSize:
    @pytest.mark.parametrize("text,expect", [
        ("4096", 4096), ("0", 0),
        ("64k", 64 << 10), ("64K", 64 << 10),
        ("2m", 2 << 20), ("3G", 3 << 30),
        (" 10k ", 10 << 10),
    ])
    def test_accepts(self, text, expect):
        assert parse_size(text) == expect

    @pytest.mark.parametrize("text", ["", "k", "12q", "1.5M", "-1"])
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_size(text)


class TestGC:
    def test_uncapped_gc_only_measures(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fill(cache, ["a", "b", "c"])
        result = cache.gc()
        assert isinstance(result, GCResult)
        assert result.scanned == 3 and result.removed == 0
        assert result.total_bytes > 0
        assert result.remaining_bytes == result.total_bytes
        assert entry_names(cache) == {"a", "b", "c"}

    def test_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        keys = ["a", "b", "c", "d"]
        fill(cache, keys)
        set_ages(cache, keys)
        size = os.path.getsize(cache._path("a"))
        # cap leaves room for two entries: the two oldest must go
        result = cache.gc(max_bytes=2 * size)
        assert result.removed == 2 and result.freed_bytes == 2 * size
        assert entry_names(cache) == {"c", "d"}
        assert cache.evicted == 2

    def test_read_hit_touches_and_protects(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        keys = ["a", "b", "c", "d"]
        fill(cache, keys)
        set_ages(cache, keys)
        assert cache.get("a") is not None    # refreshes a's mtime
        size = os.path.getsize(cache._path("a"))
        cache.gc(max_bytes=2 * size)
        # b and c were the least recently *used*; a survived its age
        assert entry_names(cache) == {"a", "d"}

    def test_zero_cap_empties_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fill(cache, ["a", "b"])
        result = cache.gc(max_bytes=0)
        assert result.removed == 2 and entry_names(cache) == set()
        assert result.remaining_bytes == 0

    def test_missing_directory_is_fine(self, tmp_path):
        cache = ResultCache(str(tmp_path / "never-created"))
        result = cache.gc(max_bytes=10)
        assert result.scanned == 0 and result.removed == 0

    def test_render_mentions_counts(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fill(cache, ["a"])
        text = cache.gc().render()
        assert "1 entries" in text and "0 removed" in text


class TestAutoGC:
    def test_put_over_cap_collects(self, tmp_path):
        probe = ResultCache(str(tmp_path))
        probe.put("probe", stats())
        size = os.path.getsize(probe._path("probe"))
        os.remove(probe._path("probe"))

        cache = ResultCache(str(tmp_path), max_bytes=3 * size)
        keys = ["a", "b", "c", "d", "e"]
        for i, key in enumerate(keys):
            cache.put(key, stats(100 + i))
            set_ages(cache, [k for k in keys if k <= key
                             and k in entry_names(cache)])
        assert cache.evicted >= 2
        survivors = entry_names(cache)
        assert len(survivors) <= 3
        assert "e" in survivors and "a" not in survivors

    def test_uncapped_put_never_collects(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fill(cache, ["k%d" % i for i in range(6)])
        assert cache.evicted == 0 and len(entry_names(cache)) == 6

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(str(tmp_path), max_bytes=-1)

    def test_capped_cache_still_round_trips(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_bytes=1 << 20)
        cache.put("k", stats(123), metrics={"counters": {"x": 1}})
        got = cache.get("k", with_metrics=True)
        assert got is not None
        st, metrics = got
        assert st.cycles == 123 and metrics == {"counters": {"x": 1}}
