"""Integration tests: evaluator, search drivers, resume, DSE CLI.

These run real (tiny-input) simulations, so they share one module-scoped
journal/cache where possible.  The contract under test is the ISSUE's
acceptance criterion: a frontier containing the paper's threshold-2
configuration as a non-dominated point, and a resumed run that performs
zero new simulator executions yet reproduces the identical frontier.
"""

import json
import os

import pytest

from repro.dse import (
    BASELINE_POINT,
    ConfigSpace,
    DesignPoint,
    Evaluator,
    GridSearch,
    Journal,
    RandomSearch,
    SuccessiveHalving,
    frontier_of,
    make_search,
    paper_space,
)
from repro.runner import ResultCache

BENCH, N, SEED = "adpcm_enc", 64, 11

#: a small but meaningful slice of the paper space: the customized
#: core at every threshold, plus the displaced reference predictor.
SPACE = ConfigSpace(predictors=("bimodal-512-512", "bimodal-2048"),
                    asbr=(False, True),
                    bit_capacities=(16,),
                    bdt_updates=("commit", "mem", "execute"))

META = {"space": SPACE.digest(), "benchmark": BENCH,
        "n_samples": N, "seed": SEED}


def make_evaluator(tmp, journal=None, cache=True):
    c = ResultCache(os.path.join(str(tmp), "cache")) if cache else None
    return Evaluator(BENCH, N, SEED, workers=0, cache=c,
                     journal=journal)


@pytest.fixture(scope="module")
def first_run(tmp_path_factory):
    """One full grid evaluation, kept for the whole module."""
    tmp = tmp_path_factory.mktemp("dse")
    path = os.path.join(str(tmp), "journal.jsonl")
    with Journal(path).open(META) as journal:
        ev = make_evaluator(tmp, journal)
        results = GridSearch().run(ev, SPACE)
    return tmp, path, results, ev


class TestEvaluator:
    def test_baseline_speedup_is_one(self, first_run):
        _tmp, _path, results, _ev = first_run
        by_point = {r.point: r for r in results}
        assert by_point[BASELINE_POINT].objectives.speedup == \
            pytest.approx(1.0)

    def test_objectives_are_sane(self, first_run):
        _tmp, _path, results, _ev = first_run
        for r in results:
            o = r.objectives
            assert o.cycles > 0 and o.cpi > 0 and o.speedup > 0
            assert 0.0 <= o.fold_coverage <= 1.0
            assert o.table_bits >= 0 and o.energy > 0
            if not r.point.with_asbr:
                assert o.fold_coverage == 0.0

    def test_asbr_threshold2_beats_baseline(self, first_run):
        _tmp, _path, results, _ev = first_run
        by_point = {r.point: r for r in results}
        t2 = by_point[DesignPoint(predictor_spec="bimodal-512-512")]
        assert t2.objectives.speedup > 1.0
        assert t2.objectives.fold_coverage > 0.0

    def test_acceptance_threshold2_on_frontier(self, first_run):
        """The paper's chosen configuration is Pareto-optimal."""
        _tmp, _path, results, _ev = first_run
        front = frontier_of(results)
        assert DesignPoint(predictor_spec="bimodal-512-512") in \
            [r.point for r in front]

    def test_every_evaluation_journaled(self, first_run):
        _tmp, path, results, _ev = first_run
        j = Journal(path).load()
        for r in results:
            assert j.has(r.key)


class TestResume:
    def test_full_resume_zero_simulations(self, first_run):
        tmp, path, results, _ev = first_run
        with Journal(path).open(META) as journal:
            ev = make_evaluator(tmp, journal)
            again = GridSearch().run(ev, SPACE)
        assert ev.simulated == 0
        assert ev.journal_hits == len(SPACE.points())
        assert [r.objectives for r in again] == \
            [r.objectives for r in results]
        assert all(r.from_journal for r in again)

    def test_killed_midway_resumes_without_reevaluation(
            self, tmp_path, first_run):
        """Journal only a prefix (as if the process died), then run the
        full search: only the missing points simulate, and the frontier
        matches the uninterrupted run's exactly."""
        _tmp, _path, results, _ev = first_run
        points = SPACE.points()
        path = str(tmp_path / "killed.jsonl")
        with Journal(path).open(META) as journal:
            ev = make_evaluator(tmp_path, journal)
            ev.evaluate(points[:3])
        # prefix points plus the baseline the evaluator journals itself
        done = len(Journal(path).load())
        assert done >= 3

        with Journal(path).open(META) as journal:
            ev = make_evaluator(tmp_path, journal)
            resumed = GridSearch().run(ev, SPACE)
        assert ev.journal_hits == done
        assert ev.simulated == len(points) - done
        assert len(Journal(path).load()) == len(points)
        assert {r.key: r.objectives for r in resumed} == \
            {r.key: r.objectives for r in results}
        assert [r.point for r in frontier_of(resumed)] == \
            [r.point for r in frontier_of(results)]


class TestSearchDrivers:
    def test_random_search_same_seed_same_points(self, first_run):
        tmp, path, _results, _ev = first_run
        space = paper_space()
        picks_a = space.sample(4, seed=7)
        picks_b = space.sample(4, seed=7)
        assert picks_a == picks_b
        driver = RandomSearch(n_points=4, seed=7)
        with Journal(path).open(META) as journal:
            ev = make_evaluator(tmp, journal)
            res = driver.run(ev, SPACE)
        assert [r.point for r in res] == SPACE.sample(4, seed=7)

    def test_halving_final_rung_is_full_input(self, tmp_path):
        driver = SuccessiveHalving(eta=2, rung0_samples=16, growth=4)
        ev = make_evaluator(tmp_path)
        res = driver.run(ev, SPACE)
        assert all(r.n_samples == N for r in res)
        # survivors shrink by eta per rung, never below 1
        assert 1 <= len(res) <= len(SPACE.points())

    def test_halving_rungs_resume_too(self, tmp_path):
        path = str(tmp_path / "halve.jsonl")
        driver = SuccessiveHalving(eta=2, rung0_samples=16, growth=4)
        with Journal(path).open(META) as journal:
            ev = make_evaluator(tmp_path, journal)
            first = driver.run(ev, SPACE)
        with Journal(path).open(META) as journal:
            ev = make_evaluator(tmp_path, journal)
            second = driver.run(ev, SPACE)
        assert ev.simulated == 0
        assert [r.key for r in second] == [r.key for r in first]

    def test_halving_rung_sizes_and_prefetch(self, tmp_path):
        """rung_sizes enumerates exactly the sizes run() will visit,
        and the evaluator's vectorized prefetch golden-verifies each,
        memoising the functional retire count per size."""
        driver = SuccessiveHalving(eta=2, rung0_samples=16, growth=4)
        sizes = driver.rung_sizes(N)
        assert sizes == [16, 64]
        assert driver.rung_sizes(8) == [8]
        ev = make_evaluator(tmp_path)
        counts = ev.prefetch_functional(sizes)
        assert set(counts) == set(sizes)
        assert counts[16] < counts[64]
        # memoised: a repeat call answers without simulating
        assert ev.prefetch_functional(sizes) == counts
        from repro.runner import execute_func_spec, FuncSpec
        serial = execute_func_spec(FuncSpec(BENCH, 16, SEED))
        assert counts[16] == serial.instructions

    def test_make_search(self):
        assert make_search("grid").name == "grid"
        assert make_search("random", n_points=3, seed=5) == \
            RandomSearch(n_points=3, seed=5)
        assert make_search("halving").name == "halving"
        with pytest.raises(ValueError):
            make_search("simulated-annealing")


class TestCLI:
    def run_cli(self, argv, capsys):
        from repro.cli import main
        code = main(argv)
        out = capsys.readouterr()
        return code, out.out, out.err

    @pytest.fixture()
    def space_file(self, tmp_path):
        small = ConfigSpace(predictors=("bimodal-512-512",),
                            asbr=(False, True),
                            bit_capacities=(16,),
                            bdt_updates=("mem", "execute"))
        path = tmp_path / "space.json"
        path.write_text(json.dumps(small.to_dict()))
        return str(path)

    def test_run_then_resume_all_journal_hits(self, tmp_path,
                                              space_file, capsys):
        journal = str(tmp_path / "cli.jsonl")
        argv = ["dse", "run", "--space", space_file,
                "--benchmark", BENCH, "--samples", str(N),
                "--seed", str(SEED), "--journal", journal,
                "--cache-dir", str(tmp_path / "cache")]
        code, out, err = self.run_cli(argv, capsys)
        assert code == 0
        assert "0 simulated" not in err
        assert "Pareto-optimal" in out

        # second invocation must refuse without --resume...
        code, _out, err = self.run_cli(argv, capsys)
        assert code == 2 and "--resume" in err
        # ...and be 100% journal hits with it
        code, out, err = self.run_cli(
            argv + ["--resume", "--expect-no-new"], capsys)
        assert code == 0
        assert "(0 simulated, 3 from journal)" in err

    def test_frontier_and_report_replay_without_simulation(
            self, tmp_path, space_file, capsys):
        journal = str(tmp_path / "cli2.jsonl")
        code, _o, _e = self.run_cli(
            ["dse", "run", "--space", space_file, "--benchmark", BENCH,
             "--samples", str(N), "--seed", str(SEED),
             "--journal", journal, "--no-cache"], capsys)
        assert code == 0
        code, out, _e = self.run_cli(
            ["dse", "frontier", "--journal", journal, "--csv"], capsys)
        assert code == 0
        assert out.splitlines()[0].startswith("label,")
        code, out, _e = self.run_cli(
            ["dse", "report", "--journal", journal], capsys)
        assert code == 0
        assert "evaluations" in out and "frontier" in out

    def test_json_export(self, tmp_path, space_file, capsys):
        journal = str(tmp_path / "cli3.jsonl")
        code, out, _e = self.run_cli(
            ["dse", "run", "--space", space_file, "--benchmark", BENCH,
             "--samples", str(N), "--seed", str(SEED),
             "--journal", journal, "--no-cache", "--json"], capsys)
        assert code == 0
        doc = json.loads(out)
        assert doc["objectives"] == ["speedup", "table_bits", "energy"]
        assert any(p["on_frontier"] for p in doc["points"])


# ----------------------------------------------------------------------
# tolerant evaluation (quarantined points)
# ----------------------------------------------------------------------
BAD_POINT = DesignPoint(predictor_spec="no-such-predictor",
                        with_asbr=False)
GOOD_POINT = DesignPoint(predictor_spec="bimodal-512-512",
                         with_asbr=False)
ADHOC_META = {"space": "adhoc", "benchmark": BENCH,
              "n_samples": N, "seed": SEED}


class TestTolerantEvaluation:
    def test_poisoned_point_quarantined_and_journaled(self, tmp_path):
        from repro.dse.journal import eval_key
        path = os.path.join(str(tmp_path), "j.jsonl")
        with Journal(path).open(ADHOC_META) as journal:
            ev = Evaluator(BENCH, N, SEED, workers=0, journal=journal,
                           tolerant=True)
            results = ev.evaluate([GOOD_POINT, BAD_POINT])
        assert [r.point for r in results] == [GOOD_POINT]
        assert ev.failed == 1
        j = Journal(path).load()
        key = eval_key(BAD_POINT, BENCH, N, SEED)
        assert not j.has(key)               # pending: resume retries
        assert "no-such-predictor" in j.failures[key]["error"]

    def test_resume_retries_quarantined_point(self, tmp_path):
        path = os.path.join(str(tmp_path), "j.jsonl")
        with Journal(path).open(ADHOC_META) as journal:
            ev = Evaluator(BENCH, N, SEED, workers=0, journal=journal,
                           tolerant=True)
            ev.evaluate([BAD_POINT])
            assert ev.failed == 1
        # a resumed exploration sees the point as pending and retries
        with Journal(path).open(ADHOC_META) as journal:
            ev2 = Evaluator(BENCH, N, SEED, workers=0, journal=journal,
                            tolerant=True)
            assert ev2.evaluate([BAD_POINT]) == []
            assert ev2.failed == 1          # retried, failed again
            assert ev2.journal_hits == 0    # never served from journal

    def test_default_evaluator_still_raises(self, tmp_path):
        ev = make_evaluator(tmp_path)
        with pytest.raises(ValueError):
            ev.evaluate([BAD_POINT])
