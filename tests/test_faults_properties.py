"""Property tests for the fault protection models (hypothesis).

The satellite claims, stated as properties over *any* single-bit fault
drawn from the full site list at *any* cycle of the run:

* **ECC**: the run is bit-identical to fault-free — same PipelineStats,
  same architectural result.  Correction happens before any consumer
  sees the flip, so nothing downstream can diverge.
* **parity**: the architectural state is always identical to golden —
  a detected fault only ever suppresses a fold (miss path, predictor
  fallback) or resets a PHT counter; it never commits a wrong path.

Context (program, selection, reference run) is built once at module
scope — hypothesis re-runs the test body hundreds of times and must
not pay the profile/selection cost per example.
"""

from hypothesis import given, settings, strategies as st

from repro.asbr import ASBRUnit, extract_branch_info
from repro.asm import assemble
from repro.faults import FaultInjector, FaultSpec, enumerate_sites
from repro.predictors import make_predictor
from repro.sim.pipeline import PipelineConfig, PipelineSimulator
from tests.conftest import FOLD_DEMO

PROG = assemble(FOLD_DEMO)
GOLDEN_R6 = 555
PREDICTOR = "bimodal-64"


def make_unit():
    info = extract_branch_info(PROG, PROG.labels["br1"])
    return ASBRUnit.from_branch_infos([info], capacity=4,
                                      bdt_update="execute")


def run_with_fault(spec, protection):
    sim = PipelineSimulator(PROG, predictor=make_predictor(PREDICTOR),
                            asbr=make_unit(),
                            config=PipelineConfig(max_cycles=WATCHDOG))
    inj = FaultInjector(spec, protection)
    inj.attach(sim)
    stats = sim.run()
    return sim, stats, inj


_ref = PipelineSimulator(PROG, predictor=make_predictor(PREDICTOR),
                         asbr=make_unit())
REF_STATS = _ref.run()
assert _ref.regs[6] == GOLDEN_R6
WATCHDOG = REF_STATS.cycles * 4 + 1000

#: every targetable bit: live BDT pairs, all BIT entry fields, the PHT
SITES = enumerate_sites(make_unit(), make_predictor(PREDICTOR))

site_and_cycle = st.tuples(st.integers(0, len(SITES) - 1),
                           st.integers(1, REF_STATS.cycles - 1))


@settings(deadline=None, max_examples=80, derandomize=True)
@given(site_and_cycle)
def test_ecc_makes_any_fault_bit_identical(sc):
    site_i, cycle = sc
    sim, stats, inj = run_with_fault(FaultSpec(SITES[site_i], cycle),
                                     "ecc")
    assert stats == REF_STATS
    assert sim.regs[6] == GOLDEN_R6
    assert inj.suppressed_folds == 0


@settings(deadline=None, max_examples=80, derandomize=True)
@given(site_and_cycle)
def test_parity_never_corrupts_architecture(sc):
    site_i, cycle = sc
    sim, stats, inj = run_with_fault(FaultSpec(SITES[site_i], cycle),
                                     "parity")
    # the run always completes (no crash, no hang) and is always right
    assert sim.regs[6] == GOLDEN_R6
    # parity only suppresses: it can cost folds, never invent them
    assert stats.folds_committed <= REF_STATS.folds_committed
    # every suppressed fold was a detection, and detections that are
    # not fold suppressions (counter resets) leave architecture alone
    assert inj.suppressed_folds <= inj.detections


@settings(deadline=None, max_examples=40, derandomize=True)
@given(site_and_cycle)
def test_undetected_parity_fault_is_fully_masked(sc):
    """If parity saw nothing, the run must equal the reference — the
    flip is latent and nothing read it."""
    site_i, cycle = sc
    _sim, stats, inj = run_with_fault(FaultSpec(SITES[site_i], cycle),
                                      "parity")
    if inj.detections == 0:
        assert stats == REF_STATS
