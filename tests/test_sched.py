"""Unit and differential tests for the CFG and list scheduler."""

import pytest

from repro.asm import assemble
from repro.sched import build_cfg, schedule_program, static_fold_distances
from repro.sim.functional import FunctionalSimulator
from repro.testing import random_program


class TestCFG:
    def test_straight_line_single_block(self):
        prog = assemble(".text\nmain:\nnop\nnop\nhalt\n")
        cfg = build_cfg(prog)
        assert len(cfg.blocks) == 1
        assert len(cfg.blocks[0]) == 3

    def test_branch_splits_blocks(self):
        prog = assemble("""
        .text
        main: beqz r1, out
              nop
        out:  halt
        """)
        cfg = build_cfg(prog)
        assert sorted(cfg.blocks) == [0, 1, 2]
        assert sorted(cfg.blocks[0].succs) == [1, 2]

    def test_loop_back_edge(self, count_loop_program):
        cfg = build_cfg(count_loop_program)
        loop_head = count_loop_program.index_of(
            count_loop_program.labels["loop"])
        loop_block = cfg.block_of(loop_head)
        assert loop_block.start in loop_block.succs

    def test_jump_single_successor(self):
        prog = assemble(".text\nmain: j fin\nnop\nfin: halt\n")
        cfg = build_cfg(prog)
        assert cfg.blocks[0].succs == [2]

    def test_halt_terminates(self):
        prog = assemble(".text\nmain: halt\nnop\n")
        cfg = build_cfg(prog)
        assert cfg.blocks[0].succs == []

    def test_preds_are_inverse_of_succs(self, fold_demo_program):
        cfg = build_cfg(fold_demo_program)
        for block in cfg.blocks.values():
            for s in block.succs:
                assert block.start in cfg.blocks[s].preds

    def test_block_of_missing(self):
        prog = assemble(".text\nmain: halt\n")
        with pytest.raises(KeyError):
            build_cfg(prog).block_of(99)

    def test_empty_program(self):
        from repro.asm.program import Program
        cfg = build_cfg(Program())
        assert not cfg.blocks


class TestStaticDistances:
    def test_distance_in_block(self):
        prog = assemble("""
        .text
        main:
            addiu r9, r0, 1
            nop
            nop
            bnez r9, out
        out: halt
        """)
        d = static_fold_distances(prog)
        assert d[prog.pc_of(3)] == 3

    def test_cross_block_is_none(self):
        prog = assemble("""
        .text
        main:
            addiu r9, r0, 1
            beqz r0, mid
        mid:
            bnez r9, out
        out: halt
        """)
        d = static_fold_distances(prog)
        assert d[prog.pc_of(2)] is None

    def test_only_zero_cond_branches(self):
        prog = assemble(".text\nmain: beq r1, r2, out\nout: halt\n")
        assert static_fold_distances(prog) == {}


class TestScheduler:
    def test_hoists_predicate_chain(self):
        prog = assemble("""
        .text
        main:
            li   r1, 1
            li   r2, 2
            li   r3, 3
            addu r4, r1, r2
            subu r9, r1, r3        # predicate producer, right before br
            bnez r9, out
        out: halt
        """)
        before = static_fold_distances(prog)
        after = static_fold_distances(schedule_program(prog))
        pc = prog.pc_of(5)
        assert before[pc] == 1
        assert after[pc] > before[pc]

    def test_respects_dependences(self):
        """Scheduled program must compute identical results."""
        prog = assemble("""
        .text
        main:
            li   r1, 10
            addi r2, r1, 5
            sw   r2, -4(sp)
            lw   r3, -4(sp)
            addu r9, r2, r3
            bnez r9, out
            nop
        out: halt
        """)
        sched = schedule_program(prog)
        a = FunctionalSimulator(prog)
        a.run()
        b = FunctionalSimulator(sched)
        b.run()
        assert a.regs.snapshot() == b.regs.snapshot()
        assert a.memory.snapshot() == b.memory.snapshot()

    def test_memory_order_preserved(self):
        """Two stores to the same address must not swap."""
        prog = assemble("""
        .text
        main:
            li   r1, 1
            li   r2, 2
            sw   r1, -4(sp)
            sw   r2, -4(sp)
            lw   r9, -4(sp)
            bnez r9, out
        out: halt
        """)
        sched = schedule_program(prog)
        sim = FunctionalSimulator(sched)
        sim.run()
        assert sim.regs[9] == 2

    def test_layout_invariants(self, fold_demo_program):
        sched = schedule_program(fold_demo_program)
        assert len(sched.instrs) == len(fold_demo_program.instrs)
        assert sched.labels == fold_demo_program.labels
        assert sched.data == fold_demo_program.data
        assert sched.entry == fold_demo_program.entry
        # terminators stay put
        import repro.sched.cfg as cfgmod
        cfg = cfgmod.build_cfg(fold_demo_program)
        for block in cfg.blocks.values():
            last = block.end - 1
            if fold_demo_program.instrs[last].is_control:
                assert sched.instrs[last].op == \
                    fold_demo_program.instrs[last].op

    def test_address_taken_labels_pinned(self):
        """An instruction named by an address-taken label keeps its
        index (it may be an indirect-jump target)."""
        prog = assemble("""
        .data
        fnptr: .word callee
        .text
        main:
            la   r9, fnptr
            lw   r9, 0(r9)
            jalr r10, r9
            halt
        callee:
            li   r2, 5
            li   r3, 6
            jr   r10
        """)
        sched = schedule_program(prog)
        idx = prog.index_of(prog.labels["callee"])
        assert sched.instrs[idx] == prog.instrs[idx]
        sim = FunctionalSimulator(sched)
        sim.run()
        assert sim.regs[2] == 5

    @pytest.mark.parametrize("seed", range(15))
    def test_random_programs_unchanged_semantics(self, seed):
        """Scheduling any random program preserves its results.

        Memory is compared outside the text segment: the text image
        itself legitimately differs (the instructions were reordered).
        """
        def data_mem(sim, prog):
            return {a: v for a, v in sim.memory.snapshot().items()
                    if not prog.text_base <= a < prog.text_end}

        prog = random_program(seed)
        sched = schedule_program(prog)
        a = FunctionalSimulator(prog)
        na = a.run(max_instructions=100_000)
        b = FunctionalSimulator(sched)
        nb = b.run(max_instructions=100_000)
        assert a.regs.snapshot() == b.regs.snapshot()
        assert data_mem(a, prog) == data_mem(b, sched)
        assert na == nb

    def test_idempotent_on_optimal_code(self):
        """Code already slice-first stays stable under rescheduling."""
        prog = assemble("""
        .text
        main:
            subu r9, r1, r2
            addu r4, r5, r6
            addu r7, r5, r6
            bnez r9, out
        out: halt
        """)
        once = schedule_program(prog)
        twice = schedule_program(once)
        assert [i.render() for i in once.instrs] == \
            [i.render() for i in twice.instrs]
