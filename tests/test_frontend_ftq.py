"""Property-based locks on the fetch target queue.

The FTQ's two safety properties (the decoupled frontend's correctness
hangs on them):

* the queue never runs past an unresolved redirect — once
  ``mark_unresolved`` is called, every push is refused until a squash;
* ``squash`` drains the queue completely and clears the unresolved
  mark, in one step.

A model-based random-ops test checks the FIFO against a plain list.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import FetchTargetQueue, FTQEntry

DEPTH = 4

_ops = st.lists(st.sampled_from(["push", "pop", "mark", "squash"]),
                max_size=120)


def _entry(i):
    return FTQEntry(pc=0x400 + i * 4, fetch_addr=0x400 + i * 4,
                    pred_next_pc=0x404 + i * 4)


@given(ops=_ops)
@settings(max_examples=200, deadline=None)
def test_fifo_matches_model_and_respects_gate(ops):
    ftq = FetchTargetQueue(DEPTH)
    model = []
    unresolved = False
    for i, op in enumerate(ops):
        if op == "push":
            e = _entry(i)
            ok = ftq.push(e)
            should = not unresolved and len(model) < DEPTH
            assert ok == should, \
                "push accepted past an unresolved redirect / full queue"
            if should:
                model.append(e)
        elif op == "pop":
            expected = model.pop(0) if model else None
            assert ftq.pop() is expected
        elif op == "mark":
            ftq.mark_unresolved()
            unresolved = True
        else:
            killed = ftq.squash()
            assert killed == len(model)
            model.clear()
            unresolved = False
        # continuous invariants
        assert len(ftq) == len(model)
        assert ftq.occupancy <= DEPTH
        assert ftq.unresolved == unresolved
        assert ftq.empty == (not model)
        assert ftq.full == (len(model) >= DEPTH)
        assert ftq.head() is (model[0] if model else None)


@given(n_pushes=st.integers(0, 10))
@settings(max_examples=50, deadline=None)
def test_squash_drains_and_clears_unresolved(n_pushes):
    ftq = FetchTargetQueue(DEPTH)
    pushed = sum(ftq.push(_entry(i)) for i in range(n_pushes))
    ftq.mark_unresolved()
    assert not ftq.push(_entry(99)), "queue ran past unresolved redirect"
    assert ftq.squash() == pushed
    assert ftq.empty and not ftq.unresolved
    assert ftq.push(_entry(100)), "squash did not reopen the queue"


def test_pop_is_fifo():
    ftq = FetchTargetQueue(DEPTH)
    entries = [_entry(i) for i in range(3)]
    for e in entries:
        assert ftq.push(e)
    assert [ftq.pop() for _ in range(4)] == entries + [None]


def test_rejects_bad_depth():
    with pytest.raises(ValueError):
        FetchTargetQueue(0)
