"""ASBR folding-unit tests, including the emergent threshold timing.

The paper's feasibility rule (Sections 4-5): a branch folds only when
its predicate-defining instruction is more than *threshold* instructions
ahead, where threshold is 4 (commit-time BDT update), 3 (post-MEM
forwarding) or 2 (post-EX forwarding).  In the pipeline this rule is
*emergent* — nothing checks distances explicitly; the validity counters
produce exactly this behaviour.  These tests pin it down cycle-exactly.
"""

import pytest

from repro.asbr import ASBRUnit, extract_branch_info
from repro.asbr.folding import THRESHOLD_BY_UPDATE
from repro.asm import assemble
from repro.memory.cache import CacheConfig
from repro.predictors import NotTakenPredictor
from repro.sim.functional import FunctionalSimulator
from repro.sim.pipeline import PipelineConfig, PipelineSimulator


def perfect_caches():
    cfg = CacheConfig(miss_penalty=0, writeback_penalty=0)
    return PipelineConfig(icache=cfg, dcache=cfg)


def distance_program(distance, producer="addiu"):
    """Producer of r9, ``distance-1`` fillers, then a branch on r9.

    With an ALU producer r9 becomes 1 (branch taken); with a load
    producer the loaded value is 1 as well.
    """
    if producer == "addiu":
        produce = "addiu r9, r0, 1"
    else:
        produce = "lw r9, 0(r4)"
    fillers = "\n".join("addu r20, r20, r21" for _ in range(distance - 1))
    return assemble("""
.data
one: .word 1
.text
main:
    la   r4, one
    %s
    %s
br:
    bnez r9, taken
    addi r2, r2, 1
taken:
    addi r3, r3, 1
    halt
""" % (produce, fillers))


def run_with_fold(prog, update):
    info = extract_branch_info(prog, prog.labels["br"])
    unit = ASBRUnit.from_branch_infos([info], bdt_update=update)
    sim = PipelineSimulator(prog, predictor=NotTakenPredictor(),
                            asbr=unit, config=perfect_caches())
    stats = sim.run()
    return sim, stats, unit


class TestThresholdRule:
    @pytest.mark.parametrize("update", ["execute", "mem", "commit"])
    @pytest.mark.parametrize("distance", [1, 2, 3, 4, 5, 6])
    def test_alu_producer(self, update, distance):
        prog = distance_program(distance)
        sim, stats, unit = run_with_fold(prog, update)
        threshold = THRESHOLD_BY_UPDATE[update]
        if distance > threshold:
            assert stats.folds_committed == 1, \
                "distance %d > threshold %d must fold" % (distance,
                                                          threshold)
        else:
            assert stats.folds_committed == 0
            assert unit.stats.invalid_fallbacks >= 1
        # architecture is correct either way
        assert sim.regs[3] == 1
        assert sim.regs[2] == 0

    @pytest.mark.parametrize("distance,expect_fold", [(3, False),
                                                      (4, True)])
    def test_load_producer_needs_mem_threshold(self, distance,
                                               expect_fold):
        """Loads deliver at MEM even under the execute update point."""
        prog = distance_program(distance, producer="lw")
        _sim, stats, _unit = run_with_fold(prog, "execute")
        assert (stats.folds_committed == 1) == expect_fold

    def test_paper_figure2_example(self):
        """Three independent instructions between producer and branch
        (distance 4): foldable at thresholds 3 and 2, not at 4."""
        prog = distance_program(4)
        for update, expect in (("execute", True), ("mem", True),
                               ("commit", False)):
            _sim, stats, _ = run_with_fold(prog, update)
            assert (stats.folds_committed == 1) == expect


class TestFoldBehaviour:
    def test_taken_fold_zero_cycles(self):
        """A folded branch costs nothing: same cycles as if the branch
        were deleted and control fell straight to the target."""
        prog = distance_program(5)
        _sim_f, stats_f, _ = run_with_fold(prog, "execute")
        # without ASBR, not-taken predictor mispredicts: +2 cycles, and
        # the branch occupies a slot: +1 cycle
        sim_n = PipelineSimulator(prog, predictor=NotTakenPredictor(),
                                  config=perfect_caches())
        stats_n = sim_n.run()
        assert stats_n.cycles - stats_f.cycles == 3
        assert stats_f.committed == stats_n.committed - 1

    def test_not_taken_fold(self):
        prog = assemble("""
.text
main:
    addiu r9, r0, 0
    nop
    nop
    nop
    nop
br:
    bnez r9, t
    addi r2, r2, 1
t:
    addi r3, r3, 1
    halt
""")
        sim, stats, unit = run_with_fold(prog, "execute")
        assert unit.stats.folded_not_taken == 1
        assert sim.regs[2] == 1      # fall-through executed
        assert sim.regs[3] == 1

    def test_fold_in_loop_every_iteration(self, fold_demo_program):
        prog = fold_demo_program
        f = FunctionalSimulator(prog)
        n = f.run()
        info = extract_branch_info(prog, prog.labels["br1"])
        unit = ASBRUnit.from_branch_infos([info], bdt_update="execute")
        sim = PipelineSimulator(prog, predictor=NotTakenPredictor(),
                                asbr=unit, config=perfect_caches())
        stats = sim.run()
        assert stats.folds_committed == 10
        assert unit.stats.folded_taken == 5
        assert unit.stats.folded_not_taken == 5
        assert sim.regs.snapshot() == f.regs.snapshot()
        assert stats.committed == n - 10

    def test_per_pc_fold_stats(self, fold_demo_program):
        prog = fold_demo_program
        info = extract_branch_info(prog, prog.labels["br1"])
        unit = ASBRUnit.from_branch_infos([info], bdt_update="execute")
        PipelineSimulator(prog, predictor=NotTakenPredictor(), asbr=unit,
                          config=perfect_caches()).run()
        assert unit.stats.per_pc_folds[info.pc] == 10
        assert unit.stats.fold_rate == 1.0


class TestWrongPathInteraction:
    def test_squashed_producer_cancels_cleanly(self):
        """A wrong-path producer of the predicate register must not
        corrupt the BDT (validity-counter cancel path)."""
        prog = assemble("""
.text
main:
    addiu r9, r0, 1
    nop
    nop
    nop
    addiu r8, r0, 1
    bnez r8, good            # taken; not-taken predictor -> wrong path
    addiu r9, r0, 0          # wrong-path producer of r9 (squashed)
good:
    nop
    nop
br:
    bnez r9, t
    addi r2, r2, 1
t:
    addi r3, r3, 1
    halt
""")
        info = extract_branch_info(prog, prog.labels["br"])
        unit = ASBRUnit.from_branch_infos([info], bdt_update="execute")
        sim = PipelineSimulator(prog, predictor=NotTakenPredictor(),
                                asbr=unit, config=perfect_caches())
        stats = sim.run()
        assert sim.regs[9] == 1       # wrong-path write never committed
        assert sim.regs[2] == 0
        assert sim.regs[3] == 1
        assert stats.folds_committed + unit.stats.invalid_fallbacks >= 1


class TestBankSwitching:
    def test_ctlw_switches_banks_end_to_end(self):
        """Two loops, each covered by its own BIT bank, switched by
        committed ctlw writes (paper Section 7)."""
        prog = assemble("""
.text
main:
    ctlw 0
    li   r5, 5
    li   r9, 1
    nop
    nop
loop1:
    addi r5, r5, -1
    nop
    nop
    nop
br1:
    bnez r9, l1t
    addi r2, r2, 1
l1t:
    addu r6, r6, r5
    bnez r5, loop1
    ctlw 1
    li   r5, 5
    li   r9, 0
    nop
    nop
loop2:
    addi r5, r5, -1
    nop
    nop
    nop
br2:
    beqz r9, l2t
    addi r3, r3, 1
l2t:
    addu r7, r7, r5
    bnez r5, loop2
    halt
""")
        from repro.asbr.bit import BankedBIT
        bank = BankedBIT(num_banks=2, capacity=4)
        bank.load_bank(0, [extract_branch_info(prog, prog.labels["br1"])])
        bank.load_bank(1, [extract_branch_info(prog, prog.labels["br2"])])
        unit = ASBRUnit(bank, bdt_update="execute")
        f = FunctionalSimulator(prog)
        f.run()
        sim = PipelineSimulator(prog, predictor=NotTakenPredictor(),
                                asbr=unit, config=perfect_caches())
        stats = sim.run()
        assert sim.regs.snapshot() == f.regs.snapshot()
        assert unit.bit.switches >= 1
        # both loops' branches folded in their active-bank phases
        assert stats.folds_committed == 10


class TestUnitAPI:
    def test_bad_update_point(self):
        from repro.asbr.bit import BankedBIT
        with pytest.raises(ValueError):
            ASBRUnit(BankedBIT(), bdt_update="decode")

    def test_threshold_property(self):
        for update, thr in THRESHOLD_BY_UPDATE.items():
            unit = ASBRUnit.from_branch_infos([], bdt_update=update)
            assert unit.threshold == thr

    def test_state_bits_composition(self):
        unit = ASBRUnit.from_branch_infos([])
        assert unit.state_bits == unit.bit.state_bits + unit.bdt.state_bits

    def test_miss_returns_none_without_stats(self):
        unit = ASBRUnit.from_branch_infos([])
        assert unit.try_fold(0x400000) is None
        assert unit.stats.attempts == 0
