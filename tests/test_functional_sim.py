"""Unit tests for the functional (golden) simulator."""

import pytest

from repro.asm import assemble
from repro.asm.program import STACK_TOP
from repro.isa.alu import to_unsigned
from repro.sim.functional import (
    FunctionalSimulator,
    SimulationError,
    collect_branch_trace,
)


def run(src, **kw):
    sim = FunctionalSimulator(assemble(".text\nmain:\n" + src))
    sim.run(**kw)
    return sim


class TestArithmetic:
    def test_simple_sum(self):
        sim = run("li r1, 2\nli r2, 3\naddu r3, r1, r2\nhalt\n")
        assert sim.regs[3] == 5

    def test_negative_values(self):
        sim = run("li r1, -4\nli r2, 3\nadd r3, r1, r2\nhalt\n")
        assert sim.regs[3] == to_unsigned(-1)

    def test_lui_ori_compose(self):
        sim = run("lui r1, 0x1234\nori r1, r1, 0x5678\nhalt\n")
        assert sim.regs[1] == 0x12345678

    def test_slt(self):
        sim = run("li r1, -1\nslt r2, r1, r0\nsltu r3, r1, r0\nhalt\n")
        assert sim.regs[2] == 1
        assert sim.regs[3] == 0

    def test_writes_to_r0_dropped(self):
        sim = run("li r0, 55\nhalt\n")
        assert sim.regs[0] == 0

    def test_variable_shift(self):
        sim = run("li r1, 1\nli r2, 4\nsllv r3, r1, r2\nhalt\n")
        assert sim.regs[3] == 16


class TestMemoryOps:
    def test_store_load_word(self):
        sim = run("li r1, 0x1234\nsw r1, -8(sp)\nlw r2, -8(sp)\nhalt\n")
        assert sim.regs[2] == 0x1234

    def test_lh_sign_extends(self):
        sim = run("li r1, 0x8000\nsh r1, -8(sp)\nlh r2, -8(sp)\n"
                  "lhu r3, -8(sp)\nhalt\n")
        assert sim.regs[2] == 0xFFFF8000
        assert sim.regs[3] == 0x8000

    def test_byte_ops(self):
        sim = run("li r1, 0x1FF\nsb r1, -8(sp)\nlbu r2, -8(sp)\n"
                  "lb r3, -8(sp)\nhalt\n")
        assert sim.regs[2] == 0xFF
        assert sim.regs[3] == 0xFFFFFFFF

    def test_data_segment_loaded(self):
        prog = assemble("""
        .data
        v: .word 77
        .text
        main: la r1, v
              lw r2, 0(r1)
              halt
        """)
        sim = FunctionalSimulator(prog)
        sim.run()
        assert sim.regs[2] == 77

    def test_sp_initialised(self):
        sim = FunctionalSimulator(assemble(".text\nhalt\n"))
        assert sim.regs[29] == STACK_TOP


class TestControlFlow:
    def test_loop_sum(self, count_loop_program):
        sim = FunctionalSimulator(count_loop_program)
        sim.run()
        assert sim.regs[5] == 55

    def test_branch_not_taken_falls_through(self):
        sim = run("li r1, 1\nbeqz r1, skip\nli r2, 9\nskip: halt\n")
        assert sim.regs[2] == 9

    def test_jal_jr_call(self):
        prog = assemble("""
        .text
        main:
            jal fn
            addi r2, r2, 1
            halt
        fn:
            li r2, 10
            jr ra
        """)
        sim = FunctionalSimulator(prog)
        sim.run()
        assert sim.regs[2] == 11
        assert sim.regs[31] == prog.pc_of(1)

    def test_jalr_links(self):
        prog = assemble("""
        .text
        main:
            la r9, fn
            jalr r10, r9
            halt
        fn:
            li r2, 5
            jr r10
        """)
        sim = FunctionalSimulator(prog)
        sim.run()
        assert sim.regs[2] == 5

    def test_two_register_beq(self):
        sim = run("li r1, 4\nli r2, 4\nbeq r1, r2, eq\nli r3, 1\n"
                  "eq: halt\n")
        assert sim.regs[3] == 0


class TestHaltAndErrors:
    def test_halt_stops(self):
        sim = run("halt\nli r1, 1\n")
        assert sim.halted
        assert sim.regs[1] == 0

    def test_step_after_halt_raises(self):
        sim = run("halt\n")
        with pytest.raises(SimulationError):
            sim.step()

    def test_budget_exhausted(self):
        with pytest.raises(SimulationError, match="budget"):
            run("spin: b spin\nhalt\n", max_instructions=100)

    def test_instructions_retired_counted(self):
        sim = run("nop\nnop\nhalt\n")
        assert sim.instructions_retired == 3

    def test_ctl_writes_recorded(self):
        sim = run("ctlw 3\nctlw 1\nhalt\n")
        assert sim.ctl_writes == [3, 1]


class TestBranchOutcome:
    def test_matches_execution(self, fold_demo_program):
        sim = FunctionalSimulator(fold_demo_program)
        while not sim.halted:
            instr = sim.program.instr_at(sim.pc)
            if instr.is_branch:
                predicted = sim.branch_outcome(instr)
                pc = sim.pc
                sim.execute(instr)
                actually_taken = sim.pc == instr.branch_target(pc)
                if instr.branch_target(pc) != pc + 4:
                    assert predicted == actually_taken
            else:
                sim.execute(instr)

    def test_rejects_non_branch(self):
        sim = FunctionalSimulator(assemble(".text\nhalt\n"))
        from repro.isa.instruction import Instruction
        with pytest.raises(ValueError):
            sim.branch_outcome(Instruction("add"))


class TestTraceCollection:
    def test_counts_and_outcomes(self, count_loop_program):
        trace = collect_branch_trace(count_loop_program)
        assert len(trace) == 10            # bnez executed 10 times
        assert sum(r.taken for r in trace) == 9
        assert not trace[-1].taken

    def test_records_target(self, count_loop_program):
        trace = collect_branch_trace(count_loop_program)
        loop_pc = count_loop_program.labels["loop"]
        assert all(r.target == loop_pc for r in trace)

    def test_observer_hook(self, count_loop_program):
        seen = []
        sim = FunctionalSimulator(count_loop_program)
        sim.run(observer=lambda pc, instr, nxt: seen.append(pc))
        assert len(seen) == sim.instructions_retired
