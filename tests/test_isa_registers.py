"""Unit tests for repro.isa.registers."""

import pytest

from repro.isa.registers import (
    NUM_REGS,
    REG_ALIASES,
    RegisterFile,
    reg_name,
    reg_num,
)


class TestRegNum:
    def test_numeric_names(self):
        for i in range(NUM_REGS):
            assert reg_num("r%d" % i) == i

    def test_dollar_numeric(self):
        assert reg_num("$5") == 5

    def test_conventional_aliases(self):
        assert reg_num("zero") == 0
        assert reg_num("at") == 1
        assert reg_num("v0") == 2
        assert reg_num("a0") == 4
        assert reg_num("t0") == 8
        assert reg_num("s0") == 16
        assert reg_num("t8") == 24
        assert reg_num("k0") == 26
        assert reg_num("gp") == 28
        assert reg_num("sp") == 29
        assert reg_num("fp") == 30
        assert reg_num("ra") == 31

    def test_dollar_aliases(self):
        assert reg_num("$sp") == 29
        assert reg_num("$ra") == 31

    def test_case_and_whitespace(self):
        assert reg_num("  T3 ") == 11

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            reg_num("r32")
        with pytest.raises(KeyError):
            reg_num("bogus")

    def test_alias_table_is_total(self):
        covered = set(REG_ALIASES.values())
        assert covered == set(range(NUM_REGS))


class TestRegName:
    def test_roundtrip(self):
        for i in range(NUM_REGS):
            assert reg_num(reg_name(i)) == i

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            reg_name(32)
        with pytest.raises(ValueError):
            reg_name(-1)


class TestRegisterFile:
    def test_initial_zero(self):
        rf = RegisterFile()
        assert all(rf[i] == 0 for i in range(NUM_REGS))

    def test_write_read(self):
        rf = RegisterFile()
        rf.write(5, 1234)
        assert rf.read(5) == 1234
        rf[6] = 99
        assert rf[6] == 99

    def test_r0_hardwired(self):
        rf = RegisterFile()
        rf.write(0, 42)
        assert rf[0] == 0
        rf[0] = 7
        assert rf[0] == 0

    def test_truncates_to_32_bits(self):
        rf = RegisterFile()
        rf.write(1, 0x1_2345_6789)
        assert rf[1] == 0x2345_6789
        rf.write(2, -1)
        assert rf[2] == 0xFFFFFFFF

    def test_snapshot_is_a_copy(self):
        rf = RegisterFile()
        rf.write(3, 5)
        snap = rf.snapshot()
        rf.write(3, 6)
        assert snap[3] == 5
        assert rf[3] == 6

    def test_load_restores(self):
        rf = RegisterFile()
        rf.write(4, 77)
        snap = rf.snapshot()
        rf2 = RegisterFile()
        rf2.load(snap)
        assert rf2[4] == 77

    def test_load_forces_r0_zero(self):
        values = [9] * NUM_REGS
        rf = RegisterFile()
        rf.load(values)
        assert rf[0] == 0
        assert rf[1] == 9

    def test_load_wrong_length(self):
        with pytest.raises(ValueError):
            RegisterFile().load([0] * 3)

    def test_repr_mentions_nonzero(self):
        rf = RegisterFile()
        rf.write(7, 3)
        assert "r7=3" in repr(rf)
