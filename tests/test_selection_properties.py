"""Property tests for benefit-ranked BIT selection (hypothesis).

The DSE engine trusts two monotonicity contracts when it prunes the
space: tightening any selection knob (fold-fraction floor, BDT update
strictness, execution-count floor) can only shrink the selected set,
and capping BIT capacity returns exactly the top-N of the uncapped
benefit ranking.  These properties are exercised against one fixed
multi-branch program whose predicate-definition distances span the
fold thresholds (1, 2, 3, 5), so every BDT update point draws a
different candidate line.
"""

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.predictors import NotTakenPredictor, evaluate_on_trace
from repro.profiling import BranchProfiler, select_branches
from repro.sim.functional import collect_branch_trace

SRC = """
.data
arr: .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8
.text
main:
    la   r4, arr
    li   r5, 12
    li   r6, 0
loop:
    lw   r2, 0(r4)
    andi r9, r2, 1
    andi r10, r2, 2
    addi r4, r4, 4
    addu r6, r6, r2
br_d5:
    bnez r9, t1           # predicate defined 5 back: folds anywhere
t1:
    addu r6, r6, r0
br_d6:
    bnez r10, t2          # even further back
t2:
    addu r6, r6, r0
    andi r11, r2, 4
br_d1:
    bnez r11, t3          # distance 1: folds nowhere
t3:
    addu r6, r6, r0
    andi r12, r2, 3
    addu r6, r6, r0
br_d2:
    bnez r12, t4          # distance 2: folds at execute only
t4:
    addu r6, r6, r0
    andi r13, r2, 8
    addu r6, r6, r0
    addu r6, r6, r0
br_d3:
    bnez r13, t5          # distance 3: folds at execute and mem
t5:
    addu r6, r6, r0
    addi r5, r5, -1
    bnez r5, loop
    halt
"""

GENEROUS = 64          # capacity that never truncates this program


@functools.lru_cache(maxsize=1)
def profiled():
    prog = assemble(SRC)
    profile = BranchProfiler().profile(prog)
    trace = collect_branch_trace(prog)
    accuracy = evaluate_on_trace(NotTakenPredictor(), trace)
    return prog, profile, accuracy


def select(**kw):
    _prog, profile, accuracy = profiled()
    kw.setdefault("min_count", 4)
    return select_branches(profile, accuracy, **kw)


def test_fixture_spans_the_thresholds():
    """Sanity: the update points really draw different lines here."""
    by_update = {u: select(bdt_update=u, bit_capacity=GENEROUS).pcs
                 for u in ("execute", "mem", "commit")}
    assert by_update["commit"] < by_update["mem"] < by_update["execute"]


@settings(max_examples=25, deadline=None)
@given(f1=st.floats(0.0, 1.0), f2=st.floats(0.0, 1.0),
       capacity=st.integers(1, 8))
def test_raising_fold_floor_never_grows_selection(f1, f2, capacity):
    lo, hi = sorted((f1, f2))
    eased = select(min_fold_fraction=lo, bit_capacity=capacity)
    strict = select(min_fold_fraction=hi, bit_capacity=capacity)
    assert len(strict.selected) <= len(eased.selected)


@settings(max_examples=25, deadline=None)
@given(f1=st.floats(0.0, 1.0), f2=st.floats(0.0, 1.0),
       update=st.sampled_from(["execute", "mem", "commit"]))
def test_fold_floor_filters_monotonically(f1, f2, update):
    """At generous capacity the strict set is a subset, and every
    survivor really clears the floor."""
    lo, hi = sorted((f1, f2))
    eased = select(min_fold_fraction=lo, bit_capacity=GENEROUS,
                   bdt_update=update)
    strict = select(min_fold_fraction=hi, bit_capacity=GENEROUS,
                    bdt_update=update)
    assert strict.pcs <= eased.pcs
    for s in strict.selected:
        assert s.fold_fraction >= hi


@settings(max_examples=25, deadline=None)
@given(floor=st.floats(0.0, 1.0))
def test_stricter_update_point_shrinks_candidates(floor):
    """commit demands a longer predicate distance than mem than
    execute, so selections nest (the paper's threshold-reduction
    story, table-side)."""
    sets = [select(bdt_update=u, min_fold_fraction=floor,
                   bit_capacity=GENEROUS).pcs
            for u in ("commit", "mem", "execute")]
    assert sets[0] <= sets[1] <= sets[2]


@settings(max_examples=25, deadline=None)
@given(capacity=st.integers(1, 8),
       update=st.sampled_from(["execute", "mem", "commit"]))
def test_capacity_keeps_exactly_the_top_n(capacity, update):
    full = select(bit_capacity=GENEROUS, bdt_update=update)
    capped = select(bit_capacity=capacity, bdt_update=update)
    want = [s.pc for s in full.selected][:capacity]
    assert [s.pc for s in capped.selected] == want
    # and whatever fell off the end is rejected for capacity, loudly
    for s in full.selected[capacity:]:
        assert "capacity" in capped.rejected[s.pc]


@settings(max_examples=25, deadline=None)
@given(c1=st.integers(1, 40), c2=st.integers(1, 40))
def test_raising_min_count_never_admits_branches(c1, c2):
    lo, hi = sorted((c1, c2))
    eased = select(min_count=lo, bit_capacity=GENEROUS)
    strict = select(min_count=hi, bit_capacity=GENEROUS)
    assert strict.pcs <= eased.pcs
    for s in strict.selected:
        assert s.stats.count >= hi


@settings(max_examples=25, deadline=None)
@given(capacity=st.integers(1, 8),
       floor=st.floats(0.0, 1.0),
       update=st.sampled_from(["execute", "mem", "commit"]),
       penalty=st.integers(0, 8))
def test_selection_is_ranked_and_within_capacity(capacity, floor,
                                                 update, penalty):
    sel = select(bit_capacity=capacity, min_fold_fraction=floor,
                 bdt_update=update, mispredict_penalty=penalty)
    assert len(sel.selected) <= capacity
    benefits = [s.benefit for s in sel.selected]
    assert benefits == sorted(benefits, reverse=True)
    # deterministic: same knobs, same selection
    again = select(bit_capacity=capacity, min_fold_fraction=floor,
                   bdt_update=update, mispredict_penalty=penalty)
    assert [s.pc for s in again.selected] == [s.pc for s in sel.selected]
