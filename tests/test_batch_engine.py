"""Lockstep batch engine vs. the serial functional simulator.

The contract under test is *exact per-lane equivalence*: for every lane
``i``, ``run_batch(program, mems)[i]`` must equal the final state of a
serial ``FunctionalSimulator`` run over ``mems[i]`` — registers,
touched-memory snapshot, PC, halt flag, retire count, ``ctl_writes``,
and, for trap/budget lanes, the same exception type and message.  The
hypothesis properties draw divergent per-lane inputs (different stream
lengths and seeds force early-halting lanes and min-PC regrouping) and
random programs with per-lane memory perturbations; the deterministic
cases pin the trap paths (misaligned access, PC off the text segment,
instruction budget) that random draws hit only occasionally.
"""

import copy

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.sim.batch import run_batch
from repro.sim.functional import FunctionalSimulator
from repro.testing import random_program
from repro.workloads import get_workload, speech_like


def _serial_state(program, mem, max_instructions):
    """Final architectural state of a serial run, as comparable data."""
    sim = FunctionalSimulator(program, copy.deepcopy(mem))
    err = None
    try:
        sim.run(max_instructions=max_instructions)
    except Exception as exc:   # noqa: BLE001 — mirrored verbatim
        err = (type(exc).__name__, str(exc))
    return ([sim.regs[r] for r in range(32)], sim.memory.snapshot(),
            sim.pc, sim.halted, sim.instructions_retired,
            sim.ctl_writes, err)


def _assert_lanes_equal(program, mems, max_instructions=200_000_000):
    res = run_batch(program, mems, max_instructions=max_instructions)
    assert len(res) == len(mems)
    total = 0
    for i, mem in enumerate(mems):
        regs, snap, pc, halted, retired, ctl, err = _serial_state(
            program, mem, max_instructions)
        lane = res[i]
        assert lane.regs == regs, "lane %d registers diverged" % i
        assert lane.memory == snap, "lane %d memory diverged" % i
        assert lane.pc == pc, "lane %d pc diverged" % i
        assert lane.halted == halted, "lane %d halt flag diverged" % i
        assert lane.instructions_retired == retired, \
            "lane %d retire count diverged" % i
        assert lane.ctl_writes == ctl, "lane %d ctl_writes diverged" % i
        assert lane.error == err, "lane %d error diverged" % i
        total += retired
    assert res.total_retired == total
    return res


# ----------------------------------------------------------------------
# hypothesis: divergent codec lanes  ≡  N serial runs
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(lanes=st.lists(st.tuples(st.integers(1, 40), st.integers(0, 99)),
                      min_size=1, max_size=8),
       name=st.sampled_from(["adpcm_enc", "adpcm_dec", "g721_enc"]))
def test_batch_equals_serial_codec_lanes(lanes, name):
    wl = get_workload(name)
    mems = [wl.build_memory(wl.input_stream(speech_like(n, seed=s)))
            for n, s in lanes]
    _assert_lanes_equal(wl.program, mems)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(lanes=st.lists(st.tuples(st.integers(1, 30), st.integers(0, 99)),
                      min_size=2, max_size=6),
       budget=st.integers(200, 4000))
def test_batch_equals_serial_budget_lanes(lanes, budget):
    """Mixed outcomes: short lanes halt inside the budget, long lanes
    trap on it with the serial engine's exact message — both kinds in
    one batch, retired counts differing per lane."""
    wl = get_workload("adpcm_enc")
    mems = [wl.build_memory(wl.input_stream(speech_like(n, seed=s)))
            for n, s in lanes]
    _assert_lanes_equal(wl.program, mems, max_instructions=budget)


# ----------------------------------------------------------------------
# hypothesis: random programs, per-lane memory perturbations
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 500),
       words=st.dictionaries(
           st.integers(0, (1 << 16) - 1).map(lambda w: w * 4),
           st.integers(0, 0xFFFFFFFF), max_size=4),
       nlanes=st.integers(1, 4))
def test_batch_equals_serial_random_programs(seed, words, nlanes):
    """Random instruction mixes; lane 0 gets a perturbed initial
    memory, so loads diverge the lanes mid-program."""
    from repro.memory.main_memory import MainMemory
    prog = random_program(seed, units=14)
    mems = []
    for lane in range(nlanes):
        m = MainMemory()
        if lane == 0:
            m.load_words(words.items())
        mems.append(m)
    _assert_lanes_equal(prog, mems, max_instructions=50_000)


# ----------------------------------------------------------------------
# deterministic trap paths
# ----------------------------------------------------------------------
_TRAP_SPLIT = """
.data
buf: .word 0x11223344, 0x55667788
.text
main:
    lw   r2, 0(r0)      # per-lane memory word at 0: divergent address
    la   r4, buf
    lw   r6, 0(r2)
    lw   r5, 0(r4)
    halt
"""


def test_misaligned_lane_splits_from_aligned():
    """One batch, split fates at ONE load: the middle lane's address is
    misaligned and traps with the serial message while its neighbours
    complete the same instruction and run on to halt."""
    from repro.memory.main_memory import MainMemory
    prog = assemble(_TRAP_SPLIT)
    mems = []
    for addr in (0, 2, 4):
        m = MainMemory()
        m.write_word(0, addr)
        mems.append(m)
    res = _assert_lanes_equal(prog, mems)
    assert res[1].error is not None and not res[1].halted
    assert res[0].halted and res[2].halted


_MISALIGNED = """
.text
main:
    li   r2, %d
    lw   r6, 0(r2)
    halt
"""


@pytest.mark.parametrize("addr", [0, 2, 4, 5])
def test_misaligned_load_matches_serial(addr):
    from repro.memory.main_memory import MainMemory
    prog = assemble(_MISALIGNED % addr)
    _assert_lanes_equal(prog, [MainMemory() for _ in range(3)])


_BAD_JUMP = """
.text
main:
    li   r2, 0x100
    jr   r2
"""


def test_fetch_off_text_matches_serial():
    from repro.memory.main_memory import MainMemory
    prog = assemble(_BAD_JUMP)
    res = _assert_lanes_equal(prog, [MainMemory() for _ in range(2)])
    assert res[0].error is not None
    assert res[0].error[0] == "ValueError"


_HALFWORD = """
.data
vals: .word 0x80FF7F01, 0xFFFE8000
.text
main:
    la   r4, vals
    lb   r5, 0(r4)
    lb   r6, 1(r4)
    lbu  r7, 3(r4)
    lh   r8, 4(r4)
    lhu  r9, 6(r4)
    sh   r5, 8(r4)
    sb   r6, 11(r4)
    halt
"""


def test_subword_access_matches_serial():
    """Sign extension, zero extension and sub-word RMW stores."""
    from repro.memory.main_memory import MainMemory
    prog = assemble(_HALFWORD)
    _assert_lanes_equal(prog, [MainMemory() for _ in range(2)])


# ----------------------------------------------------------------------
# workload-level batch helper
# ----------------------------------------------------------------------
def test_run_functional_batch_matches_serial_and_golden():
    wl = get_workload("adpcm_enc")
    pcms = [speech_like(20 + 9 * s, seed=s) for s in range(4)]
    batch = wl.run_functional_batch(pcms)
    for pcm, b in zip(pcms, batch):
        ser = wl.run_functional(pcm)
        assert b.outputs == ser.outputs
        assert b.instructions == ser.instructions
        assert b.outputs == wl.golden_output(pcm)


def test_empty_batch():
    wl = get_workload("adpcm_enc")
    res = run_batch(wl.program, [])
    assert len(res) == 0 and res.total_retired == 0
