"""Unit tests for the fault model and injector (repro.faults).

The vehicle is conftest's FOLD_DEMO: one fold-friendly branch
(``beqz r9``), golden architectural result r6 == 555.  Every protection
claim from :mod:`repro.faults.inject` is checked against it:

* unprotected direction-bit flips produce real SDC (wrong r6);
* parity never lets a wrong-path fold commit — architecture is always
  correct, detections/suppressions are counted;
* ECC runs are cycle-for-cycle identical to the fault-free reference;
* the fault-free path is untouched (zero-overhead: no instance tick).
"""

import pytest

from repro.asbr import ASBRUnit, extract_branch_info
from repro.asm import assemble
from repro.faults import (
    BDT_CNT,
    BDT_DIR,
    BIT_FIELD,
    PRED_PHT,
    STRUCTURES,
    FaultInducedError,
    FaultInjector,
    FaultSite,
    FaultSpec,
    enumerate_sites,
    sample_campaign,
    sites_by_structure,
)
from repro.faults.model import CONDITION_ORDER
from repro.predictors import make_predictor
from repro.sim.pipeline import PipelineConfig, PipelineSimulator
from tests.conftest import FOLD_DEMO

PROG = assemble(FOLD_DEMO)
GOLDEN_R6 = 555
PREDICTOR = "bimodal-64"


def make_unit():
    info = extract_branch_info(PROG, PROG.labels["br1"])
    return ASBRUnit.from_branch_infos([info], capacity=4,
                                      bdt_update="execute")


def run_demo(spec=None, protection="none", max_cycles=None):
    config = (PipelineConfig(max_cycles=max_cycles)
              if max_cycles else PipelineConfig())
    sim = PipelineSimulator(PROG, predictor=make_predictor(PREDICTOR),
                            asbr=make_unit(), config=config)
    inj = None
    if spec is not None:
        inj = FaultInjector(spec, protection)
        inj.attach(sim)
    stats = sim.run()
    return sim, stats, inj


_REF_SIM, REF_STATS, _ = run_demo()
assert _REF_SIM.regs[6] == GOLDEN_R6
assert REF_STATS.folds_committed > 0
WATCHDOG = REF_STATS.cycles * 4 + 1000

#: the demo's single live BDT bit: ``beqz r9`` reads (r9, EQZ)
LIVE_DIR = FaultSite(BDT_DIR, "EQZ", 9, 0)


# ----------------------------------------------------------------------
# site enumeration
# ----------------------------------------------------------------------
def test_enumerate_sites_sorted_and_stable():
    a = enumerate_sites(make_unit(), make_predictor(PREDICTOR))
    b = enumerate_sites(make_unit(), make_predictor(PREDICTOR))
    assert a == b
    assert a == sorted(a)
    assert set(sites_by_structure(a)) == set(STRUCTURES)


def test_live_only_restricts_bdt_to_consumed_pairs():
    live = sites_by_structure(enumerate_sites(make_unit()))
    assert live[BDT_DIR] == [LIVE_DIR]          # only (r9, EQZ) is read
    assert {s.index for s in live[BDT_CNT]} == {9}

    unit = make_unit()
    full = sites_by_structure(enumerate_sites(unit, live_only=False))
    assert len(full[BDT_DIR]) == unit.bdt.num_regs * len(CONDITION_ORDER)
    assert len(full[BDT_CNT]) == unit.bdt.num_regs * unit.bdt.counter_bits
    # BIT sites do not depend on liveness
    assert full[BIT_FIELD] == live[BIT_FIELD]


def test_enumerate_predictor_only():
    pred = make_predictor(PREDICTOR)
    sites = enumerate_sites(predictor=pred)
    assert sites
    assert all(s.structure == PRED_PHT for s in sites)
    assert len(sites) == len(pred._counters) * 2


def test_predictor_without_pht_yields_no_sites():
    assert enumerate_sites(predictor=make_predictor("not-taken")) == []


# ----------------------------------------------------------------------
# campaign sampling
# ----------------------------------------------------------------------
def test_sample_campaign_deterministic_and_bounded():
    sites = enumerate_sites(make_unit(), make_predictor(PREDICTOR))
    a = sample_campaign(sites, 16, REF_STATS.cycles, seed=5)
    b = sample_campaign(sites, 16, REF_STATS.cycles, seed=5)
    assert a == b
    assert a == sorted(a)
    assert len(a) == 16
    assert len(set(a)) == 16                    # without replacement
    assert all(1 <= s.cycle < REF_STATS.cycles for s in a)
    assert sample_campaign(sites, 16, REF_STATS.cycles, seed=6) != a


def test_sample_campaign_stratifies_across_structures():
    sites = enumerate_sites(make_unit(), make_predictor(PREDICTOR))
    plan = sample_campaign(sites, 8, REF_STATS.cycles, seed=1)
    assert {s.site.structure for s in plan} == set(STRUCTURES)


def test_sample_campaign_edge_cases():
    sites = enumerate_sites(make_unit())
    assert sample_campaign(sites, 0, 100, seed=1) == []
    assert sample_campaign([], 8, 100, seed=1) == []
    with pytest.raises(ValueError):
        sample_campaign(sites, -1, 100, seed=1)


# ----------------------------------------------------------------------
# injector mechanics
# ----------------------------------------------------------------------
def test_unknown_protection_rejected():
    with pytest.raises(ValueError):
        FaultInjector(FaultSpec(LIVE_DIR, 5), protection="tmr")


def test_zero_overhead_until_attached():
    sim = PipelineSimulator(PROG, predictor=make_predictor(PREDICTOR),
                            asbr=make_unit())
    assert "tick" not in sim.__dict__           # class fast path intact
    FaultInjector(FaultSpec(LIVE_DIR, 5)).attach(sim)
    assert "tick" in sim.__dict__               # this instance only


def test_injector_fires_once_and_records_event():
    _sim, _stats, inj = run_demo(FaultSpec(LIVE_DIR, 5), "ecc",
                                 max_cycles=WATCHDOG)
    assert inj.fired
    kinds = [k for _c, k, _l in inj.events]
    assert kinds[0] == "fault_inject"
    assert kinds.count("fault_inject") == 1


def test_fault_beyond_run_length_never_fires():
    _sim, stats, inj = run_demo(FaultSpec(LIVE_DIR, REF_STATS.cycles * 2))
    assert not inj.fired
    assert stats == REF_STATS                   # arming is invisible


# ----------------------------------------------------------------------
# protection semantics on the live direction bit, across every cycle
# ----------------------------------------------------------------------
def _sweep(protection):
    """Outcome of flipping the live dir bit at every cycle of the run."""
    wrong, crashed, identical = 0, 0, 0
    for cycle in range(1, REF_STATS.cycles):
        spec = FaultSpec(LIVE_DIR, cycle)
        try:
            sim, stats, inj = run_demo(spec, protection,
                                       max_cycles=WATCHDOG)
        except Exception:
            crashed += 1
            continue
        if sim.regs[6] != GOLDEN_R6:
            wrong += 1
        elif stats == REF_STATS:
            identical += 1
    return wrong, crashed, identical


def test_unprotected_dir_flips_cause_real_sdc():
    wrong, crashed, _ = _sweep("none")
    assert wrong + crashed > 0                  # the exposure is real


def test_parity_never_commits_a_wrong_path_fold():
    wrong, crashed, _ = _sweep("parity")
    assert wrong == 0 and crashed == 0


def test_ecc_is_always_bit_identical():
    wrong, crashed, identical = _sweep("ecc")
    assert wrong == 0 and crashed == 0
    assert identical == REF_STATS.cycles - 1    # every single cycle


def test_parity_detection_suppresses_folds():
    hits = []
    for cycle in range(1, REF_STATS.cycles):
        _sim, stats, inj = run_demo(FaultSpec(LIVE_DIR, cycle), "parity",
                                    max_cycles=WATCHDOG)
        if inj.suppressed_folds:
            hits.append((stats, inj))
    assert hits                                 # some read saw the flip
    for stats, inj in hits:
        assert inj.detections == inj.suppressed_folds
        assert stats.folds_committed < REF_STATS.folds_committed


def test_ecc_corrections_counted():
    fired = [run_demo(FaultSpec(LIVE_DIR, c), "ecc",
                      max_cycles=WATCHDOG)[2]
             for c in range(1, REF_STATS.cycles)]
    assert any(i.corrections for i in fired)
    for inj in fired:
        assert inj.suppressed_folds == 0        # ecc never suppresses


# ----------------------------------------------------------------------
# BIT-entry corruption (white-box)
# ----------------------------------------------------------------------
def bit_entry(unit):
    return [e for bank in unit.bit.banks for e in bank][0]


def test_tag_corruption_rekeys_entry():
    unit = make_unit()
    e = bit_entry(unit)
    old_pc = e.pc
    inj = FaultInjector(FaultSpec(FaultSite(BIT_FIELD, "tag", old_pc, 5),
                                  1))
    inj._corrupt_bit_entry(unit.bit, inj.spec.site)
    assert unit.bit.lookup(old_pc) is None      # original PC misses now
    assert unit.bit.lookup(old_pc ^ (1 << 5)) is e


def test_corrupt_di_cond_can_be_undecodable():
    unit = make_unit()
    e = bit_entry(unit)
    e.condition = CONDITION_ORDER[5]            # 5 ^ (1<<1) = 7: invalid
    site = FaultSite(BIT_FIELD, "di_cond", e.pc, 1)
    inj = FaultInjector(FaultSpec(site, 1))
    with pytest.raises(FaultInducedError):
        inj._corrupt_bit_entry(unit.bit, site)


def test_corrupt_absent_entry_is_masked():
    unit = make_unit()
    site = FaultSite(BIT_FIELD, "bta", 0xdead00, 4)   # no such entry
    inj = FaultInjector(FaultSpec(site, 1))
    inj._corrupt_bit_entry(unit.bit, site)      # must not raise


def test_site_labels_are_distinct():
    sites = enumerate_sites(make_unit(), make_predictor(PREDICTOR))
    labels = [s.label() for s in sites]
    assert len(set(labels)) == len(labels)
