"""Differential tests: assembly codecs vs golden models, bit-for-bit."""

import pytest

from repro.predictors import make_predictor
from repro.sched import schedule_program
from repro.workloads import WORKLOAD_NAMES, get_workload
from repro.workloads.loader import MAX_SAMPLES


class TestRegistry:
    def test_names(self):
        assert set(WORKLOAD_NAMES) >= {"adpcm_enc", "adpcm_dec",
                                       "g721_enc", "g721_dec"}

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_workload("mp3_enc")

    def test_workloads_cached(self):
        assert get_workload("adpcm_enc") is get_workload("adpcm_enc")

    def test_programs_assemble(self):
        for name in WORKLOAD_NAMES:
            prog = get_workload(name).program
            assert len(prog.instrs) > 20
            assert prog.labels.get("main") == prog.entry


@pytest.mark.parametrize("name", sorted(WORKLOAD_NAMES))
class TestBitExactness:
    def test_speech_input(self, name, small_pcm):
        wl = get_workload(name)
        res = wl.run_functional(small_pcm)
        assert res.outputs == wl.golden_output(small_pcm)

    def test_step_input(self, name, step_pcm):
        wl = get_workload(name)
        res = wl.run_functional(step_pcm)
        assert res.outputs == wl.golden_output(step_pcm)

    def test_extreme_amplitudes(self, name):
        pcm = [32767, -32768] * 40 + [0] * 20 + [1, -1] * 20
        wl = get_workload(name)
        res = wl.run_functional(pcm)
        assert res.outputs == wl.golden_output(pcm)

    def test_pipeline_matches_golden_too(self, name, small_pcm):
        wl = get_workload(name)
        res = wl.run_pipeline(small_pcm,
                              predictor=make_predictor("bimodal-512-512"))
        assert res.outputs == wl.golden_output(small_pcm)
        assert res.stats.cycles > res.stats.committed  # CPI > 1


class TestScheduledVariants:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_NAMES))
    def test_list_scheduled_codecs_stay_bit_exact(self, name, small_pcm):
        wl = get_workload(name)
        sched = wl.with_program(schedule_program(wl.program))
        res = sched.run_functional(small_pcm)
        assert res.outputs == wl.golden_output(small_pcm)

    def test_unsched_variant_matches(self, small_pcm):
        wl = get_workload("adpcm_enc_unsched")
        res = wl.run_functional(small_pcm)
        assert res.outputs == wl.golden_output(small_pcm)
        assert res.outputs == \
            get_workload("adpcm_enc").golden_output(small_pcm)


class TestLoader:
    def test_capacity_enforced(self):
        wl = get_workload("adpcm_enc")
        with pytest.raises(ValueError, match="capacity"):
            wl.build_memory([0] * (MAX_SAMPLES + 1))

    def test_input_stream_for_decoder_is_codes(self, small_pcm):
        wl = get_workload("adpcm_dec")
        stream = wl.input_stream(small_pcm)
        assert all(0 <= c <= 15 for c in stream)

    def test_memory_contains_input(self, small_pcm):
        wl = get_workload("adpcm_enc")
        mem = wl.build_memory(small_pcm)
        base = wl.program.address_of("in_buf")
        first = mem.read(base, 2)
        expect = small_pcm[0] & 0xFFFF
        assert first == expect

    def test_memory_contains_count(self, small_pcm):
        wl = get_workload("adpcm_enc")
        mem = wl.build_memory(small_pcm)
        assert mem.read_word(wl.program.address_of("n_samples")) == \
            len(small_pcm)

    def test_static_tables_present(self):
        wl = get_workload("adpcm_enc")
        mem = wl.build_memory([1, 2, 3])
        assert mem.read_word(wl.program.address_of("step_table")) == 7

    def test_zero_samples(self):
        wl = get_workload("adpcm_enc")
        res = wl.run_functional([])
        assert res.outputs == []

    def test_negative_samples_sign_corrected(self):
        wl = get_workload("adpcm_dec")
        pcm = [-1000, -2000, -30, 500] * 20
        res = wl.run_functional(pcm)
        assert res.outputs == wl.golden_output(pcm)
        assert any(v < 0 for v in res.outputs)


class TestFigure2Pattern:
    def test_adpcm_enc_contains_lh_then_distant_branch(self):
        """The paper's Figure 2 motif: a load-dependent predicate with
        independent instructions scheduled between (br_sign)."""
        prog = get_workload("adpcm_enc").program
        br = prog.index_of(prog.labels["br_sign"])
        br_instr = prog.instrs[br]
        assert br_instr.op == "bgez"
        _cond, reg = br_instr.zero_condition
        # predicate producer at distance >= 3 within the block
        for back in range(1, 4):
            assert prog.instrs[br - back].dest_reg != reg
        assert prog.instrs[br - 4].dest_reg == reg
