"""Unit tests for the branch profiler (counts, distances, foldability)."""

import pytest

from repro.asm import assemble
from repro.profiling import BranchProfiler
from repro.profiling.profiler import FAR_DISTANCE


def profile(src):
    prog = assemble(src)
    return prog, BranchProfiler().profile(prog)


class TestCounts:
    def test_execution_and_taken_counts(self, count_loop_program):
        result = BranchProfiler().profile(count_loop_program)
        loop_br = count_loop_program.pc_of(4)   # the bnez
        stats = result.branches[loop_br]
        assert stats.count == 10
        assert stats.taken == 9
        assert stats.taken_rate == pytest.approx(0.9)

    def test_total_instructions(self, count_loop_program):
        result = BranchProfiler().profile(count_loop_program)
        assert result.total_instructions == 33

    def test_sorted_by_count(self, fold_demo_program):
        result = BranchProfiler().profile(fold_demo_program)
        counts = [b.count for b in result.sorted_by_count()]
        assert counts == sorted(counts, reverse=True)

    def test_total_branch_executions(self, fold_demo_program):
        result = BranchProfiler().profile(fold_demo_program)
        assert result.total_branch_executions == 20  # 2 branches x 10

    def test_target_recorded(self, count_loop_program):
        result = BranchProfiler().profile(count_loop_program)
        stats = next(iter(result.branches.values()))
        assert stats.target == count_loop_program.labels["loop"]


class TestDistances:
    def test_exact_distance(self):
        _prog, result = profile("""
.text
main:
    addiu r9, r0, 1
    nop
    nop
br: bnez r9, out
out: halt
""")
        stats = list(result.branches.values())[0]
        assert stats.min_distance == 3

    def test_min_over_paths(self):
        """The same branch reached with different distances records the
        minimum (the validity-relevant one)."""
        _prog, result = profile("""
.text
main:
    li   r5, 2
loop:
    addiu r9, r0, 1      # distance varies: first iter 5, second 2
    nop
    nop
    nop
br: bnez r9, cont
cont:
    addi r5, r5, -1
    addiu r9, r0, 1
    nop
    bnez r5, br
    halt
""")
        br_pc = _prog.labels["br"]
        assert result.branches[br_pc].min_distance == 3

    def test_unwritten_register_far(self):
        _prog, result = profile("""
.text
main:
    nop
br: beqz r9, out
out: halt
""")
        stats = list(result.branches.values())[0]
        assert stats.min_distance >= FAR_DISTANCE // 2

    def test_two_register_branch_no_distance(self):
        _prog, result = profile("""
.text
main:
    add r1, r2, r3
br: beq r1, r3, out
out: halt
""")
        stats = list(result.branches.values())[0]
        assert stats.zero_cond is None
        assert not stats.is_zero_comparison


class TestFoldability:
    @pytest.mark.parametrize("distance,execute,mem,commit", [
        (2, 0, 0, 0),
        (3, 1, 0, 0),
        (4, 1, 1, 0),
        (5, 1, 1, 1),
    ])
    def test_alu_producer_thresholds(self, distance, execute, mem, commit):
        fillers = "\n".join("nop" for _ in range(distance - 1))
        _prog, result = profile("""
.text
main:
    addiu r9, r0, 1
    %s
br: bnez r9, out
out: halt
""" % fillers)
        stats = list(result.branches.values())[0]
        assert stats.foldable["execute"] == execute
        assert stats.foldable["mem"] == mem
        assert stats.foldable["commit"] == commit

    def test_load_producer_penalised_under_execute(self):
        _prog, result = profile("""
.text
main:
    lw  r9, -8(sp)
    nop
    nop
br: beqz r9, out
out: halt
""")
        stats = list(result.branches.values())[0]
        assert stats.min_distance == 3
        assert stats.load_produced == 1
        assert stats.foldable["execute"] == 0   # load acts like mem
        assert stats.foldable["mem"] == 0

    def test_fold_fraction(self, fold_demo_program):
        result = BranchProfiler().profile(fold_demo_program)
        br1 = fold_demo_program.labels["br1"]
        assert result.branches[br1].fold_fraction("execute") == 1.0

    def test_budget_guard(self):
        prog = assemble(".text\nmain: b main\nhalt\n")
        with pytest.raises(RuntimeError, match="budget"):
            BranchProfiler(max_instructions=50).profile(prog)
