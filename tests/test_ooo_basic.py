"""Unit tests of the out-of-order backend's machine behaviors.

The differential sweep (``test_differential_random.py``) locks the OoO
machine's architectural behavior against the functional model; these
tests pin the *microarchitectural* contracts that equivalence alone
cannot see: configuration validation, precise exceptions (raised at
commit, suppressed on the wrong path), checkpoint-recovery accounting,
BDT-saturation fetch back-pressure, and structural occupancy bounds.
"""

import pytest

from repro.asm.assembler import assemble
from repro.asbr import ASBRUnit, FoldabilityError, extract_branch_info
from repro.memory.main_memory import MisalignedAccess
from repro.sim.ooo import OoOConfig, OoOSimulator
from repro.testing import random_program


def _asbr_for(prog, update="execute"):
    infos = []
    for i, ins in enumerate(prog.instrs):
        if ins.is_branch:
            try:
                infos.append(extract_branch_info(prog, prog.pc_of(i)))
            except FoldabilityError:
                pass
    return ASBRUnit.from_branch_infos(infos[:16], bdt_update=update)


class TestConfig:
    def test_defaults_valid(self):
        cfg = OoOConfig()
        assert cfg.issue_width == 2 and cfg.rob_size == 32

    @pytest.mark.parametrize("kw", [
        {"issue_width": 0}, {"issue_width": 9},
        {"rob_size": 2}, {"iq_size": 1}, {"phys_regs": 32},
    ])
    def test_bad_shapes_rejected(self, kw):
        with pytest.raises(ValueError):
            OoOConfig(**kw)


class TestPreciseExceptions:
    def test_fault_raised_at_commit_with_older_state_committed(self):
        # the misaligned load must fault *after* r1/r2 commit and
        # *before* r4 does — the definition of a precise exception
        prog = assemble("li r1, 3\n"
                        "li r2, 7\n"
                        "lw r3, 1(r0)\n"
                        "li r4, 9\n"
                        "halt\n")
        sim = OoOSimulator(prog)
        with pytest.raises(MisalignedAccess):
            sim.run()
        assert sim.regs[1] == 3 and sim.regs[2] == 7
        assert sim.regs[4] == 0

    def test_wrong_path_fault_squashed_silently(self):
        # the not-taken default predictor fetches the misaligned load
        # speculatively; recovery must squash it, never raise it
        prog = assemble("li r1, 1\n"
                        "bne r1, r0, skip\n"
                        "lw r3, 1(r0)\n"
                        "skip: li r4, 9\n"
                        "halt\n")
        sim = OoOSimulator(prog)
        stats = sim.run()
        assert sim.regs[4] == 9
        assert stats.branch_mispredicts == 1
        assert stats.squashed >= 1


class TestRecovery:
    def test_checkpoint_accounting(self):
        prog = random_program(3, units=14)
        sim = OoOSimulator(prog, config=OoOConfig(issue_width=2))
        stats = sim.run()
        assert stats.branch_mispredicts > 0
        assert stats.checkpoint_restores == stats.branch_mispredicts
        assert stats.squash_depth_sum >= stats.checkpoint_restores - 1
        assert stats.avg_squash_depth >= 0.0
        # fetched instructions either commit (incl. folds) or squash
        assert stats.fetched == (stats.committed + stats.folds_committed
                                 + stats.uncond_folds_committed
                                 + stats.squashed)

    def test_rob_occupancy_bounded(self):
        prog = random_program(5, units=14)
        cfg = OoOConfig(issue_width=4, rob_size=16, iq_size=8,
                        phys_regs=48)
        sim = OoOSimulator(prog, config=cfg)
        stats = sim.run()
        assert 0 < stats.max_rob_occupancy <= cfg.rob_size


class TestBDTBackPressure:
    def test_saturated_counter_stalls_fetch(self):
        # nine in-flight writes to a BDT-tracked register exceed the
        # 3-bit counter; the machine must stall fetch, not overflow
        body = "".join("addi r1, r1, 1\n" for _ in range(9))
        prog = assemble("li r1, 0\n" + body +
                        "beq r1, r0, out\n"
                        "li r2, 5\n"
                        "out: halt\n")
        unit = _asbr_for(prog)
        sim = OoOSimulator(prog, asbr=unit,
                           config=OoOConfig(issue_width=4))
        stats = sim.run()
        assert stats.bdt_fetch_stalls > 0
        assert sim.regs[1] == 9 and sim.regs[2] == 5

    def test_fold_counts_in_ledger(self):
        # at width 1 the random-program sweep's ASBR unit still folds;
        # folded branches must retire through the fold counters
        for seed in range(8):
            prog = random_program(seed, units=14)
            sim = OoOSimulator(prog, asbr=_asbr_for(prog),
                               config=OoOConfig(issue_width=1))
            stats = sim.run()
            if stats.folds_committed:
                return
        pytest.fail("no seed produced a committed fold at width 1")


class TestCommitLog:
    def test_commit_log_matches_functional(self):
        from repro.sim.functional import FunctionalSimulator

        prog = random_program(11, units=14)
        pcs = []
        FunctionalSimulator(prog).run(
            max_instructions=200_000,
            observer=lambda pc, instr, next_pc: pcs.append(pc))
        log = []
        OoOSimulator(prog, asbr=_asbr_for(prog), commit_log=log,
                     config=OoOConfig(issue_width=2)).run()
        assert log == pcs
