"""Differential testing: the pipeline must match the golden model.

For randomly generated programs (see repro.testing), under every
predictor and every ASBR configuration, final registers, final memory,
and the committed-instruction ledger must agree with the functional
simulator.
"""

import pytest

from repro.asbr import ASBRUnit, FoldabilityError, extract_branch_info
from repro.memory.cache import CacheConfig
from repro.predictors import make_predictor
from repro.sim.functional import FunctionalSimulator
from repro.sim.pipeline import PipelineConfig, PipelineSimulator
from repro.testing import random_program

SEEDS = list(range(25))
PREDICTORS = ["not-taken", "always-taken", "bimodal-64-64",
              "gshare-64-5-64"]


def functional_result(prog):
    sim = FunctionalSimulator(prog)
    n = sim.run(max_instructions=100_000)
    return sim, n


def assert_equivalent(prog, pipeline, stats, f_sim, n):
    assert pipeline.regs.snapshot() == f_sim.regs.snapshot()
    assert pipeline.memory.snapshot() == f_sim.memory.snapshot()
    assert stats.committed == n - stats.folds_committed


@pytest.mark.parametrize("seed", SEEDS)
def test_predictors_equivalent(seed):
    prog = random_program(seed)
    f_sim, n = functional_result(prog)
    for spec in PREDICTORS:
        sim = PipelineSimulator(prog, predictor=make_predictor(spec))
        stats = sim.run()
        assert_equivalent(prog, sim, stats, f_sim, n)
        assert stats.folds_committed == 0


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("update", ["commit", "mem", "execute"])
def test_asbr_equivalent(seed, update):
    prog = random_program(seed)
    f_sim, n = functional_result(prog)
    infos = []
    for i, ins in enumerate(prog.instrs):
        if ins.is_branch:
            try:
                infos.append(extract_branch_info(prog, prog.pc_of(i)))
            except FoldabilityError:
                pass
    unit = ASBRUnit.from_branch_infos(infos[:16], bdt_update=update)
    sim = PipelineSimulator(prog, predictor=make_predictor("bimodal-64-64"),
                            asbr=unit)
    stats = sim.run()
    assert_equivalent(prog, sim, stats, f_sim, n)


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_tiny_caches_equivalent(seed):
    """Pathologically small caches change timing, never results."""
    prog = random_program(seed)
    f_sim, n = functional_result(prog)
    cfg = PipelineConfig(
        icache=CacheConfig(size_bytes=64, block_bytes=16, assoc=1,
                           miss_penalty=13),
        dcache=CacheConfig(size_bytes=64, block_bytes=16, assoc=1,
                           miss_penalty=29, writeback_penalty=7))
    sim = PipelineSimulator(prog, predictor=make_predictor("bimodal-64-64"),
                            config=cfg)
    stats = sim.run()
    assert_equivalent(prog, sim, stats, f_sim, n)
    assert stats.icache_miss_stalls > 0


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_fetched_ledger(seed):
    """Every fetched instruction either commits, is squashed, or is
    still in flight when halt commits."""
    prog = random_program(seed)
    sim = PipelineSimulator(prog, predictor=make_predictor("not-taken"))
    stats = sim.run()
    in_flight = sum(s is not None for s in
                    (sim.s_if, sim.s_id, sim.s_ex, sim.s_mem, sim.s_wb))
    assert stats.fetched == stats.committed + stats.squashed + in_flight


def test_cycles_monotone_in_penalties():
    """Larger miss penalties can only slow execution down."""
    prog = random_program(3)
    cycles = []
    for pen in (0, 4, 16):
        cfg = PipelineConfig(
            icache=CacheConfig(size_bytes=256, block_bytes=32, assoc=1,
                               miss_penalty=pen),
            dcache=CacheConfig(size_bytes=256, block_bytes=32, assoc=1,
                               miss_penalty=pen))
        sim = PipelineSimulator(prog, config=cfg)
        cycles.append(sim.run().cycles)
    assert cycles == sorted(cycles)
    assert cycles[0] < cycles[2]
