"""Property tests for the service wire format and coalescing key.

The serve API's whole correctness story hangs on one invariant chain:

    wire JSON ──decode──> RunSpec ──hash──> spec key ──prefix──> shard

* any two wire bodies that decode to equal ``RunSpec`` objects must map to
  the same spec hash and the same shard path (so they coalesce onto
  one execution and one cache entry);
* a decode → encode → decode round trip through *serialised* JSON must
  be the identity (so resubmitting a job record reuses the cache);
* the execution engine must never enter the key (the PR 5 bit-identity
  invariant, now locked at the API boundary).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runner import key_for_spec, shard_of
from repro.serve import (
    WireError,
    shard_path,
    spec_from_wire,
    spec_key,
    spec_to_wire,
)

# small input sizes keep the (memoised) input digests cheap; two real
# benchmarks exercise distinct program digests
wire_bodies = st.fixed_dictionaries(
    {
        "benchmark": st.sampled_from(["adpcm_enc", "adpcm_dec"]),
        "n_samples": st.integers(min_value=1, max_value=48),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "predictor_spec": st.sampled_from(
            ["not-taken", "bimodal-2048", "bimodal-512-512",
             "gshare-2048-11"]),
    },
    optional={
        "with_asbr": st.booleans(),
        "bit_capacity": st.sampled_from([4, 8, 16, 32]),
        "bdt_update": st.sampled_from(["commit", "mem", "execute"]),
        "min_fold_fraction": st.floats(min_value=0.0, max_value=1.0,
                                       allow_nan=False),
        "min_count": st.integers(min_value=0, max_value=256),
        "engine": st.sampled_from(["interp", "blocks"]),
        "frontend": st.booleans(),
        "btb_l1_entries": st.sampled_from([16, 64, 256]),
        "btb_l2_entries": st.sampled_from([512, 2048]),
        "btb_l2_assoc": st.sampled_from([2, 4]),
        "ftq_depth": st.integers(min_value=1, max_value=16),
        "fdip": st.booleans(),
    },
)

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@given(body=wire_bodies)
@SETTINGS
def test_wire_round_trip_is_identity(body):
    spec = spec_from_wire(body)
    rewired = json.loads(json.dumps(spec_to_wire(spec)))
    again = spec_from_wire(rewired)
    assert again == spec


@given(body=wire_bodies)
@SETTINGS
def test_equal_specs_share_key_and_shard(body):
    spec = spec_from_wire(body)
    again = spec_from_wire(json.loads(json.dumps(spec_to_wire(spec))))
    assert spec_key(spec) == spec_key(again)
    for shards in (0, 16, 256, 4096):
        assert shard_path(spec, shards) == shard_path(again, shards)


@given(body=wire_bodies, engine_a=st.sampled_from(["interp", "blocks"]),
       engine_b=st.sampled_from(["interp", "blocks"]))
@SETTINGS
def test_engine_never_enters_key_or_shard(body, engine_a, engine_b):
    a = spec_from_wire(dict(body, engine=engine_a))
    b = spec_from_wire(dict(body, engine=engine_b))
    assert spec_key(a) == spec_key(b)
    assert shard_path(a, 256) == shard_path(b, 256)


@given(body=wire_bodies)
@SETTINGS
def test_frontend_knobs_enter_the_key(body):
    """Unlike the engine, every decoupled-frontend knob is part of the
    run's identity: flipping one must change the coalescing key."""
    pinned = dict(body, frontend=True, fdip=False,
                  btb_l1_entries=64, ftq_depth=8)
    base = spec_from_wire(pinned)
    for mutate in ({"frontend": False}, {"fdip": True},
                   {"btb_l1_entries": 16}, {"ftq_depth": 4}):
        other = spec_from_wire({**pinned, **mutate})
        assert spec_key(other) != spec_key(base), \
            "knob %r did not enter the key" % (mutate,)


@given(body=wire_bodies)
@SETTINGS
def test_spec_key_is_the_runner_cache_key(body):
    """The service must address the *existing* cache, not a parallel
    namespace: serve keys and runner keys are the same function."""
    spec = spec_from_wire(body)
    key = spec_key(spec)
    assert key == key_for_spec(spec)
    path = shard_path(spec, 256)
    assert path == "%s/%s.json" % (shard_of(key, 256), key)


# ----------------------------------------------------------------------
# strictness (example-based: hypothesis guards the happy path above)
# ----------------------------------------------------------------------
VALID = {"benchmark": "adpcm_enc", "n_samples": 64, "seed": 11,
         "predictor_spec": "not-taken"}


@pytest.mark.parametrize("mutate", [
    {"benchmark": "no-such-workload"},
    {"n_samples": 0},
    {"n_samples": True},
    {"n_samples": "64"},
    {"with_asbr": 1},
    {"min_fold_fraction": "0.5"},
    {"engine": "jit"},
    {"bdt_update": "fetch"},
    {"bogus_field": 1},
])
def test_bad_bodies_rejected(mutate):
    with pytest.raises(WireError):
        spec_from_wire(dict(VALID, **mutate))


@pytest.mark.parametrize("drop", ["benchmark", "n_samples", "seed",
                                  "predictor_spec"])
def test_missing_required_fields_rejected(drop):
    body = dict(VALID)
    del body[drop]
    with pytest.raises(WireError):
        spec_from_wire(body)


@pytest.mark.parametrize("body", [None, [], "spec", 7])
def test_non_object_spec_rejected(body):
    with pytest.raises(WireError):
        spec_from_wire(body)
