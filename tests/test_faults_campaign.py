"""Campaign-level tests: classification, determinism, reports, CLI.

One small ADPCM-encode matrix (n=64 input, 9 faults) is computed once
per module and every structural claim is checked against it:

* the three protections classify the *identical* plan;
* parity shows zero SDC, ECC is fully masked/bit-identical;
* reports serialise canonically (byte-identical across runs) and
  round-trip through JSON;
* the ``repro faults campaign|report`` CLI drives the same machinery.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.faults import (
    OUTCOME_MASKED,
    OUTCOME_RECOVERED,
    OUTCOME_SDC,
    OUTCOMES,
    PROTECTIONS,
    CampaignConfig,
    CampaignReport,
    matrix_to_json,
    render_matrix,
    render_report,
    report_to_json,
    reports_from_json,
    run_campaign,
    run_protection_matrix,
)
from repro.faults.campaign import _Context

CFG = CampaignConfig(benchmark="adpcm_enc", n_samples=64, seed=11,
                     bit_capacity=8, n_faults=9, fault_seed=3)


@pytest.fixture(scope="module")
def matrix():
    return run_protection_matrix(CFG)


def plan_of(report):
    return [(r.structure, r.field, r.index, r.bit, r.cycle)
            for r in report.injections]


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
def test_config_rejects_unknown_protection():
    with pytest.raises(ValueError):
        CampaignConfig(protection="tmr")


def test_config_to_dict_is_complete():
    d = CFG.to_dict()
    assert d["benchmark"] == "adpcm_enc" and d["n_faults"] == 9


# ----------------------------------------------------------------------
# matrix structure
# ----------------------------------------------------------------------
def test_matrix_covers_all_protections(matrix):
    assert set(matrix) == set(PROTECTIONS)
    for p, report in matrix.items():
        assert report.config["protection"] == p
        assert len(report.injections) == CFG.n_faults
        assert report.ref_cycles > 0 and report.sites_enumerated > 0


def test_matrix_classifies_identical_plan(matrix):
    plans = [plan_of(r) for r in matrix.values()]
    assert plans[0] == plans[1] == plans[2]


def test_every_outcome_is_legal(matrix):
    for report in matrix.values():
        for r in report.injections:
            assert r.outcome in OUTCOMES


def test_parity_has_zero_sdc(matrix):
    assert matrix["parity"].sdc_total == 0
    # recovered injections are visible interventions
    for r in matrix["parity"].injections:
        if r.outcome == OUTCOME_RECOVERED:
            assert r.detections > 0


def test_ecc_masks_everything(matrix):
    ecc = matrix["ecc"]
    assert ecc.sdc_total == 0
    for r in ecc.injections:
        assert r.outcome == OUTCOME_MASKED
        assert r.detail in ("", "corrected")
        assert r.suppressed_folds == 0


def test_by_structure_accounts_for_every_injection(matrix):
    for report in matrix.values():
        summary = report.by_structure()
        assert sum(int(d["injections"]) for d in summary.values()) \
            == len(report.injections)
        for d in summary.values():
            assert d["avf"] == d["sdc"] / d["injections"]


# ----------------------------------------------------------------------
# determinism and serialisation
# ----------------------------------------------------------------------
def test_campaign_rerun_is_byte_identical(matrix):
    again = run_campaign(dataclasses.replace(CFG, protection="parity"))
    assert report_to_json(again) == report_to_json(matrix["parity"])


def test_matrix_json_round_trip(matrix):
    text = matrix_to_json(matrix)
    back = reports_from_json(text)
    assert set(back) == set(PROTECTIONS)
    for p in PROTECTIONS:
        assert back[p].to_dict() == matrix[p].to_dict()
    assert matrix_to_json(back) == text


def test_single_report_round_trip(matrix):
    text = report_to_json(matrix["none"])
    back = reports_from_json(text)
    assert list(back) == ["none"]
    assert back["none"].to_dict() == matrix["none"].to_dict()


def test_render_is_stable_and_informative(matrix):
    out = render_matrix(matrix)
    assert render_matrix(matrix) == out
    for p in PROTECTIONS:
        assert p in out
    assert "avf" in out and "TOTAL" in out
    single = render_report(matrix["none"])
    assert "fault campaign" in single


def test_shared_context_matches_fresh_context(matrix):
    """A report computed through run_protection_matrix's shared context
    equals one computed from a context built from scratch."""
    ctx = _Context(dataclasses.replace(CFG, protection="ecc"))
    fresh = run_campaign(dataclasses.replace(CFG, protection="ecc"),
                         context=ctx)
    assert fresh.to_dict() == matrix["ecc"].to_dict()


# ----------------------------------------------------------------------
# batched execution (--batch): one replay, same classifications
# ----------------------------------------------------------------------
def test_batched_ecc_campaign_is_byte_identical(matrix):
    """The batch path arms the whole ecc plan on one reference replay;
    the report it produces must serialise byte-for-byte like the
    per-site path's (which the module fixture ran with batch='auto',
    itself locked against fresh contexts above)."""
    cfg = dataclasses.replace(CFG, protection="ecc")
    ctx = _Context(cfg)
    on = run_campaign(cfg, context=ctx, batch="on")
    off = run_campaign(cfg, context=ctx, batch="off")
    assert report_to_json(on) == report_to_json(off)
    assert report_to_json(on) == report_to_json(matrix["ecc"])


def test_batched_mode_validates():
    with pytest.raises(ValueError):
        run_campaign(CFG, batch="maybe")


def test_non_batchable_protections_fall_back(matrix):
    """none/parity need mid-run state mutation the batched replay can't
    express; batch='on' must still classify them per-site, identically."""
    for prot in ("none", "parity"):
        cfg = dataclasses.replace(CFG, protection=prot)
        on = run_campaign(cfg, batch="on")
        assert report_to_json(on) == report_to_json(matrix[prot])


def test_matrix_batch_off_matches_default(matrix):
    off = run_protection_matrix(CFG, batch="off")
    assert matrix_to_json(off) == matrix_to_json(matrix)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_campaign_and_report_round_trip(tmp_path, capsys):
    out = tmp_path / "matrix.json"
    rc = main(["faults", "campaign", "--benchmark", "adpcm_enc",
               "--samples", "64", "--seed", "11", "--bit-size", "8",
               "--n-faults", "4", "--fault-seed", "3",
               "--protection", "all", "--json", "--out", str(out)])
    assert rc == 0
    capsys.readouterr()
    data = json.loads(out.read_text())
    assert set(data) == set(PROTECTIONS)

    rc = main(["faults", "report", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "protection" in text and "avf" in text


def test_cli_single_protection_text(capsys):
    rc = main(["faults", "campaign", "--samples", "64", "--seed", "11",
               "--bit-size", "8", "--n-faults", "2", "--fault-seed", "3",
               "--protection", "ecc"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "protection=ecc" in text


def test_report_from_dict_tolerates_minimal_payload():
    rep = CampaignReport.from_dict({"config": {"protection": "none"},
                                    "injections": []})
    assert rep.sdc_total == 0
    assert rep.by_structure() == {}
