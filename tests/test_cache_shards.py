"""Sharded result-cache layout: migration, traversal, round-trips.

The serve daemon points many pool workers (and potentially many
tenants) at one cache directory, so entries are spread over hex-prefix
shard subdirectories.  These tests lock the satellite contract:

* opening a flat cache with ``shards=`` migrates every entry exactly
  once, **byte-identically** and mtime-preserving;
* ``gc`` and ``verify`` traverse shards (and mixed layouts) no matter
  which ``shards=`` value the scanning handle was built with;
* the layout function is shared (``shard_of``), so the wire protocol
  and the cache can never disagree about an entry's home.
"""

import json
import os

import pytest

from repro.runner import ResultCache, RunSpec, key_for_spec, run_sweep, \
    shard_of, shard_width
from repro.sim.pipeline import PipelineStats

KEYS = ["%064x" % (i * 0x1234567 + 7) for i in range(8)]


def stats(cycles=100):
    return PipelineStats(cycles=cycles, committed=80, fetched=90)


def fill(cache, keys):
    for i, key in enumerate(keys):
        cache.put(key, stats(100 + i))


def all_entry_paths(root):
    out = []
    for dirpath, _dirs, names in os.walk(root):
        out.extend(os.path.join(dirpath, n) for n in names
                   if n.endswith(".json"))
    return sorted(out)


class TestShardLayout:
    def test_shard_width_values(self):
        assert [shard_width(s) for s in (0, 16, 256, 4096)] == \
            [0, 1, 2, 3]

    @pytest.mark.parametrize("bad", [-1, 1, 2, 15, 17, 512, "16", None])
    def test_invalid_shard_counts_rejected(self, bad):
        with pytest.raises(ValueError):
            shard_width(bad)
        with pytest.raises(ValueError):
            ResultCache("unused", shards=bad)

    def test_shard_of_is_the_key_prefix(self):
        key = "abcdef" + "0" * 58
        assert shard_of(key, 0) == ""
        assert shard_of(key, 16) == "a"
        assert shard_of(key, 256) == "ab"
        assert shard_of(key, 4096) == "abc"

    def test_put_lands_in_shard_subdirectory(self, tmp_path):
        cache = ResultCache(str(tmp_path), shards=256)
        key = KEYS[0]
        cache.put(key, stats())
        expect = tmp_path / key[:2] / (key + ".json")
        assert expect.exists()
        assert cache.get(key).cycles == 100

    def test_flat_handle_keeps_flat_layout(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEYS[0], stats())
        assert (tmp_path / (KEYS[0] + ".json")).exists()


class TestMigration:
    def test_flat_entries_migrate_byte_identically(self, tmp_path):
        flat = ResultCache(str(tmp_path))
        fill(flat, KEYS)
        before = {os.path.basename(p): open(p, "rb").read()
                  for p in all_entry_paths(str(tmp_path))}
        ages = {key: os.stat(flat._path(key)).st_mtime_ns
                for key in KEYS}

        sharded = ResultCache(str(tmp_path), shards=256)
        assert sharded.migrated == len(KEYS)
        # no flat entries remain; every entry sits in its shard
        assert not [n for n in os.listdir(str(tmp_path))
                    if n.endswith(".json")]
        for key in KEYS:
            path = os.path.join(str(tmp_path), key[:2], key + ".json")
            assert os.path.exists(path)
            assert open(path, "rb").read() == before[key + ".json"]
            assert os.stat(path).st_mtime_ns == ages[key]

        # reads return the same stats, through the new layout
        for i, key in enumerate(KEYS):
            assert sharded.get(key).cycles == 100 + i
        assert sharded.hits == len(KEYS)

    def test_migration_happens_once(self, tmp_path):
        fill(ResultCache(str(tmp_path)), KEYS)
        first = ResultCache(str(tmp_path), shards=256)
        assert first.migrated == len(KEYS)
        again = ResultCache(str(tmp_path), shards=256)
        assert again.migrated == 0
        assert again.get(KEYS[0]) is not None

    def test_migrated_sweep_results_identical(self, tmp_path):
        """End-to-end: a real sweep cached flat, reread sharded."""
        spec = RunSpec("adpcm_enc", 64, 11, "not-taken")
        flat = ResultCache(str(tmp_path))
        (cold,) = run_sweep([spec], cache=flat)
        sharded = ResultCache(str(tmp_path), shards=256)
        assert sharded.migrated == 1
        (warm,) = run_sweep([spec], cache=sharded)
        assert warm == cold
        assert sharded.hits == 1 and sharded.misses == 0

    def test_missing_directory_migration_is_noop(self, tmp_path):
        cache = ResultCache(str(tmp_path / "nope"), shards=16)
        assert cache.migrated == 0


class TestTraversal:
    def test_gc_traverses_shards(self, tmp_path):
        cache = ResultCache(str(tmp_path), shards=256)
        fill(cache, KEYS)
        for i, key in enumerate(KEYS):
            os.utime(cache._path(key), (1_000_000 + i, 1_000_000 + i))
        size = os.path.getsize(cache._path(KEYS[0]))
        result = cache.gc(max_bytes=3 * size)
        assert result.scanned == len(KEYS)
        assert result.removed == len(KEYS) - 3
        survivors = {os.path.basename(p)[:-5]
                     for p in all_entry_paths(str(tmp_path))}
        assert survivors == set(KEYS[-3:])   # oldest evicted first

    def test_verify_traverses_shards_and_prunes(self, tmp_path):
        cache = ResultCache(str(tmp_path), shards=16)
        fill(cache, KEYS[:4])
        bad = cache._path(KEYS[0])
        entry = json.load(open(bad))
        entry["stats"]["cycles"] += 1        # silent corruption
        with open(bad, "w") as f:
            json.dump(entry, f)
        result = cache.verify()
        assert result.scanned == 4
        assert result.ok == 3 and result.corrupt == 1
        assert result.pruned == 1
        assert not os.path.exists(bad)

    def test_flat_handle_scans_mixed_layout(self, tmp_path):
        """``repro cache gc``/``verify`` default to a flat handle; they
        must still see sharded entries left by the daemon."""
        ResultCache(str(tmp_path), shards=256).put(KEYS[0], stats())
        flat = ResultCache(str(tmp_path))
        flat.put(KEYS[1], stats())
        assert flat.gc().scanned == 2
        assert flat.verify().ok == 2

    def test_corrupt_sharded_entry_dropped_on_read(self, tmp_path):
        cache = ResultCache(str(tmp_path), shards=256)
        cache.put(KEYS[0], stats())
        with open(cache._path(KEYS[0]), "w") as f:
            f.write("{ truncated")
        assert cache.get(KEYS[0]) is None
        assert cache.dropped == 1
        assert not os.path.exists(cache._path(KEYS[0]))
