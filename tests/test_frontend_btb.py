"""Property-based locks on the two-level BTB hierarchy.

The two invariants the frontend's design leans on:

* **promotion never loses a target** — the hierarchy is exclusive
  (an L2 hit moves the entry up, the L1 victim moves down), so a
  mapping that just produced a hit is still resolvable immediately
  after, and any hit returns the *latest* trained target, never a
  stale shadow copy;
* **capacity/associativity bounds** — L1 never holds more than its
  entry count, no L2 set ever exceeds the associativity, drops only
  happen as true capacity evictions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import TwoLevelBTB

# Small geometry + few distinct PCs = constant aliasing pressure, which
# is where promotion/demotion bugs live.
L1_ENTRIES, L2_ENTRIES, L2_ASSOC = 4, 16, 2

_pcs = st.integers(min_value=0, max_value=31).map(lambda i: 0x400 + i * 4)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _pcs, st.integers(0, 2 ** 20)
                  .map(lambda t: t * 4)),
        st.tuples(st.just("lookup"), _pcs),
    ),
    max_size=200,
)


def _l1_live(btb):
    return sum(1 for t in btb.l1._tags if t is not None)


@given(ops=_ops)
@settings(max_examples=200, deadline=None)
def test_hits_return_latest_target_and_bounds_hold(ops):
    btb = TwoLevelBTB(L1_ENTRIES, L2_ENTRIES, L2_ASSOC)
    latest = {}
    for op in ops:
        if op[0] == "insert":
            _, pc, target = op
            btb.insert(pc, target)
            latest[pc] = target
        else:
            _, pc = op
            target, level = btb.lookup(pc)
            if target is None:
                assert level == 0
            else:
                assert level in (1, 2)
                assert target == latest[pc], \
                    "hit returned a stale target"
        # capacity / associativity bounds after every operation
        assert _l1_live(btb) <= L1_ENTRIES
        assert all(len(way) <= L2_ASSOC for way in btb._l2)
        assert len(btb) <= L1_ENTRIES + L2_ENTRIES


@given(ops=_ops)
@settings(max_examples=200, deadline=None)
def test_promotion_never_loses_a_target(ops):
    btb = TwoLevelBTB(L1_ENTRIES, L2_ENTRIES, L2_ASSOC)
    for op in ops:
        if op[0] == "insert":
            btb.insert(op[1], op[2])
        else:
            target, level = btb.lookup(op[1])
            if target is not None:
                # the lookup itself (an L2 hit promotes, possibly
                # demoting an L1 victim) must not drop the mapping
                again, again_level = btb.lookup(op[1])
                assert again == target
                assert again_level == 1, "promoted entry not in L1"


def test_l2_hit_promotes_exclusively():
    btb = TwoLevelBTB(L1_ENTRIES, L2_ENTRIES, L2_ASSOC)
    btb.insert(0x400, 0x800)
    # alias 0x400's L1 slot (stride = entries * 4) to demote it
    btb.insert(0x400 + L1_ENTRIES * 4, 0x900)
    t, level = btb.lookup(0x400)
    assert (t, level) == (0x800, 2)
    # promoted: now an L1 hit, and the L2 copy is gone (exclusive)
    t, level = btb.lookup(0x400)
    assert (t, level) == (0x800, 1)
    assert all(0x400 not in way for way in btb._l2)


def test_insert_updates_existing_target():
    btb = TwoLevelBTB(L1_ENTRIES, L2_ENTRIES, L2_ASSOC)
    btb.insert(0x400, 0x800)
    btb.insert(0x400, 0xA00)
    assert btb.lookup(0x400) == (0xA00, 1)
    assert len(btb) == 1


def test_reset_clears_both_levels():
    btb = TwoLevelBTB(L1_ENTRIES, L2_ENTRIES, L2_ASSOC)
    for i in range(12):
        btb.insert(0x400 + i * 4, 0x800)
    btb.reset()
    assert len(btb) == 0
    assert btb.lookup(0x400) == (None, 0)


@pytest.mark.parametrize("kwargs", [
    {"l2_assoc": 3},                      # not a power of two
    {"l2_entries": 24},                   # not a power of two
    {"l2_entries": 2, "l2_assoc": 4},     # entries not multiple of assoc
])
def test_rejects_bad_geometry(kwargs):
    args = {"l1_entries": 4, "l2_entries": 16, "l2_assoc": 2}
    args.update(kwargs)
    with pytest.raises(ValueError):
        TwoLevelBTB(**args)


def test_state_bits_cover_both_levels():
    btb = TwoLevelBTB(64, 2048, 4)
    # 61 bits per tagged target entry (30 tag + 30 target + valid)
    assert btb.state_bits == (64 + 2048) * 61
