"""Unit and property tests for zero-comparison conditions."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.alu import to_signed, to_unsigned
from repro.isa.conditions import (
    Condition,
    all_condition_bits,
    evaluate_condition,
)

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestEvaluate:
    @pytest.mark.parametrize("value,expected", [
        (0, {Condition.EQZ: True, Condition.NEZ: False,
             Condition.LTZ: False, Condition.LEZ: True,
             Condition.GTZ: False, Condition.GEZ: True}),
        (1, {Condition.EQZ: False, Condition.NEZ: True,
             Condition.LTZ: False, Condition.LEZ: False,
             Condition.GTZ: True, Condition.GEZ: True}),
        (to_unsigned(-1), {Condition.EQZ: False, Condition.NEZ: True,
                           Condition.LTZ: True, Condition.LEZ: True,
                           Condition.GTZ: False, Condition.GEZ: False}),
    ])
    def test_known_values(self, value, expected):
        for cond, want in expected.items():
            assert evaluate_condition(cond, value) is want

    def test_msb_means_negative(self):
        assert evaluate_condition(Condition.LTZ, 0x80000000)
        assert not evaluate_condition(Condition.GEZ, 0x80000000)

    def test_max_positive(self):
        assert evaluate_condition(Condition.GTZ, 0x7FFFFFFF)


class TestNegation:
    @pytest.mark.parametrize("cond", list(Condition))
    def test_negation_involutive(self, cond):
        assert cond.negation.negation is cond

    @given(U32, st.sampled_from(list(Condition)))
    def test_negation_complements(self, value, cond):
        assert evaluate_condition(cond, value) != \
            evaluate_condition(cond.negation, value)


class TestAllBits:
    @given(U32)
    def test_matches_pointwise(self, value):
        bits = all_condition_bits(value)
        for cond in Condition:
            assert bits[cond] == evaluate_condition(cond, value)

    @given(U32)
    def test_trichotomy(self, value):
        bits = all_condition_bits(value)
        # exactly one of <0, ==0, >0
        assert [bits[Condition.LTZ], bits[Condition.EQZ],
                bits[Condition.GTZ]].count(True) == 1

    @given(U32)
    def test_compound_bits(self, value):
        bits = all_condition_bits(value)
        assert bits[Condition.LEZ] == (bits[Condition.LTZ]
                                       or bits[Condition.EQZ])
        assert bits[Condition.GEZ] == (bits[Condition.GTZ]
                                       or bits[Condition.EQZ])
        assert bits[Condition.NEZ] == (not bits[Condition.EQZ])

    @given(U32)
    def test_agrees_with_signed_interpretation(self, value):
        s = to_signed(value)
        bits = all_condition_bits(value)
        assert bits[Condition.LTZ] == (s < 0)
        assert bits[Condition.GTZ] == (s > 0)
