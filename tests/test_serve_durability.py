"""Durability tests: the job WAL, crash recovery and resumption.

The contract under test (PR 9): with a ``state_dir`` every job owns an
append-only fsync'd JSONL write-ahead log; a daemon restarted on the
same state dir replays each log, keeps every settled outcome (success
*and* quarantined failure — exactly one record each, across any number
of restarts), re-enqueues only the unsettled specs, and resolves
anything that finished before the crash from the result cache — zero
recomputation.

A "crash" here is a WAL with no ``end`` record: the store-level tests
build one directly through the same :class:`repro.serve.JobStore` API
the daemon uses, which is deterministic where SIGKILLing a subprocess
is racy (the subprocess version lives in ``benchmarks/
serve_restart_smoke.py`` and the CI ``serve-restart-smoke`` step).
"""

import json
import os

from repro.runner import FailedResult, RunSpec, run_sweep
from repro.serve import JobStore, ServeConfig
from repro.telemetry import RingBufferSink
from repro.telemetry.events import SERVE_RECOVER
from repro.wal import load_jsonl

from tests.serve_utils import SPEC, ServerThread, spec_wire

N, SEED = 64, 11


def make_spec(i: int = 0) -> RunSpec:
    return RunSpec(SPEC["benchmark"], SPEC["n_samples"], SPEC["seed"] + i,
                   SPEC["predictor_spec"])


def crashed_store(state_dir, n_specs=3, settle_ok=(0,), settle_fail=()):
    """A state dir as a crashed daemon leaves it: one job, some specs
    settled (journaled), no ``end`` record, handle dropped."""
    store = JobStore(state_dir=str(state_dir))
    specs = [make_spec(i) for i in range(n_specs)]
    job = store.create("sweep", specs)
    job.start()
    for i in settle_ok:
        (result,) = run_sweep([specs[i]])
        job.note_result(specs[i], result, False)
    for i in settle_fail:
        job.note_result(specs[i],
                        FailedResult(specs[i], "injected", "error", 1),
                        False)
    job.close_wal()               # crash: no finish(), no end record
    return job.id, specs


# ----------------------------------------------------------------------
# store-level recovery semantics
# ----------------------------------------------------------------------
def test_recover_keeps_settled_and_reenqueues_pending(tmp_path):
    job_id, specs = crashed_store(tmp_path, n_specs=3, settle_ok=(0,),
                                  settle_fail=(1,))
    store = JobStore(state_dir=str(tmp_path))
    (job,) = store.recover()
    assert job.id == job_id
    assert job.state == "pending"           # not terminal: resumable
    assert job.n_done == 2 and job.n_recovered == 2
    assert job.n_failed == 1
    assert job.pending_specs() == [specs[2]]
    # replayed events carry the recovered marker; nothing was written
    assert all(e.get("recovered") for e in job.events
               if e["kind"] == "result")


def test_recover_terminal_job_stays_terminal(tmp_path):
    store = JobStore(state_dir=str(tmp_path))
    spec = make_spec()
    job = store.create("sweep", [spec])
    job.start()
    (result,) = run_sweep([spec])
    job.note_result(spec, result, False)
    job.finish()
    assert job.state == "done"

    again = JobStore(state_dir=str(tmp_path))
    assert again.recover() == []            # nothing to resume
    replayed = again.get(job.id)
    assert replayed is not None
    assert replayed.state == "done"
    assert replayed.results[0]["ok"]


def test_double_restart_is_idempotent(tmp_path):
    """Replay appends nothing: a second recovery reads byte-identical
    logs and rebuilds the same job — and a failed spec keeps exactly
    one ``failed`` record across both."""
    job_id, specs = crashed_store(tmp_path, n_specs=2, settle_ok=(),
                                  settle_fail=(0,))
    wal_path = os.path.join(str(tmp_path), "jobs", job_id + ".jsonl")
    bytes_before = open(wal_path, "rb").read()

    first = JobStore(state_dir=str(tmp_path))
    (job1,) = first.recover()
    first.close()
    assert open(wal_path, "rb").read() == bytes_before

    second = JobStore(state_dir=str(tmp_path))
    (job2,) = second.recover()
    second.close()
    assert open(wal_path, "rb").read() == bytes_before
    assert job2.results == job1.results
    assert job2.n_failed == job1.n_failed == 1
    records, _ = load_jsonl(wal_path)
    fail_records = [r for r in records if r.get("kind") == "result"
                    and not r["rec"]["ok"]]
    assert len(fail_records) == 1


def test_fresh_ids_never_collide_with_recovered(tmp_path):
    job_id, _ = crashed_store(tmp_path, n_specs=1, settle_ok=())
    store = JobStore(state_dir=str(tmp_path))
    store.recover()
    fresh = store.create("sweep", [make_spec(7)])
    assert fresh.id != job_id
    assert fresh.id > job_id                # ids keep counting upward


def test_torn_wal_tail_dropped_and_repaired(tmp_path):
    """A crash mid-append leaves a torn final record: recovery drops
    it, repairs the file and the truncated result is simply pending
    again — never a corrupt job."""
    job_id, specs = crashed_store(tmp_path, n_specs=2,
                                  settle_ok=(0, 1))
    wal_path = os.path.join(str(tmp_path), "jobs", job_id + ".jsonl")
    # tear the last record in half (no trailing newline)
    raw = open(wal_path, "rb").read()
    assert raw.endswith(b"\n")
    torn_at = len(raw) - (len(raw) - raw[:-1].rfind(b"\n") - 1) // 2
    with open(wal_path, "wb") as f:
        f.write(raw[:torn_at])

    store = JobStore(state_dir=str(tmp_path))
    (job,) = store.recover()
    assert store.wal_dropped == 1
    assert job.n_done == 1                  # the torn record is gone
    assert job.pending_specs() == [specs[1]]
    # the reopened WAL repaired the tail: the file ends on a newline
    # and every surviving line parses
    repaired = open(wal_path, "rb").read()
    assert repaired == raw[:raw[:-1].rfind(b"\n") + 1]
    records, dropped = load_jsonl(wal_path)
    assert dropped == 0
    assert [r["kind"] for r in records] == ["meta", "result"]
    store.close()


def test_pruned_job_wal_removed(tmp_path):
    store = JobStore(state_dir=str(tmp_path), keep_finished=1)
    spec = make_spec()
    (result,) = run_sweep([spec])
    paths = []
    for _ in range(3):
        job = store.create("sweep", [spec])
        job.start()
        job.note_result(spec, result, False)
        job.finish()
        paths.append(os.path.join(str(tmp_path), "jobs",
                                  job.id + ".jsonl"))
    # pruning runs at create time: by the third submission the first
    # job's record — and its WAL — are gone, bounding the state dir
    kept = [p for p in paths if os.path.exists(p)]
    assert kept == paths[1:]
    assert store.get("job-000001") is None


# ----------------------------------------------------------------------
# daemon-level: restart completes the job, without recomputation
# ----------------------------------------------------------------------
def durable_config(tmp_path, **overrides):
    kwargs = dict(cache_dir=str(tmp_path / "cache"), shards=16,
                  workers=0, state_dir=str(tmp_path / "state"))
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


def test_restart_resumes_and_completes_crashed_job(tmp_path):
    job_id, specs = crashed_store(tmp_path / "state", n_specs=3,
                                  settle_ok=(0,))
    executed = []
    sink = RingBufferSink()
    config = durable_config(tmp_path, on_execute=executed.extend,
                            lifecycle_sink=sink)
    with ServerThread(config) as st:
        with st.client() as client:
            job = client.wait_job(job_id, timeout=60)
            assert job["state"] == "done"
            assert job["n_total"] == 3 and job["n_done"] == 3
            assert job["n_recovered"] == 1
            stats = client.stats()
            assert stats["counters"]["jobs_recovered"] == 1
            assert stats["ready"] is True
    # the settled spec never re-entered the pool
    assert specs[0] not in executed
    assert set(executed) == {specs[1], specs[2]}
    recover_events = [e for e in sink.events if e.kind == SERVE_RECOVER]
    assert len(recover_events) == 1
    assert recover_events[0].data == {"job": job_id, "settled": 1,
                                      "pending": 2}


def test_restart_with_warm_cache_recomputes_nothing(tmp_path):
    """Specs that finished before the crash but after their journal
    write resolve from the result cache: the resumed job ends with
    zero new executions."""
    cache_dir = str(tmp_path / "cache")
    specs = [make_spec(i) for i in range(3)]
    from repro.runner import ResultCache
    run_sweep(specs, cache=ResultCache(cache_dir, shards=16))

    # crash with *nothing* journaled beyond the meta record
    store = JobStore(state_dir=str(tmp_path / "state"))
    job = store.create("sweep", specs)
    job_id = job.id
    job.close_wal()

    with ServerThread(durable_config(tmp_path)) as st:
        with st.client() as client:
            job = client.wait_job(job_id, timeout=60)
            assert job["state"] == "done"
            assert job["n_cached"] == 3
            assert client.stats()["counters"]["executions"] == 0


def test_restarted_daemon_serves_terminal_job_results(tmp_path):
    """A finished job survives the restart queryable: summary, full
    results and the event stream (terminated by a recovered end)."""
    config = durable_config(tmp_path)
    wire = [spec_wire(seed=SEED + i) for i in range(2)]
    with ServerThread(config) as st:
        with st.client() as client:
            job = client.sweep(wire)
            done = client.wait_job(job["id"], timeout=60)
            assert done["state"] == "done"
            job_id = job["id"]

    with ServerThread(durable_config(tmp_path)) as st:
        with st.client() as client:
            again = client.job(job_id)
            assert again["state"] == "done"
            assert all(r["ok"] for r in again["results"])
            events = list(client.stream_events(job_id))
            assert events[-1]["kind"] == "end"
            assert events[-1]["recovered"] is True
            assert client.stats()["counters"]["jobs_recovered"] == 1


def test_wal_records_are_wire_shaped(tmp_path):
    """The journal speaks the wire format: meta carries the specs as
    ``spec_to_wire`` dicts and results ride as progress records."""
    config = durable_config(tmp_path)
    with ServerThread(config) as st:
        with st.client() as client:
            job = client.sweep([spec_wire()])
            client.wait_job(job["id"], timeout=60)
            wal_path = os.path.join(str(tmp_path / "state"), "jobs",
                                    job["id"] + ".jsonl")
    records, dropped = load_jsonl(wal_path)
    assert dropped == 0
    kinds = [r["kind"] for r in records]
    assert kinds == ["meta", "result", "end"]
    from repro.serve import spec_from_wire
    assert spec_from_wire(records[0]["specs"][0]) == make_spec()
    assert records[1]["rec"]["ok"] is True
    assert records[2]["state"] == "done"
    # every line is valid standalone JSON (fsync'd line-at-a-time)
    for line in open(wal_path):
        json.loads(line)
