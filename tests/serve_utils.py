"""Shared harness for the serve test suites.

``ServerThread`` hosts a real :class:`repro.serve.Server` — real
sockets, real HTTP — on an ephemeral port inside a daemon thread
running its own event loop, so synchronous pytest tests can drive it
with :class:`repro.serve.ServeClient` or raw sockets and tear it down
deterministically.

``blast`` is the raw asyncio load client: N keep-alive connections
each issuing a stream of requests, returning every response body.  It
bypasses ``http.client`` so the load test measures the server, not the
client's object churn.
"""

import asyncio
import json
import threading

from repro.serve import ServeClient, ServeConfig, Server

SPEC = {"benchmark": "adpcm_enc", "n_samples": 64, "seed": 11,
        "predictor_spec": "not-taken"}


def spec_wire(**overrides) -> dict:
    wire = dict(SPEC)
    wire.update(overrides)
    return wire


class ServerThread:
    """A live daemon on 127.0.0.1:<ephemeral> for the test's duration."""

    def __init__(self, config: ServeConfig) -> None:
        config.port = 0
        self.server = Server(config)
        self._ready = threading.Event()
        self._error = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:     # surfaced by start()/stop()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        await self.server.start()
        # readiness (not just bound): WAL replay has finished, so a
        # test can submit work the moment start() returns
        await self.server.wait_ready()
        self._ready.set()
        await self.server.serve()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=10) or self._error is not None:
            raise RuntimeError("server failed to start: %r"
                               % (self._error,))
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, timeout: float = 60.0) -> ServeClient:
        return ServeClient(port=self.port, timeout=timeout)

    def stop(self) -> None:
        self.server.request_shutdown()
        self._thread.join(timeout=15)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not shut down")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


async def _client_conn(port: int, payload: bytes, n_requests: int,
                       results: list) -> None:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for _ in range(n_requests):
            writer.write(payload)
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.partition(b":")
                if name.strip().lower() == b"content-length":
                    length = int(value)
            body = await reader.readexactly(length)
            results.append((status, json.loads(body)))
    finally:
        writer.close()


def http_payload(method: str, path: str, obj=None) -> bytes:
    body = json.dumps(obj).encode() if obj is not None else b""
    head = ("%s %s HTTP/1.1\r\nHost: x\r\nContent-Type: "
            "application/json\r\nContent-Length: %d\r\n\r\n"
            % (method, path, len(body)))
    return head.encode() + body


async def _blast(port: int, payload: bytes, connections: int,
                 per_connection: int) -> list:
    results: list = []
    await asyncio.gather(*[
        _client_conn(port, payload, per_connection, results)
        for _ in range(connections)])
    return results


def blast(port: int, payload: bytes, connections: int,
          per_connection: int) -> list:
    """Fire ``connections * per_connection`` requests; returns every
    ``(status, body)`` pair."""
    return asyncio.run(_blast(port, payload, connections,
                              per_connection))
