"""Tests for the scheduler's base+offset memory alias analysis."""

from repro.asm import assemble
from repro.sched import schedule_program, static_fold_distances
from repro.sched.cfg import build_cfg
from repro.sched.scheduler import _block_deps
from repro.sim.functional import FunctionalSimulator


def deps_of(src):
    prog = assemble(".text\nmain:\n" + src)
    cfg = build_cfg(prog)
    block = cfg.blocks[0]
    return prog, _block_deps(prog, block)


class TestAliasAnalysis:
    def test_disjoint_offsets_independent(self):
        prog, deps = deps_of(
            "sw r1, -4(sp)\nlw r2, -8(sp)\nhalt\n")
        assert 0 not in deps[1]      # different slots: reorderable

    def test_same_offset_ordered(self):
        _p, deps = deps_of(
            "sw r1, -4(sp)\nlw r2, -4(sp)\nhalt\n")
        assert 0 in deps[1]          # RAW through memory

    def test_overlapping_widths_ordered(self):
        _p, deps = deps_of(
            "sw r1, -4(sp)\nlb r2, -3(sp)\nhalt\n")
        assert 0 in deps[1]          # byte inside the stored word

    def test_adjacent_byte_disjoint(self):
        _p, deps = deps_of(
            "sb r1, -4(sp)\nlb r2, -5(sp)\nhalt\n")
        assert 0 not in deps[1]

    def test_different_bases_conservative(self):
        _p, deps = deps_of(
            "sw r1, 0(r8)\nlw r2, 4(r9)\nhalt\n")
        assert 0 in deps[1]          # r8/r9 relationship unknown

    def test_modified_base_conservative(self):
        _p, deps = deps_of(
            "sw r1, 0(r8)\naddi r8, r8, 4\nlw r2, 4(r8)\nhalt\n")
        # base changed between accesses: versions differ -> ordered
        assert 0 in deps[2]

    def test_self_modifying_base_uses_old_value(self):
        # lw r4, 0(r4): the address uses the pre-write r4
        _p, deps = deps_of(
            "sw r1, 0(r4)\nlw r4, 0(r4)\nhalt\n")
        assert 0 in deps[1]          # same base version: same address

    def test_loads_never_ordered_with_loads(self):
        _p, deps = deps_of(
            "lw r1, -4(sp)\nlw r2, -4(sp)\nhalt\n")
        assert 0 not in deps[1]

    def test_store_store_same_slot_ordered(self):
        _p, deps = deps_of(
            "sw r1, -4(sp)\nsw r2, -4(sp)\nhalt\n")
        assert 0 in deps[1]          # WAW through memory


class TestSchedulingThroughStores:
    def test_predicate_load_hoists_past_unrelated_stores(self):
        """The motivating case: a branch predicate loaded from a frame
        slot can move above stores to other slots."""
        prog = assemble("""
        .text
        main:
            addiu r9, r0, 1
            sw   r9, -4(sp)        # the predicate's slot
            sw   r9, -8(sp)        # unrelated slots
            sw   r9, -12(sp)
            sw   r9, -16(sp)
            lw   r10, -4(sp)       # predicate load, right before branch
            bnez r10, out
            addi r2, r2, 1
        out: halt
        """)
        before = static_fold_distances(prog)
        sched = schedule_program(prog)
        after = static_fold_distances(sched)
        pc = prog.pc_of(6)
        assert before[pc] == 1
        assert after[pc] >= 4

        a = FunctionalSimulator(prog)
        a.run()
        b = FunctionalSimulator(sched)
        b.run()
        assert a.regs.snapshot() == b.regs.snapshot()

    def test_aliasing_store_blocks_hoist(self):
        """If one of the intervening stores hits the predicate's slot,
        the load must not move above it."""
        prog = assemble("""
        .text
        main:
            addiu r9, r0, 1
            sw   r9, -4(sp)
            addiu r9, r0, 0
            sw   r9, -4(sp)        # overwrites the slot
            lw   r10, -4(sp)
            bnez r10, out
            addi r2, r2, 1
        out: halt
        """)
        sched = schedule_program(prog)
        sim = FunctionalSimulator(sched)
        sim.run()
        assert sim.regs[10] == 0     # sees the second store
        assert sim.regs[2] == 1      # branch not taken
