"""Unit and property tests for MainMemory."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.main_memory import MainMemory, MisalignedAccess

ADDR = st.integers(min_value=0, max_value=0xFFFFFFF0)


class TestWordAccess:
    def test_default_zero(self):
        assert MainMemory().read_word(0x1000) == 0

    def test_write_read(self):
        m = MainMemory()
        m.write_word(0x1000, 0xDEADBEEF)
        assert m.read_word(0x1000) == 0xDEADBEEF

    def test_misaligned_rejected(self):
        m = MainMemory()
        with pytest.raises(MisalignedAccess):
            m.read_word(0x1002)
        with pytest.raises(MisalignedAccess):
            m.write_word(0x1001, 1)

    def test_truncates_to_32_bits(self):
        m = MainMemory()
        m.write_word(0, 0x1_0000_0001)
        assert m.read_word(0) == 1


class TestSubWordAccess:
    def test_little_endian_bytes(self):
        m = MainMemory()
        m.write_word(0x100, 0x04030201)
        assert [m.read(0x100 + i, 1) for i in range(4)] == [1, 2, 3, 4]

    def test_little_endian_halves(self):
        m = MainMemory()
        m.write_word(0x100, 0x33441122)
        assert m.read(0x100, 2) == 0x1122
        assert m.read(0x102, 2) == 0x3344

    def test_byte_write_preserves_others(self):
        m = MainMemory()
        m.write_word(0x100, 0x44332211)
        m.write(0x101, 0xAA, 1)
        assert m.read_word(0x100) == 0x4433AA11

    def test_half_write_preserves_other_half(self):
        m = MainMemory()
        m.write_word(0x100, 0x44332211)
        m.write(0x102, 0xBEEF, 2)
        assert m.read_word(0x100) == 0xBEEF2211

    def test_half_misaligned_rejected(self):
        m = MainMemory()
        with pytest.raises(MisalignedAccess):
            m.read(0x101, 2)
        with pytest.raises(MisalignedAccess):
            m.write(0x103, 1, 2)

    def test_bad_size(self):
        m = MainMemory()
        with pytest.raises(ValueError):
            m.read(0, 3)
        with pytest.raises(ValueError):
            m.write(0, 0, 8)

    @given(ADDR, st.integers(min_value=0, max_value=0xFF))
    def test_byte_roundtrip(self, addr, value):
        m = MainMemory()
        m.write(addr, value, 1)
        assert m.read(addr, 1) == value

    @given(ADDR.map(lambda a: a & ~1),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_half_roundtrip(self, addr, value):
        m = MainMemory()
        m.write(addr, value, 2)
        assert m.read(addr, 2) == value

    @given(ADDR.map(lambda a: a & ~3),
           st.lists(st.integers(min_value=0, max_value=0xFF),
                    min_size=4, max_size=4))
    def test_bytes_compose_into_word(self, addr, data):
        m = MainMemory()
        for i, b in enumerate(data):
            m.write(addr + i, b, 1)
        expect = data[0] | (data[1] << 8) | (data[2] << 16) | (data[3] << 24)
        assert m.read_word(addr) == expect


class TestBulk:
    def test_load_words(self):
        m = MainMemory()
        m.load_words([(0, 1), (4, 2), (8, 3)])
        assert m.read_block(0, 3) == [1, 2, 3]

    def test_snapshot_is_copy(self):
        m = MainMemory()
        m.write_word(0, 5)
        snap = m.snapshot()
        m.write_word(0, 6)
        assert snap[0] == 5

    def test_copy_independent(self):
        m = MainMemory()
        m.write_word(0, 5)
        c = m.copy()
        c.write_word(0, 9)
        assert m.read_word(0) == 5
        assert c.read_word(0) == 9

    def test_len_counts_touched_words(self):
        m = MainMemory()
        m.write_word(0, 1)
        m.write(5, 1, 1)   # touches word at 4
        assert len(m) == 2
