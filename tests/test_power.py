"""Unit tests for the activity-based energy model."""

import pytest

from repro.asbr import ASBRUnit, extract_branch_info
from repro.asm import assemble
from repro.power import EnergyParams, compare_energy, estimate_energy
from repro.power.model import _access_energy
from repro.predictors import BimodalPredictor, NotTakenPredictor
from repro.sim.pipeline import PipelineSimulator


@pytest.fixture()
def run_demo(fold_demo_program):
    def _run(predictor=None, asbr=None):
        sim = PipelineSimulator(fold_demo_program, predictor=predictor,
                                asbr=asbr)
        sim.run()
        return sim
    return _run


class TestModelBasics:
    def test_components_positive(self, run_demo):
        report = estimate_energy(run_demo())
        assert report.total > 0
        for name in ("pipeline", "icache", "dcache", "predictor",
                     "leakage"):
            assert report.components[name] >= 0

    def test_pipeline_dominates(self, run_demo):
        """With relative constants chosen as documented, pipeline
        activity is the biggest consumer."""
        report = estimate_energy(run_demo())
        assert report.fraction("pipeline") > 0.3

    def test_access_energy_scales_sublinearly(self):
        p = EnergyParams()
        small = _access_energy(1024, p)
        big = _access_energy(4096, p)
        assert big == pytest.approx(2 * small)   # sqrt scaling

    def test_render(self, run_demo):
        text = estimate_energy(run_demo()).render("demo")
        assert "TOTAL" in text and "pipeline" in text

    def test_no_asbr_component_without_unit(self, run_demo):
        report = estimate_energy(run_demo())
        assert "asbr" not in report.components


class TestClaims:
    def test_bigger_predictor_costs_more(self, run_demo):
        small = estimate_energy(run_demo(BimodalPredictor(64, 64)))
        big = estimate_energy(run_demo(BimodalPredictor(2048, 2048)))
        assert big.components["predictor"] > small.components["predictor"]
        assert big.components["leakage"] > small.components["leakage"]

    def test_asbr_reduces_energy(self, fold_demo_program, run_demo):
        """The paper's power claim on the demo loop: folding the hard
        branch cuts pipeline activity and total energy."""
        info = extract_branch_info(fold_demo_program,
                                   fold_demo_program.labels["br1"])
        unit = ASBRUnit.from_branch_infos([info], bdt_update="execute")
        base = estimate_energy(run_demo(NotTakenPredictor()))
        cust = estimate_energy(run_demo(NotTakenPredictor(), unit))
        assert cust.components["pipeline"] < base.components["pipeline"]
        assert compare_energy(base, cust) > 0

    def test_wrong_path_work_charged(self):
        """A mispredicting run burns more pipeline energy than a
        perfectly-predicted one of the same committed length."""
        taken_loop = assemble("""
        .text
        main:
            li r1, 30
        loop:
            addi r1, r1, -1
            bnez r1, loop
            halt
        """)
        bad = PipelineSimulator(taken_loop, predictor=NotTakenPredictor())
        bad.run()
        good = PipelineSimulator(taken_loop,
                                 predictor=BimodalPredictor(64, 64))
        good.run()
        e_bad = estimate_energy(bad)
        e_good = estimate_energy(good)
        assert bad.stats.squashed > good.stats.squashed
        assert e_bad.components["pipeline"] > e_good.components["pipeline"]

    def test_compare_energy_zero_baseline(self):
        from repro.power import EnergyReport
        assert compare_energy(EnergyReport(), EnergyReport()) == 0.0


class TestEnergyExperiment:
    def test_extension_e1_rows(self):
        from repro.experiments import energy
        from repro.experiments.common import ExperimentSetup
        setup = ExperimentSetup(n_samples=120)
        rows = energy.run(setup)
        assert len(rows) == 4
        for r in rows:
            assert r.saving > 0                       # the power claim
            assert r.customized_fetched < r.baseline_fetched
        text = energy.render(rows)
        assert "E1" in text
