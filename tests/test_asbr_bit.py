"""Unit tests for the Branch Identification Table and branch-info
extraction."""

import pytest

from repro.asbr.bit import (
    BankedBIT,
    BITS_PER_ENTRY,
    BranchIdentificationTable,
)
from repro.asbr.branch_info import (
    FoldabilityError,
    extract_branch_info,
    extract_many,
)
from repro.asm import assemble
from repro.isa.conditions import Condition
from repro.isa.encoding import decode


@pytest.fixture()
def prog():
    return assemble("""
    .data
    v: .word 3
    .text
    main:
        la   r4, v
        lw   r2, 0(r4)
        nop
        nop
        nop
    br_a:
        bgtz r2, pos
        addi r3, r3, 1
    pos:
        addi r3, r3, 2
    br_b:
        beq  r2, r0, fin
        addi r3, r3, 4
    fin:
        addu r3, r3, r0
    br_two_reg:
        bne  r2, r3, out
        nop
    out:
        halt
    """)


class TestExtraction:
    def test_basic_fields(self, prog):
        pc = prog.labels["br_a"]
        info = extract_branch_info(prog, pc)
        assert info.pc == pc
        assert info.condition is Condition.GTZ
        assert info.cond_reg == 2
        assert info.bta == prog.labels["pos"]
        assert decode(info.bti_word).op == "addi"
        assert decode(info.bfi_word).op == "addi"

    def test_bti_is_instruction_at_target(self, prog):
        info = extract_branch_info(prog, prog.labels["br_a"])
        assert info.bti_word == prog.words[prog.index_of(info.bta)]

    def test_bfi_is_fall_through(self, prog):
        pc = prog.labels["br_a"]
        info = extract_branch_info(prog, pc)
        assert info.bfi_word == prog.words[prog.index_of(pc + 4)]

    def test_beq_with_r0_is_zero_comparison(self, prog):
        info = extract_branch_info(prog, prog.labels["br_b"])
        assert info.condition is Condition.EQZ
        assert info.cond_reg == 2

    def test_two_register_compare_rejected(self, prog):
        with pytest.raises(FoldabilityError, match="zero comparison"):
            extract_branch_info(prog, prog.labels["br_two_reg"])

    def test_non_branch_rejected(self, prog):
        with pytest.raises(FoldabilityError, match="not a conditional"):
            extract_branch_info(prog, prog.labels["main"])

    def test_r0_predicate_rejected(self):
        p = assemble(".text\nmain: beqz r0, t\nnop\nt: nop\nhalt\n")
        with pytest.raises(FoldabilityError, match="r0"):
            extract_branch_info(p, p.pc_of(0))

    def test_control_bti_rejected(self):
        p = assemble("""
        .text
        main: bnez r1, t
              nop
        t:    j main
              halt
        """)
        with pytest.raises(FoldabilityError, match="control"):
            extract_branch_info(p, p.pc_of(0))

    def test_control_bfi_rejected(self):
        p = assemble("""
        .text
        main: bnez r1, t
              b main
        t:    nop
              halt
        """)
        with pytest.raises(FoldabilityError, match="control"):
            extract_branch_info(p, p.pc_of(0))

    def test_halt_replacement_rejected(self):
        p = assemble(".text\nmain: bnez r1, t\nhalt\nt: nop\nhalt\n")
        with pytest.raises(FoldabilityError):
            extract_branch_info(p, p.pc_of(0))

    def test_missing_fall_through_rejected(self):
        p = assemble(".text\nmain: nop\nt: bnez r1, t\n")
        with pytest.raises(FoldabilityError, match="fall-through"):
            extract_branch_info(p, p.pc_of(1))

    def test_extract_many_order(self, prog):
        pcs = [prog.labels["br_b"], prog.labels["br_a"]]
        infos = extract_many(prog, pcs)
        assert [i.pc for i in infos] == pcs

    def test_describe_mentions_label(self, prog):
        info = extract_branch_info(prog, prog.labels["br_a"])
        assert "pos" in info.describe(prog)


class TestBIT:
    def test_load_and_lookup(self, prog):
        bit = BranchIdentificationTable(capacity=4)
        info = extract_branch_info(prog, prog.labels["br_a"])
        bit.load([info])
        entry = bit.lookup(info.pc)
        assert entry is not None
        assert entry.bta == info.bta
        assert entry.bti.op == "addi"
        assert bit.lookup(info.pc + 4) is None

    def test_capacity_enforced(self, prog):
        bit = BranchIdentificationTable(capacity=1)
        infos = extract_many(prog, [prog.labels["br_a"],
                                    prog.labels["br_b"]])
        with pytest.raises(ValueError, match="capacity"):
            bit.load(infos)

    def test_duplicate_pc_rejected(self, prog):
        info = extract_branch_info(prog, prog.labels["br_a"])
        bit = BranchIdentificationTable(capacity=4)
        with pytest.raises(ValueError, match="duplicate"):
            bit.load([info, info])

    def test_reload_replaces(self, prog):
        bit = BranchIdentificationTable(capacity=4)
        a = extract_branch_info(prog, prog.labels["br_a"])
        b = extract_branch_info(prog, prog.labels["br_b"])
        bit.load([a])
        bit.load([b])
        assert bit.lookup(a.pc) is None
        assert bit.lookup(b.pc) is not None

    def test_len_and_iter(self, prog):
        bit = BranchIdentificationTable(capacity=4)
        bit.load(extract_many(prog, [prog.labels["br_a"]]))
        assert len(bit) == 1
        assert [e.pc for e in bit] == [prog.labels["br_a"]]

    def test_state_bits(self):
        assert BranchIdentificationTable(16).state_bits == \
            16 * BITS_PER_ENTRY

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BranchIdentificationTable(0)


class TestBankedBIT:
    def test_active_bank_only(self, prog):
        banked = BankedBIT(num_banks=2, capacity=4)
        a = extract_branch_info(prog, prog.labels["br_a"])
        b = extract_branch_info(prog, prog.labels["br_b"])
        banked.load_bank(0, [a])
        banked.load_bank(1, [b])
        assert banked.lookup(a.pc) is not None
        assert banked.lookup(b.pc) is None
        banked.select_bank(1)
        assert banked.lookup(a.pc) is None
        assert banked.lookup(b.pc) is not None

    def test_switch_count(self):
        banked = BankedBIT(num_banks=3)
        banked.select_bank(1)
        banked.select_bank(1)     # no-op switch not counted
        banked.select_bank(2)
        assert banked.switches == 2

    def test_bad_bank_rejected(self):
        with pytest.raises(ValueError):
            BankedBIT(num_banks=2).select_bank(5)

    def test_state_scales_with_banks(self):
        one = BankedBIT(num_banks=1, capacity=8).state_bits
        two = BankedBIT(num_banks=2, capacity=8).state_bits
        assert two == 2 * one
