"""Unit tests for benefit-ranked branch selection (paper Section 6)."""

import pytest

from repro.asm import assemble
from repro.predictors import NotTakenPredictor, evaluate_on_trace
from repro.profiling import BranchProfiler, select_branches
from repro.sim.functional import collect_branch_trace

SRC = """
.data
arr: .word 1, 2, 3, 4, 5, 6, 7, 8
.text
main:
    la   r4, arr
    li   r5, 8
    li   r6, 0
loop:
    lw   r2, 0(r4)
    andi r9, r2, 1
    andi r10, r2, 2
    addi r4, r4, 4
    addu r6, r6, r2
    addi r5, r5, -1
br_hot:
    bnez r9, odd          # alternates: hard to predict, foldable
odd:
    addu r6, r6, r0
br_near:
    bnez r10, two         # foldable distance but executes same count
two:
    addu r6, r6, r0
    bnez r5, loop
    halt
"""


@pytest.fixture()
def profiled():
    prog = assemble(SRC)
    profile = BranchProfiler().profile(prog)
    trace = collect_branch_trace(prog)
    accuracy = evaluate_on_trace(NotTakenPredictor(), trace)
    return prog, profile, accuracy


class TestFilters:
    def test_selects_foldable_zero_comparisons(self, profiled):
        prog, profile, acc = profiled
        sel = select_branches(profile, acc, min_count=4)
        assert prog.labels["br_hot"] in sel.pcs
        assert prog.labels["br_near"] in sel.pcs

    def test_min_count_filter(self, profiled):
        _prog, profile, acc = profiled
        sel = select_branches(profile, acc, min_count=100)
        assert not sel.selected
        assert any("times" in r for r in sel.rejected.values())

    def test_capacity_truncates_by_rank(self, profiled):
        _prog, profile, acc = profiled
        all_sel = select_branches(profile, acc, min_count=4)
        one = select_branches(profile, acc, min_count=4, bit_capacity=1)
        assert len(one.selected) == 1
        assert one.selected[0].pc == all_sel.selected[0].pc
        assert any("capacity" in r for r in one.rejected.values())

    def test_halt_fallthrough_rejected(self, profiled):
        """The loop-back branch falls through into halt, which the
        folding unit cannot inject."""
        _prog, profile, acc = profiled
        sel = select_branches(profile, acc, min_count=4)
        loop_back = max(profile.branches)    # highest pc = bnez r5
        assert loop_back not in sel.pcs
        assert "halt" in sel.rejected[loop_back]

    def test_fold_fraction_filter(self):
        """A predicate defined immediately before its branch folds on
        no execution: rejected for fold fraction."""
        prog = assemble("""
        .text
        main:
            li   r5, 6
        loop:
            addu r6, r6, r5
            addi r5, r5, -1
        br:
            bnez r5, loop
            addu r6, r6, r0
            halt
        """)
        profile = BranchProfiler().profile(prog)
        sel = select_branches(profile, None, min_count=4)
        br = prog.labels["br"]
        assert br not in sel.pcs
        assert "fold fraction" in sel.rejected[br]

    def test_rejection_reasons_exhaustive(self, profiled):
        _prog, profile, acc = profiled
        sel = select_branches(profile, acc, min_count=4)
        covered = sel.pcs | set(sel.rejected)
        assert covered == set(profile.branches)


class TestRanking:
    def test_harder_branch_ranks_higher(self, profiled):
        """br_hot alternates (50% not-taken accuracy); br_near is taken
        every other too... rank by benefit must put lower-accuracy
        first when counts tie."""
        _prog, profile, acc = profiled
        sel = select_branches(profile, acc, min_count=4)
        benefits = [s.benefit for s in sel.selected]
        assert benefits == sorted(benefits, reverse=True)

    def test_accuracy_fallback_without_baseline(self, profiled):
        _prog, profile, _acc = profiled
        sel = select_branches(profile, None, min_count=4)
        for s in sel.selected:
            expect = max(s.stats.taken_rate, 1 - s.stats.taken_rate)
            assert s.accuracy == pytest.approx(expect)

    def test_describe_output(self, profiled):
        _prog, profile, acc = profiled
        sel = select_branches(profile, acc, min_count=4)
        text = sel.describe()
        assert "selected" in text
        assert "br0" in text

    def test_infos_ready_for_bit(self, profiled):
        from repro.asbr import ASBRUnit
        _prog, profile, acc = profiled
        sel = select_branches(profile, acc, min_count=4)
        unit = ASBRUnit.from_branch_infos(sel.infos)
        for info in sel.infos:
            assert unit.bit.lookup(info.pc) is not None
