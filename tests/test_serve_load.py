"""Load and coalescing tests against the live serve daemon.

Satellite contract for the PR: thousands of concurrent requests
through the *real* HTTP server (real sockets, ephemeral port) must

* sustain >= 1000 cached requests/s against a warm cache, and
* collapse N identical concurrent submissions of an *uncached* spec
  onto exactly one pool execution — observable through the
  ``ServeConfig.on_execute`` counter hook and the server's own
  ``executions`` counter.

The throughput bar is deliberately far below what the daemon does on
an idle box (~10k req/s) so the test stays robust on loaded CI
runners while still catching an accidental per-request execution or
cache stampede, either of which is orders of magnitude slower.
"""

import threading
import time

import pytest

from repro.serve import ServeConfig

from tests.serve_utils import ServerThread, blast, http_payload, spec_wire

CONNECTIONS = 20
PER_CONNECTION = 150          # 3000 requests total
MIN_CACHED_RPS = 1000.0


@pytest.fixture
def server(tmp_path):
    config = ServeConfig(cache_dir=str(tmp_path / "cache"), shards=256,
                         workers=0)
    with ServerThread(config) as st:
        yield st


class TestWarmCacheThroughput:
    def test_cached_throughput_floor(self, server):
        client = server.client()
        warm = client.run(spec_wire())
        assert warm["ok"]
        assert warm["source"] == "executed"

        payload = http_payload("POST", "/run", spec_wire())
        t0 = time.monotonic()
        results = blast(server.port, payload, CONNECTIONS,
                        PER_CONNECTION)
        elapsed = time.monotonic() - t0

        assert len(results) == CONNECTIONS * PER_CONNECTION
        assert all(status == 200 for status, _ in results)
        assert all(body["ok"] for _, body in results)
        # warm path: every response comes from memory or disk, and the
        # answer is the one execution's answer
        cycles = {body["stats"]["cycles"]
                  for _, body in results}
        assert cycles == {warm["stats"]["cycles"]}
        assert {body["source"] for _, body in results} <= \
            {"memory", "disk"}

        rps = len(results) / elapsed
        assert rps >= MIN_CACHED_RPS, \
            "cached throughput %.0f req/s below %.0f req/s floor" \
            % (rps, MIN_CACHED_RPS)

        stats = client.stats()
        assert stats["counters"]["executions"] == 1
        client.close()

    def test_mixed_get_endpoints_stay_responsive(self, server):
        """Sanity: the hot path isn't special-cased to /run only."""
        client = server.client()
        client.run(spec_wire())
        for payload, check in [
            (http_payload("GET", "/healthz"),
             lambda b: b["ok"] is True),
            (http_payload("GET", "/stats"),
             lambda b: b["counters"]["executions"] == 1),
        ]:
            results = blast(server.port, payload, 8, 50)
            assert len(results) == 400
            assert all(status == 200 for status, _ in results)
            assert all(check(body) for _, body in results)
        client.close()


class TestCoalescing:
    N_CLIENTS = 24

    def test_identical_concurrent_submissions_execute_once(self,
                                                           tmp_path):
        """N clients race to submit the same uncached spec; the hook
        proves the pool ran it exactly once."""
        executed = []
        gate = threading.Event()

        def on_execute(spec):
            executed.append(spec)
            gate.wait(timeout=5.0)   # hold the leader so followers pile up

        config = ServeConfig(cache_dir=str(tmp_path / "cache"),
                             shards=256, workers=0,
                             on_execute=on_execute)
        with ServerThread(config) as st:
            responses = []
            errors = []

            def submit():
                client = st.client()
                try:
                    responses.append(client.run(spec_wire()))
                except Exception as exc:   # pragma: no cover
                    errors.append(exc)
                finally:
                    client.close()

            threads = [threading.Thread(target=submit)
                       for _ in range(self.N_CLIENTS)]
            for t in threads:
                t.start()
            # wait until the leader is inside the execution, then give
            # the followers time to arrive and park on the future
            deadline = time.monotonic() + 5.0
            while not executed and time.monotonic() < deadline:
                time.sleep(0.01)
            assert executed, "no execution started"
            time.sleep(0.3)
            gate.set()
            for t in threads:
                t.join(timeout=30)

            assert not errors
            assert len(responses) == self.N_CLIENTS
            assert len(executed) == 1, \
                "coalescing failed: %d executions" % len(executed)
            assert all(r["ok"] for r in responses)
            cycles = {r["stats"]["cycles"] for r in responses}
            assert len(cycles) == 1
            sources = {r["source"] for r in responses}
            assert "executed" in sources
            assert sources <= {"executed", "coalesced", "memory",
                               "disk"}

            client = st.client()
            stats = client.stats()
            assert stats["counters"]["executions"] == 1
            assert stats["counters"]["coalesced"] >= 1
            client.close()

    def test_engine_variants_coalesce_onto_one_key(self, tmp_path):
        """interp and blocks requests for the same point share a key
        (PR 5 invariant), so the second engine is a pure cache hit."""
        config = ServeConfig(cache_dir=str(tmp_path / "cache"),
                             shards=256, workers=0)
        with ServerThread(config) as st:
            client = st.client()
            first = client.run(spec_wire(engine="interp"))
            second = client.run(spec_wire(engine="blocks"))
            assert first["key"] == second["key"]
            assert first["source"] == "executed"
            assert second["source"] == "memory"
            assert second["stats"] == \
                first["stats"]
            assert client.stats()["counters"]["executions"] == 1
            client.close()
