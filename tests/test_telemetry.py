"""Tests for the telemetry layer (events, sinks, metrics, renderers).

The load-bearing guarantees:

* attaching a tracer must not change simulated timing at all — the
  traced fast path is locked stat-for-stat against the plain one across
  predictor/ASBR/folding configurations;
* the event stream must be *internally consistent* (lifecycle ordering)
  and *externally consistent* (event counts reconcile exactly with
  ``PipelineStats``, fold hits with ``folds_committed``, BDT-busy
  misses with ``ASBRStats.invalid_fallbacks``);
* traces survive a JSONL round trip bit-for-bit, and bounded sinks
  truncate loudly, never silently.
"""

import dataclasses

import pytest

from repro.asbr import ASBRUnit, extract_branch_info
from repro.asm import assemble
from repro.predictors import BimodalPredictor, make_predictor
from repro.sim.functional import FunctionalSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.telemetry import (
    MISS_BDT_BUSY,
    MISS_NO_BIT_ENTRY,
    JsonlTraceSink,
    MetricsRegistry,
    RingBufferSink,
    TraceEvent,
    Tracer,
    lifecycle_cycles,
    make_tracer,
    merge_registries,
    read_jsonl,
    render_branch_report,
    render_counters,
    render_pipeview,
    retire_observer,
)
from repro.telemetry import events as ev

from tests.conftest import COUNT_LOOP, FOLD_DEMO


def _fold_demo_asbr(program, bdt_update="execute"):
    info = extract_branch_info(program, program.labels["br1"])
    return ASBRUnit.from_branch_infos([info], bdt_update=bdt_update)


def _run_pair(source, predictor_spec=None, asbr=False,
              bdt_update="execute", fold_unconditional=False):
    """(plain stats, traced stats, registry, ring) for one config."""
    def build(trace):
        prog = assemble(source)
        kwargs = {}
        if predictor_spec is not None:
            kwargs["predictor"] = make_predictor(predictor_spec)
        if asbr:
            kwargs["asbr"] = _fold_demo_asbr(prog, bdt_update)
        return PipelineSimulator(prog, trace=trace,
                                 fold_unconditional=fold_unconditional,
                                 **kwargs)

    plain = build(None).run()
    registry, ring = MetricsRegistry(), RingBufferSink()
    traced = build(Tracer(registry, ring)).run()
    return plain, traced, registry, ring


CONFIGS = [
    ("count-default", COUNT_LOOP, None, False, "execute", False),
    ("count-bimodal", COUNT_LOOP, "bimodal-512-512", False, "execute",
     False),
    ("fold-gshare", FOLD_DEMO, "gshare-512-8", False, "execute", False),
    ("fold-asbr-execute", FOLD_DEMO, "bimodal-512-512", True, "execute",
     False),
    ("fold-asbr-commit", FOLD_DEMO, "bimodal-512-512", True, "commit",
     False),
    ("fold-uncond", FOLD_DEMO, None, False, "execute", True),
]


class TestTracedEquivalence:
    """The tracer is an observer, never a participant."""

    @pytest.mark.parametrize(
        "source,predictor,asbr,bdt_update,uncond",
        [c[1:] for c in CONFIGS], ids=[c[0] for c in CONFIGS])
    def test_stats_identical(self, source, predictor, asbr, bdt_update,
                             uncond):
        plain, traced, _, _ = _run_pair(
            source, predictor, asbr, bdt_update, uncond)
        assert dataclasses.asdict(plain) == dataclasses.asdict(traced)

    def test_architectural_state_identical(self):
        p1 = PipelineSimulator(assemble(FOLD_DEMO))
        p1.run()
        p2 = PipelineSimulator(assemble(FOLD_DEMO),
                               trace=make_tracer(with_ring=True))
        p2.run()
        assert [p1.regs[i] for i in range(32)] \
            == [p2.regs[i] for i in range(32)]


class TestOrdering:
    """Lifecycle invariants of the event stream."""

    @pytest.fixture()
    def demo_events(self):
        _, _, _, ring = _run_pair(FOLD_DEMO, "bimodal-512-512")
        return ring.events

    def test_stage_cycles_monotonic(self, demo_events):
        rows = lifecycle_cycles(demo_events)
        assert rows, "no instructions traced"
        for seq, fetch, decode, issue, commit, squash in rows:
            assert fetch is not None
            if squash is not None:
                # squashed instructions never issue or commit
                assert issue is None and commit is None
                assert fetch <= squash
                continue
            assert commit is not None, "seq %d lost" % seq
            assert fetch < decode < issue < commit

    def test_seq_is_fetch_order(self, demo_events):
        rows = lifecycle_cycles(demo_events)
        seqs = [r[0] for r in rows]
        assert seqs == list(range(len(rows)))   # dense, no gaps
        fetches = [r[1] for r in rows]
        assert fetches == sorted(fetches)       # fetched in seq order

    def test_events_cycle_ordered(self, demo_events):
        cycles = [e.cycle for e in demo_events]
        assert cycles == sorted(cycles)


class TestReconciliation:
    """Event counts must reconcile exactly with PipelineStats."""

    def test_counts_match_stats(self):
        plain, traced, reg, _ = _run_pair(FOLD_DEMO, "bimodal-512-512")
        assert reg.count(ev.FETCH) == traced.fetched
        assert reg.count(ev.COMMIT) == traced.committed
        assert reg.count(ev.SQUASH) == traced.squashed
        assert reg.count(ev.BRANCH) == traced.branches
        assert reg.total_branch_executions == traced.branches
        mispredicts = sum(b.mispredicts for b in reg.branches.values())
        assert mispredicts == traced.branch_mispredicts

    def test_fold_hits_match_folds_committed(self):
        prog = assemble(FOLD_DEMO)
        asbr = _fold_demo_asbr(prog)
        reg = MetricsRegistry()
        stats = PipelineSimulator(prog, predictor=BimodalPredictor(512, 512),
                                  asbr=asbr, trace=Tracer(reg)).run()
        assert stats.folds_committed > 0
        assert reg.total_fold_hits == stats.folds_committed
        busy = sum(b.miss_bdt_busy for b in reg.branches.values())
        assert busy == asbr.stats.invalid_fallbacks
        # every fold attempt either hits or misses with a known reason
        attempts = reg.count(ev.FOLD_HIT) + reg.count(ev.FOLD_MISS)
        assert attempts == sum(
            b.fold_fetched + b.miss_no_bit + b.miss_bdt_busy
            for b in reg.branches.values())

    def test_adpcm_enc_branch_report_reconciles(self):
        """Acceptance: the per-branch table for a real workload sums
        exactly to the headline stats."""
        from repro.runner import RunSpec, execute_spec_metrics
        stats, metrics = execute_spec_metrics(
            RunSpec("adpcm_enc", 200, 1, "bimodal-2048", with_asbr=True))
        reg = MetricsRegistry.from_dict(metrics)
        assert reg.total_branch_executions == stats.branches
        assert reg.total_fold_hits == stats.folds_committed > 0
        assert reg.count(ev.COMMIT) == stats.committed
        report = render_branch_report(reg)
        assert "per-branch telemetry" in report

    def test_producer_distance_observed(self):
        _, _, reg, _ = _run_pair(FOLD_DEMO, "bimodal-512-512")
        br1 = assemble(FOLD_DEMO).labels["br1"]
        b = reg.branches[br1]
        # andi r9 ... sits 6 dynamic instructions ahead of beqz r9
        assert b.typical_distance() == 6


class TestFunctionalTrace:
    def test_retire_events(self):
        prog = assemble(COUNT_LOOP)
        reg, ring = MetricsRegistry(), RingBufferSink()
        sim = FunctionalSimulator(prog)
        n = sim.run(trace=Tracer(reg, ring))
        assert reg.count(ev.RETIRE) == n == ring.emitted
        assert ring.events[0].pc == prog.entry
        # seq mirrors retire order in the clockless model
        assert [e.seq for e in ring.events] == list(range(n))


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _, _, _, ring = _run_pair(FOLD_DEMO, "bimodal-512-512")
        with JsonlTraceSink(path) as sink:
            for e in ring.events:
                sink.emit(e)
        back = read_jsonl(path)
        assert back == ring.events          # TraceEvent defines __eq__
        assert not sink.truncated

    def test_jsonl_truncates_loudly(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlTraceSink(path, max_bytes=200)
        for i in range(100):
            sink.emit(TraceEvent(i, ev.FETCH, 0x400000 + 4 * i, i))
        sink.close()
        assert sink.truncated and sink.dropped > 0
        events = read_jsonl(path)
        assert events[-1].kind == ev.TRUNCATED
        assert events[-1].data["dropped"] == sink.dropped
        assert len(events) - 1 == sink.written
        with pytest.raises(ValueError):
            sink.emit(TraceEvent(0, ev.FETCH))

    def test_ring_buffer_bounds(self):
        ring = RingBufferSink(capacity=4)
        for i in range(10):
            ring.emit(TraceEvent(i, ev.FETCH, seq=i))
        assert len(ring) == 4
        assert ring.emitted == 10 and ring.evicted == 6
        assert [e.cycle for e in ring] == [6, 7, 8, 9]

    def test_event_json_compact(self):
        e = TraceEvent(7, ev.FOLD_MISS, 0x400010, 3,
                       {"reason": MISS_NO_BIT_ENTRY})
        assert TraceEvent.from_json(e.to_json()) == e
        bare = TraceEvent(7, ev.BDT_UPDATE)
        assert '"p"' not in bare.to_json()   # zero fields omitted
        assert TraceEvent.from_json(bare.to_json()) == bare


class TestMetricsSerde:
    def test_round_trip_and_merge(self):
        _, _, reg, _ = _run_pair(FOLD_DEMO, "bimodal-512-512", asbr=True)
        back = MetricsRegistry.from_dict(reg.to_dict())
        assert back.to_dict() == reg.to_dict()
        both = merge_registries([reg, back])
        assert both.total_branch_executions \
            == 2 * reg.total_branch_executions
        assert both.total_fold_hits == 2 * reg.total_fold_hits
        pc, b = reg.sorted_branches()[0]
        merged_b = both.branches[pc]
        assert merged_b.executions == 2 * b.executions
        for d, n in b.distances.items():
            assert merged_b.distances[d] == 2 * n

    def test_reasons_are_the_public_constants(self):
        assert MISS_NO_BIT_ENTRY == "no_bit_entry"
        assert MISS_BDT_BUSY == "bdt_busy"


GOLDEN_PIPEVIEW = """\
pipeline timeline: cycles 13..22 ('|' every 10)
 seq pc         ..+....|..
   4 0x00400010 FDXMW.....  taken MISPREDICT
   5 0x00400014 .Fx.......  squashed
   6 0x00400008 ...FDXMW..
   7 0x0040000c ....FDXMW.
   8 0x00400010 .....FDXMW  taken MISPREDICT
   9 0x00400014 ......Fx..  squashed"""


class TestRenderers:
    def test_golden_pipeview(self):
        """Locked render: one loop iteration of COUNT_LOOP under the
        default predictor, mispredict + squash and all."""
        ring = RingBufferSink()
        PipelineSimulator(assemble(COUNT_LOOP),
                          trace=Tracer(ring)).run()
        assert render_pipeview(ring.events, limit=6, skip=4) \
            == GOLDEN_PIPEVIEW

    def test_pipeview_empty(self):
        assert "no instruction events" in render_pipeview([])

    def test_branch_report_labels(self):
        prog = assemble(FOLD_DEMO)
        reg = MetricsRegistry()
        PipelineSimulator(prog, predictor=BimodalPredictor(512, 512),
                          trace=Tracer(reg)).run()
        report = render_branch_report(reg, prog)
        assert "br1" in report
        assert "total" in report

    def test_counters_render(self):
        _, _, reg, _ = _run_pair(COUNT_LOOP)
        text = render_counters(reg)
        assert "commit=" in text and "fetch=" in text
