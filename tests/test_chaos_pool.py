"""Chaos tests for the hardened runner (repro.runner.pool).

Each test manufactures one failure mode the pool must absorb without
hanging or losing the sweep:

* a worker SIGKILLed mid-task (the classic ``pool.map`` deadlock);
* a worker hung past ``task_timeout``;
* a poisoned spec that always raises (quarantined as FailedResult);
* a corrupted on-disk cache entry read mid-sweep;
* a platform where the pool cannot be built at all (serial fallback).

Worker-side fault hooks are injected by monkeypatching the module
attribute the pool resolves its task function from; forked workers
inherit the patched module, so the tests require the ``fork`` start
method (the default on Linux) and skip elsewhere.  First-call-only
faults coordinate through an ``O_EXCL`` sentinel file shared via the
environment — exactly one attempt trips, every retry runs clean.
"""

import dataclasses
import json
import multiprocessing
import os
import signal
import time

import pytest

import repro.runner.pool as pool_mod
from repro.runner import (
    FailedResult,
    ResultCache,
    RunSpec,
    TaskTimeout,
    key_for_spec,
    map_specs,
    run_sweep,
)
from repro.runner.pool import execute_spec as real_execute
from repro.sim.pipeline import PipelineStats

N, SEED = 64, 11

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker fault hooks reach workers via fork inheritance")

_SENTINEL_ENV = "REPRO_CHAOS_SENTINEL"


def spec_of(predictor="not-taken", seed=SEED):
    return RunSpec("adpcm_enc", N, seed, predictor)


POISON = spec_of(predictor="no-such-predictor")


def _trip_once():
    """True exactly once per sentinel file, across processes."""
    path = os.environ[_SENTINEL_ENV]
    try:
        os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def _kill_self_once(spec):
    if _trip_once():
        os.kill(os.getpid(), signal.SIGKILL)
    return real_execute(spec)


def _hang_once(spec):
    if _trip_once():
        time.sleep(600)
    return real_execute(spec)


def _hang_always(spec):
    time.sleep(600)


def _arm(monkeypatch, tmp_path, fn):
    monkeypatch.setenv(_SENTINEL_ENV, str(tmp_path / "tripped"))
    monkeypatch.setattr(pool_mod, "execute_spec", fn)


def as_dicts(stats_list):
    return [dataclasses.asdict(s) for s in stats_list]


# ----------------------------------------------------------------------
# crashed / hung workers
# ----------------------------------------------------------------------
@fork_only
def test_sigkilled_worker_does_not_lose_the_sweep(tmp_path, monkeypatch):
    _arm(monkeypatch, tmp_path, _kill_self_once)
    specs = [spec_of(seed=SEED + i) for i in range(3)]
    results = map_specs(specs, workers=3, task_timeout=6, retries=2,
                        backoff=0, on_error="return")
    assert all(isinstance(r, PipelineStats) for r in results)
    assert as_dicts(results) == as_dicts([real_execute(s) for s in specs])


@fork_only
def test_hung_worker_times_out_and_retries(tmp_path, monkeypatch):
    _arm(monkeypatch, tmp_path, _hang_once)
    specs = [spec_of(), spec_of(seed=SEED + 1)]
    results = map_specs(specs, workers=2, task_timeout=4, retries=1,
                        backoff=0, on_error="return")
    assert all(isinstance(r, PipelineStats) for r in results)


@fork_only
def test_hung_worker_without_retries_raises_task_timeout(tmp_path,
                                                         monkeypatch):
    _arm(monkeypatch, tmp_path, _hang_once)
    specs = [spec_of(), spec_of(seed=SEED + 1)]
    with pytest.raises(TaskTimeout):
        map_specs(specs, workers=2, task_timeout=2.5, retries=0,
                  backoff=0)


@fork_only
def test_hung_worker_out_of_retries_becomes_failed_result(tmp_path,
                                                          monkeypatch):
    # every call hangs: even the retry times out, so the slot must end
    # as a timeout FailedResult rather than a hang or an exception
    monkeypatch.setattr(pool_mod, "execute_spec", _hang_always)
    specs = [spec_of(), spec_of(seed=SEED + 1)]
    results = map_specs(specs, workers=2, task_timeout=1.5, retries=1,
                        backoff=0, on_error="return")
    for r in results:
        assert isinstance(r, FailedResult)
        assert r.kind == "timeout"
        assert r.attempts == 2
        assert "FAILED[timeout" in r.render()


# ----------------------------------------------------------------------
# poisoned specs
# ----------------------------------------------------------------------
def test_poisoned_spec_quarantined_inline():
    results = map_specs([spec_of(), POISON], workers=1,
                        on_error="return")
    assert isinstance(results[0], PipelineStats)
    failed = results[1]
    assert isinstance(failed, FailedResult)
    assert failed.kind == "error" and failed.attempts == 1
    assert "no-such-predictor" in failed.error


@fork_only
def test_poisoned_spec_quarantined_pooled():
    specs = [spec_of(), POISON, spec_of(seed=SEED + 1)]
    results = map_specs(specs, workers=3, task_timeout=30,
                        on_error="return")
    assert isinstance(results[0], PipelineStats)
    assert isinstance(results[2], PipelineStats)
    assert isinstance(results[1], FailedResult)
    assert results[1].kind == "error"


def test_default_on_error_still_raises():
    with pytest.raises(ValueError):
        map_specs([POISON], workers=1)


def test_invalid_on_error_rejected():
    with pytest.raises(ValueError):
        map_specs([spec_of()], workers=1, on_error="ignore")


def test_retry_recovers_from_transient_error(monkeypatch):
    calls = {"n": 0}

    def flaky(spec):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return real_execute(spec)

    monkeypatch.setattr(pool_mod, "execute_spec", flaky)
    (result,) = map_specs([spec_of()], workers=1, retries=1, backoff=0)
    assert isinstance(result, PipelineStats)
    assert calls["n"] == 2


def test_retries_exhausted_inline_counts_attempts(monkeypatch):
    def always_fails(spec):
        raise RuntimeError("permanent")

    monkeypatch.setattr(pool_mod, "execute_spec", always_fails)
    (result,) = map_specs([spec_of()], workers=1, retries=2, backoff=0,
                          on_error="return")
    assert isinstance(result, FailedResult)
    assert result.attempts == 3
    assert "permanent" in result.error


# ----------------------------------------------------------------------
# degraded environments
# ----------------------------------------------------------------------
def test_unbuildable_pool_degrades_to_serial(monkeypatch):
    monkeypatch.setattr(pool_mod, "_try_build_pool", lambda procs: None)
    specs = [spec_of(), spec_of(seed=SEED + 1)]
    results = map_specs(specs, workers=4)
    assert as_dicts(results) == as_dicts([real_execute(s) for s in specs])


# ----------------------------------------------------------------------
# sweeps under chaos
# ----------------------------------------------------------------------
def test_run_sweep_quarantines_and_never_caches_failures(tmp_path):
    cache = ResultCache(str(tmp_path))
    specs = [spec_of(), POISON]
    results = run_sweep(specs, cache=cache, on_error="return")
    assert isinstance(results[0], PipelineStats)
    assert isinstance(results[1], FailedResult)
    # only the healthy spec landed on disk
    assert os.listdir(str(tmp_path)) == [key_for_spec(specs[0]) + ".json"]
    # a clean rerun recomputes the quarantined spec (and fails again)
    warm = run_sweep(specs, cache=ResultCache(str(tmp_path)),
                     on_error="return")
    assert isinstance(warm[1], FailedResult)


def test_corrupted_cache_entry_mid_sweep_recovers(tmp_path):
    cache = ResultCache(str(tmp_path))
    (first,) = run_sweep([spec_of()], cache=cache)
    path = os.path.join(str(tmp_path), key_for_spec(spec_of()) + ".json")
    entry = json.loads(open(path).read())
    entry["stats"]["cycles"] += 1          # silent payload corruption
    with open(path, "w") as f:
        json.dump(entry, f)

    fresh = ResultCache(str(tmp_path))
    (again,) = run_sweep([spec_of()], cache=fresh)
    assert fresh.dropped == 1              # checksum caught the tamper
    assert dataclasses.asdict(again) == dataclasses.asdict(first)
    # the recomputed entry is valid again
    assert ResultCache(str(tmp_path)).get(key_for_spec(spec_of())) \
        is not None


@fork_only
def test_sweep_survives_sigkill_with_cache(tmp_path, monkeypatch):
    _arm(monkeypatch, tmp_path / "s", _kill_self_once)
    os.makedirs(str(tmp_path / "s"))
    cache = ResultCache(str(tmp_path / "cache"))
    specs = [spec_of(seed=SEED + i) for i in range(3)]
    results = run_sweep(specs, workers=3, cache=cache, task_timeout=6,
                        retries=2, on_error="return")
    assert all(isinstance(r, PipelineStats) for r in results)
    assert len(os.listdir(str(tmp_path / "cache"))) == 3
