"""Tests for the minic compiler: lexer, parser, codegen, execution."""

import pytest

from repro.minic import (
    CodegenError,
    LexerError,
    ParseError,
    compile_source,
    compile_to_program,
    parse,
    tokenize,
)
from repro.sim.functional import FunctionalSimulator


def run_main(body_or_src, is_full=False):
    """Compile and run; returns (v0, simulator)."""
    src = body_or_src if is_full else \
        "int main() { %s }" % body_or_src
    prog = compile_to_program(src)
    sim = FunctionalSimulator(prog)
    sim.run(max_instructions=2_000_000)
    return sim.regs[2], sim


def returns(expr: str) -> int:
    value, _ = run_main("return %s;" % expr)
    return value - 0x100000000 if value & 0x80000000 else value


class TestLexer:
    def test_tokens(self):
        kinds = [t.kind for t in tokenize("int x = 42;")]
        assert kinds == ["kw", "ident", "=", "int", ";", "eof"]

    def test_hex_literals(self):
        toks = tokenize("0xFF")
        assert toks[0].value == "0xFF"

    def test_comments_stripped(self):
        toks = tokenize("a // line\n/* block\nblock */ b")
        assert [t.value for t in toks[:-1]] == ["a", "b"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_two_char_operators(self):
        kinds = [t.kind for t in tokenize("a <= b << c && d")]
        assert "<=" in kinds and "<<" in kinds and "&&" in kinds

    def test_unterminated_comment(self):
        with pytest.raises(LexerError):
            tokenize("/* oops")

    def test_bad_character(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")


class TestParser:
    def test_precedence(self):
        unit = parse("int main() { return 1 + 2 * 3; }")
        ret = unit.functions[0].body[0]
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_left_associativity(self):
        unit = parse("int main() { return 10 - 3 - 2; }")
        expr = unit.functions[0].body[0].value
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parens_override(self):
        unit = parse("int main() { return (1 + 2) * 3; }")
        assert unit.functions[0].body[0].value.op == "*"

    def test_global_array_with_init(self):
        unit = parse("int t[4] = {1, 2, 3};\nint main() { return 0; }")
        g = unit.globals[0]
        assert g.size == 4 and g.init == [1, 2, 3]

    def test_too_many_params(self):
        with pytest.raises(ParseError):
            parse("int f(int a, int b, int c, int d, int e) { return 0; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { return 1 }")

    def test_too_many_initialisers(self):
        with pytest.raises(ParseError):
            parse("int t[2] = {1,2,3};\nint main(){return 0;}")


class TestExpressions:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2", 3),
        ("10 - 4", 6),
        ("6 * 7", 42),
        ("17 / 5", 3),
        ("-17 / 5", -3),            # C truncation
        ("17 % 5", 2),
        ("-17 % 5", -2),            # sign follows dividend
        ("1 << 10", 1024),
        ("-8 >> 1", -4),            # arithmetic shift
        ("12 & 10", 8),
        ("12 | 10", 14),
        ("12 ^ 10", 6),
        ("~0", -1),
        ("-(5)", -5),
        ("!0", 1),
        ("!7", 0),
        ("3 < 4", 1),
        ("4 < 3", 0),
        ("3 <= 3", 1),
        ("4 > 3", 1),
        ("3 >= 4", 0),
        ("5 == 5", 1),
        ("5 != 5", 0),
        ("1 && 2", 1),
        ("1 && 0", 0),
        ("0 || 3", 1),
        ("0 || 0", 0),
        ("2 + 3 * 4", 14),
        ("(2 + 3) * 4", 20),
        ("100 - 10 - 5", 85),
        ("1 + 2 == 3 && 4 < 5", 1),
    ])
    def test_value(self, expr, expected):
        assert returns(expr) == expected

    def test_short_circuit_and(self):
        src = """
        int g = 0;
        int touch() { g = 99; return 1; }
        int main() {
            int r = 0 && touch();
            return g + r;
        }
        """
        value, _sim = run_main(src, is_full=True)
        assert value == 0

    def test_short_circuit_or(self):
        src = """
        int g = 0;
        int touch() { g = 99; return 1; }
        int main() {
            int r = 1 || touch();
            return g * 10 + r;
        }
        """
        value, _sim = run_main(src, is_full=True)
        assert value == 1


class TestStatements:
    def test_locals_and_assignment(self):
        value, _ = run_main("int a = 3; int b; b = a * 4; return b - 2;")
        assert value == 10

    def test_if_else(self):
        value, _ = run_main(
            "int x = 5; if (x > 3) { return 1; } else { return 2; }")
        assert value == 1

    def test_nested_if(self):
        value, _ = run_main("""
            int x = 5;
            if (x > 0) { if (x > 10) { return 1; } else { return 2; } }
            return 3;
        """)
        assert value == 2

    def test_while_loop(self):
        value, _ = run_main(
            "int i = 0; int s = 0;"
            "while (i < 10) { s = s + i; i = i + 1; } return s;")
        assert value == 45

    def test_for_loop(self):
        value, _ = run_main(
            "int s = 0; for (int i = 1; i <= 5; i = i + 1)"
            "{ s = s + i * i; } return s;")
        assert value == 55

    def test_break(self):
        value, _ = run_main(
            "int i = 0; while (1) { if (i == 7) { break; }"
            "i = i + 1; } return i;")
        assert value == 7

    def test_continue(self):
        value, _ = run_main(
            "int s = 0; for (int i = 0; i < 10; i = i + 1) {"
            "if (i % 2) { continue; } s = s + i; } return s;")
        assert value == 20

    def test_return_without_value(self):
        value, _ = run_main("return;")
        assert value == 0

    def test_fallthrough_returns_zero(self):
        value, _ = run_main("int x = 3;")
        assert value == 0


class TestFunctionsAndGlobals:
    def test_arguments_and_return(self):
        src = """
        int add3(int a, int b, int c) { return a + b + c; }
        int main() { return add3(1, 2, 3); }
        """
        assert run_main(src, is_full=True)[0] == 6

    def test_recursion(self):
        src = """
        int fact(int n) { if (n <= 1) { return 1; }
                          return n * fact(n - 1); }
        int main() { return fact(6); }
        """
        assert run_main(src, is_full=True)[0] == 720

    def test_mutual_recursion(self):
        src = """
        int is_even(int n) { if (n == 0) { return 1; }
                             return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; }
                            return is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """
        assert run_main(src, is_full=True)[0] == 11

    def test_global_scalar(self):
        src = """
        int counter = 5;
        int bump() { counter = counter + 1; return counter; }
        int main() { bump(); bump(); return counter; }
        """
        assert run_main(src, is_full=True)[0] == 7

    def test_global_array_readwrite(self):
        src = """
        int table[8];
        int main() {
            for (int i = 0; i < 8; i = i + 1) { table[i] = i * i; }
            int s = 0;
            for (int i = 0; i < 8; i = i + 1) { s = s + table[i]; }
            return s;
        }
        """
        assert run_main(src, is_full=True)[0] == 140

    def test_array_initialiser(self):
        src = """
        int t[4] = {10, 20, 30};
        int main() { return t[0] + t[1] + t[2] + t[3]; }
        """
        assert run_main(src, is_full=True)[0] == 60

    def test_locals_shadow_globals(self):
        src = """
        int x = 100;
        int main() { int x = 1; return x; }
        """
        assert run_main(src, is_full=True)[0] == 1

    def test_params_preserved_across_calls(self):
        src = """
        int id(int v) { return v; }
        int f(int a, int b) { return id(a) * 10 + id(b); }
        int main() { return f(3, 4); }
        """
        assert run_main(src, is_full=True)[0] == 34


class TestErrors:
    def test_undefined_variable(self):
        with pytest.raises(CodegenError, match="undefined variable"):
            compile_source("int main() { return nope; }")

    def test_undefined_function(self):
        with pytest.raises(CodegenError, match="undefined function"):
            compile_source("int main() { return nope(); }")

    def test_arity_mismatch(self):
        with pytest.raises(CodegenError, match="arguments"):
            compile_source("int f(int a) { return a; }"
                           "int main() { return f(1, 2); }")

    def test_no_main(self):
        with pytest.raises(CodegenError, match="main"):
            compile_source("int f() { return 1; }")

    def test_main_with_params(self):
        with pytest.raises(CodegenError, match="main"):
            compile_source("int main(int argc) { return 0; }")

    def test_array_without_index(self):
        with pytest.raises(CodegenError, match="without index"):
            compile_source("int t[4];\nint main() { return t; }")

    def test_index_of_scalar(self):
        with pytest.raises(CodegenError, match="not a global array"):
            compile_source("int s;\nint main() { return s[0]; }")

    def test_break_outside_loop(self):
        with pytest.raises(CodegenError, match="break"):
            compile_source("int main() { break; return 0; }")

    def test_duplicate_function(self):
        with pytest.raises(CodegenError, match="duplicate"):
            compile_source("int f() { return 1; }"
                           "int f() { return 2; }"
                           "int main() { return 0; }")


class TestPipelineIntegration:
    def test_compiled_code_runs_on_pipeline(self):
        """Compiled code matches the golden model on the cycle-accurate
        pipeline, and its branches profile/fold like hand-written code."""
        from repro.predictors import make_predictor
        from repro.sim.pipeline import PipelineSimulator
        src = """
        int data[16] = {5, -3, 8, -1, 9, -7, 2, -4,
                        6, -2, 7, -9, 1, -8, 3, -6};
        int main() {
            int pos = 0;
            for (int i = 0; i < 16; i = i + 1) {
                if (data[i] > 0) { pos = pos + data[i]; }
            }
            return pos;
        }
        """
        prog = compile_to_program(src)
        f = FunctionalSimulator(prog)
        n = f.run()
        sim = PipelineSimulator(prog,
                                predictor=make_predictor("bimodal-64-64"))
        stats = sim.run()
        assert sim.regs.snapshot() == f.regs.snapshot()
        assert stats.committed == n
        assert sim.regs[2] == 5 + 8 + 9 + 2 + 6 + 7 + 1 + 3

    def test_scheduler_preserves_compiled_semantics(self):
        from repro.sched import schedule_program
        src = """
        int acc = 0;
        int main() {
            for (int i = 0; i < 20; i = i + 1) {
                if (i % 3 == 0) { acc = acc + i; }
            }
            return acc;
        }
        """
        prog = compile_to_program(src)
        sched = schedule_program(prog)
        a = FunctionalSimulator(prog)
        a.run()
        b = FunctionalSimulator(sched)
        b.run()
        assert a.regs[2] == b.regs[2] == 0 + 3 + 6 + 9 + 12 + 15 + 18
