"""Cycle-level unit tests for the 5-stage pipeline.

Expected cycle counts are derived from the documented timing model:
an N-instruction program with no hazards finishes in N + 4 cycles
(5-stage fill); load-use adds 1; a mispredicted branch adds 2; a
j/jal adds 1; a jr/jalr adds 2; a cache miss adds its penalty.
"""

import pytest

from repro.asm import assemble
from repro.memory.cache import CacheConfig
from repro.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    NotTakenPredictor,
)
from repro.sim.functional import FunctionalSimulator
from repro.sim.pipeline import PipelineConfig, PipelineSimulator


def perfect_caches():
    """Caches that never stall, isolating core pipeline timing."""
    cfg = CacheConfig(miss_penalty=0, writeback_penalty=0)
    return PipelineConfig(icache=cfg, dcache=cfg)


def run(src, predictor=None, config=None):
    prog = assemble(".text\nmain:\n" + src)
    sim = PipelineSimulator(prog, predictor=predictor,
                            config=config or perfect_caches())
    stats = sim.run()
    return sim, stats


class TestStraightLine:
    def test_fill_plus_one_per_instr(self):
        _sim, stats = run("nop\nnop\nnop\nhalt\n")
        assert stats.committed == 4
        assert stats.cycles == 4 + 4

    def test_single_halt(self):
        _sim, stats = run("halt\n")
        assert stats.cycles == 5

    def test_dependent_alu_chain_fully_forwarded(self):
        # each addi depends on the previous: forwarding absorbs it all
        src = "li r1, 0\n" + "addi r1, r1, 1\n" * 6 + "halt\n"
        _sim, stats = run(src)
        assert stats.cycles == 8 + 4
        assert stats.load_use_stalls == 0

    def test_distance_2_dependence_no_stall(self):
        _sim, stats = run("li r1, 5\nnop\naddi r2, r1, 1\nhalt\n")
        assert stats.cycles == 4 + 4


class TestLoadUse:
    def test_immediate_use_stalls_once(self):
        _sim, stats = run("lw r1, -8(sp)\naddi r2, r1, 1\nhalt\n")
        assert stats.load_use_stalls == 1
        assert stats.cycles == 3 + 4 + 1

    def test_store_after_load_also_interlocked(self):
        _sim, stats = run("lw r1, -8(sp)\nsw r1, -12(sp)\nhalt\n")
        assert stats.load_use_stalls == 1

    def test_one_gap_no_stall(self):
        _sim, stats = run("lw r1, -8(sp)\nnop\naddi r2, r1, 1\nhalt\n")
        assert stats.load_use_stalls == 0
        assert stats.cycles == 4 + 4

    def test_load_to_unrelated_no_stall(self):
        _sim, stats = run("lw r1, -8(sp)\naddi r2, r3, 1\nhalt\n")
        assert stats.load_use_stalls == 0

    def test_forwarded_value_correct(self):
        sim, _stats = run("li r1, 42\nsw r1, -8(sp)\nlw r2, -8(sp)\n"
                          "addi r3, r2, 1\nhalt\n")
        assert sim.regs[3] == 43


class TestBranchTiming:
    def test_taken_branch_not_taken_predictor_costs_2(self):
        # b skips one instruction: beq(T) + target + halt
        _sim, stats = run("b over\nnop\nover: nop\nhalt\n",
                          predictor=NotTakenPredictor())
        # 3 committed instrs (beq, over-nop, halt) + fill 4 + penalty 2
        assert stats.committed == 3
        assert stats.cycles == 3 + 4 + 2
        assert stats.branch_mispredicts == 1

    def test_not_taken_branch_is_free(self):
        _sim, stats = run("li r1, 1\nbeqz r1, over\nnop\nover: halt\n",
                          predictor=NotTakenPredictor())
        assert stats.branch_mispredicts == 0
        assert stats.cycles == 4 + 4

    def test_loop_penalties_not_taken_predictor(self, count_loop_program):
        sim = PipelineSimulator(count_loop_program,
                                predictor=NotTakenPredictor(),
                                config=perfect_caches())
        stats = sim.run()
        # 33 dynamic instrs; 9 taken bnez each cost 2; final bnez correct
        assert stats.committed == 33
        assert stats.branches == 10
        assert stats.branch_mispredicts == 9
        assert stats.cycles == 33 + 4 + 18
        assert sim.regs[5] == 55

    def test_bimodal_learns_loop(self, count_loop_program):
        sim = PipelineSimulator(count_loop_program,
                                predictor=BimodalPredictor(64, 64),
                                config=perfect_caches())
        stats = sim.run()
        # warm-up mispredictions only: much better than not-taken
        assert stats.branch_mispredicts <= 4
        assert sim.regs[5] == 55

    def test_taken_prediction_needs_btb(self):
        # always-taken with an empty BTB cannot redirect: first
        # encounter of a taken branch still pays the penalty
        _sim, stats = run("b over\nnop\nover: nop\nhalt\n",
                          predictor=AlwaysTakenPredictor())
        assert stats.branch_mispredicts == 1

    def test_squashed_instructions_counted(self):
        # one wrong-path instruction is in flight when the branch
        # resolves (the second penalty cycle is a suppressed fetch)
        _sim, stats = run("b over\nnop\nover: nop\nhalt\n",
                          predictor=NotTakenPredictor())
        assert stats.squashed == 1
        assert stats.fetched == stats.committed + stats.squashed


class TestJumpTiming:
    def test_jump_costs_one_bubble(self):
        _sim, stats = run("j over\nnop\nover: nop\nhalt\n")
        assert stats.committed == 3
        assert stats.cycles == 3 + 4 + 1
        assert stats.jump_bubbles == 1

    def test_jal_jr_roundtrip(self):
        src = ("jal fn\naddi r2, r2, 1\nhalt\n"
               "fn: li r2, 10\njr ra\n")
        sim, stats = run(src)
        assert sim.regs[2] == 11
        assert stats.jump_bubbles == 1     # the jal
        assert stats.jr_redirects == 1     # the jr
        # 5 committed, fill 4, jal 1, jr 2
        assert stats.cycles == 5 + 4 + 1 + 2


class TestCacheStalls:
    def test_icache_cold_misses_counted(self):
        prog = assemble(".text\nmain:\nnop\nnop\nhalt\n")
        sim = PipelineSimulator(prog)   # default 8KB caches, 8-cycle miss
        stats = sim.run()
        # all three instrs share one 32-byte block: one cold miss
        assert stats.icache_miss_stalls == 8
        assert stats.cycles == 3 + 4 + 8

    def test_dcache_cold_miss_stalls_mem(self):
        cfg = PipelineConfig(
            icache=CacheConfig(miss_penalty=0, writeback_penalty=0),
            dcache=CacheConfig(miss_penalty=6, writeback_penalty=0))
        _sim, stats = run("lw r1, -8(sp)\nhalt\n", config=cfg)
        assert stats.dcache_miss_stalls == 6
        assert stats.cycles == 2 + 4 + 6

    def test_dcache_hit_after_miss(self):
        cfg = PipelineConfig(
            icache=CacheConfig(miss_penalty=0, writeback_penalty=0),
            dcache=CacheConfig(miss_penalty=6, writeback_penalty=0))
        _sim, stats = run("lw r1, -8(sp)\nlw r2, -8(sp)\nhalt\n",
                          config=cfg)
        assert stats.dcache_miss_stalls == 6   # second access hits


class TestHaltSemantics:
    def test_instructions_after_halt_never_commit(self):
        sim, stats = run("halt\nli r1, 99\nsw r1, -4(sp)\n")
        assert stats.committed == 1
        assert sim.regs[1] == 0
        assert sim.memory.read_word(sim.regs[29] - 4) == 0

    def test_wrong_path_halt_does_not_stop(self):
        # predicted-taken path contains a halt; actual path continues
        src = ("li r1, 1\nbeqz r1, dead\nli r2, 7\nhalt\n"
               "dead: halt\n")
        sim, stats = run(src, predictor=AlwaysTakenPredictor())
        assert sim.regs[2] == 7


class TestArchitecturalEquivalence:
    def test_matches_functional(self, fold_demo_program):
        f = FunctionalSimulator(fold_demo_program)
        n = f.run()
        p = PipelineSimulator(fold_demo_program,
                              predictor=BimodalPredictor(64, 64))
        stats = p.run()
        assert p.regs.snapshot() == f.regs.snapshot()
        assert p.memory.snapshot() == f.memory.snapshot()
        assert stats.committed == n

    def test_cpi_property(self, count_loop_program):
        sim = PipelineSimulator(count_loop_program,
                                config=perfect_caches())
        stats = sim.run()
        assert stats.cpi == pytest.approx(stats.cycles / stats.committed)

    def test_cycle_budget_enforced(self):
        prog = assemble(".text\nmain: b main\nhalt\n")
        from repro.sim.functional import SimulationError
        cfg = PipelineConfig(max_cycles=200)
        with pytest.raises(SimulationError, match="budget"):
            PipelineSimulator(prog, config=cfg).run()
