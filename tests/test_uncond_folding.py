"""Tests for CRISP-style unconditional folding (related work [10])."""

import pytest

from repro.asm import assemble
from repro.memory.cache import CacheConfig
from repro.predictors import NotTakenPredictor, make_predictor
from repro.sim.functional import FunctionalSimulator
from repro.sim.pipeline import PipelineConfig, PipelineSimulator
from repro.testing import random_program


def perfect_caches():
    cfg = CacheConfig(miss_penalty=0, writeback_penalty=0)
    return PipelineConfig(icache=cfg, dcache=cfg)


def run(src, **kw):
    prog = assemble(".text\nmain:\n" + src)
    sim = PipelineSimulator(prog, config=perfect_caches(), **kw)
    stats = sim.run()
    return sim, stats


class TestJumpFolding:
    def test_j_costs_zero_when_folded(self):
        src = "j over\nnop\nover: nop\nhalt\n"
        _s, plain = run(src)
        _s, folded = run(src, fold_unconditional=True)
        # plain: 3 committed + 4 fill + 1 bubble; folded: jump gone
        assert plain.cycles == 3 + 4 + 1
        assert folded.cycles == 2 + 4
        assert folded.uncond_folds_committed == 1
        assert folded.committed == plain.committed - 1

    def test_b_pseudo_folds_too(self):
        src = "b over\nnop\nover: nop\nhalt\n"
        _s, folded = run(src, fold_unconditional=True,
                         predictor=NotTakenPredictor())
        assert folded.uncond_folds_committed == 1
        assert folded.branch_mispredicts == 0   # never entered the pipe

    def test_jal_not_folded(self):
        src = ("jal fn\naddi r2, r2, 1\nhalt\n"
               "fn: li r2, 10\njr ra\n")
        sim, stats = run(src, fold_unconditional=True)
        assert stats.uncond_folds_committed == 0
        assert sim.regs[2] == 11

    def test_control_target_not_folded(self):
        # jump whose target is another jump: cannot inject control
        src = "j a\nnop\na: j b\nnop\nb: halt\n"
        _s, stats = run(src, fold_unconditional=True)
        assert stats.uncond_folds_committed == 0

    def test_conditional_branches_unaffected(self):
        src = ("li r1, 1\nbeqz r1, skip\nli r2, 9\nskip: addu r2, r2, r0\n"
               "halt\n")
        sim, stats = run(src, fold_unconditional=True)
        assert stats.uncond_folds_committed == 0
        assert sim.regs[2] == 9

    def test_architectural_equivalence(self):
        src = ("li r3, 0\nli r4, 4\nloop: addu r3, r3, r4\n"
               "b dec\nnop\ndec: addi r4, r4, -1\nbnez r4, loop\nhalt\n")
        prog = assemble(".text\nmain:\n" + src)
        f = FunctionalSimulator(prog)
        n = f.run()
        sim = PipelineSimulator(prog, config=perfect_caches(),
                                fold_unconditional=True)
        stats = sim.run()
        assert sim.regs.snapshot() == f.regs.snapshot()
        assert stats.committed == n - stats.uncond_folds_committed
        assert stats.uncond_folds_committed == 4   # b dec, each iteration

    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs_equivalent(self, seed):
        prog = random_program(seed)
        f = FunctionalSimulator(prog)
        n = f.run(max_instructions=100_000)
        sim = PipelineSimulator(prog,
                                predictor=make_predictor("bimodal-64-64"),
                                fold_unconditional=True)
        stats = sim.run()
        assert sim.regs.snapshot() == f.regs.snapshot()
        assert sim.memory.snapshot() == f.memory.snapshot()
        assert stats.committed == n - stats.uncond_folds_committed


class TestCombinedWithASBR:
    def test_both_fold_mechanisms_together(self, fold_demo_program):
        from repro.asbr import ASBRUnit, extract_branch_info
        prog = fold_demo_program
        f = FunctionalSimulator(prog)
        n = f.run()
        info = extract_branch_info(prog, prog.labels["br1"])
        unit = ASBRUnit.from_branch_infos([info], bdt_update="execute")
        sim = PipelineSimulator(prog, predictor=NotTakenPredictor(),
                                asbr=unit, config=perfect_caches(),
                                fold_unconditional=True)
        stats = sim.run()
        assert sim.regs.snapshot() == f.regs.snapshot()
        assert stats.folds_committed == 10
        assert stats.committed == (n - stats.folds_committed
                                   - stats.uncond_folds_committed)

    def test_workload_with_uncond_folding(self, small_pcm):
        """The codecs' `b` pseudo-branches fold; outputs stay exact."""
        from repro.workloads import get_workload
        wl = get_workload("adpcm_enc")
        stream = wl.input_stream(small_pcm)
        sim = PipelineSimulator(wl.program, wl.build_memory(stream),
                                predictor=make_predictor("bimodal-512-512"),
                                fold_unconditional=True)
        sim.run()
        outputs = wl.read_output(sim.memory, len(stream))
        assert outputs == wl.golden_output(small_pcm)
        assert sim.stats.uncond_folds_committed > 0
