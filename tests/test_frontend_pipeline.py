"""Integration locks for the decoupled front end in the pipeline.

Four claims, each load-bearing:

* **default-off bit-identity** — a ``frontend=None`` run reproduces the
  seed golden stats exactly, on both engines (the frontend is a pure
  opt-in; attaching the machinery must cost nothing when absent);
* **architectural correctness** — with the frontend attached (FDIP on
  and off), every workload still produces its golden output, and the
  no-FDIP frontend matches the coupled fetch's cycle count exactly
  (the decoupled BPU refills fast enough to hide itself);
* **FDIP works** — on the Huffman decoder with a small I-cache,
  fetch-directed prefetching removes a concrete fraction of demand
  misses (threshold asserted, not just "fewer");
* **observability parity** — a traced frontend run is timing-identical
  to the untraced one, and the blocks engine falls back safely.
"""

import dataclasses

import pytest

from repro.frontend import DecoupledFrontend, FrontendConfig, attach_frontend
from repro.memory.cache import CacheConfig
from repro.predictors import make_predictor
from repro.sim.pipeline import PipelineConfig, PipelineSimulator
from repro.workloads import get_workload
from repro.workloads.inputs import speech_like

from tests.test_stats_golden import GOLDEN, PCM_N, PCM_SEED

BIMODAL = "bimodal-512-512"


@pytest.fixture(scope="module")
def pcm():
    return speech_like(PCM_N, seed=PCM_SEED)


def _run(pcm, name, frontend=None, config=None, predictor_spec=BIMODAL,
         engine="interp", trace=None):
    wl = get_workload(name)
    holder = {}
    result = wl.run_pipeline(pcm, predictor=make_predictor(predictor_spec),
                             frontend=frontend, config=config,
                             engine=engine, trace=trace,
                             on_sim=lambda s: holder.setdefault("sim", s))
    assert result.outputs == wl.golden_output(pcm), \
        "%s wrong output (frontend=%r)" % (name, frontend)
    return result.stats, holder["sim"]


# ----------------------------------------------------------------------
# default-off bit-identity (the golden lock, frontend edition)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["interp", "blocks"])
def test_frontend_none_bit_identical_to_seed(pcm, engine):
    key = ("adpcm_enc", BIMODAL, False)
    stats, sim = _run(pcm, "adpcm_enc", frontend=None, engine=engine)
    assert sim.frontend is None
    assert dataclasses.asdict(stats) == GOLDEN[key]


# ----------------------------------------------------------------------
# architectural correctness + no-FDIP timing parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["adpcm_enc", "adpcm_dec", "huffman_dec"])
def test_frontend_no_fdip_matches_coupled_fetch(pcm, name):
    base, _ = _run(pcm, name)
    stats, sim = _run(pcm, name, frontend=FrontendConfig(fdip=False))
    assert isinstance(sim.frontend, DecoupledFrontend)
    assert stats.cycles == base.cycles, \
        "decoupled BPU failed to hide itself"
    assert stats.committed == base.committed
    assert sim.frontend.stats.btb_l1_hits > 0


@pytest.mark.parametrize("name", ["adpcm_enc", "g721_dec", "huffman_dec"])
def test_frontend_fdip_golden_outputs(pcm, name):
    stats, sim = _run(pcm, name, frontend=FrontendConfig(fdip=True))
    base, _ = _run(pcm, name)
    assert stats.committed == base.committed
    assert stats.cycles <= base.cycles, "FDIP made things slower"


def test_frontend_true_means_default_config(pcm):
    _, sim = _run(pcm, "adpcm_enc", frontend=True)
    assert sim.frontend.config == FrontendConfig()


def test_attach_rejects_garbage():
    wl = get_workload("adpcm_enc")
    sim = PipelineSimulator(wl.program)
    with pytest.raises(TypeError):
        attach_frontend(sim, {"ftq_depth": 8})


# ----------------------------------------------------------------------
# FDIP demand-miss reduction (concrete threshold)
# ----------------------------------------------------------------------
def _small_icache():
    # 512 B / 32 B blocks / 2-way: 16 blocks — the Huffman decoder's
    # text does not fit, so the loop suffers recurring capacity misses
    return PipelineConfig(icache=CacheConfig(size_bytes=512))


def test_fdip_reduces_icache_demand_misses(pcm):
    cold, _ = _run(pcm, "huffman_dec", config=_small_icache(),
                   frontend=FrontendConfig(fdip=False))
    warm, sim = _run(pcm, "huffman_dec", config=_small_icache(),
                     frontend=FrontendConfig(fdip=True))
    fe = sim.frontend.stats
    assert fe.prefetch_issued > 0
    assert fe.prefetch_useful > 0
    icache = sim.icache.stats
    assert icache.prefetch_fills > 0
    # the concrete claim: FDIP removes at least half the demand-miss
    # stall cycles the same configuration pays without prefetch
    assert cold.icache_miss_stalls > 0
    assert warm.icache_miss_stalls <= cold.icache_miss_stalls // 2, \
        ("FDIP left %d of %d demand-miss stall cycles"
         % (warm.icache_miss_stalls, cold.icache_miss_stalls))
    assert warm.cycles < cold.cycles


# ----------------------------------------------------------------------
# observability and engine parity
# ----------------------------------------------------------------------
def test_traced_frontend_run_is_timing_identical(pcm):
    from repro.telemetry import MetricsRegistry, Tracer

    plain, sim_p = _run(pcm, "huffman_dec",
                        frontend=FrontendConfig(fdip=True))
    registry = MetricsRegistry()
    traced, sim_t = _run(pcm, "huffman_dec",
                         frontend=FrontendConfig(fdip=True),
                         trace=Tracer(registry))
    assert dataclasses.asdict(traced) == dataclasses.asdict(plain)
    assert sim_t.frontend.stats.to_dict() == sim_p.frontend.stats.to_dict()
    counts = registry.counters
    assert counts.get("ftq_occupancy", 0) > 0
    assert counts.get("prefetch_issue", 0) > 0
    assert counts.get("btb_hit", 0) > 0


def test_blocks_engine_falls_back_with_frontend(pcm):
    interp, _ = _run(pcm, "adpcm_enc", frontend=FrontendConfig())
    blocks, sim = _run(pcm, "adpcm_enc", frontend=FrontendConfig(),
                       engine="blocks")
    assert dataclasses.asdict(blocks) == dataclasses.asdict(interp)


# ----------------------------------------------------------------------
# jump steering (needs a program whose jumps reach ID: uncond folding
# off is the simulator default)
# ----------------------------------------------------------------------
def test_ftq_steers_resolved_jumps():
    from repro.asm import assemble

    prog = assemble("""
.text
main:
    li   r1, 40
loop:
    addi r2, r2, 1
    j    skip
    addi r2, r2, 100
skip:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
""")
    base = PipelineSimulator(prog, predictor=make_predictor(BIMODAL))
    bstats = base.run()
    assert bstats.jump_bubbles > 0

    sim = PipelineSimulator(prog, predictor=make_predictor(BIMODAL),
                            frontend=FrontendConfig(fdip=False))
    fstats = sim.run()
    fe = sim.frontend.stats
    assert fe.jumps_steered > 0, "BTB-trained jump was not steered"
    assert fstats.jump_bubbles < bstats.jump_bubbles
    # architectural agreement with the coupled-fetch run
    assert sim.regs.snapshot() == base.regs.snapshot()


def test_frontend_stats_to_dict_has_derived_occupancy(pcm):
    _, sim = _run(pcm, "adpcm_enc", frontend=FrontendConfig())
    d = sim.frontend.stats.to_dict()
    assert d["avg_ftq_occupancy"] == pytest.approx(
        sim.frontend.stats.avg_ftq_occupancy)
    assert d["cycles"] > 0
