"""Unit and property tests for the Branch Direction Table."""

import pytest
from hypothesis import given, strategies as st

from repro.asbr.bdt import BranchDirectionTable
from repro.isa.alu import to_unsigned
from repro.isa.conditions import Condition, evaluate_condition

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestPowerOn:
    def test_matches_zeroed_registers(self):
        """Power-on bits must agree with the architectural reset value,
        or a branch on a never-written register folds the wrong way
        (regression test for a real bug found by differential testing)."""
        bdt = BranchDirectionTable()
        for reg in range(32):
            for cond in Condition:
                assert bdt.lookup(reg, cond) == evaluate_condition(cond, 0)

    def test_all_valid_initially(self):
        bdt = BranchDirectionTable()
        assert all(e.valid for e in bdt.entries)


class TestProtocol:
    def test_acquire_invalidates(self):
        bdt = BranchDirectionTable()
        bdt.acquire(5)
        assert bdt.lookup(5, Condition.EQZ) is None
        assert bdt.lookup(6, Condition.EQZ) is not None

    def test_release_revalidates_with_new_bits(self):
        bdt = BranchDirectionTable()
        bdt.acquire(5)
        bdt.release(5, to_unsigned(-3))
        assert bdt.lookup(5, Condition.LTZ) is True
        assert bdt.lookup(5, Condition.GEZ) is False

    def test_nested_producers(self):
        bdt = BranchDirectionTable()
        bdt.acquire(5)
        bdt.acquire(5)
        bdt.release(5, 1)
        assert bdt.lookup(5, Condition.GTZ) is None    # one still in flight
        bdt.release(5, to_unsigned(-1))
        assert bdt.lookup(5, Condition.LTZ) is True    # youngest wins

    def test_cancel_keeps_old_bits(self):
        bdt = BranchDirectionTable()
        bdt.set_value(5, 7)
        bdt.acquire(5)
        bdt.cancel(5)
        assert bdt.lookup(5, Condition.GTZ) is True

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            BranchDirectionTable().release(3, 0)

    def test_cancel_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            BranchDirectionTable().cancel(3)

    def test_counter_overflow_detected(self):
        bdt = BranchDirectionTable(counter_bits=2)
        for _ in range(3):
            bdt.acquire(1)
        with pytest.raises(OverflowError):
            bdt.acquire(1)

    def test_reset(self):
        bdt = BranchDirectionTable()
        bdt.acquire(2)
        bdt.reset()
        assert bdt.lookup(2, Condition.EQZ) is True


class TestBits:
    @given(U32)
    def test_bits_match_evaluate_condition(self, value):
        bdt = BranchDirectionTable()
        bdt.set_value(9, value)
        for cond in Condition:
            assert bdt.lookup(9, cond) == evaluate_condition(cond, value)

    @given(st.lists(U32, min_size=1, max_size=10))
    def test_last_release_wins(self, values):
        bdt = BranchDirectionTable(counter_bits=5)
        for v in values:
            bdt.acquire(4)
        for v in values:
            bdt.release(4, v)
        for cond in Condition:
            assert bdt.lookup(4, cond) == \
                evaluate_condition(cond, values[-1])


class TestHardware:
    def test_state_bits(self):
        bdt = BranchDirectionTable(num_regs=32, counter_bits=3)
        assert bdt.state_bits == 32 * (6 + 3)

    def test_figure8_shape(self):
        """Paper Figure 8: a 4-register BDT with != 0 and <= 0 columns."""
        bdt = BranchDirectionTable(num_regs=4)
        bdt.set_value(0, 0)
        bdt.set_value(1, 5)
        bdt.set_value(2, to_unsigned(-2))
        bdt.set_value(3, 1)
        nez = [bdt.lookup(r, Condition.NEZ) for r in range(4)]
        lez = [bdt.lookup(r, Condition.LEZ) for r in range(4)]
        assert nez == [False, True, True, True]
        assert lez == [True, False, True, False]

    def test_repr_shows_busy(self):
        bdt = BranchDirectionTable()
        bdt.acquire(7)
        assert "7" in repr(bdt)
