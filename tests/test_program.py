"""Unit tests for the Program image and its helpers."""

import pytest

from repro.asm import assemble
from repro.asm.program import Program, SourceLoc
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction


@pytest.fixture()
def prog():
    return assemble("""
    .data
    v: .word 5
    .text
    main:
        la r4, v
        lw r2, 0(r4)
    here:
        addi r2, r2, 1
        halt
    """)


class TestAddressing:
    def test_pc_of_index_of_roundtrip(self, prog):
        for i in range(len(prog.instrs)):
            assert prog.index_of(prog.pc_of(i)) == i

    def test_text_end(self, prog):
        assert prog.text_end == prog.text_base + 4 * len(prog.instrs)

    def test_index_of_rejects_outside(self, prog):
        with pytest.raises(ValueError):
            prog.index_of(prog.text_end)
        with pytest.raises(ValueError):
            prog.index_of(prog.text_base - 4)

    def test_index_of_rejects_misaligned(self, prog):
        with pytest.raises(ValueError):
            prog.index_of(prog.text_base + 2)

    def test_instr_at(self, prog):
        assert prog.instr_at(prog.labels["here"]).op == "addi"

    def test_label_at(self, prog):
        assert prog.label_at(prog.labels["here"]) == "here"
        assert prog.label_at(prog.pc_of(1)) is None

    def test_address_of_missing(self, prog):
        with pytest.raises(KeyError):
            prog.address_of("nope")


class TestMutation:
    def test_replace_instr_keeps_words_in_sync(self, prog):
        new = Instruction("addiu", rt=9, rs=0, imm=7)
        prog.replace_instr(0, new)
        assert prog.instrs[0] == new
        assert prog.words[0] == encode(new)


class TestConstruction:
    def test_from_instrs(self):
        instrs = [Instruction("addiu", rt=1, rs=0, imm=3),
                  Instruction("halt")]
        p = Program.from_instrs(instrs)
        assert p.words == [encode(i) for i in instrs]
        assert p.entry == p.text_base

    def test_from_words_roundtrip(self):
        instrs = [Instruction("addiu", rt=1, rs=0, imm=3),
                  Instruction("halt")]
        p = Program.from_words([encode(i) for i in instrs])
        assert p.instrs == instrs

    def test_source_loc(self):
        loc = SourceLoc(3, "nop")
        assert loc.line_no == 3 and loc.text == "nop"


class TestDisassembly:
    def test_round_trips_through_assembler(self, prog):
        """Disassembly of every workload program re-assembles to the
        same words (label-free reassembly via raw addresses is not
        supported, so just verify the text is well-formed here)."""
        text = prog.disassemble()
        assert text.count("\n") >= len(prog.instrs) - 1
        for i, word in enumerate(prog.words):
            assert "%08x" % word in text

    def test_all_workload_programs_disassemble(self):
        from repro.workloads import WORKLOAD_NAMES, get_workload
        for name in WORKLOAD_NAMES:
            prog = get_workload(name).program
            text = prog.disassemble()
            assert "main:" in text
            assert "halt" in text
