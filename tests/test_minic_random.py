"""Differential fuzzing of the minic compiler against a Python
reference evaluator with C semantics (32-bit wrap, truncating division,
arithmetic right shift, short-circuit logic)."""

import random

import pytest

from repro.isa.alu import to_signed, to_unsigned
from repro.minic import compile_to_program
from repro.sim.functional import FunctionalSimulator

_BIN_OPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
            "<", "<=", ">", ">=", "==", "!=", "&&", "||"]
_UN_OPS = ["-", "~", "!"]


def _c_eval(op, a, b):
    """C semantics on 32-bit ints."""
    if op == "+":
        return to_signed(to_unsigned(a + b))
    if op == "-":
        return to_signed(to_unsigned(a - b))
    if op == "*":
        return to_signed(to_unsigned(a * b))
    if op == "/":
        if b == 0:
            return 0        # target-defined
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    if op == "%":
        if b == 0:
            return 0
        r = abs(a) % abs(b)
        return -r if a < 0 else r
    if op == "&":
        return to_signed(to_unsigned(a) & to_unsigned(b))
    if op == "|":
        return to_signed(to_unsigned(a) | to_unsigned(b))
    if op == "^":
        return to_signed(to_unsigned(a) ^ to_unsigned(b))
    if op == "<<":
        return to_signed(to_unsigned(a << (b & 31)))
    if op == ">>":
        return a >> (b & 31)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise AssertionError(op)


def _gen_expr(rng, depth):
    """Returns (source_text, value) with C semantics."""
    if depth == 0 or rng.random() < 0.3:
        value = rng.randint(-100, 100)
        if value < 0:
            return "(-%d)" % -value, value
        return str(value), value
    if rng.random() < 0.2:
        op = rng.choice(_UN_OPS)
        text, value = _gen_expr(rng, depth - 1)
        if op == "-":
            return "(-%s)" % text, to_signed(to_unsigned(-value))
        if op == "~":
            return "(~%s)" % text, to_signed(~to_unsigned(value)
                                             & 0xFFFFFFFF)
        return "(!%s)" % text, int(not value)
    op = rng.choice(_BIN_OPS)
    lt, lv = _gen_expr(rng, depth - 1)
    rt, rv = _gen_expr(rng, depth - 1)
    if op in ("<<", ">>"):
        # keep shift amounts in range and left operands modest
        rt, rv = str(abs(rv) % 12), abs(rv) % 12
    return "(%s %s %s)" % (lt, op, rt), _c_eval(op, lv, rv)


@pytest.mark.parametrize("seed", range(30))
def test_random_expressions_match_c_semantics(seed):
    rng = random.Random(seed)
    exprs = []
    total = 0
    for _ in range(6):
        text, value = _gen_expr(rng, 4)
        exprs.append((text, value))
        total = to_signed(to_unsigned(total + value))
    body = "".join("int v%d = %s;\n" % (i, t)
                   for i, (t, _v) in enumerate(exprs))
    body += "return %s;" % " + ".join("v%d" % i for i in range(len(exprs)))
    prog = compile_to_program("int main() {\n%s\n}" % body)
    sim = FunctionalSimulator(prog)
    sim.run(max_instructions=1_000_000)
    assert to_signed(sim.regs[2]) == total


@pytest.mark.parametrize("seed", range(10))
def test_random_expression_on_pipeline_matches_functional(seed):
    rng = random.Random(1000 + seed)
    text, value = _gen_expr(rng, 5)
    prog = compile_to_program("int main() { return %s; }" % text)
    f = FunctionalSimulator(prog)
    f.run(max_instructions=1_000_000)
    from repro.sim.pipeline import PipelineSimulator
    p = PipelineSimulator(prog)
    p.run()
    assert p.regs.snapshot() == f.regs.snapshot()
    assert to_signed(f.regs[2]) == value
