"""Chaos tests for the serve daemon: the pool's failure modes, ported
to the wire.

``tests/test_chaos_pool.py`` proves the runner absorbs SIGKILLed,
hung and poisoned workers; these tests prove the *daemon* turns each
of those into a first-class ``failed`` job record — never a hung
connection — while continuing to serve, and that a corrupted shard
entry is dropped and recomputed rather than returned.

Fault injection uses the same mechanism as the pool suite: the
worker-side task function is monkeypatched in the daemon's process and
reaches pool workers via fork inheritance, with first-call-only faults
coordinated through an ``O_EXCL`` sentinel file.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

import repro.runner.pool as pool_mod
from repro.runner import ResultCache, RunSpec, key_for_spec
from repro.runner.pool import execute_spec as real_execute
from repro.serve import ServeConfig

from tests.serve_utils import SPEC, ServerThread, spec_wire

N, SEED = 64, 11

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker fault hooks reach workers via fork inheritance")

_SENTINEL_ENV = "REPRO_CHAOS_SENTINEL"


def _trip_once():
    path = os.environ[_SENTINEL_ENV]
    try:
        os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def _kill_self_once(spec):
    if _trip_once():
        os.kill(os.getpid(), signal.SIGKILL)
    return real_execute(spec)


def _hang_once(spec):
    if _trip_once():
        time.sleep(600)
    return real_execute(spec)


def _arm(monkeypatch, tmp_path, fn):
    monkeypatch.setenv(_SENTINEL_ENV, str(tmp_path / "tripped"))
    monkeypatch.setattr(pool_mod, "execute_spec", fn)


def serve_config(tmp_path, **overrides):
    kwargs = dict(cache_dir=str(tmp_path / "cache"), shards=256,
                  workers=2, task_timeout=6.0, retries=0)
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


def wire_sweep(n):
    return [spec_wire(seed=SEED + i) for i in range(n)]


def assert_still_serving(st):
    """The daemon must survive the fault: health and fresh work OK."""
    with st.client() as client:
        assert client.healthz()["ok"] is True
        fresh = client.run(spec_wire(seed=9999, n_samples=16))
        assert fresh["ok"]


# ----------------------------------------------------------------------
# crashed / hung workers mid-job
# ----------------------------------------------------------------------
@fork_only
def test_sigkilled_worker_becomes_failed_job_record(tmp_path,
                                                    monkeypatch):
    _arm(monkeypatch, tmp_path, _kill_self_once)
    with ServerThread(serve_config(tmp_path)) as st:
        with st.client() as client:
            job = client.sweep(wire_sweep(3))
            # the connection must come back with a record, not hang:
            # wait_job's own timeout is the hang detector
            job = client.wait_job(job["id"], timeout=60)
            assert job["state"] == "failed"
            assert job["n_done"] == 3
            assert job["n_failed"] == 1
            full = client.job(job["id"])
            failed = [r for r in full["results"] if not r["ok"]]
            healthy = [r for r in full["results"] if r["ok"]]
            assert len(failed) == 1 and len(healthy) == 2
            assert failed[0]["fail_kind"] == "timeout"
            assert all("stats" in r for r in healthy)
            assert client.stats()["jobs"]["failed"] == 1
        assert_still_serving(st)


@fork_only
def test_hung_worker_times_out_into_failed_job(tmp_path, monkeypatch):
    _arm(monkeypatch, tmp_path, _hang_once)
    config = serve_config(tmp_path, task_timeout=2.5)
    with ServerThread(config) as st:
        with st.client() as client:
            job = client.sweep(wire_sweep(2))
            job = client.wait_job(job["id"], timeout=60)
            assert job["state"] == "failed"
            assert job["n_failed"] == 1
            full = client.job(job["id"])
            (failed,) = [r for r in full["results"] if not r["ok"]]
            assert failed["fail_kind"] == "timeout"
        assert_still_serving(st)


@fork_only
def test_sigkill_with_retries_recovers_to_done(tmp_path, monkeypatch):
    """With retries budgeted, the same kill is absorbed invisibly and
    the job finishes ``done`` — failure is policy, not fate."""
    _arm(monkeypatch, tmp_path, _kill_self_once)
    with ServerThread(serve_config(tmp_path, retries=2)) as st:
        with st.client() as client:
            job = client.sweep(wire_sweep(3))
            job = client.wait_job(job["id"], timeout=90)
            assert job["state"] == "done"
            assert job["n_failed"] == 0
        assert_still_serving(st)


# ----------------------------------------------------------------------
# poisoned specs
# ----------------------------------------------------------------------
def test_poisoned_spec_quarantined_in_job_record(tmp_path):
    config = serve_config(tmp_path, workers=0)
    with ServerThread(config) as st:
        with st.client() as client:
            specs = [spec_wire(),
                     spec_wire(predictor_spec="no-such-predictor"),
                     spec_wire(seed=SEED + 1)]
            job = client.sweep(specs)
            job = client.wait_job(job["id"], timeout=60)
            assert job["state"] == "failed"
            assert job["n_done"] == 3 and job["n_failed"] == 1
            full = client.job(job["id"])
            ok0, poisoned, ok2 = full["results"]
            assert ok0["ok"] and ok2["ok"]
            assert not poisoned["ok"]
            assert poisoned["fail_kind"] == "error"
            assert "no-such-predictor" in poisoned["error"]
            # the event stream carries the same failure, terminated by
            # an 'end' event naming the failed state
            events = list(client.stream_events(job["id"]))
            assert events[-1]["kind"] == "end"
            assert events[-1]["state"] == "failed"
            assert any(e["kind"] == "result" and not e["ok"]
                       for e in events)
        assert_still_serving(st)


def test_poisoned_single_run_is_an_error_response(tmp_path):
    """/run of a poisoned spec answers 500 with the quarantine record —
    and never caches or hot-caches the failure."""
    config = serve_config(tmp_path, workers=0)
    with ServerThread(config) as st:
        with st.client() as client:
            bad = spec_wire(predictor_spec="no-such-predictor")
            for _ in range(2):      # second round proves no caching
                status, body = client.request(
                    "POST", "/run", {"spec": bad})
                assert status == 500
                assert body["ok"] is False
                assert body["fail_kind"] == "error"
                assert body["source"] == "executed"
            assert client.stats()["hot_entries"] == 0
        assert_still_serving(st)


# ----------------------------------------------------------------------
# corrupted cache shards
# ----------------------------------------------------------------------
def test_corrupted_shard_entry_recomputed_not_returned(tmp_path):
    config = serve_config(tmp_path, workers=0)
    with ServerThread(config) as st:
        with st.client() as client:
            first = client.run(spec_wire())
            assert first["source"] == "executed"
            truth = first["stats"]["cycles"]

    # tamper with the entry on disk, bumping cycles past the checksum
    spec = RunSpec(SPEC["benchmark"], SPEC["n_samples"], SPEC["seed"],
                   SPEC["predictor_spec"])
    key = key_for_spec(spec)
    path = os.path.join(str(tmp_path / "cache"), key[:2], key + ".json")
    entry = json.load(open(path))
    entry["stats"]["cycles"] = truth + 1
    with open(path, "w") as f:
        json.dump(entry, f)

    # a fresh daemon (empty hot cache) must drop the tampered entry and
    # recompute — the corrupted value is never served
    with ServerThread(serve_config(tmp_path, workers=0)) as st:
        with st.client() as client:
            again = client.run(spec_wire())
            assert again["source"] == "executed"
            assert again["stats"]["cycles"] == truth
            assert client.stats()["cache"]["dropped"] == 1
            # the recomputed entry is valid on disk again
            fresh = ResultCache(str(tmp_path / "cache"), shards=256)
            assert fresh.get(key).cycles == truth
