"""Unit tests for the block-compiled execution engine (repro.sim.blocks).

The differential sweep and golden locks prove bulk bit-identity; these
tests pin down the engine's edges: budget and trap semantics, indirect
jumps into the middle of a compiled block, the interp fallbacks that
preserve the telemetry/fault invariants, the foreign-decode memo, and
the content-addressed artifact cache (process memo + disk round-trip +
corruption recovery).
"""

import dataclasses
import json
import os

import pytest

from repro.asm import assemble
from repro.runner.cache import key_for_spec
from repro.runner.pool import RunSpec
from repro.sim import blocks
from repro.sim.functional import FunctionalSimulator, SimulationError
from repro.sim.pipeline import PipelineSimulator


def _prog(src):
    return assemble(".text\nmain:\n" + src)


LOOP_FOREVER = "li r1, 0\nloop: addiu r1, r1, 1\nj loop\n"


# ----------------------------------------------------------------------
# engine selection and validation
# ----------------------------------------------------------------------
def test_functional_rejects_unknown_engine():
    with pytest.raises(ValueError):
        FunctionalSimulator(_prog("halt\n"), engine="jit")


def test_pipeline_rejects_unknown_engine():
    with pytest.raises(ValueError):
        PipelineSimulator(_prog("halt\n"), engine="jit")


# ----------------------------------------------------------------------
# budget and trap parity with the interpreted engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("budget", [1, 2, 3, 7, 50, 1001])
def test_budget_exhaustion_bit_identical(budget):
    """Same error message, same retired count, same final pc."""
    outcomes = []
    for engine in ("interp", "blocks"):
        sim = FunctionalSimulator(_prog(LOOP_FOREVER), engine=engine)
        with pytest.raises(SimulationError) as exc:
            sim.run(max_instructions=budget)
        outcomes.append((str(exc.value), sim.instructions_retired,
                         sim.pc, sim.regs.snapshot()))
    assert outcomes[0] == outcomes[1]


def test_trap_parity_misaligned_load():
    from repro.memory.main_memory import MisalignedAccess

    src = "li r1, 2\nli r2, 7\nlw r3, -3(sp)\nhalt\n"
    outcomes = []
    for engine in ("interp", "blocks"):
        sim = FunctionalSimulator(_prog(src), engine=engine)
        with pytest.raises(MisalignedAccess) as exc:
            sim.run()
        outcomes.append((str(exc.value), sim.instructions_retired,
                         sim.pc, sim.regs.snapshot()))
    assert outcomes[0] == outcomes[1]
    # the two pre-trap instructions retired; the trap pc is the load's
    assert outcomes[0][1] == 2


def test_jr_into_middle_of_block():
    """An indirect jump targeting a non-leader pc must still execute
    correctly (the dispatcher single-steps until the next leader)."""
    src = (
        "la r9, spot\n"
        "addiu r9, r9, 8\n"       # skip the first two instrs of 'spot'
        "jr r9\n"
        "spot:\n"
        "addiu r1, r1, 100\n"
        "addiu r1, r1, 20\n"
        "addiu r1, r1, 3\n"
        "halt\n"
    )
    results = []
    for engine in ("interp", "blocks"):
        sim = FunctionalSimulator(_prog(src), engine=engine)
        retired = sim.run()
        results.append((retired, sim.regs.snapshot(), sim.pc))
    assert results[0] == results[1]
    assert results[0][1][1] == 3          # only the third addiu ran


def test_ctl_writes_identical():
    src = "ctlw 3\nli r1, 5\nctlw 1\nhalt\n"
    a = FunctionalSimulator(_prog(src))
    b = FunctionalSimulator(_prog(src), engine="blocks")
    a.run()
    b.run()
    assert a.ctl_writes == b.ctl_writes == [3, 1]


# ----------------------------------------------------------------------
# fallback guards: telemetry / fault hooks force the interpreted path
# ----------------------------------------------------------------------
def test_functional_observer_falls_back_to_interp():
    src = "li r1, 1\nli r2, 2\naddu r3, r1, r2\nhalt\n"
    seen = []
    sim = FunctionalSimulator(_prog(src), engine="blocks")
    retired = sim.run(observer=lambda pc, instr, nxt: seen.append(pc))
    assert retired == 4
    assert len(seen) == 4                 # per-instruction visibility kept
    assert sim.regs[3] == 3


def test_pipeline_trace_falls_back_to_interp(monkeypatch):
    from repro.telemetry import MetricsRegistry, Tracer
    monkeypatch.setattr(blocks, "run_pipeline_blocks",
                        lambda sim: pytest.fail("blocks path taken"))
    prog = _prog("li r1, 1\nli r2, 2\naddu r3, r1, r2\nhalt\n")
    sim = PipelineSimulator(prog, trace=Tracer(MetricsRegistry()),
                            engine="blocks")
    stats = sim.run()
    assert stats.committed == 4


def test_pipeline_tick_rebinding_falls_back(monkeypatch):
    """A fault injector (or anything else) that rebinds ``tick`` on the
    instance must win: the block path would bypass the rebound method."""
    monkeypatch.setattr(blocks, "run_pipeline_blocks",
                        lambda sim: pytest.fail("blocks path taken"))
    prog = _prog("li r1, 1\nhalt\n")
    sim = PipelineSimulator(prog, engine="blocks")
    ticks = []
    orig = type(sim).tick

    def spy_tick():
        ticks.append(1)
        return orig(sim)

    sim.tick = spy_tick
    sim.run()
    assert ticks, "instance tick() was bypassed"


def test_pipeline_subclass_falls_back(monkeypatch):
    monkeypatch.setattr(blocks, "run_pipeline_blocks",
                        lambda sim: pytest.fail("blocks path taken"))

    class Sub(PipelineSimulator):
        pass

    sim = Sub(_prog("li r1, 1\nhalt\n"), engine="blocks")
    stats = sim.run()
    assert stats.committed == 2


# ----------------------------------------------------------------------
# foreign-decode memo (the satellite bugfix)
# ----------------------------------------------------------------------
def test_hot_folded_branch_decodes_target_exactly_once(monkeypatch):
    from collections import Counter

    from repro.asbr import ASBRUnit
    from repro.predictors import make_predictor
    from repro.profiling import BranchProfiler, select_branches
    from repro.workloads import get_workload
    from repro.workloads.inputs import speech_like
    import repro.sim.pipeline as pl

    counts = Counter()
    real_decode = pl._decode

    def counting_decode(instr, pc, *args, **kwargs):
        counts[(id(instr), pc)] += 1
        return real_decode(instr, pc, *args, **kwargs)

    monkeypatch.setattr(pl, "_decode", counting_decode)

    wl = get_workload("adpcm_enc")
    pcm = speech_like(96, seed=11)
    stream = wl.input_stream(pcm)
    profile = BranchProfiler().profile(wl.program, wl.build_memory(stream))
    sel = select_branches(profile, bit_capacity=16, bdt_update="execute")
    asbr = ASBRUnit.from_branch_infos(sel.infos, capacity=16,
                                      bdt_update="execute")
    sim = PipelineSimulator(wl.program, wl.build_memory(stream),
                            predictor=make_predictor("bimodal-512-512"),
                            asbr=asbr)
    stats = sim.run()
    assert stats.folds_committed > 100    # the folds were genuinely hot
    assert counts, "decode was never called"
    assert max(counts.values()) == 1, \
        "some (instr, pc) was decoded more than once"


# ----------------------------------------------------------------------
# artifact caches: process memo, disk round-trip, corruption recovery
# ----------------------------------------------------------------------
def test_process_memo_shares_artifacts():
    prog = _prog("li r1, 1\nhalt\n")
    a = blocks.compile_blocks(prog)
    b = blocks.compile_blocks(prog)
    assert a is b


def test_program_mutation_invalidates_memo():
    prog = _prog("li r1, 1\nli r2, 2\nhalt\n")
    a = blocks.compile_blocks(prog)
    prog.replace_instr(1, prog.instrs[0])   # bumps program.version
    b = blocks.compile_blocks(prog)
    assert a is not b


def test_disk_cache_round_trip(tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "blockcache")
    src = "li r1, 7\nloop: addiu r1, r1, -1\nbne r1, r0, loop\nhalt\n"
    prog = _prog(src)
    blocks.compile_blocks(prog, cache_dir=cache_dir)
    entries = [f for f in os.listdir(cache_dir)
               if f.endswith(".blocks.json")]
    assert len(entries) == 1

    # a fresh, identical program in a fresh process-memo must be served
    # from disk: generating the source again is forbidden
    blocks._MEMO.clear()
    monkeypatch.setattr(blocks, "generate_source",
                        lambda p: pytest.fail("disk cache was bypassed"))
    prog2 = _prog(src)
    art = blocks.compile_blocks(prog2, cache_dir=cache_dir)
    sim = FunctionalSimulator(prog2, engine="blocks",
                              blocks_cache_dir=cache_dir)
    assert sim.run() == 16
    assert art.program is prog2


def test_disk_cache_drops_corrupt_entry(tmp_path):
    cache_dir = str(tmp_path / "blockcache")
    prog = _prog("li r1, 1\nhalt\n")
    blocks.compile_blocks(prog, cache_dir=cache_dir)
    (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)
               if f.endswith(".blocks.json")]
    with open(path) as f:
        entry = json.load(f)
    entry["source"] = entry["source"] + "\n# tampered"
    with open(path, "w") as f:
        json.dump(entry, f)

    blocks._MEMO.clear()
    cache = blocks.BlockCache(cache_dir)
    assert cache.get(prog) is None        # checksum mismatch -> dropped
    assert not os.path.exists(path)
    # and a full compile regenerates cleanly
    sim = FunctionalSimulator(prog, engine="blocks",
                              blocks_cache_dir=cache_dir)
    sim.run()
    assert sim.regs[1] == 1


# ----------------------------------------------------------------------
# result-cache key: engine deliberately excluded
# ----------------------------------------------------------------------
def test_engine_not_part_of_result_cache_key():
    a = RunSpec("adpcm_enc", 96, 11, "not-taken")
    b = RunSpec("adpcm_enc", 96, 11, "not-taken", engine="blocks")
    assert key_for_spec(a) == key_for_spec(b)


def test_generated_source_is_deterministic():
    src = "li r1, 3\nloop: addiu r1, r1, -1\nbne r1, r0, loop\nhalt\n"
    assert (blocks.generate_source(_prog(src))
            == blocks.generate_source(_prog(src)))


def test_pipeline_stats_match_with_engine_stats_identity():
    """End-to-end: cache stats objects also agree across engines."""
    src = ("li r1, 40\nli r2, 0\n"
           "loop: addiu r2, r2, 3\nsw r2, -8(sp)\nlw r3, -8(sp)\n"
           "addiu r1, r1, -1\nbne r1, r0, loop\nhalt\n")
    prog = _prog(src)
    a = PipelineSimulator(_prog(src))
    b = PipelineSimulator(prog, engine="blocks")
    sa, sb = a.run(), b.run()
    assert dataclasses.asdict(sa) == dataclasses.asdict(sb)
    assert a.icache.stats == b.icache.stats
    assert a.dcache.stats == b.dcache.stats
    assert a.regs.snapshot() == b.regs.snapshot()
