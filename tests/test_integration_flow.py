"""End-to-end integration: the full paper flow on a real workload.

profile -> replay predictors -> select -> extract -> load BIT -> run the
pipeline with ASBR -> verify outputs, cycle savings and statistics.
"""

import pytest

from repro.asbr import ASBRUnit
from repro.predictors import evaluate_on_trace, make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.sim.functional import collect_branch_trace
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def flow():
    """Run the complete flow once for ADPCM encode."""
    wl = get_workload("adpcm_enc")
    from repro.workloads.inputs import speech_like
    pcm = speech_like(250, seed=17)
    stream = wl.input_stream(pcm)

    profile = BranchProfiler().profile(wl.program, wl.build_memory(stream))
    trace = collect_branch_trace(wl.program, wl.build_memory(stream))
    accuracy = evaluate_on_trace(make_predictor("bimodal-2048"), trace)
    selection = select_branches(profile, accuracy, bit_capacity=16,
                                bdt_update="execute")
    unit = ASBRUnit.from_branch_infos(selection.infos,
                                      bdt_update="execute")
    baseline = wl.run_pipeline(pcm, predictor=make_predictor("bimodal-2048"))
    asbr_run = wl.run_pipeline(pcm,
                               predictor=make_predictor("bimodal-512-512"),
                               asbr=unit)
    return dict(wl=wl, pcm=pcm, profile=profile, trace=trace,
                accuracy=accuracy, selection=selection, unit=unit,
                baseline=baseline, asbr=asbr_run)


class TestFlow:
    def test_selection_found_the_marked_branches(self, flow):
        prog = flow["wl"].program
        marked = {prog.labels[n] for n in
                  ("br_sign", "br_bit2", "br_bit1", "br_bit0")}
        assert marked <= flow["selection"].pcs

    def test_selected_are_hard_to_predict(self, flow):
        for sel in flow["selection"].selected:
            assert sel.accuracy < 0.9

    def test_outputs_bit_exact_under_asbr(self, flow):
        assert flow["asbr"].outputs == \
            flow["wl"].golden_output(flow["pcm"])

    def test_cycles_improve_materially(self, flow):
        base = flow["baseline"].stats.cycles
        asbr = flow["asbr"].stats.cycles
        improvement = 1 - asbr / base
        # the paper reports 22% for ADPCM encode with bi-512
        assert improvement > 0.08

    def test_folds_dominate_selected_executions(self, flow):
        total_selected_execs = sum(s.stats.count
                                   for s in flow["selection"].selected)
        assert flow["asbr"].stats.folds_committed > \
            0.8 * total_selected_execs

    def test_committed_instructions_reduced(self, flow):
        assert flow["asbr"].stats.committed < \
            flow["baseline"].stats.committed

    def test_fewer_wrong_path_instructions(self, flow):
        """The paper's power argument: fewer instructions go through
        the pipeline at all."""
        base = flow["baseline"].stats
        asbr = flow["asbr"].stats
        assert asbr.fetched < base.fetched

    def test_aux_predictor_accuracy_improves(self, flow):
        """Removing folded branches from the predictor's stream must
        leave it with the predictable rest (paper Section 6)."""
        remaining = evaluate_on_trace(make_predictor("bimodal-512-512"),
                                      flow["trace"],
                                      skip_pcs=flow["selection"].pcs)
        assert remaining.accuracy > flow["accuracy"].accuracy

    def test_asbr_hardware_cheaper_than_displaced_tables(self, flow):
        unit_bits = flow["unit"].state_bits
        saved = (make_predictor("bimodal-2048").state_bits
                 - make_predictor("bimodal-512-512").state_bits)
        assert unit_bits < saved

    def test_invalid_fallbacks_rare(self, flow):
        stats = flow["unit"].stats
        assert stats.invalid_fallbacks < 0.05 * max(stats.attempts, 1)
