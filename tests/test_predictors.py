"""Unit tests for the branch predictor zoo."""

import pytest
from hypothesis import given, strategies as st

from repro.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchTargetBuffer,
    CombiningPredictor,
    GSharePredictor,
    NotTakenPredictor,
    StaticPredictor,
    evaluate_on_trace,
    make_predictor,
)
from repro.sim.functional import BranchRecord

PC = 0x400100
TGT = 0x400200


def train(pred, pc, outcomes, target=TGT):
    for taken in outcomes:
        pred.update(pc, taken, target)


class TestNotTaken:
    def test_always_not_taken(self):
        p = NotTakenPredictor()
        train(p, PC, [True] * 10)
        assert not p.predict(PC).taken

    def test_no_state(self):
        assert NotTakenPredictor().state_bits == 0


class TestAlwaysTaken:
    def test_taken_without_target_until_trained(self):
        p = AlwaysTakenPredictor(64)
        pred = p.predict(PC)
        assert pred.taken
        assert pred.target is None
        assert not pred.redirects

    def test_btb_fills_on_taken(self):
        p = AlwaysTakenPredictor(64)
        p.update(PC, True, TGT)
        pred = p.predict(PC)
        assert pred.redirects
        assert pred.target == TGT


class TestBTB:
    def test_miss_then_hit(self):
        b = BranchTargetBuffer(64)
        assert b.lookup(PC) is None
        b.insert(PC, TGT)
        assert b.lookup(PC) == TGT

    def test_alias_eviction(self):
        b = BranchTargetBuffer(64)
        b.insert(PC, TGT)
        alias = PC + 64 * 4      # same index, different tag
        b.insert(alias, 0x999)
        assert b.lookup(PC) is None
        assert b.lookup(alias) == 0x999

    def test_tag_prevents_false_hit(self):
        b = BranchTargetBuffer(64)
        b.insert(PC, TGT)
        assert b.lookup(PC + 64 * 4) is None

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(100)

    def test_reset(self):
        b = BranchTargetBuffer(64)
        b.insert(PC, TGT)
        b.reset()
        assert b.lookup(PC) is None


class TestBimodal:
    def test_initialises_weakly_not_taken(self):
        assert not BimodalPredictor(64, 64).predict(PC).taken

    def test_learns_taken_after_one(self):
        # power-on counters are weakly-not-taken (1): a single taken
        # outcome moves them to weakly-taken (2)
        p = BimodalPredictor(64, 64)
        train(p, PC, [True])
        assert p.predict(PC).taken

    def test_saturates(self):
        p = BimodalPredictor(64, 64)
        train(p, PC, [True] * 10)
        train(p, PC, [False])              # one NT cannot flip saturation
        assert p.predict(PC).taken

    def test_hysteresis_two_flips_needed(self):
        p = BimodalPredictor(64, 64)
        train(p, PC, [True] * 10 + [False, False])
        assert not p.predict(PC).taken

    def test_counter_aliasing_by_index(self):
        p = BimodalPredictor(64, 64)
        train(p, PC, [True, True])
        alias = PC + 64 * 4
        # PHT aliases (no tags): alias sees the same counter...
        assert p.predict(alias).taken
        # ...but the tagged BTB does not alias, so no redirect
        assert p.predict(alias).target is None

    def test_state_bits(self):
        p = BimodalPredictor(2048, 2048)
        assert p.state_bits == 2 * 2048 + p.btb.state_bits

    def test_reset(self):
        p = BimodalPredictor(64, 64)
        train(p, PC, [True] * 4)
        p.reset()
        assert not p.predict(PC).taken


class TestGShare:
    def test_learns_alternating_pattern(self):
        """T/NT alternation is invisible to bimodal, trivial for gshare."""
        pattern = [True, False] * 64
        g = GSharePredictor(history_bits=4, entries=256, btb_entries=64)
        b = BimodalPredictor(256, 64)
        g_correct = b_correct = 0
        for taken in pattern:
            g_correct += g.predict(PC).taken == taken
            b_correct += b.predict(PC).taken == taken
            g.update(PC, taken, TGT)
            b.update(PC, taken, TGT)
        assert g_correct > 110          # near-perfect after warm-up
        assert b_correct < 80           # bimodal dithers

    def test_history_width_validation(self):
        with pytest.raises(ValueError):
            GSharePredictor(history_bits=12, entries=2048)

    def test_correlation_across_branches(self):
        """Branch B repeats branch A's outcome; gshare exploits it."""
        g = GSharePredictor(history_bits=4, entries=256, btb_entries=64)
        import random
        rng = random.Random(3)
        correct = total = 0
        for i in range(400):
            a = rng.random() < 0.5
            g.update(PC, a, TGT)           # branch A resolves
            pred = g.predict(PC + 8)
            correct += pred.taken == a     # B == A
            total += 1
            g.update(PC + 8, a, TGT + 8)
        assert correct / total > 0.9

    def test_reset_clears_history(self):
        g = GSharePredictor(4, 64, btb_entries=64)
        train(g, PC, [True] * 8)
        g.reset()
        assert not g.predict(PC).taken


class TestStatic:
    def test_follows_profile(self):
        p = StaticPredictor({PC: True}, {PC: TGT})
        assert p.predict(PC).redirects
        assert not p.predict(PC + 4).taken   # unknown -> not taken

    def test_updates_ignored(self):
        p = StaticPredictor({PC: False}, {})
        train(p, PC, [True] * 50)
        assert not p.predict(PC).taken


class TestCombining:
    def test_beats_both_components_on_mixed_workload(self):
        """Biased branch (bimodal-friendly) + alternating branch
        (gshare-friendly): the tournament should do well on both."""
        c = CombiningPredictor(entries=256, history_bits=4,
                               btb_entries=64)
        correct = total = 0
        for i in range(300):
            # branch 1: always taken
            assert_taken = True
            correct += c.predict(PC).taken == assert_taken
            c.update(PC, assert_taken, TGT)
            # branch 2: alternating
            alt = bool(i % 2)
            correct += c.predict(PC + 4).taken == alt
            c.update(PC + 4, alt, TGT)
            total += 2
        assert correct / total > 0.9


class TestEvaluate:
    def _trace(self, outcomes, pc=PC):
        return [BranchRecord(pc, t, TGT) for t in outcomes]

    def test_accuracy_overall(self):
        acc = evaluate_on_trace(NotTakenPredictor(),
                                self._trace([False] * 7 + [True] * 3))
        assert acc.accuracy == pytest.approx(0.7)
        assert acc.total == 10

    def test_per_pc_accuracy(self):
        trace = self._trace([True] * 4) + self._trace([False] * 6, PC + 8)
        acc = evaluate_on_trace(NotTakenPredictor(), trace)
        assert acc.pc_accuracy(PC) == 0.0
        assert acc.pc_accuracy(PC + 8) == 1.0
        assert acc.pc_count(PC) == 4

    def test_skip_pcs_removes_from_stream(self):
        trace = self._trace([True] * 4) + self._trace([False] * 6, PC + 8)
        acc = evaluate_on_trace(NotTakenPredictor(), trace,
                                skip_pcs={PC})
        assert acc.total == 6
        assert acc.pc_count(PC) == 0

    def test_skipping_hard_branch_removes_aliasing(self):
        """Removing an aliasing branch from the stream rescues the
        branches it destroys — the paper's aliasing argument
        (Section 6, third bullet)."""
        # two branches sharing one bimodal counter; the not-taken one
        # executes twice per round and drags the counter down
        p_entries = 16
        hard_pc = PC
        easy_pc = PC + p_entries * 4     # same PHT index
        trace = []
        for _ in range(200):
            trace.append(BranchRecord(hard_pc, False, TGT))
            trace.append(BranchRecord(hard_pc, False, TGT))
            trace.append(BranchRecord(easy_pc, True, TGT))
        base = evaluate_on_trace(BimodalPredictor(p_entries, 64), trace)
        folded = evaluate_on_trace(BimodalPredictor(p_entries, 64), trace,
                                   skip_pcs={hard_pc})
        assert base.pc_accuracy(easy_pc) < 0.1      # destroyed by aliasing
        assert folded.pc_accuracy(easy_pc) > 0.95   # rescued by folding

    def test_direction_only_vs_target(self):
        # predictor with stale BTB target: direction right, target wrong
        p = BimodalPredictor(64, 64)
        train(p, PC, [True, True])       # BTB holds TGT
        trace = [BranchRecord(PC, True, 0x400999)]
        dir_acc = evaluate_on_trace(p, trace, direction_only=True)
        p.reset()
        train(p, PC, [True, True])
        full_acc = evaluate_on_trace(p, trace, direction_only=False)
        assert dir_acc.accuracy == 1.0
        assert full_acc.accuracy == 0.0


class TestMakePredictor:
    @pytest.mark.parametrize("spec,cls", [
        ("not-taken", NotTakenPredictor),
        ("always-taken", AlwaysTakenPredictor),
        ("bimodal", BimodalPredictor),
        ("bimodal-512", BimodalPredictor),
        ("bimodal-512-512", BimodalPredictor),
        ("gshare", GSharePredictor),
        ("gshare-2048-11", GSharePredictor),
        ("combining", CombiningPredictor),
    ])
    def test_specs(self, spec, cls):
        assert isinstance(make_predictor(spec), cls)

    def test_sizes_applied(self):
        p = make_predictor("bimodal-512-256")
        assert p.entries == 512
        assert p.btb.entries == 256

    def test_unknown_spec(self):
        with pytest.raises(ValueError):
            make_predictor("neural-42")

    def test_paper_configs_state_ordering(self):
        """bi-256 < bi-512 < bimodal-2048 in hardware state."""
        sizes = [make_predictor(s).state_bits
                 for s in ("bimodal-256-512", "bimodal-512-512",
                           "bimodal-2048")]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[2] / 3
