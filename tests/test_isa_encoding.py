"""Round-trip and error tests for the 32-bit binary encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import EncodingError, decode, decode_program, \
    encode, encode_program
from repro.isa.instruction import Instruction, nop
from repro.isa.opcodes import SPECS

REG = st.integers(min_value=0, max_value=31)
SHAMT = st.integers(min_value=0, max_value=31)
SIMM = st.integers(min_value=-32768, max_value=32767)
UIMM = st.integers(min_value=0, max_value=0xFFFF)
TARGET = st.integers(min_value=0, max_value=(1 << 26) - 1)

_R_SPECS = sorted(n for n, s in SPECS.items() if s.fmt == "R")
_I_SPECS_S = sorted(n for n, s in SPECS.items()
                    if s.fmt == "I" and s.signed_imm)
_I_SPECS_U = sorted(n for n, s in SPECS.items()
                    if s.fmt == "I" and not s.signed_imm)
_J_SPECS = sorted(n for n, s in SPECS.items() if s.fmt == "J")


class TestRoundTrip:
    @given(st.sampled_from(_R_SPECS), REG, REG, REG, SHAMT)
    def test_r_format(self, op, rd, rs, rt, shamt):
        i = Instruction(op, rd=rd, rs=rs, rt=rt, shamt=shamt)
        assert decode(encode(i)) == i

    @given(st.sampled_from(_I_SPECS_S), REG, REG, SIMM)
    def test_i_format_signed(self, op, rs, rt, imm):
        i = Instruction(op, rs=rs, rt=rt, imm=imm)
        assert decode(encode(i)) == i

    @given(st.sampled_from(_I_SPECS_U), REG, REG, UIMM)
    def test_i_format_unsigned(self, op, rs, rt, imm):
        i = Instruction(op, rs=rs, rt=rt, imm=imm)
        assert decode(encode(i)) == i

    @given(st.sampled_from(_J_SPECS), TARGET)
    def test_j_format(self, op, target):
        i = Instruction(op, target=target)
        assert decode(encode(i)) == i

    def test_nop_encodes_to_zero(self):
        assert encode(nop()) == 0

    def test_zero_decodes_to_nop(self):
        assert decode(0).op == "sll"


class TestKnownEncodings:
    def test_addiu(self):
        # opcode 0x09, rs=0, rt=5, imm=8
        word = encode(Instruction("addiu", rt=5, rs=0, imm=8))
        assert word == (0x09 << 26) | (0 << 21) | (5 << 16) | 8

    def test_negative_imm_two_complement(self):
        word = encode(Instruction("addi", rt=1, rs=1, imm=-1))
        assert word & 0xFFFF == 0xFFFF

    def test_r_format_fields(self):
        word = encode(Instruction("add", rd=3, rs=1, rt=2))
        assert (word >> 26) == 0
        assert (word >> 21) & 0x1F == 1
        assert (word >> 16) & 0x1F == 2
        assert (word >> 11) & 0x1F == 3
        assert word & 0x3F == 0x20


class TestErrors:
    def test_imm_overflow_signed(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rt=1, rs=1, imm=40000))

    def test_imm_negative_for_unsigned(self):
        with pytest.raises(EncodingError):
            encode(Instruction("ori", rt=1, rs=1, imm=-1))

    def test_register_out_of_range(self):
        i = Instruction("add")
        i.rd = 32
        with pytest.raises(EncodingError):
            encode(i)

    def test_decode_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode(0x3F << 26)

    def test_decode_unknown_funct(self):
        with pytest.raises(EncodingError):
            decode(0x3F)   # opcode 0, funct 0x3F unused

    def test_decode_error_message_has_word(self):
        with pytest.raises(EncodingError, match="0xfc000000"):
            decode(0x3F << 26)


class TestPrograms:
    def test_encode_decode_program(self):
        instrs = [Instruction("addiu", rt=1, rs=0, imm=5),
                  Instruction("bnez", rs=1, imm=-1),
                  Instruction("halt")]
        words = encode_program(instrs)
        assert decode_program(words) == instrs

    def test_every_mnemonic_roundtrips_default(self):
        for name in SPECS:
            i = Instruction(name)
            assert decode(encode(i)).op == name
