"""Pareto-frontier correctness (repro.dse.pareto).

The ISSUE-level contract: dominated points are never in the frontier,
ties are kept, and both 2-D and 3-D mixed-sense objective vectors work.
"""

import itertools

import pytest

from repro.dse.pareto import dominates, pareto_indices


MIN2 = ("min", "min")


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1, 1), (2, 2), MIN2)

    def test_better_somewhere_equal_elsewhere(self):
        assert dominates((1, 2), (2, 2), MIN2)

    def test_identical_vectors_do_not_dominate(self):
        assert not dominates((2, 2), (2, 2), MIN2)

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1, 3), (3, 1), MIN2)
        assert not dominates((3, 1), (1, 3), MIN2)

    def test_max_sense_flips(self):
        assert dominates((5, 1), (4, 1), ("max", "min"))
        assert not dominates((4, 1), (5, 1), ("max", "min"))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2), MIN2)


class TestFrontier2D:
    def test_dominated_points_never_in_frontier(self):
        vecs = [(1, 4), (2, 3), (4, 1), (3, 3), (5, 5)]
        keep = pareto_indices(vecs, MIN2)
        assert keep == [0, 1, 2]
        # exhaustive cross-check: everything kept is undominated,
        # everything dropped is dominated by someone
        for i, v in enumerate(vecs):
            dominated = any(dominates(w, v, MIN2) for w in vecs)
            assert (i in keep) == (not dominated)

    def test_ties_kept(self):
        vecs = [(1, 2), (1, 2), (2, 1), (3, 3)]
        assert pareto_indices(vecs, MIN2) == [0, 1, 2]

    def test_all_identical_all_kept(self):
        vecs = [(2, 2)] * 4
        assert pareto_indices(vecs, MIN2) == [0, 1, 2, 3]

    def test_single_point(self):
        assert pareto_indices([(7, 7)], MIN2) == [0]

    def test_empty(self):
        assert pareto_indices([], MIN2) == []

    def test_mixed_senses(self):
        # (speedup max, cost min): (2,10) beats (1,10); (1,5) survives
        # on cost
        vecs = [(2.0, 10), (1.0, 10), (1.0, 5)]
        assert pareto_indices(vecs, ("max", "min")) == [0, 2]


class TestFrontier3D:
    SENSES = ("max", "min", "min")

    def test_three_objectives(self):
        vecs = [
            (1.2, 100, 50.0),   # fast but pricey
            (1.2, 100, 60.0),   # dominated by the one above
            (1.0, 10, 55.0),    # cheap
            (0.9, 10, 55.0),    # dominated by the one above
            (1.0, 200, 40.0),   # lowest energy
        ]
        assert pareto_indices(vecs, self.SENSES) == [0, 2, 4]

    def test_exhaustive_small_grid(self):
        """Brute-force definition check over a 3-D lattice."""
        vecs = list(itertools.product((0, 1), repeat=3))
        keep = set(pareto_indices(vecs, self.SENSES))
        for i, v in enumerate(vecs):
            dominated = any(dominates(w, v, self.SENSES) for w in vecs)
            assert (i in keep) == (not dominated)
        # (1,0,0) is the unique optimum under (max,min,min)
        assert [vecs[i] for i in sorted(keep)] == [(1, 0, 0)]
