"""Shared fixtures for the test suite."""

import pytest


def pytest_collection_modifyitems(config, items):
    """Everything not explicitly ``slow`` is tier-1.

    ``pytest`` (no options) runs tier-1 only — the default ``-m "not
    slow"`` in pyproject.toml keeps the command fast; ``pytest -m slow``
    opts into the nightly sweeps and ``pytest -m "tier1 or slow"`` runs
    everything.
    """
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.tier1)

from repro.asm import assemble
from repro.workloads.inputs import speech_like, step_pattern


@pytest.fixture(scope="session")
def small_pcm():
    """A short speech-like stimulus shared by workload tests."""
    return speech_like(160, seed=7)


@pytest.fixture(scope="session")
def step_pcm():
    return step_pattern(160, seed=8)


COUNT_LOOP = """
.text
main:
    li   r4, 10
    li   r5, 0
loop:
    addu r5, r5, r4
    addi r4, r4, -1
    bnez r4, loop
    halt
"""


@pytest.fixture()
def count_loop_program():
    """Sums 10..1 into r5 (=55): the simplest looping program."""
    return assemble(COUNT_LOOP)


FOLD_DEMO = """
.data
arr: .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
.text
main:
    la   r4, arr
    li   r5, 10
    li   r6, 0
loop:
    lw   r2, 0(r4)
    andi r9, r2, 1
    addi r4, r4, 4
    addu r6, r6, r2
    addi r5, r5, -1
    sll  r0, r0, 0
    sll  r0, r0, 0
br1:
    beqz r9, even
    addi r6, r6, 100
even:
    addu r6, r6, r0
    bnez r5, loop
    halt
"""


@pytest.fixture()
def fold_demo_program():
    """A loop with one fold-friendly branch labelled ``br1``.

    Sums 1..10 plus 100 per odd element: r6 == 555 at halt.
    """
    return assemble(FOLD_DEMO)
