"""Unit tests for the two-pass assembler."""

import pytest

from repro.asm.assembler import AssemblerError, assemble
from repro.asm.program import DATA_BASE, TEXT_BASE
from repro.isa.encoding import decode


def one(src):
    """Assemble a single-instruction .text body and return the instr."""
    prog = assemble(".text\n" + src + "\n")
    assert len(prog.instrs) >= 1
    return prog.instrs[0]


class TestBasicInstructions:
    def test_three_reg(self):
        i = one("add r3, r1, r2")
        assert (i.op, i.rd, i.rs, i.rt) == ("add", 3, 1, 2)

    def test_immediate(self):
        i = one("addi r5, r4, -7")
        assert (i.op, i.rt, i.rs, i.imm) == ("addi", 5, 4, -7)

    def test_hex_immediate(self):
        assert one("ori r1, r0, 0xFF").imm == 255

    def test_memory_operand(self):
        i = one("lw r8, 12(r4)")
        assert (i.op, i.rt, i.rs, i.imm) == ("lw", 8, 4, 12)

    def test_memory_operand_negative(self):
        assert one("sw r8, -4(sp)").imm == -4

    def test_memory_operand_no_offset(self):
        assert one("lw r8, (r4)").imm == 0

    def test_shift(self):
        i = one("sll r2, r3, 5")
        assert (i.rd, i.rs, i.shamt) == (2, 3, 5)

    def test_aliases_accepted(self):
        i = one("addu $v0, $a0, t3")
        assert (i.rd, i.rs, i.rt) == (2, 4, 11)

    def test_case_insensitive_mnemonic(self):
        assert one("ADDU r1, r2, r3").op == "addu"


class TestLabelsAndBranches:
    def test_backward_branch(self):
        prog = assemble("""
        .text
        top: addi r1, r1, 1
             bnez r1, top
             halt
        """)
        br = prog.instrs[1]
        assert br.branch_target(prog.pc_of(1)) == prog.labels["top"]

    def test_forward_branch(self):
        prog = assemble("""
        .text
        main: beqz r1, out
              addi r2, r2, 1
        out:  halt
        """)
        br = prog.instrs[0]
        assert br.branch_target(prog.pc_of(0)) == prog.labels["out"]

    def test_jump_absolute(self):
        prog = assemble("""
        .text
        main: j fin
              addi r1, r1, 1
        fin:  halt
        """)
        assert prog.instrs[0].jump_target(prog.pc_of(0)) == \
            prog.labels["fin"]

    def test_label_on_own_line(self):
        prog = assemble(".text\nalone:\n    halt\n")
        assert prog.labels["alone"] == prog.pc_of(0)

    def test_multiple_labels_same_address(self):
        prog = assemble(".text\na:\nb: halt\n")
        assert prog.labels["a"] == prog.labels["b"]

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble(".text\nx: halt\nx: halt\n")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble(".text\nb nowhere\n")

    def test_label_plus_offset(self):
        prog = assemble("""
        .data
        tab: .word 1, 2, 3
        .text
        main: lw r1, 0(r0)
              halt
        """)
        # %lo of tab+8 via la
        prog2 = assemble("""
        .data
        tab: .word 1, 2, 3
        .text
        main: la r1, tab+8
              halt
        """)
        lo = prog2.instrs[1].imm
        assert lo == ((prog.labels["tab"] + 8) & 0xFFFF)


class TestPseudoInstructions:
    def test_nop(self):
        i = one("nop")
        assert (i.op, i.rd, i.rs, i.shamt) == ("sll", 0, 0, 0)

    def test_move(self):
        i = one("move r5, r6")
        assert (i.op, i.rd, i.rs, i.rt) == ("addu", 5, 6, 0)

    def test_not(self):
        i = one("not r5, r6")
        assert (i.op, i.rd, i.rs, i.rt) == ("nor", 5, 6, 0)

    def test_neg(self):
        i = one("neg r5, r6")
        assert (i.op, i.rd, i.rs, i.rt) == ("subu", 5, 0, 6)

    def test_subi(self):
        i = one("subi r5, r6, 10")
        assert (i.op, i.imm) == ("addi", -10)

    def test_b_unconditional(self):
        prog = assemble(".text\nmain: b main\n")
        i = prog.instrs[0]
        assert (i.op, i.rs, i.rt) == ("beq", 0, 0)

    def test_li_small_positive(self):
        i = one("li r4, 100")
        assert (i.op, i.imm) == ("addiu", 100)

    def test_li_small_negative(self):
        i = one("li r4, -5")
        assert (i.op, i.imm) == ("addiu", -5)

    def test_li_16bit_unsigned(self):
        i = one("li r4, 0xFFFF")
        assert (i.op, i.imm) == ("ori", 0xFFFF)

    def test_li_32bit(self):
        prog = assemble(".text\nli r4, 0x12345678\nhalt\n")
        assert prog.instrs[0].op == "lui"
        assert prog.instrs[1].op == "ori"
        # execute mentally: (0x1234 << 16) | 0x5678
        assert prog.instrs[0].imm == 0x1234
        assert prog.instrs[1].imm == 0x5678

    def test_li_32bit_zero_low(self):
        prog = assemble(".text\nli r4, 0x20000\nhalt\n")
        assert prog.instrs[0].op == "lui"
        assert len(prog.instrs) == 3  # fixed two-instruction expansion

    def test_la_two_instructions(self):
        prog = assemble(".data\nv: .word 0\n.text\nla r4, v\nhalt\n")
        assert prog.instrs[0].op == "lui"
        assert prog.instrs[1].op == "ori"
        addr = (prog.instrs[0].imm << 16) | prog.instrs[1].imm
        assert addr == prog.labels["v"]

    @pytest.mark.parametrize("mnem,ops,expect", [
        ("blt", "r1, r2, t", ("slt", "bnez")),
        ("bgt", "r1, r2, t", ("slt", "bnez")),
        ("ble", "r1, r2, t", ("slt", "beqz")),
        ("bge", "r1, r2, t", ("slt", "beqz")),
    ])
    def test_compare_branches(self, mnem, ops, expect):
        prog = assemble(".text\nmain: %s %s\nt: halt\n" % (mnem, ops))
        assert prog.instrs[0].op == expect[0]
        assert prog.instrs[1].op == expect[1]
        assert prog.instrs[0].rd == 1  # uses $at

    def test_blt_semantics(self):
        # blt r1, r2: slt at, r1, r2 ; bnez at
        prog = assemble(".text\nmain: blt r1, r2, t\nt: halt\n")
        slt = prog.instrs[0]
        assert (slt.rs, slt.rt) == (1, 2)

    def test_bgt_swaps_operands(self):
        prog = assemble(".text\nmain: bgt r1, r2, t\nt: halt\n")
        slt = prog.instrs[0]
        assert (slt.rs, slt.rt) == (2, 1)


class TestDataDirectives:
    def test_word_values(self):
        prog = assemble(".data\nv: .word 1, -2, 0x30\n")
        base = prog.labels["v"]
        assert prog.data[base] == 1
        assert prog.data[base + 4] == 0xFFFFFFFE
        assert prog.data[base + 8] == 0x30

    def test_half_packing_little_endian(self):
        prog = assemble(".data\nv: .half 0x1122, 0x3344\n")
        assert prog.data[prog.labels["v"]] == 0x33441122

    def test_byte_packing(self):
        prog = assemble(".data\nv: .byte 1, 2, 3, 4\n")
        assert prog.data[prog.labels["v"]] == 0x04030201

    def test_space_zero_filled(self):
        prog = assemble(".data\nv: .space 8\nw: .word 9\n")
        assert prog.labels["w"] == prog.labels["v"] + 8
        assert prog.data[prog.labels["v"]] == 0

    def test_align(self):
        prog = assemble(".data\na: .byte 1\n.align 2\nb: .word 5\n")
        assert prog.labels["b"] % 4 == 0

    def test_asciiz(self):
        prog = assemble('.data\ns: .asciiz "Hi"\n')
        word = prog.data[prog.labels["s"]]
        assert word & 0xFF == ord("H")
        assert (word >> 8) & 0xFF == ord("i")
        assert (word >> 16) & 0xFF == 0

    def test_word_label_reference(self):
        prog = assemble("""
        .data
        ptr: .word tgt
        tgt: .word 42
        """)
        assert prog.data[prog.labels["ptr"]] == prog.labels["tgt"]

    def test_data_label_addresses(self):
        prog = assemble(".data\nfirst: .word 1\nsecond: .word 2\n")
        assert prog.labels["first"] == DATA_BASE
        assert prog.labels["second"] == DATA_BASE + 4

    def test_directive_outside_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\n.word 5\n")


class TestErrorsAndMeta:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble(".text\nfrob r1, r2\n")

    def test_wrong_arity(self):
        with pytest.raises(AssemblerError, match="operands"):
            assemble(".text\nadd r1, r2\n")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="register"):
            assemble(".text\nadd r1, r2, r99\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble(".text\nnop\nbogus r1\n")

    def test_comments_stripped(self):
        prog = assemble(".text\nnop # comment\nnop ; also\nhalt\n")
        assert len(prog.instrs) == 3

    def test_entry_defaults_to_main(self):
        prog = assemble(".text\nnop\nmain: halt\n")
        assert prog.entry == prog.labels["main"]

    def test_entry_falls_back_to_text_base(self):
        prog = assemble(".text\nhalt\n")
        assert prog.entry == TEXT_BASE

    def test_source_map(self):
        prog = assemble(".text\nnop\nhalt\n")
        loc = prog.source_map[prog.pc_of(1)]
        assert loc.text == "halt"

    def test_words_match_instrs(self):
        prog = assemble(".text\naddi r1, r0, 3\nhalt\n")
        assert [decode(w) for w in prog.words] == prog.instrs

    def test_address_taken_tracks_la(self):
        prog = assemble("""
        .data
        v: .word 0
        .text
        main: la r4, v
        lab:  halt
        """)
        assert "v" in prog.address_taken
        assert "lab" not in prog.address_taken

    def test_disassemble_contains_labels(self):
        prog = assemble(".text\nmain: nop\nhalt\n")
        text = prog.disassemble()
        assert "main:" in text
        assert "halt" in text
