"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, CacheConfig


def small_cache(**kw):
    args = dict(size_bytes=256, block_bytes=16, assoc=2,
                miss_penalty=8, writeback_penalty=2)
    args.update(kw)
    return Cache(CacheConfig(**args))


class TestConfig:
    def test_default_matches_paper(self):
        c = CacheConfig()
        assert c.size_bytes == 8192

    def test_num_sets(self):
        assert CacheConfig(size_bytes=256, block_bytes=16,
                           assoc=2).num_sets == 8

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3000)
        with pytest.raises(ValueError):
            CacheConfig(block_bytes=24)
        with pytest.raises(ValueError):
            CacheConfig(assoc=3)

    def test_size_divisibility(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64, block_bytes=64, assoc=2)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0x100) == 8
        assert c.access(0x100) == 0
        assert c.stats.misses == 1
        assert c.stats.hits == 1

    def test_same_block_hits(self):
        c = small_cache()
        c.access(0x100)
        assert c.access(0x10F) == 0    # same 16-byte block

    def test_adjacent_block_misses(self):
        c = small_cache()
        c.access(0x100)
        assert c.access(0x110) == 8

    def test_contains(self):
        c = small_cache()
        assert not c.contains(0x100)
        c.access(0x100)
        assert c.contains(0x100)

    def test_contains_does_not_touch_lru(self):
        c = small_cache(assoc=2)
        # fill a set with A and B (A is LRU)
        c.access(0x000)
        c.access(0x100)
        c.contains(0x000)       # must NOT refresh A
        c.access(0x200)         # evicts A
        assert not c.contains(0x000)
        assert c.contains(0x100)


class TestLRUAndEviction:
    def test_lru_eviction_order(self):
        c = small_cache(assoc=2)   # 8 sets; set = (addr>>4) & 7
        a, b, d = 0x000, 0x100, 0x200   # all map to set 0
        c.access(a)
        c.access(b)
        c.access(a)      # a is now MRU
        c.access(d)      # evicts b
        assert c.contains(a)
        assert not c.contains(b)
        assert c.contains(d)

    def test_dirty_writeback_charged(self):
        c = small_cache(assoc=1)
        c.access(0x000, is_write=True)
        penalty = c.access(0x100)      # evicts dirty block
        assert penalty == 8 + 2
        assert c.stats.writebacks == 1

    def test_clean_eviction_not_charged(self):
        c = small_cache(assoc=1)
        c.access(0x000, is_write=False)
        assert c.access(0x100) == 8
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = small_cache(assoc=1)
        c.access(0x000)                 # clean fill
        c.access(0x004, is_write=True)  # write hit dirties it
        penalty = c.access(0x100)
        assert penalty == 10

    def test_flush_counts_dirty(self):
        c = small_cache()
        c.access(0x000, is_write=True)
        c.access(0x100, is_write=False)
        assert c.flush() == 1
        assert not c.contains(0x000)


class TestStats:
    def test_miss_rate(self):
        c = small_cache()
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.stats.miss_rate == pytest.approx(1 / 3)

    def test_reset(self):
        c = small_cache()
        c.access(0)
        c.stats.reset()
        assert c.stats.accesses == 0

    def test_state_bits_positive(self):
        assert small_cache().state_bits > 0


class _RefCache:
    """Reference model: per-set list in LRU order."""

    def __init__(self, num_sets, assoc, block_bytes):
        self.sets = [[] for _ in range(num_sets)]
        self.assoc = assoc
        self.shift = block_bytes.bit_length() - 1
        self.mask = num_sets - 1

    def access(self, addr):
        block = addr >> self.shift
        way = self.sets[block & self.mask]
        hit = block in way
        if hit:
            way.remove(block)
        elif len(way) >= self.assoc:
            way.pop(0)
        way.append(block)
        return hit


@settings(max_examples=60)
@given(st.lists(st.integers(min_value=0, max_value=0x7FF), min_size=1,
                max_size=300))
def test_hit_miss_sequence_matches_reference(addrs):
    """The cache's hit/miss behaviour equals a straightforward LRU model."""
    c = small_cache()
    ref = _RefCache(c.config.num_sets, c.config.assoc, c.config.block_bytes)
    for a in addrs:
        got_hit = c.access(a) == 0
        assert got_hit == ref.access(a)
