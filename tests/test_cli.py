"""Tests for the command-line toolchain."""

import os

import pytest

from repro.cli import build_parser, main

ASM_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src",
                       "repro", "workloads", "asm")
ADPCM_ENC = os.path.join(ASM_DIR, "adpcm_enc.s")


@pytest.fixture()
def tiny_program(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text("""
.text
main:
    li   r4, 5
    li   r5, 0
loop:
    addu r5, r5, r4
    addi r4, r4, -1
    sll  r0, r0, 0
    sll  r0, r0, 0
br:
    bnez r4, loop
    halt
""")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sim_defaults(self):
        args = build_parser().parse_args(["sim", "x.s"])
        assert args.predictor == "bimodal-2048"
        assert args.bdt_update == "execute"
        assert not args.asbr

    def test_bad_bdt_update_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim", "x.s", "--bdt-update", "id"])

    def test_experiments_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "fig99"])


class TestCommands:
    def test_asm_hex(self, tiny_program, capsys):
        assert main(["asm", tiny_program]) == 0
        out = capsys.readouterr().out
        assert "00400000:" in out

    def test_asm_disasm(self, tiny_program, capsys):
        assert main(["asm", tiny_program, "--disasm"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "bnez" in out

    def test_run(self, tiny_program, capsys):
        assert main(["run", tiny_program]) == 0
        out = capsys.readouterr().out
        assert "retired" in out
        r5_lines = [ln for ln in out.splitlines() if "r5" in ln]
        assert r5_lines and "15" in r5_lines[0]   # r5 = 5+4+3+2+1

    def test_sim_plain(self, tiny_program, capsys):
        assert main(["sim", tiny_program, "--predictor",
                     "not-taken"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "CPI" in out

    def test_sim_with_asbr_folds(self, tiny_program, capsys):
        assert main(["sim", tiny_program, "--asbr"]) == 0
        captured = capsys.readouterr()
        assert "branches folded" in captured.out
        assert "selected" in captured.err

    def test_profile(self, tiny_program, capsys):
        assert main(["profile", tiny_program]) == 0
        out = capsys.readouterr().out
        assert "br" in out          # the labelled branch appears
        assert "foldable" in out

    def test_workload(self, capsys):
        assert main(["workload", "adpcm_enc", "--samples", "60"]) == 0
        out = capsys.readouterr().out
        assert "outputs match golden model: True" in out

    def test_workload_with_asbr(self, capsys):
        assert main(["workload", "huffman_dec", "--samples", "60",
                     "--asbr", "--predictor", "bimodal-512-512"]) == 0
        out = capsys.readouterr().out
        assert "branches folded" in out
        assert "outputs match golden model: True" in out

    def test_sim_real_workload_source(self, capsys):
        assert main(["sim", ADPCM_ENC, "--predictor", "not-taken"]) == 0

    def test_experiments_fig9(self, capsys):
        assert main(["experiments", "fig9", "--samples", "120"]) == 0
        out = capsys.readouterr().out
        assert "Branches selected for adpcm_enc" in out
