"""Tests for the command-line toolchain."""

import json
import os

import pytest

from repro.cli import build_parser, main

ASM_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src",
                       "repro", "workloads", "asm")
ADPCM_ENC = os.path.join(ASM_DIR, "adpcm_enc.s")


@pytest.fixture()
def tiny_program(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text("""
.text
main:
    li   r4, 5
    li   r5, 0
loop:
    addu r5, r5, r4
    addi r4, r4, -1
    sll  r0, r0, 0
    sll  r0, r0, 0
br:
    bnez r4, loop
    halt
""")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sim_defaults(self):
        args = build_parser().parse_args(["sim", "x.s"])
        assert args.predictor == "bimodal-2048"
        assert args.bdt_update == "execute"
        assert not args.asbr

    def test_bad_bdt_update_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim", "x.s", "--bdt-update", "id"])

    def test_experiments_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "fig99"])

    def test_dse_run_defaults(self):
        args = build_parser().parse_args(["dse", "run"])
        assert args.space == "paper"
        assert args.benchmark == "adpcm_enc"
        assert (args.samples, args.seed) == (600, 20010618)
        assert args.search == "grid" and not args.resume
        assert not args.expect_no_new and not args.no_cache
        assert args.plot_x == "table_bits" and args.plot_y == "speedup"

    def test_dse_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse"])

    def test_dse_search_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "run", "--search",
                                       "anneal"])

    def test_dse_frontier_requires_journal(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "frontier"])
        args = build_parser().parse_args(
            ["dse", "frontier", "--journal", "j.jsonl", "--csv"])
        assert args.journal == "j.jsonl" and args.csv

    def test_cache_gc_parses(self):
        args = build_parser().parse_args(
            ["cache", "gc", "--cache-dir", "d", "--max-bytes", "64M"])
        assert args.cache_dir == "d" and args.max_bytes == "64M"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestCommands:
    def test_asm_hex(self, tiny_program, capsys):
        assert main(["asm", tiny_program]) == 0
        out = capsys.readouterr().out
        assert "00400000:" in out

    def test_asm_disasm(self, tiny_program, capsys):
        assert main(["asm", tiny_program, "--disasm"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "bnez" in out

    def test_run(self, tiny_program, capsys):
        assert main(["run", tiny_program]) == 0
        out = capsys.readouterr().out
        assert "retired" in out
        r5_lines = [ln for ln in out.splitlines() if "r5" in ln]
        assert r5_lines and "15" in r5_lines[0]   # r5 = 5+4+3+2+1

    def test_sim_plain(self, tiny_program, capsys):
        assert main(["sim", tiny_program, "--predictor",
                     "not-taken"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "CPI" in out

    def test_sim_with_asbr_folds(self, tiny_program, capsys):
        assert main(["sim", tiny_program, "--asbr"]) == 0
        captured = capsys.readouterr()
        assert "branches folded" in captured.out
        assert "selected" in captured.err

    def test_profile(self, tiny_program, capsys):
        assert main(["profile", tiny_program]) == 0
        out = capsys.readouterr().out
        assert "br" in out          # the labelled branch appears
        assert "foldable" in out

    def test_workload(self, capsys):
        assert main(["workload", "adpcm_enc", "--samples", "60"]) == 0
        out = capsys.readouterr().out
        assert "outputs match golden model: True" in out

    def test_workload_with_asbr(self, capsys):
        assert main(["workload", "huffman_dec", "--samples", "60",
                     "--asbr", "--predictor", "bimodal-512-512"]) == 0
        out = capsys.readouterr().out
        assert "branches folded" in out
        assert "outputs match golden model: True" in out

    def test_sim_real_workload_source(self, capsys):
        assert main(["sim", ADPCM_ENC, "--predictor", "not-taken"]) == 0

    def test_experiments_fig9(self, capsys):
        assert main(["experiments", "fig9", "--samples", "120"]) == 0
        out = capsys.readouterr().out
        assert "Branches selected for adpcm_enc" in out


class TestTelemetryCLI:
    """--trace-out / --branch-report / --json and the trace command."""

    def test_sim_json(self, tiny_program, capsys):
        assert main(["sim", tiny_program, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cycles"] > 0
        assert data["cpi"] == pytest.approx(data["cycles"]
                                            / data["committed"])
        # --json turns the metrics registry on: per-branch tables ride
        # along, and the loop branch appears in them
        branches = data["telemetry"]["branches"]
        assert sum(b["executions"] for b in branches.values()) \
            == data["branches"]

    def test_sim_json_without_telemetry_flags_has_no_tables(
            self, tiny_program, capsys):
        assert main(["sim", tiny_program]) == 0
        out = capsys.readouterr().out
        assert "telemetry" not in out      # plain text, no tables

    def test_sim_branch_report(self, tiny_program, capsys):
        assert main(["sim", tiny_program, "--asbr",
                     "--branch-report"]) == 0
        out = capsys.readouterr().out
        assert "per-branch telemetry" in out
        assert "foldT" in out

    def test_sim_trace_out_then_render(self, tiny_program, tmp_path,
                                       capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["sim", tiny_program, "--trace-out", trace]) == 0
        captured = capsys.readouterr()
        assert "trace:" in captured.err and trace in captured.err

        assert main(["trace", "pipeview", trace, "--limit", "12"]) == 0
        view = capsys.readouterr().out
        assert "pipeline timeline" in view
        assert "FDXMW" in view.replace(".", "")   # a full 5-stage row

        assert main(["trace", "report", trace]) == 0
        report = capsys.readouterr().out
        assert "commit=" in report
        assert "per-branch telemetry" in report

    def test_workload_json(self, capsys):
        assert main(["workload", "adpcm_enc", "--samples", "60",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workload"] == "adpcm_enc"
        assert data["outputs_match_golden"] is True
        assert data["telemetry"]["counters"]["commit"] \
            == data["committed"]

    def test_trace_flags_parse(self):
        args = build_parser().parse_args(
            ["trace", "pipeview", "t.jsonl", "--skip", "5",
             "--max-cycles", "80"])
        assert args.mode == "pipeview" and args.skip == 5
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "summary", "t.jsonl"])


class TestHardenedRunnerCLI:
    def test_cache_verify_parses(self):
        args = build_parser().parse_args(
            ["cache", "verify", "--cache-dir", "d", "--keep"])
        assert args.cache_dir == "d" and args.keep

    def test_dse_run_robustness_flags(self):
        args = build_parser().parse_args(
            ["dse", "run", "--task-timeout", "30", "--retries", "2",
             "--tolerant"])
        assert args.task_timeout == 30.0
        assert args.retries == 2 and args.tolerant
        # and the strict defaults are unchanged
        args = build_parser().parse_args(["dse", "run"])
        assert args.task_timeout is None
        assert args.retries == 0 and not args.tolerant

    def test_faults_campaign_defaults(self):
        args = build_parser().parse_args(["faults", "campaign"])
        assert args.benchmark == "adpcm_enc"
        assert (args.samples, args.seed) == (600, 20010618)
        assert args.protection == "all" and args.n_faults == 24
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["faults", "campaign", "--protection", "tmr"])

    def test_faults_report_requires_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "report"])

    def test_cache_verify_prunes_corrupt_entries(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / ("ab" * 32 + ".json")).write_text("{ not json")
        assert main(["cache", "verify", "--cache-dir",
                     str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 corrupt" in out and "1 pruned" in out
        assert list(cache_dir.iterdir()) == []

    def test_cache_verify_keep_leaves_files(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        bad = cache_dir / ("cd" * 32 + ".json")
        bad.write_text("{ not json")
        assert main(["cache", "verify", "--cache-dir", str(cache_dir),
                     "--keep"]) == 0
        out = capsys.readouterr().out
        assert "0 pruned" in out
        assert bad.exists()
