"""Property and unit tests for the golden codec models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.golden import (
    AdpcmState,
    G721State,
    INDEX_TABLE,
    STEPSIZE_TABLE,
    adpcm_decode,
    adpcm_encode,
    g721_decode,
    g721_encode,
)
from repro.workloads.inputs import speech_like, step_pattern

SAMPLES = st.lists(st.integers(min_value=-32768, max_value=32767),
                   min_size=1, max_size=120)


class TestAdpcmTables:
    def test_stepsize_table_shape(self):
        assert len(STEPSIZE_TABLE) == 89
        assert STEPSIZE_TABLE[0] == 7
        assert STEPSIZE_TABLE[-1] == 32767
        assert STEPSIZE_TABLE == sorted(STEPSIZE_TABLE)

    def test_index_table_shape(self):
        assert len(INDEX_TABLE) == 16
        assert INDEX_TABLE[:8] == INDEX_TABLE[8:]


class TestAdpcmEncode:
    @given(SAMPLES)
    @settings(max_examples=40)
    def test_codes_are_4_bit(self, samples):
        codes, _ = adpcm_encode(samples)
        assert len(codes) == len(samples)
        assert all(0 <= c <= 15 for c in codes)

    @given(SAMPLES)
    @settings(max_examples=40)
    def test_state_stays_legal(self, samples):
        _, st_out = adpcm_encode(samples)
        assert 0 <= st_out.index <= 88
        assert -32768 <= st_out.valpred <= 32767

    def test_silence_encodes_quietly(self):
        codes, _ = adpcm_encode([0] * 50)
        # predictor locks on: magnitudes stay minimal
        assert all((c & 7) == 0 for c in codes[5:])

    def test_sign_bit_tracks_direction(self):
        codes, _ = adpcm_encode([-30000])
        assert codes[0] & 8      # first step must go down

    @given(SAMPLES)
    @settings(max_examples=20)
    def test_chunked_equals_whole(self, samples):
        """Encoding in two chunks with carried state matches one call."""
        whole, _ = adpcm_encode(samples)
        mid = len(samples) // 2
        first, st_mid = adpcm_encode(samples[:mid])
        second, _ = adpcm_encode(samples[mid:], st_mid)
        assert first + second == whole


class TestAdpcmRoundTrip:
    @given(SAMPLES)
    @settings(max_examples=40)
    def test_decode_output_legal(self, samples):
        codes, _ = adpcm_encode(samples)
        decoded, _ = adpcm_decode(codes)
        assert len(decoded) == len(codes)
        assert all(-32768 <= s <= 32767 for s in decoded)

    def test_reconstruction_tracks_input(self):
        pcm = speech_like(600, seed=5)
        codes, _ = adpcm_encode(pcm)
        decoded, _ = adpcm_decode(codes)
        # after convergence the decoder tracks within a few step sizes
        err = [abs(a - b) for a, b in zip(pcm[100:], decoded[100:])]
        assert sum(err) / len(err) < 2500

    def test_decoder_mirrors_encoder_predictor(self):
        """The decoder's valpred equals the encoder's (same updates)."""
        pcm = step_pattern(200, seed=2)
        codes, enc_state = adpcm_encode(pcm)
        _, dec_state = adpcm_decode(codes)
        assert enc_state.valpred == dec_state.valpred
        assert enc_state.index == dec_state.index

    def test_empty_input(self):
        assert adpcm_encode([])[0] == []
        assert adpcm_decode([])[0] == []


class TestG721:
    @given(SAMPLES)
    @settings(max_examples=40)
    def test_codes_are_4_bit(self, samples):
        codes, _ = g721_encode(samples)
        assert all(0 <= c <= 15 for c in codes)

    @given(SAMPLES)
    @settings(max_examples=40)
    def test_state_invariants(self, samples):
        _, state = g721_encode(samples)
        assert 1 <= state.y <= 8192
        assert abs(state.a1) <= 12288
        assert abs(state.a2) <= 6144
        assert all(abs(b) <= 12288 for b in state.b)
        assert abs(state.sr1) <= 32768 and abs(state.sr2) <= 32768

    @given(SAMPLES)
    @settings(max_examples=30)
    def test_products_fit_32_bits(self, samples):
        """The clamps must keep every multiply within int32 so the
        assembly implementation's wrapping mul can never diverge."""
        state = G721State()
        for x in samples:
            from repro.workloads.golden import _predict, _quantize, \
                _dequantize, _clamp16, _update
            sez, se = _predict(state)
            for prod in (se * 32767, (state.a1 * state.sr1),
                         (state.a2 * state.sr2)):
                assert abs(prod) < 2 ** 31
            d = x - se
            code = _quantize(d, state.y)
            dq = _dequantize(code, state.y)
            assert abs((dq + sez) * state.sr1) < 2 ** 31
            assert abs((dq + sez) * state.sr2) < 2 ** 31
            for i in range(6):
                assert abs(dq * state.dq[i]) < 2 ** 31
            sr = _clamp16(se + dq)
            _update(state, code, dq, sr, sez)

    def test_decoder_tracks_encoder(self):
        pcm = speech_like(600, seed=6, amplitude=6000)
        codes, _ = g721_encode(pcm)
        decoded, _ = g721_decode(codes)
        err = [abs(a - b) for a, b in zip(pcm[100:], decoded[100:])]
        assert sum(err) / len(err) < 3000

    def test_shared_state_evolution(self):
        """Encoder and decoder predictors stay in lock step — the basis
        of ADPCM and the reason the paper's enc/dec share branches."""
        pcm = speech_like(300, seed=9)
        codes, enc_state = g721_encode(pcm)
        _, dec_state = g721_decode(codes)
        assert enc_state.y == dec_state.y
        assert enc_state.a1 == dec_state.a1
        assert enc_state.b == dec_state.b
        assert enc_state.dq == dec_state.dq

    def test_quantizer_monotone(self):
        """Bigger |d| never yields a smaller code magnitude."""
        from repro.workloads.golden import _quantize
        y = 500
        mags = [_quantize(d, y) & 7 for d in range(0, 30000, 250)]
        assert mags == sorted(mags)

    def test_scale_factor_adapts_up_on_loud_input(self):
        _, quiet = g721_encode([0] * 200)
        _, loud = g721_encode(step_pattern(200, amplitude=20000))
        assert loud.y > quiet.y


class TestInputs:
    def test_speech_like_deterministic(self):
        assert speech_like(64, seed=3) == speech_like(64, seed=3)
        assert speech_like(64, seed=3) != speech_like(64, seed=4)

    def test_ranges(self):
        pcm = speech_like(500, amplitude=8000)
        assert all(-32768 <= s <= 32767 for s in pcm)
        assert max(abs(s) for s in pcm) <= 8000

    def test_step_pattern_holds(self):
        pcm = step_pattern(100, hold=10)
        assert pcm[0] == pcm[9]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            speech_like(0)
        with pytest.raises(ValueError):
            step_pattern(-1)

    def test_signal_has_both_signs(self):
        pcm = speech_like(2000)
        assert min(pcm) < 0 < max(pcm)
