"""Integration tests for the experiment drivers (tiny inputs).

These run the real pipelines end-to-end at reduced scale and assert the
*shape* of the paper's results: orderings, positive improvements, and
selection behaviour — not absolute cycle counts.
"""

import pytest

from repro.experiments import ablations, fig6, fig7, fig9, fig10, fig11
from repro.experiments.common import ExperimentSetup, render_table
from repro.experiments import paper_data


@pytest.fixture(scope="module")
def setup():
    """Small shared setup; runs are memoised across this module."""
    return ExperimentSetup(n_samples=150, seed=99)


@pytest.fixture(scope="module")
def fig6_rows(setup):
    return fig6.run(setup)


@pytest.fixture(scope="module")
def fig11_rows(setup):
    return fig11.run(setup)


class TestFig6(object):
    def test_all_cells_present(self, fig6_rows):
        assert len(fig6_rows) == 4 * 3

    def test_not_taken_is_worst(self, fig6_rows):
        by = {(r.benchmark, r.predictor): r for r in fig6_rows}
        for bench in paper_data.BENCHMARK_NAMES:
            nt = by[(bench, "not-taken")].cycles
            bi = by[(bench, "bimodal")].cycles
            gs = by[(bench, "gshare")].cycles
            assert nt > bi and nt > gs

    def test_predictor_accuracy_ordering(self, fig6_rows):
        by = {(r.benchmark, r.predictor): r for r in fig6_rows}
        for bench in paper_data.BENCHMARK_NAMES:
            assert by[(bench, "not-taken")].accuracy < \
                by[(bench, "bimodal")].accuracy

    def test_cpi_above_one(self, fig6_rows):
        assert all(r.cpi > 1.0 for r in fig6_rows)

    def test_render_contains_paper_numbers(self, fig6_rows):
        text = fig6.render(fig6_rows)
        assert "12,232,809" in text     # paper's ADPCM enc not-taken
        assert "ADPCM Encode" in text


class TestBranchTables:
    def test_fig9_selects_hard_branches(self, setup):
        table = fig9.run(setup)
        assert 3 <= len(table.rows) <= 8
        # selected branches are executed once per sample
        assert all(r.exec_count >= setup.n_samples // 2
                   for r in table.rows)
        # they are hard for bimodal (paper: 0.43-0.65)
        assert min(r.accuracy["bimodal"] for r in table.rows) < 0.8

    def test_fig10_decoder_set(self, setup):
        table = fig10.run(setup)
        assert 2 <= len(table.rows) <= 8
        assert "br0" in fig10.render(table)

    def test_fig7_g721_set(self, setup):
        table = fig7.run(setup, "g721_enc")
        assert 5 <= len(table.rows) <= 16
        text = fig7.render(table)
        assert "1,761,060" in text      # paper exec count appears

    def test_accuracies_are_probabilities(self, setup):
        for table in (fig9.run(setup), fig10.run(setup)):
            for row in table.rows:
                for acc in row.accuracy.values():
                    assert 0.0 <= acc <= 1.0


class TestFig11:
    def test_improvements_positive(self, fig11_rows):
        assert all(r.improvement > 0 for r in fig11_rows)

    def test_improvement_in_plausible_band(self, fig11_rows):
        """Paper headline: 7%-22%; allow a generous band for scaled
        inputs, but the effect must be material and bounded."""
        for r in fig11_rows:
            assert 0.02 < r.improvement < 0.40

    def test_adpcm_benefits_more_than_g721(self, fig11_rows):
        by = {(r.benchmark, r.aux_predictor): r for r in fig11_rows}
        for aux in ("bi-512", "bi-256"):
            adpcm = by[("adpcm_enc", aux)].improvement
            g721 = by[("g721_enc", aux)].improvement
            assert adpcm > g721

    def test_bi256_close_to_bi512(self, fig11_rows):
        """Paper Figure 11: bi-256 cycles nearly equal bi-512."""
        by = {(r.benchmark, r.aux_predictor): r for r in fig11_rows}
        for bench in paper_data.BENCHMARK_NAMES:
            a = by[(bench, "bi-512")].cycles
            b = by[(bench, "bi-256")].cycles
            assert abs(a - b) / a < 0.02

    def test_asbr_with_small_predictor_beats_big_baseline(self,
                                                          fig11_rows):
        """The paper's area claim: ASBR + quarter-size predictor still
        beats the full 2048-entry bimodal baseline."""
        by = {(r.benchmark, r.aux_predictor): r for r in fig11_rows}
        for bench in paper_data.BENCHMARK_NAMES:
            row = by[(bench, "bi-512")]
            assert row.cycles < row.baseline_cycles

    def test_render(self, fig11_rows):
        text = fig11.render(fig11_rows)
        assert "Figure 11" in text
        assert "%" in text


class TestAblations:
    def test_threshold_monotone(self, setup):
        rows = ablations.threshold_sweep("adpcm_enc", setup)
        # lower threshold (more aggressive forwarding) never selects
        # fewer branches and never runs slower
        assert rows[0].threshold < rows[-1].threshold
        assert rows[0].selected >= rows[-1].selected
        assert rows[0].cycles <= rows[-1].cycles

    def test_bit_size_monotone(self, setup):
        rows = ablations.bit_size_sweep("adpcm_enc",
                                        capacities=(1, 2, 4, 8),
                                        setup=setup)
        cycles = [r.cycles for r in rows]
        assert cycles == sorted(cycles, reverse=True)
        bits = [r.state_bits for r in rows]
        assert bits == sorted(bits)

    def test_area_table_asbr_wins(self, setup):
        rows = ablations.area_table("adpcm_enc", setup)
        base = {r.config: r for r in rows}
        asbr = base["ASBR+bimodal-512-512"]
        big = base["bimodal-2048"]
        assert asbr.state_bits < big.state_bits
        assert asbr.cycles < big.cycles
        assert asbr.accuracy > big.accuracy   # aux sees easy branches only

    def test_scheduling_study(self, setup):
        study = ablations.scheduling_study(setup)
        assert study.folds_after >= study.folds_before
        assert study.cycles_after <= study.cycles_before
        assert study.cycles_hand <= study.cycles_after
        assert "scheduling" in ablations.render_scheduling(study)


class TestInfrastructure:
    def test_runs_are_cached(self, setup):
        a = setup.run("adpcm_enc", "not-taken")
        b = setup.run("adpcm_enc", "not-taken")
        assert a is b

    def test_output_validation_is_on(self, setup):
        """Every cached run validated its outputs against the golden
        model (ExperimentSetup.run raises otherwise) — reaching here
        means all runs in this module were architecturally correct."""
        assert setup._runs

    def test_render_table_alignment(self):
        text = render_table(["a", "bee"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("bee") == lines[2].index("2")

    def test_selection_counts_within_bit_capacity(self, setup):
        for bench in paper_data.BENCHMARK_NAMES:
            sel = setup.selection(bench)
            assert len(sel.selected) <= 16


class TestFaultCampaignDriver:
    def test_campaign_config_follows_setup(self):
        from repro.experiments import fault_campaign
        setup = ExperimentSetup(n_samples=64, seed=11)
        cfg = fault_campaign.campaign_config(setup)
        assert cfg.benchmark == fault_campaign.BENCHMARK
        assert (cfg.n_samples, cfg.seed) == (64, 11)
        assert cfg.predictor_spec == fault_campaign.PREDICTOR
        assert cfg.fault_seed == fault_campaign.FAULT_SEED

    def test_verdicts_hold_on_a_small_matrix(self):
        from repro.experiments import fault_campaign
        from repro.faults import CampaignConfig, run_protection_matrix
        matrix = run_protection_matrix(
            CampaignConfig(n_samples=64, seed=11, bit_capacity=8,
                           n_faults=6, fault_seed=3))
        text = fault_campaign._verdicts(matrix)
        # parity must not leak and ECC must stay bit-identical, even on
        # a plan this small; the unprotected line is allowed either way
        assert "FAILED" not in text
        assert "parity-protected" in text and "ECC-protected" in text
