"""Unit tests for the Instruction object: operands, classification,
branch predicates and control-flow targets."""

import pytest

from repro.isa.conditions import Condition
from repro.isa.instruction import Instruction, nop
from repro.isa.opcodes import Kind, SPECS, spec_for


class TestConstruction:
    def test_unknown_mnemonic(self):
        with pytest.raises(KeyError):
            Instruction("nonsense")

    def test_spec_attached(self):
        assert Instruction("add").spec is spec_for("add")

    def test_nop_is_sll_zero(self):
        n = nop()
        assert n.op == "sll"
        assert n.rd == 0 and n.rs == 0 and n.shamt == 0


class TestClassification:
    @pytest.mark.parametrize("op", ["beq", "bne", "blez", "bgtz", "bltz",
                                    "bgez", "beqz", "bnez"])
    def test_branches(self, op):
        assert Instruction(op).is_branch
        assert Instruction(op).is_control

    @pytest.mark.parametrize("op", ["j", "jal", "jr", "jalr"])
    def test_jumps_are_control_not_branch(self, op):
        i = Instruction(op)
        assert i.is_control
        assert not i.is_branch

    @pytest.mark.parametrize("op", ["lw", "lh", "lhu", "lb", "lbu"])
    def test_loads(self, op):
        assert Instruction(op).is_load
        assert not Instruction(op).is_store

    @pytest.mark.parametrize("op", ["sw", "sh", "sb"])
    def test_stores(self, op):
        assert Instruction(op).is_store
        assert not Instruction(op).is_load

    def test_alu_not_control(self):
        assert not Instruction("add").is_control


class TestRegisterUsage:
    def test_alu_rrr(self):
        i = Instruction("add", rd=3, rs=1, rt=2)
        assert i.dest_reg == 3
        assert i.src_regs == [1, 2]

    def test_shift_immediate(self):
        i = Instruction("sll", rd=4, rs=5, shamt=2)
        assert i.dest_reg == 4
        assert i.src_regs == [5]

    def test_alu_rri(self):
        i = Instruction("addi", rt=7, rs=6, imm=1)
        assert i.dest_reg == 7
        assert i.src_regs == [6]

    def test_lui(self):
        i = Instruction("lui", rt=9, imm=4)
        assert i.dest_reg == 9
        assert i.src_regs == []

    def test_load(self):
        i = Instruction("lw", rt=8, rs=4, imm=0)
        assert i.dest_reg == 8
        assert i.src_regs == [4]

    def test_store_reads_both(self):
        i = Instruction("sw", rt=8, rs=4, imm=0)
        assert i.dest_reg is None
        assert sorted(i.src_regs) == [4, 8]

    def test_branch_cmp_reads_both(self):
        i = Instruction("beq", rs=1, rt=2)
        assert i.dest_reg is None
        assert i.src_regs == [1, 2]

    def test_branch_z_reads_rs(self):
        i = Instruction("bltz", rs=3)
        assert i.src_regs == [3]

    def test_jal_writes_ra(self):
        assert Instruction("jal").dest_reg == 31

    def test_jalr_writes_rd_reads_rs(self):
        i = Instruction("jalr", rd=2, rs=9)
        assert i.dest_reg == 2
        assert i.src_regs == [9]

    def test_jr_reads_rs(self):
        i = Instruction("jr", rs=31)
        assert i.dest_reg is None
        assert i.src_regs == [31]

    def test_halt_touches_nothing(self):
        i = Instruction("halt")
        assert i.dest_reg is None
        assert i.src_regs == []


class TestZeroCondition:
    @pytest.mark.parametrize("op,cond", [
        ("blez", Condition.LEZ), ("bgtz", Condition.GTZ),
        ("bltz", Condition.LTZ), ("bgez", Condition.GEZ),
        ("beqz", Condition.EQZ), ("bnez", Condition.NEZ),
    ])
    def test_branch_z(self, op, cond):
        i = Instruction(op, rs=5)
        assert i.zero_condition == (cond, 5)

    def test_beq_with_r0_rt(self):
        assert Instruction("beq", rs=4, rt=0).zero_condition == \
            (Condition.EQZ, 4)

    def test_bne_with_r0_rs(self):
        assert Instruction("bne", rs=0, rt=6).zero_condition == \
            (Condition.NEZ, 6)

    def test_two_register_compare_is_not_zero_cond(self):
        assert Instruction("beq", rs=1, rt=2).zero_condition is None

    def test_non_branch_is_none(self):
        assert Instruction("add").zero_condition is None


class TestTargets:
    def test_branch_target_forward(self):
        i = Instruction("beqz", rs=1, imm=3)
        assert i.branch_target(0x400000) == 0x400000 + 4 + 12

    def test_branch_target_backward(self):
        i = Instruction("bnez", rs=1, imm=-2)
        assert i.branch_target(0x400010) == 0x40000C

    def test_jump_target(self):
        i = Instruction("j", target=(0x400020 >> 2))
        assert i.jump_target(0x400000) == 0x400020

    def test_jump_keeps_high_nibble(self):
        i = Instruction("j", target=1)
        assert i.jump_target(0x10000000) == 0x10000004


class TestRender:
    def test_alu(self):
        assert str(Instruction("add", rd=3, rs=1, rt=2)) == "add r3, r1, r2"

    def test_memory(self):
        assert str(Instruction("lw", rt=8, rs=29, imm=-4)) == "lw r8, -4(r29)"

    def test_branch_with_pc(self):
        i = Instruction("bnez", rs=1, imm=-2)
        assert "0x40000c" in i.render(0x400010)

    def test_halt_bare(self):
        assert str(Instruction("halt")) == "halt"

    def test_every_spec_renders(self):
        for name in SPECS:
            text = Instruction(name).render(0x400000)
            assert text.startswith(name)
