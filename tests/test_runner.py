"""Tests for the parallel experiment runner and its on-disk cache.

Covers the contract stated in :mod:`repro.runner`:

* cache hit / miss / invalidation by each digest component;
* corrupted or version-stale entries are dropped and recomputed;
* worker count never changes results (workers=1 vs workers=4);
* duplicate specs inside a sweep are simulated once;
* ExperimentSetup reads/writes the disk cache and bypasses it for
  non-canonical inputs.
"""

import dataclasses
import json
import os

import pytest

from repro.experiments.common import ExperimentSetup
from repro.runner import (
    CACHE_VERSION,
    ResultCache,
    RunSpec,
    aggregate_metrics,
    execute_spec,
    execute_spec_metrics,
    key_for_spec,
    map_specs,
    run_sweep,
)
from repro.sim.pipeline import PipelineStats

N, SEED = 64, 11


def spec_of(predictor="not-taken", bench="adpcm_enc", asbr=False, **kw):
    return RunSpec(bench, N, SEED, predictor, with_asbr=asbr, **kw)


def as_dicts(stats_list):
    return [dataclasses.asdict(s) for s in stats_list]


# ----------------------------------------------------------------------
# execute_spec
# ----------------------------------------------------------------------
def test_execute_spec_returns_verified_stats():
    stats = execute_spec(spec_of())
    assert isinstance(stats, PipelineStats)
    assert stats.cycles > stats.committed > 0


def test_execute_spec_asbr_folds():
    plain = execute_spec(spec_of("bimodal-512-512"))
    folded = execute_spec(spec_of("bimodal-512-512", asbr=True))
    assert folded.folds_committed > 0
    assert folded.cycles < plain.cycles


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------
def test_key_changes_with_each_digest_component():
    base = key_for_spec(spec_of())
    assert key_for_spec(spec_of()) == base                    # stable
    assert key_for_spec(spec_of("bimodal-2048")) != base      # config
    assert key_for_spec(spec_of(bench="adpcm_dec")) != base   # program
    assert key_for_spec(RunSpec("adpcm_enc", N, SEED + 1,
                                "not-taken")) != base         # input
    assert key_for_spec(spec_of(asbr=True)) != base
    assert key_for_spec(spec_of(asbr=True, bdt_update="commit")) \
        != key_for_spec(spec_of(asbr=True))


# ----------------------------------------------------------------------
# cache hit / miss / recovery
# ----------------------------------------------------------------------
def test_cache_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = key_for_spec(spec_of())
    assert cache.get(key) is None
    assert cache.misses == 1
    stats = execute_spec(spec_of())
    cache.put(key, stats)
    again = cache.get(key)
    assert cache.hits == 1
    assert dataclasses.asdict(again) == dataclasses.asdict(stats)


def test_cache_drops_corrupted_entry(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = key_for_spec(spec_of())
    cache.put(key, execute_spec(spec_of()))
    path = os.path.join(str(tmp_path), key + ".json")
    with open(path, "w") as f:
        f.write("{ truncated garbage")
    assert cache.get(key) is None
    assert cache.dropped == 1
    assert not os.path.exists(path)      # recomputed entries re-land
    # and a sweep recovers transparently
    results = run_sweep([spec_of()], cache=cache)
    assert results[0].cycles > 0
    assert cache.get(key) is not None


def test_cache_drops_version_mismatch(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = key_for_spec(spec_of())
    cache.put(key, execute_spec(spec_of()))
    path = os.path.join(str(tmp_path), key + ".json")
    with open(path) as f:
        entry = json.load(f)
    entry["version"] = CACHE_VERSION + 1
    with open(path, "w") as f:
        json.dump(entry, f)
    assert cache.get(key) is None
    assert cache.dropped == 1


def test_cache_drops_wrong_stats_fields(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = key_for_spec(spec_of())
    with open(os.path.join(str(tmp_path), key + ".json"), "w") as f:
        json.dump({"version": CACHE_VERSION,
                   "stats": {"no_such_field": 1}}, f)
    assert cache.get(key) is None
    assert cache.dropped == 1


# ----------------------------------------------------------------------
# sweeps
# ----------------------------------------------------------------------
SWEEP = [
    spec_of("not-taken"),
    spec_of("bimodal-512-512"),
    spec_of("bimodal-512-512", asbr=True),
    spec_of("not-taken"),                       # duplicate of [0]
]


def test_sweep_dedupes_and_orders(tmp_path):
    cache = ResultCache(str(tmp_path))
    results = run_sweep(SWEEP, cache=cache)
    assert len(results) == len(SWEEP)
    assert results[0] is results[3]             # computed once
    assert cache.misses == 3                    # distinct specs only
    assert len(os.listdir(str(tmp_path))) == 3


def test_sweep_warm_rerun_hits_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    cold = run_sweep(SWEEP, cache=cache)
    warm_cache = ResultCache(str(tmp_path))
    warm = run_sweep(SWEEP, cache=warm_cache)
    assert as_dicts(cold) == as_dicts(warm)
    assert warm_cache.hits == 3
    assert warm_cache.misses == 0


def test_workers_do_not_change_results():
    inline = map_specs(SWEEP[:3], workers=1)
    pooled = map_specs(SWEEP[:3], workers=4)
    assert as_dicts(inline) == as_dicts(pooled)


def test_sweep_without_cache():
    results = run_sweep(SWEEP, workers=0, cache=None)
    assert results[0] is results[3]
    assert as_dicts(results[:1]) == as_dicts([execute_spec(SWEEP[0])])


# ----------------------------------------------------------------------
# metric sweeps (telemetry riding the cache)
# ----------------------------------------------------------------------
def test_execute_spec_metrics_matches_plain():
    spec = spec_of("bimodal-512-512", asbr=True)
    plain = execute_spec(spec)
    stats, metrics = execute_spec_metrics(spec)
    assert dataclasses.asdict(stats) == dataclasses.asdict(plain)
    from repro.telemetry import MetricsRegistry
    reg = MetricsRegistry.from_dict(metrics)
    assert reg.total_branch_executions == stats.branches
    assert reg.total_fold_hits == stats.folds_committed


def test_metric_sweep_caches_and_upgrades(tmp_path):
    spec = spec_of()
    cache = ResultCache(str(tmp_path))
    # a metric-less entry serves plain lookups but misses for metrics
    run_sweep([spec], cache=cache)
    key = key_for_spec(spec)
    assert cache.get(key) is not None
    assert cache.get(key, with_metrics=True) is None
    assert os.path.exists(os.path.join(str(tmp_path), key + ".json"))

    # the metric sweep recomputes once, upgrading the entry in place
    (stats, metrics), = run_sweep([spec], cache=cache,
                                  collect_metrics=True)
    warm = ResultCache(str(tmp_path))
    (w_stats, w_metrics), = run_sweep([spec], cache=warm,
                                      collect_metrics=True)
    assert warm.hits == 1 and warm.misses == 0
    assert dataclasses.asdict(w_stats) == dataclasses.asdict(stats)
    assert w_metrics == metrics
    # and the upgraded entry still serves metric-less lookups
    assert warm.get(key) is not None


def test_aggregate_metrics_merges_per_benchmark():
    specs = [spec_of(), RunSpec("adpcm_enc", N, SEED + 1, "not-taken")]
    results = run_sweep(specs, collect_metrics=True)
    merged = aggregate_metrics(specs, [m for _, m in results])
    assert set(merged) == {"adpcm_enc"}
    total = sum(stats.branches for stats, _ in results)
    assert merged["adpcm_enc"].total_branch_executions == total
    with pytest.raises(ValueError):
        aggregate_metrics(specs, [None])


# ----------------------------------------------------------------------
# ExperimentSetup integration
# ----------------------------------------------------------------------
def test_setup_uses_disk_cache(tmp_path):
    first = ExperimentSetup(n_samples=N, seed=SEED,
                            cache_dir=str(tmp_path))
    s1 = first.run("adpcm_enc", "not-taken")
    assert first.result_cache().misses == 1
    assert len(os.listdir(str(tmp_path))) == 1

    second = ExperimentSetup(n_samples=N, seed=SEED,
                             cache_dir=str(tmp_path))
    s2 = second.run("adpcm_enc", "not-taken")
    assert second.result_cache().hits == 1
    assert dataclasses.asdict(s1) == dataclasses.asdict(s2)


def test_setup_matches_runner_stats(tmp_path):
    """Inline ExperimentSetup.run == worker-path execute_spec."""
    setup = ExperimentSetup(n_samples=N, seed=SEED)
    for spec in SWEEP[:3]:
        inline = setup.run(spec.benchmark, spec.predictor_spec,
                           with_asbr=spec.with_asbr)
        assert dataclasses.asdict(inline) == \
            dataclasses.asdict(execute_spec(spec))


def test_setup_prefetch_fills_memo(tmp_path):
    setup = ExperimentSetup(n_samples=N, seed=SEED,
                            cache_dir=str(tmp_path))
    setup.prefetch([("adpcm_enc", "not-taken", False),
                    ("adpcm_enc", "bimodal-512-512", True)])
    assert len(setup._runs) == 2
    # the later .run() calls are pure memo lookups
    assert setup.run("adpcm_enc", "not-taken") \
        is setup._runs[("adpcm_enc", "not-taken", False, 16, "execute")]


def test_setup_noncanonical_input_bypasses_cache(tmp_path):
    setup = ExperimentSetup(n_samples=N, seed=SEED,
                            cache_dir=str(tmp_path))
    setup._pcm = [0] * N                 # not speech_like(N, SEED)
    setup.prefetch([("adpcm_enc", "not-taken", False)])
    assert setup._runs == {}             # prefetch refused
    setup.run("adpcm_enc", "not-taken")  # inline compute still works
    assert os.listdir(str(tmp_path)) == []   # and never touched disk


def test_golden_mismatch_is_never_cached(tmp_path, monkeypatch):
    from repro.workloads.loader import Workload
    monkeypatch.setattr(Workload, "golden_output",
                        lambda self, pcm: ["wrong"])
    cache = ResultCache(str(tmp_path))
    with pytest.raises(AssertionError):
        run_sweep([spec_of()], cache=cache)
    assert os.listdir(str(tmp_path)) == []


# ----------------------------------------------------------------------
# payload checksums and cache verification
# ----------------------------------------------------------------------
def test_cache_entries_carry_verifiable_checksum(tmp_path):
    from repro.runner.cache import _payload_checksum
    cache = ResultCache(str(tmp_path))
    key = key_for_spec(spec_of())
    cache.put(key, execute_spec(spec_of()))
    with open(os.path.join(str(tmp_path), key + ".json")) as f:
        entry = json.load(f)
    assert entry["sha256"] == _payload_checksum(entry)
    assert cache.get(key) is not None        # and it reads back


def test_cache_drops_silently_tampered_payload(tmp_path):
    """A bit flip that keeps the JSON valid is caught by the checksum
    (the pre-checksum cache would have served it as truth)."""
    cache = ResultCache(str(tmp_path))
    key = key_for_spec(spec_of())
    cache.put(key, execute_spec(spec_of()))
    path = os.path.join(str(tmp_path), key + ".json")
    with open(path) as f:
        entry = json.load(f)
    entry["stats"]["cycles"] += 1
    with open(path, "w") as f:
        json.dump(entry, f)
    assert cache.get(key) is None
    assert cache.dropped == 1
    assert not os.path.exists(path)


def test_cache_verify_classifies_and_prunes(tmp_path):
    cache = ResultCache(str(tmp_path))
    good = key_for_spec(spec_of())
    cache.put(good, execute_spec(spec_of()))

    def write(name, payload):
        with open(os.path.join(str(tmp_path), name + ".json"), "w") as f:
            f.write(payload)

    with open(os.path.join(str(tmp_path), good + ".json")) as f:
        entry = json.load(f)
    stale = dict(entry, version=CACHE_VERSION - 1)
    write("aa" * 32, json.dumps(stale))
    tampered = dict(entry)
    tampered["stats"] = dict(entry["stats"], cycles=1)
    write("bb" * 32, json.dumps(tampered))
    write("cc" * 32, "{ not json")

    scan = ResultCache(str(tmp_path)).verify(prune=False)
    assert (scan.scanned, scan.ok) == (4, 1)
    assert (scan.stale, scan.corrupt, scan.pruned) == (1, 2, 0)
    assert "4 entries scanned" in scan.render()

    pruned = ResultCache(str(tmp_path)).verify(prune=True)
    assert pruned.pruned == 3
    assert os.listdir(str(tmp_path)) == [good + ".json"]
    assert ResultCache(str(tmp_path)).verify().ok == 1


def test_cache_verify_empty_directory(tmp_path):
    result = ResultCache(str(tmp_path / "missing")).verify()
    assert result.scanned == 0 and result.pruned == 0


# ----------------------------------------------------------------------
# FuncSpec: batchable functional runs through the same pool front door
# ----------------------------------------------------------------------
def test_func_specs_batch_matches_serial():
    from repro.runner import FuncResult, FuncSpec, execute_func_spec, \
        execute_func_specs

    specs = [FuncSpec("adpcm_enc", 20 + 7 * i, i) for i in range(5)]
    batched = execute_func_specs(specs)
    for spec, got in zip(specs, batched):
        assert isinstance(got, FuncResult)
        assert got == execute_func_spec(spec)


def test_map_specs_mixes_func_and_run_specs():
    from repro.runner import FuncResult, FuncSpec

    specs = [FuncSpec("adpcm_enc", 20, 1), spec_of(),
             FuncSpec("adpcm_enc", 30, 2)]
    order = []
    results = map_specs(specs, on_result=lambda i, s, r: order.append(i))
    assert isinstance(results[0], FuncResult)
    assert isinstance(results[1], PipelineStats)
    assert isinstance(results[2], FuncResult)
    assert sorted(order) == [0, 1, 2]
    assert dataclasses.asdict(results[1]) \
        == dataclasses.asdict(execute_spec(specs[1]))


def test_func_specs_group_by_program_digest():
    """Two workload names assembling different programs must not share
    a batch; same name + same budget must."""
    from repro.runner.batch import _group_key, FuncSpec

    digests = {}
    k_enc = _group_key(FuncSpec("adpcm_enc", 10, 0), digests)
    k_enc2 = _group_key(FuncSpec("adpcm_enc", 40, 3), digests)
    k_dec = _group_key(FuncSpec("adpcm_dec", 10, 0), digests)
    k_budget = _group_key(FuncSpec("adpcm_enc", 10, 0,
                                   max_instructions=100), digests)
    assert k_enc == k_enc2
    assert k_enc != k_dec
    assert k_enc != k_budget


def test_func_spec_rejects_collect_metrics():
    from repro.runner import FuncSpec

    with pytest.raises(ValueError):
        map_specs([FuncSpec("adpcm_enc", 8, 0)], collect_metrics=True)


def test_func_spec_bad_lane_is_quarantined():
    """A lane that trips its instruction budget settles as a
    FailedResult without aborting its healthy batch neighbours."""
    from repro.runner import FailedResult, FuncSpec

    # one batched group (same program, same budget): the long lane
    # trips the budget, the short lane completes
    specs = [FuncSpec("adpcm_enc", 40, 1, max_instructions=800),
             FuncSpec("adpcm_enc", 12, 2, max_instructions=800),
             FuncSpec("adpcm_enc", 40, 1, max_instructions=50)]
    results = map_specs(specs, on_error="return")
    assert isinstance(results[0], FailedResult)
    assert results[0].kind == "error"
    assert "budget" in results[0].error
    assert not isinstance(results[1], FailedResult)
    # singleton group (unique budget) quarantines through the serial path
    assert isinstance(results[2], FailedResult)
    with pytest.raises(RuntimeError):
        map_specs(specs, on_error="raise")
