"""Golden-stats regression lock for the cycle-accurate pipeline.

These numbers were produced by the original (pre-fast-path) simulator
and must never drift: any change to ``PipelineSimulator`` that alters a
single cycle, fetch, squash or stall count on these small inputs is a
timing-model change, not an optimisation, and must be reviewed as such.
Every lock runs under both execution engines — the block-compiled
engine (``engine="blocks"``) must reproduce the interpreted numbers
bit-for-bit.

The inputs are deliberately small (96 PCM samples) so the whole module
stays in tier-1.
"""

import dataclasses

import pytest

from repro.asbr import ASBRUnit
from repro.predictors import make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.workloads import get_workload
from repro.workloads.inputs import speech_like

PCM_N, PCM_SEED = 96, 11

#: (workload, predictor spec, with_asbr) -> full PipelineStats dict,
#: recorded from the seed simulator.
GOLDEN = {
    ("adpcm_enc", "not-taken", False): {
        'cycles': 6402, 'committed': 4542, 'fetched': 5351, 'squashed': 809,
        'branches': 1004, 'branch_mispredicts': 809, 'folds_committed': 0,
        'uncond_folds_committed': 0, 'predictor_lookups': 1004,
        'jump_bubbles': 0, 'jr_redirects': 0, 'load_use_stalls': 0,
        'icache_miss_stalls': 80, 'dcache_miss_stalls': 184},
    ("adpcm_enc", "bimodal-512-512", False): {
        'cycles': 5144, 'committed': 4542, 'fetched': 4722, 'squashed': 180,
        'branches': 1004, 'branch_mispredicts': 180, 'folds_committed': 0,
        'uncond_folds_committed': 0, 'predictor_lookups': 1004,
        'jump_bubbles': 0, 'jr_redirects': 0, 'load_use_stalls': 0,
        'icache_miss_stalls': 80, 'dcache_miss_stalls': 184},
    ("adpcm_enc", "bimodal-512-512", True): {
        'cycles': 4328, 'committed': 4062, 'fetched': 4069, 'squashed': 7,
        'branches': 524, 'branch_mispredicts': 7, 'folds_committed': 480,
        'uncond_folds_committed': 0, 'predictor_lookups': 524,
        'jump_bubbles': 0, 'jr_redirects': 0, 'load_use_stalls': 0,
        'icache_miss_stalls': 80, 'dcache_miss_stalls': 184},
    ("adpcm_dec", "not-taken", False): {
        'cycles': 5374, 'committed': 3525, 'fetched': 4281, 'squashed': 756,
        'branches': 908, 'branch_mispredicts': 756, 'folds_committed': 0,
        'uncond_folds_committed': 0, 'predictor_lookups': 908,
        'jump_bubbles': 0, 'jr_redirects': 0, 'load_use_stalls': 96,
        'icache_miss_stalls': 64, 'dcache_miss_stalls': 192},
    ("adpcm_dec", "bimodal-512-512", False): {
        'cycles': 4150, 'committed': 3525, 'fetched': 3669, 'squashed': 144,
        'branches': 908, 'branch_mispredicts': 144, 'folds_committed': 0,
        'uncond_folds_committed': 0, 'predictor_lookups': 908,
        'jump_bubbles': 0, 'jr_redirects': 0, 'load_use_stalls': 96,
        'icache_miss_stalls': 64, 'dcache_miss_stalls': 192},
    ("adpcm_dec", "bimodal-512-512", True): {
        'cycles': 3492, 'committed': 3141, 'fetched': 3148, 'squashed': 7,
        'branches': 524, 'branch_mispredicts': 7, 'folds_committed': 384,
        'uncond_folds_committed': 0, 'predictor_lookups': 524,
        'jump_bubbles': 0, 'jr_redirects': 0, 'load_use_stalls': 96,
        'icache_miss_stalls': 64, 'dcache_miss_stalls': 192},
    ("g721_enc", "not-taken", False): {
        'cycles': 43688, 'committed': 31943, 'fetched': 36559,
        'squashed': 4616, 'branches': 6057, 'branch_mispredicts': 4616,
        'folds_committed': 0, 'uncond_folds_committed': 0,
        'predictor_lookups': 6057, 'jump_bubbles': 0, 'jr_redirects': 0,
        'load_use_stalls': 1851, 'icache_miss_stalls': 192,
        'dcache_miss_stalls': 518},
    ("g721_enc", "bimodal-512-512", False): {
        'cycles': 35440, 'committed': 31943, 'fetched': 32435,
        'squashed': 492, 'branches': 6057, 'branch_mispredicts': 492,
        'folds_committed': 0, 'uncond_folds_committed': 0,
        'predictor_lookups': 6057, 'jump_bubbles': 0, 'jr_redirects': 0,
        'load_use_stalls': 1851, 'icache_miss_stalls': 192,
        'dcache_miss_stalls': 518},
    ("g721_enc", "bimodal-512-512", True): {
        'cycles': 32552, 'committed': 29653, 'fetched': 29842,
        'squashed': 189, 'branches': 3767, 'branch_mispredicts': 189,
        'folds_committed': 2290, 'uncond_folds_committed': 0,
        'predictor_lookups': 3767, 'jump_bubbles': 0, 'jr_redirects': 0,
        'load_use_stalls': 1851, 'icache_miss_stalls': 192,
        'dcache_miss_stalls': 518},
}


@pytest.fixture(scope="module")
def pcm():
    return speech_like(PCM_N, seed=PCM_SEED)


def _run(pcm, name, pred_spec, with_asbr, engine="interp"):
    wl = get_workload(name)
    asbr = None
    if with_asbr:
        stream = wl.input_stream(pcm)
        count = wl.count_fn(pcm)
        profile = BranchProfiler().profile(wl.program,
                                           wl.build_memory(stream, count))
        sel = select_branches(profile, bit_capacity=16, bdt_update="execute")
        asbr = ASBRUnit.from_branch_infos(sel.infos, capacity=16,
                                          bdt_update="execute")
    result = wl.run_pipeline(pcm, predictor=make_predictor(pred_spec),
                             asbr=asbr, engine=engine)
    assert result.outputs == wl.golden_output(pcm)
    return result.stats


@pytest.mark.parametrize("engine", ["interp", "blocks", "superblocks"])
@pytest.mark.parametrize("key", sorted(GOLDEN),
                         ids=lambda k: "%s-%s-asbr%d" % (k[0], k[1], k[2]))
def test_stats_bit_identical_to_seed(pcm, key, engine):
    name, pred_spec, with_asbr = key
    stats = _run(pcm, name, pred_spec, with_asbr, engine=engine)
    assert dataclasses.asdict(stats) == GOLDEN[key]


def test_derived_metrics_consistent(pcm):
    stats = _run(pcm, "adpcm_enc", "bimodal-512-512", False)
    golden = GOLDEN[("adpcm_enc", "bimodal-512-512", False)]
    assert stats.cpi == pytest.approx(golden["cycles"] / golden["committed"])
    assert stats.branch_accuracy == pytest.approx(
        1.0 - golden["branch_mispredicts"] / golden["branches"])
