"""Unit and property tests for the shared ALU semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.alu import (
    MASK32,
    alu_execute,
    load_value,
    sign_extend_16,
    to_signed,
    to_unsigned,
)

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
S32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


class TestSignConversion:
    @given(U32)
    def test_roundtrip(self, v):
        assert to_unsigned(to_signed(v)) == v

    @given(S32)
    def test_signed_roundtrip(self, v):
        assert to_signed(to_unsigned(v)) == v

    def test_boundaries(self):
        assert to_signed(0x7FFFFFFF) == 2147483647
        assert to_signed(0x80000000) == -2147483648
        assert to_signed(0xFFFFFFFF) == -1


class TestArith:
    def test_add_wraps(self):
        assert alu_execute("add", 0xFFFFFFFF, 1) == 0
        assert alu_execute("addu", 0x80000000, 0x80000000) == 0

    def test_sub_wraps(self):
        assert alu_execute("sub", 0, 1) == 0xFFFFFFFF

    @given(U32, U32)
    def test_add_sub_inverse(self, a, b):
        assert alu_execute("sub", alu_execute("add", a, b), b) == a

    @given(U32, U32)
    def test_add_commutative(self, a, b):
        assert alu_execute("add", a, b) == alu_execute("add", b, a)

    def test_mul_signed(self):
        assert alu_execute("mul", to_unsigned(-3), 5) == to_unsigned(-15)

    @given(S32, S32)
    def test_mul_matches_python_low_bits(self, a, b):
        got = alu_execute("mul", to_unsigned(a), to_unsigned(b))
        assert got == (a * b) & MASK32


class TestLogic:
    @given(U32, U32)
    def test_de_morgan(self, a, b):
        nor = alu_execute("nor", a, b)
        assert nor == (~(a | b)) & MASK32

    @given(U32)
    def test_xor_self_is_zero(self, a):
        assert alu_execute("xor", a, a) == 0

    @given(U32)
    def test_or_identity(self, a):
        assert alu_execute("or", a, 0) == a


class TestShifts:
    def test_sll(self):
        assert alu_execute("sll", 1, 31) == 0x80000000
        assert alu_execute("sll", 3, 1) == 6

    def test_srl_is_logical(self):
        assert alu_execute("srl", 0x80000000, 31) == 1

    def test_sra_is_arithmetic(self):
        assert alu_execute("sra", 0x80000000, 31) == 0xFFFFFFFF
        assert alu_execute("sra", to_unsigned(-8), 1) == to_unsigned(-4)

    @given(U32, st.integers(min_value=0, max_value=31))
    def test_sra_matches_floor_division(self, a, sh):
        # arithmetic shift right == floor division by 2**sh
        assert to_signed(alu_execute("sra", a, sh)) == to_signed(a) >> sh

    @given(U32, st.integers(min_value=0, max_value=31))
    def test_shift_amount_masked(self, a, sh):
        assert alu_execute("sll", a, sh + 32) == alu_execute("sll", a, sh)


class TestCompare:
    def test_slt_signed(self):
        assert alu_execute("slt", to_unsigned(-1), 0) == 1
        assert alu_execute("slt", 0, to_unsigned(-1)) == 0

    def test_sltu_unsigned(self):
        assert alu_execute("sltu", to_unsigned(-1), 0) == 0
        assert alu_execute("sltu", 0, to_unsigned(-1)) == 1

    @given(S32, S32)
    def test_slt_matches_python(self, a, b):
        got = alu_execute("slt", to_unsigned(a), to_unsigned(b))
        assert got == int(a < b)


class TestDivRem:
    def test_div_truncates_toward_zero(self):
        assert to_signed(alu_execute("div", to_unsigned(-7), 2)) == -3
        assert to_signed(alu_execute("div", 7, to_unsigned(-2))) == -3

    def test_rem_sign_follows_dividend(self):
        assert to_signed(alu_execute("rem", to_unsigned(-7), 2)) == -1
        assert to_signed(alu_execute("rem", 7, to_unsigned(-2))) == 1

    def test_div_by_zero_defined(self):
        assert alu_execute("div", 5, 0) == 0
        assert alu_execute("rem", 5, 0) == 0

    @given(S32, S32.filter(lambda v: v != 0))
    def test_div_rem_identity(self, a, b):
        q = to_signed(alu_execute("div", to_unsigned(a), to_unsigned(b)))
        r = to_signed(alu_execute("rem", to_unsigned(a), to_unsigned(b)))
        assert q * b + r == a
        assert abs(r) < abs(b)


class TestMisc:
    def test_lui(self):
        assert alu_execute("lui", 0, 0x1234) == 0x12340000

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            alu_execute("frobnicate", 1, 2)

    def test_sign_extend_16(self):
        assert sign_extend_16(0x7FFF) == 32767
        assert sign_extend_16(0x8000) == -32768
        assert sign_extend_16(0xFFFF) == -1


class TestLoadValue:
    def test_lb_sign_extends(self):
        assert load_value("lb", 0x80) == 0xFFFFFF80
        assert load_value("lb", 0x7F) == 0x7F

    def test_lbu_zero_extends(self):
        assert load_value("lbu", 0x80) == 0x80

    def test_lh_sign_extends(self):
        assert load_value("lh", 0x8000) == 0xFFFF8000

    def test_lhu_zero_extends(self):
        assert load_value("lhu", 0x8000) == 0x8000

    def test_lw_passthrough(self):
        assert load_value("lw", 0xDEADBEEF) == 0xDEADBEEF

    def test_non_load_raises(self):
        with pytest.raises(ValueError):
            load_value("sw", 0)
