"""Tests for the PAg local-history predictor extension."""

import pytest

from repro.predictors import LocalHistoryPredictor, make_predictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor

PC = 0x400100
TGT = 0x400200


class TestLocal:
    def test_learns_periodic_pattern(self):
        """A period-3 pattern (T T NT) is exact for local history."""
        p = LocalHistoryPredictor(history_bits=6, pht_entries=64,
                                  btb_entries=64)
        pattern = [True, True, False] * 80
        correct = 0
        for taken in pattern:
            correct += p.predict(PC).taken == taken
            p.update(PC, taken, TGT)
        assert correct > len(pattern) * 0.85

    def test_immune_to_interleaved_noise(self):
        """A second noisy branch cannot pollute the first's history
        (which it can with gshare's single global register)."""
        import random
        rng = random.Random(5)
        local = LocalHistoryPredictor(history_bits=4, pht_entries=16,
                                      btb_entries=64)
        gshare = GSharePredictor(history_bits=4, entries=16,
                                 btb_entries=64)
        l_ok = g_ok = total = 0
        for i in range(600):
            periodic = bool(i % 2)
            l_ok += local.predict(PC).taken == periodic
            g_ok += gshare.predict(PC).taken == periodic
            local.update(PC, periodic, TGT)
            gshare.update(PC, periodic, TGT)
            noise = rng.random() < 0.5
            local.update(PC + 8, noise, TGT)
            gshare.update(PC + 8, noise, TGT)
            total += 1
        assert l_ok / total > 0.9
        assert l_ok > g_ok

    def test_histories_are_per_branch(self):
        p = LocalHistoryPredictor(history_bits=4, pht_entries=16,
                                  btb_entries=64)
        p.update(PC, True, TGT)
        assert p._histories[p._history_index(PC)] == 1
        assert p._histories[p._history_index(PC + 4)] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalHistoryPredictor(history_entries=100)
        with pytest.raises(ValueError):
            LocalHistoryPredictor(history_bits=12, pht_entries=1024)

    def test_reset(self):
        p = LocalHistoryPredictor()
        for _ in range(4):
            p.update(PC, True, TGT)
        p.reset()
        assert not p.predict(PC).taken

    def test_state_bits_accounting(self):
        p = LocalHistoryPredictor(history_bits=8, history_entries=512,
                                  pht_entries=1024, btb_entries=64)
        assert p.state_bits == 512 * 8 + 2 * 1024 + p.btb.state_bits

    def test_make_predictor_spec(self):
        p = make_predictor("local-6-256")
        assert isinstance(p, LocalHistoryPredictor)
        assert p.history_bits == 6
        assert p.pht_entries == 256

    def test_pipeline_integration(self, count_loop_program):
        from repro.sim.functional import FunctionalSimulator
        from repro.sim.pipeline import PipelineSimulator
        f = FunctionalSimulator(count_loop_program)
        f.run()
        sim = PipelineSimulator(count_loop_program,
                                predictor=LocalHistoryPredictor())
        sim.run()
        assert sim.regs.snapshot() == f.regs.snapshot()

    def test_loop_trip_count_learned(self):
        """A loop with a fixed trip count of 5: after warm-up, local
        history predicts the exit perfectly; bimodal always misses it."""
        p = LocalHistoryPredictor(history_bits=8, pht_entries=256,
                                  btb_entries=64)
        b = BimodalPredictor(256, 64)
        l_miss = b_miss = 0
        for _rep in range(40):
            for i in range(5):
                taken = i < 4       # 4 taken, then exit
                l_miss += p.predict(PC).taken != taken
                b_miss += b.predict(PC).taken != taken
                p.update(PC, taken, TGT)
                b.update(PC, taken, TGT)
        assert l_miss < 20      # only warm-up misses
        assert b_miss >= 40     # every exit mispredicted
