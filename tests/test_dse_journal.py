"""Journal durability and resume semantics (repro.dse.journal)."""

import json
import os

import pytest

from repro.dse.journal import Journal, JournalMismatch, eval_key
from repro.dse.objectives import ObjectiveVector
from repro.dse.space import DesignPoint

META = {"space": "abc123", "benchmark": "adpcm_enc",
        "n_samples": 64, "seed": 11}


def vec(cycles=1000, speedup=1.0):
    return ObjectiveVector(cycles=cycles, cpi=1.2, speedup=speedup,
                           fold_coverage=0.4, table_bits=2416,
                           energy=1234.5)


def record_two(path):
    with Journal(path).open(META) as j:
        j.record_eval(DesignPoint(), "adpcm_enc", 64, 11, vec())
        j.record_eval(DesignPoint(bdt_update="mem"), "adpcm_enc", 64,
                      11, vec(1100, 0.9))
    return path


class TestRoundtrip:
    def test_records_survive_reload(self, tmp_path):
        path = record_two(str(tmp_path / "j.jsonl"))
        j = Journal(path).load()
        assert len(j) == 2 and j.dropped == 0
        key = eval_key(DesignPoint(), "adpcm_enc", 64, 11)
        rec = j.get(key)
        assert rec["objectives"]["cycles"] == 1000
        assert DesignPoint.from_dict(rec["point"]) == DesignPoint()
        assert ObjectiveVector.from_dict(rec["objectives"]) == vec()

    def test_meta_written_once(self, tmp_path):
        path = record_two(str(tmp_path / "j.jsonl"))
        with Journal(path).open(META) as j:
            j.record_eval(DesignPoint(bit_capacity=8), "adpcm_enc", 64,
                          11, vec())
        lines = [json.loads(l) for l in open(path)]
        assert sum(r["kind"] == "meta" for r in lines) == 1
        assert len(lines) == 4

    def test_missing_file_loads_empty(self, tmp_path):
        j = Journal(str(tmp_path / "absent.jsonl")).load()
        assert len(j) == 0 and j.meta is None

    def test_evals_filter_by_n_samples(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path).open(META) as j:
            j.record_eval(DesignPoint(), "adpcm_enc", 64, 11, vec())
            j.record_eval(DesignPoint(), "adpcm_enc", 16, 11, vec())
        j = Journal(path).load()
        assert len(list(j.evals())) == 2
        assert [r["n_samples"] for r in j.evals(64)] == [64]


class TestCrashSafety:
    def test_truncated_tail_dropped(self, tmp_path):
        """A record cut off mid-write (killed process) must not poison
        the journal — it is dropped and only that point re-evaluates."""
        path = record_two(str(tmp_path / "j.jsonl"))
        with open(path) as f:
            whole = f.read()
        with open(path, "w") as f:
            f.write(whole[:-20])          # cut into the last record
        j = Journal(path).load()
        assert len(j) == 1 and j.dropped == 1
        assert j.has(eval_key(DesignPoint(), "adpcm_enc", 64, 11))
        assert not j.has(eval_key(DesignPoint(bdt_update="mem"),
                                  "adpcm_enc", 64, 11))

    def test_garbage_line_dropped(self, tmp_path):
        path = record_two(str(tmp_path / "j.jsonl"))
        with open(path, "a") as f:
            f.write("not json at all\n")
        j = Journal(path).load()
        assert len(j) == 2 and j.dropped == 1

    def test_reopen_after_truncation_appends(self, tmp_path):
        path = record_two(str(tmp_path / "j.jsonl"))
        with open(path) as f:
            whole = f.read()
        with open(path, "w") as f:
            f.write(whole[:-20])
        with Journal(path).open(META) as j:
            j.record_eval(DesignPoint(bdt_update="mem"), "adpcm_enc",
                          64, 11, vec(1100, 0.9))
        assert len(Journal(path).load()) == 2


class TestMismatch:
    @pytest.mark.parametrize("key,value", [
        ("space", "different"), ("benchmark", "adpcm_dec"),
        ("n_samples", 128), ("seed", 12),
    ])
    def test_identity_mismatch_raises(self, tmp_path, key, value):
        path = record_two(str(tmp_path / "j.jsonl"))
        bad = dict(META, **{key: value})
        with pytest.raises(JournalMismatch):
            Journal(path).open(bad)

    def test_matching_meta_reopens(self, tmp_path):
        path = record_two(str(tmp_path / "j.jsonl"))
        j = Journal(path).open(META)
        assert len(j) == 2
        j.close()

    def test_write_requires_open(self, tmp_path):
        j = Journal(str(tmp_path / "j.jsonl")).load()
        with pytest.raises(RuntimeError):
            j.record_eval(DesignPoint(), "adpcm_enc", 64, 11, vec())


def test_eval_key_identity():
    p = DesignPoint()
    k = eval_key(p, "adpcm_enc", 64, 11)
    assert k == eval_key(DesignPoint(), "adpcm_enc", 64, 11)
    assert k != eval_key(p, "adpcm_dec", 64, 11)
    assert k != eval_key(p, "adpcm_enc", 128, 11)
    assert k != eval_key(p, "adpcm_enc", 64, 12)
    assert k != eval_key(DesignPoint(bit_capacity=8), "adpcm_enc", 64,
                         11)


class TestFailedRecords:
    def key(self):
        return eval_key(DesignPoint(), "adpcm_enc", 64, 11)

    def test_failed_point_stays_pending_but_is_never_lost(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path).open(META) as j:
            j.record_failed(DesignPoint(), "adpcm_enc", 64, 11,
                            "worker hung", kind="timeout")
        j = Journal(path).load()
        assert not j.has(self.key())        # resume will retry it
        rec = j.failures[self.key()]
        assert rec["error"] == "worker hung"
        assert rec["failure_kind"] == "timeout"
        assert DesignPoint.from_dict(rec["point"]) == DesignPoint()

    def test_eval_supersedes_failure(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path).open(META) as j:
            j.record_failed(DesignPoint(), "adpcm_enc", 64, 11, "boom")
            assert self.key() in j.failures
            j.record_eval(DesignPoint(), "adpcm_enc", 64, 11, vec())
            assert self.key() not in j.failures
        # the same resolution holds on a cold reload of both lines
        j = Journal(path).load()
        assert j.has(self.key())
        assert self.key() not in j.failures

    def test_failure_after_eval_keeps_the_eval(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path).open(META) as j:
            j.record_eval(DesignPoint(), "adpcm_enc", 64, 11, vec())
            j.record_failed(DesignPoint(), "adpcm_enc", 64, 11, "flaky")
        j = Journal(path).load()
        assert j.has(self.key())            # the result is not erased
        assert self.key() in j.failures     # but the incident is visible
