"""Admission control, readiness, deadlines and client resilience.

Covers the PR 9 service-protection surface: a saturated daemon sheds
with 429 + ``Retry-After`` (never an unbounded queue), a draining one
with 503, ``/readyz`` tells a balancer the truth during WAL replay and
drain, request deadlines expire into ``fail_kind="deadline"`` records
rather than hung connections, and the client retries shed responses
with capped backoff while ``wait_job`` rides the event stream instead
of busy-polling.
"""

import asyncio
import json
import threading
import time

import http.client

import pytest

from repro.serve import ServeClient, ServeConfig, Server
from repro.telemetry import RingBufferSink
from repro.telemetry.events import SERVE_DRAIN, SERVE_SHED

from tests.serve_utils import ServerThread, http_payload, spec_wire

SEED = 11


def serve_config(tmp_path, **overrides):
    kwargs = dict(cache_dir=str(tmp_path / "cache"), shards=16,
                  workers=0)
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


class Gate:
    """Blocks the daemon's executor thread inside ``on_execute`` until
    released, so tests can hold work in flight deterministically."""

    def __init__(self) -> None:
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self, specs) -> None:
        self.entered.set()
        self.release.wait(timeout=30)


# ----------------------------------------------------------------------
# /run admission: bounded in-flight executions
# ----------------------------------------------------------------------
def test_saturated_runs_shed_429_with_retry_after(tmp_path):
    gate = Gate()
    sink = RingBufferSink()
    config = serve_config(tmp_path, max_inflight_runs=1,
                          on_execute=gate, lifecycle_sink=sink)
    with ServerThread(config) as st:
        first_result = {}

        def leader():
            with st.client() as c:
                first_result.update(c.run(spec_wire()))

        t = threading.Thread(target=leader)
        t.start()
        try:
            assert gate.entered.wait(timeout=10)
            with st.client(timeout=10) as client:
                status, body = client.request(
                    "POST", "/run", {"spec": spec_wire(seed=SEED + 1)},
                    retry=False)
                assert status == 429
                assert body["shed"] is True
                assert body["error"] == "saturated"
                assert body["retry_after"] >= 1
        finally:
            gate.release.set()
            t.join(timeout=30)
        assert first_result["ok"]           # the admitted run finished
        with st.client() as client:
            stats = client.stats()
            assert stats["counters"]["shed_requests"] == 1
    shed = [e for e in sink.events if e.kind == SERVE_SHED]
    assert len(shed) == 1
    assert shed[0].data == {"path": "/run", "reason": "saturated"}


def test_retry_after_header_on_shed_response(tmp_path):
    """The raw HTTP response carries a Retry-After header a generic
    client can honour without reading the body."""
    gate = Gate()
    config = serve_config(tmp_path, max_inflight_runs=1,
                          on_execute=gate)
    with ServerThread(config) as st:
        t = threading.Thread(
            target=lambda: ServeClient(port=st.port).run(spec_wire()))
        t.start()
        try:
            assert gate.entered.wait(timeout=10)
            conn = http.client.HTTPConnection("127.0.0.1", st.port,
                                              timeout=10)
            conn.request("POST", "/run", body=json.dumps(
                {"spec": spec_wire(seed=SEED + 2)}),
                headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            resp.read()
            assert resp.status == 429
            assert resp.getheader("Retry-After") == "1"
            conn.close()
        finally:
            gate.release.set()
            t.join(timeout=30)


def test_coalesced_followers_are_never_shed(tmp_path):
    """Identical submissions join the in-flight leader — they consume
    no admission slot, so coalescing keeps working at saturation."""
    gate = Gate()
    config = serve_config(tmp_path, max_inflight_runs=1,
                          on_execute=gate)
    with ServerThread(config) as st:
        results = []

        def submit():
            with st.client() as c:
                results.append(c.run(spec_wire()))

        threads = [threading.Thread(target=submit) for _ in range(3)]
        threads[0].start()
        assert gate.entered.wait(timeout=10)
        for t in threads[1:]:
            t.start()
        time.sleep(0.2)                     # let followers coalesce
        gate.release.set()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == 3
        assert all(r["ok"] for r in results)
        with st.client() as client:
            stats = client.stats()
            assert stats["counters"]["executions"] == 1
            assert stats["counters"]["coalesced"] == 2
            assert stats["counters"]["shed_requests"] == 0


# ----------------------------------------------------------------------
# job admission: bounded active + queued jobs
# ----------------------------------------------------------------------
def test_saturated_jobs_shed_429(tmp_path):
    gate = Gate()
    config = serve_config(tmp_path, max_active_jobs=1,
                          max_queued_jobs=0, on_execute=gate)
    with ServerThread(config) as st:
        with st.client() as client:
            job = client.sweep([spec_wire()])
            assert gate.entered.wait(timeout=10)
            status, body = client.request(
                "POST", "/sweep",
                {"specs": [spec_wire(seed=SEED + 3)]}, retry=False)
            assert status == 429
            assert body["error"] == "saturated"
            status, body = client.request("POST", "/dse",
                                          {"n_points": 2}, retry=False)
            assert status == 429
            gate.release.set()
            done = client.wait_job(job["id"], timeout=60)
            assert done["state"] == "done"
            # capacity is back: the same submission is admitted now
            job2 = client.sweep([spec_wire(seed=SEED + 3)])
            assert client.wait_job(job2["id"],
                                   timeout=60)["state"] == "done"


# ----------------------------------------------------------------------
# readiness and draining
# ----------------------------------------------------------------------
def test_readyz_false_while_recovering(tmp_path, monkeypatch):
    """Between bind and the end of WAL replay the daemon is alive but
    not ready: /healthz 200, /readyz 503 recovering, work sheds 503."""
    from repro.serve import jobs as jobs_mod

    hold = threading.Event()
    monkeypatch.setattr(jobs_mod.JobStore, "recover",
                        lambda self: (hold.wait(10), [])[1])

    async def probe():
        server = Server(ServeConfig(
            port=0, state_dir=str(tmp_path / "state")))
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)

            async def roundtrip(payload):
                writer.write(payload)
                await writer.drain()
                status = int((await reader.readline()).split()[1])
                length = 0
                while True:
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = header.partition(b":")
                    if name.strip().lower() == b"content-length":
                        length = int(value)
                body = await reader.readexactly(length)
                return status, json.loads(body)

            assert not server.ready
            status, body = await roundtrip(
                http_payload("GET", "/healthz"))
            assert status == 200 and body["ok"]
            status, body = await roundtrip(
                http_payload("GET", "/readyz"))
            assert status == 503
            assert body["ready"] is False and body["recovering"] is True
            status, body = await roundtrip(http_payload(
                "POST", "/run", {"spec": spec_wire()}))
            assert status == 503 and body["error"] == "recovering"

            hold.set()
            await server.wait_ready()
            status, body = await roundtrip(
                http_payload("GET", "/readyz"))
            assert status == 200 and body["ready"] is True
            writer.close()
        finally:
            hold.set()
            server.request_shutdown()
            await server.serve()

    asyncio.run(probe())


def test_draining_daemon_sheds_503_and_persists(tmp_path):
    """After shutdown begins, in-flight jobs drain to completion (and
    keep journaling) while established connections get one final 503
    for new work; /readyz flips to not-ready."""
    gate = Gate()
    sink = RingBufferSink()
    config = serve_config(tmp_path, state_dir=str(tmp_path / "state"),
                          on_execute=gate, drain_timeout=30.0,
                          lifecycle_sink=sink)
    with ServerThread(config) as st:
        client = st.client()
        job = client.sweep([spec_wire()])
        assert gate.entered.wait(timeout=10)
        # pre-established keep-alive connections: each gets exactly one
        # request served after drain begins (then the daemon closes it)
        conn_run = http.client.HTTPConnection("127.0.0.1", st.port,
                                              timeout=10)
        conn_run.request("GET", "/healthz")
        conn_run.getresponse().read()
        conn_ready = http.client.HTTPConnection("127.0.0.1", st.port,
                                                timeout=10)
        conn_ready.request("GET", "/healthz")
        conn_ready.getresponse().read()

        st.server.request_shutdown()
        deadline = time.monotonic() + 10
        while not st.server.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        assert st.server.draining

        conn_run.request("POST", "/run", body=json.dumps(
            {"spec": spec_wire(seed=SEED + 4)}),
            headers={"Content-Type": "application/json"})
        resp = conn_run.getresponse()
        body = json.loads(resp.read())
        assert resp.status == 503
        assert body["shed"] is True and body["error"] == "draining"
        conn_run.close()

        conn_ready.request("GET", "/readyz")
        resp = conn_ready.getresponse()
        body = json.loads(resp.read())
        assert resp.status == 503
        assert body["ready"] is False and body["draining"] is True
        conn_ready.close()

        gate.release.set()              # let the held job drain out
    # the drained job reached its WAL: a restart sees it terminal
    from repro.serve import JobStore
    store = JobStore(state_dir=str(tmp_path / "state"))
    assert store.recover() == []
    assert store.get(job["id"]).state == "done"
    assert any(e.kind == SERVE_DRAIN for e in sink.events)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_run_deadline_expires_as_504(tmp_path):
    with ServerThread(serve_config(tmp_path)) as st:
        with st.client() as client:
            status, body = client.request(
                "POST", "/run",
                {"spec": spec_wire(), "deadline_ms": 0.001},
                retry=False)
            assert status == 504
            assert body["ok"] is False
            assert body["fail_kind"] == "deadline"
            stats = client.stats()
            assert stats["counters"]["deadline_expired"] == 1
            # expired work is never cached: a later patient request
            # executes and succeeds
            good = client.run(spec_wire())
            assert good["ok"] and good["source"] == "executed"


def test_cached_result_beats_expired_deadline(tmp_path):
    """Known answers are never expired: a cache hit settles before the
    deadline is consulted."""
    with ServerThread(serve_config(tmp_path)) as st:
        with st.client() as client:
            first = client.run(spec_wire())
            assert first["ok"]
            hit = client.run(spec_wire(), deadline_ms=0.001)
            assert hit["ok"] and hit["source"] == "memory"


def test_job_deadline_settles_pending_as_journaled_failures(tmp_path):
    config = serve_config(tmp_path, state_dir=str(tmp_path / "state"))
    with ServerThread(config) as st:
        with st.client() as client:
            wire = [spec_wire(seed=SEED + i) for i in range(3)]
            job = client.sweep(wire, deadline_ms=0.001)
            assert job["deadline_at"] is not None
            done = client.wait_job(job["id"], timeout=60)
            assert done["state"] == "failed"
            assert done["n_done"] == 3
            full = client.job(job["id"])
            assert all(r["fail_kind"] == "deadline"
                       for r in full["results"])
            assert client.stats()["counters"]["deadline_expired"] == 3
            job_id = job["id"]
    # the expirations were journaled: a restart replays them settled,
    # with exactly one failure record each (never re-expired)
    from repro.serve import JobStore
    from repro.wal import load_jsonl
    import os
    store = JobStore(state_dir=str(tmp_path / "state"))
    assert store.recover() == []
    replayed = store.get(job_id)
    assert replayed.state == "failed" and replayed.n_deadline == 3
    records, _ = load_jsonl(os.path.join(
        str(tmp_path / "state"), "jobs", job_id + ".jsonl"))
    results = [r for r in records if r["kind"] == "result"]
    assert len(results) == 3
    assert all(r["rec"]["fail_kind"] == "deadline" for r in results)


def test_generous_deadline_changes_nothing(tmp_path):
    with ServerThread(serve_config(tmp_path)) as st:
        with st.client() as client:
            run = client.run(spec_wire(), deadline_ms=60_000)
            assert run["ok"]
            job = client.sweep([spec_wire(seed=SEED + 1)],
                               deadline_ms=60_000)
            assert client.wait_job(job["id"],
                                   timeout=60)["state"] == "done"


def test_bad_deadline_rejected_400(tmp_path):
    with ServerThread(serve_config(tmp_path)) as st:
        with st.client() as client:
            for bad in (0, -5, True, "soon"):
                status, body = client.request(
                    "POST", "/run",
                    {"spec": spec_wire(), "deadline_ms": bad},
                    retry=False)
                assert status == 400
                assert "deadline_ms" in body["error"]


# ----------------------------------------------------------------------
# client resilience
# ----------------------------------------------------------------------
def test_client_retries_shed_responses_until_admitted(tmp_path):
    """A 429 with Retry-After is an invitation, not an error: the
    client backs off and resubmits, and the retried request succeeds
    once capacity frees up."""
    gate = Gate()
    config = serve_config(tmp_path, max_inflight_runs=1,
                          on_execute=gate, retry_after=1.0)
    with ServerThread(config) as st:
        t = threading.Thread(
            target=lambda: ServeClient(port=st.port).run(spec_wire()))
        t.start()
        assert gate.entered.wait(timeout=10)
        # release the leader shortly after the follower's first 429
        threading.Timer(0.3, gate.release.set).start()
        with ServeClient(port=st.port, retries=5,
                         backoff=0.05) as client:
            out = client.run(spec_wire(seed=SEED + 5))
            assert out["ok"]
        t.join(timeout=30)
        with st.client() as client:
            assert client.stats()["counters"]["shed_requests"] >= 1


def test_client_retries_connection_errors_with_backoff(tmp_path,
                                                       monkeypatch):
    with ServerThread(serve_config(tmp_path)) as st:
        real_request = http.client.HTTPConnection.request
        failures = {"left": 2}

        def flaky(self, *args, **kwargs):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise ConnectionResetError("injected")
            return real_request(self, *args, **kwargs)

        monkeypatch.setattr(http.client.HTTPConnection, "request",
                            flaky)
        with ServeClient(port=st.port, retries=3,
                         backoff=0.01) as client:
            assert client.healthz()["ok"]
        assert failures["left"] == 0

        failures["left"] = 2
        with ServeClient(port=st.port, retries=0) as client:
            with pytest.raises(ConnectionResetError):
                client.healthz()


def test_retry_sleep_is_capped_and_honours_retry_after(monkeypatch):
    client = ServeClient(backoff=0.1, backoff_cap=0.4)
    slept = []
    monkeypatch.setattr(time, "sleep", slept.append)
    for attempt in (1, 2, 3, 4, 5, 6):
        client._retry_sleep(attempt, None)
    assert all(s <= 0.4 for s in slept)     # capped exponential
    slept.clear()
    client._retry_sleep(1, 2.5)
    assert slept == [pytest.approx(2.5)] or slept[0] >= 2.5


def test_wait_job_streams_instead_of_polling(tmp_path):
    """wait_job subscribes to the event stream: one status fetch at
    the end, not a poll per interval."""
    with ServerThread(serve_config(tmp_path)) as st:
        with st.client() as client:
            calls = []
            real_job = client.job
            client.job = lambda job_id: (calls.append(job_id),
                                         real_job(job_id))[1]
            job = client.sweep([spec_wire(seed=SEED + i)
                                for i in range(3)])
            done = client.wait_job(job["id"], timeout=60)
            assert done["state"] == "done"
            assert calls == [job["id"]]     # exactly one status fetch
