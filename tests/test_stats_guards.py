"""Zero-division guards on derived statistics.

A run that commits nothing (e.g. an immediate halt, or stats objects
built incrementally by tooling) must yield well-defined rates, not
``ZeroDivisionError`` — the CLI ``--json`` path and the telemetry
report renderers both divide by these counts.
"""

from repro.asbr.folding import FoldStats
from repro.sim.pipeline import PipelineSimulator, PipelineStats
from repro.telemetry.metrics import BranchPCStats


class TestPipelineStatsGuards:
    def test_cpi_zero_committed(self):
        assert PipelineStats().cpi == 0.0
        assert PipelineStats(cycles=100).cpi == 0.0

    def test_branch_accuracy_zero_branches(self):
        assert PipelineStats().branch_accuracy == 0.0

    def test_nonzero_paths_still_divide(self):
        s = PipelineStats(cycles=30, committed=10, branches=4,
                          branch_mispredicts=1)
        assert s.cpi == 3.0
        assert s.branch_accuracy == 0.75

    def test_empty_program_run(self):
        from repro.asm import assemble
        stats = PipelineSimulator(assemble(".text\nmain: halt\n")).run()
        assert stats.branches == 0
        assert stats.branch_accuracy == 0.0
        assert stats.cpi > 0.0


class TestFoldStatsGuards:
    def test_fold_rate_zero_attempts(self):
        assert FoldStats().fold_rate == 0.0

    def test_fold_rate_counts(self):
        s = FoldStats(folded_taken=2, folded_not_taken=1,
                      invalid_fallbacks=1)
        assert s.attempts == 4
        assert s.fold_rate == 0.75


class TestBranchPCStatsGuards:
    def test_rates_with_no_executions(self):
        b = BranchPCStats()
        assert b.taken_rate == 0.0
        assert b.accuracy == 0.0
        assert b.typical_distance() is None
