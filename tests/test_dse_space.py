"""Unit tests for the typed design space (repro.dse.space)."""

import json

import pytest

from repro.dse.space import (
    ConfigSpace,
    DesignPoint,
    default_space,
    get_space,
    paper_space,
)


class TestDesignPoint:
    def test_defaults_are_the_paper_config(self):
        p = DesignPoint()
        assert p.predictor_spec == "bimodal-512-512"
        assert p.with_asbr and p.bit_capacity == 16
        assert p.bdt_update == "execute" and p.threshold == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignPoint(bdt_update="id")
        with pytest.raises(ValueError):
            DesignPoint(bit_capacity=0)
        with pytest.raises(ValueError):
            DesignPoint(min_fold_fraction=1.5)
        with pytest.raises(ValueError):
            DesignPoint(min_count=-1)

    def test_non_asbr_points_are_canonical(self):
        """ASBR knobs collapse when the unit is absent: one config,
        one hash, one journal key, one cache entry."""
        a = DesignPoint("bimodal-2048", with_asbr=False, bit_capacity=4,
                        bdt_update="commit", min_fold_fraction=0.9)
        b = DesignPoint("bimodal-2048", with_asbr=False)
        assert a == b and hash(a) == hash(b) and a.key() == b.key()

    def test_key_distinguishes_every_asbr_knob(self):
        base = DesignPoint()
        variants = [DesignPoint(bit_capacity=8),
                    DesignPoint(bdt_update="mem"),
                    DesignPoint(min_fold_fraction=0.3),
                    DesignPoint(min_count=4),
                    DesignPoint(predictor_spec="not-taken")]
        keys = {p.key() for p in variants} | {base.key()}
        assert len(keys) == len(variants) + 1

    def test_to_spec_carries_everything(self):
        p = DesignPoint(bit_capacity=8, bdt_update="mem",
                        min_fold_fraction=0.3, min_count=4)
        spec = p.to_spec("adpcm_enc", 64, 11)
        assert spec.benchmark == "adpcm_enc"
        assert (spec.n_samples, spec.seed) == (64, 11)
        assert spec.with_asbr and spec.bit_capacity == 8
        assert spec.bdt_update == "mem"
        assert spec.min_fold_fraction == 0.3 and spec.min_count == 4

    def test_dict_roundtrip(self):
        p = DesignPoint(bit_capacity=4, bdt_update="commit")
        assert DesignPoint.from_dict(p.to_dict()) == p


class TestConfigSpace:
    def test_grid_dedupes_non_asbr_points(self):
        space = ConfigSpace(predictors=("not-taken",),
                            asbr=(False, True),
                            bit_capacities=(4, 8),
                            bdt_updates=("mem", "execute"))
        pts = space.points()
        # 1 non-ASBR point + 2x2 ASBR grid, no duplicates
        assert len(pts) == len(set(pts)) == 5
        assert sum(not p.with_asbr for p in pts) == 1

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace(predictors=())

    def test_bad_update_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace(bdt_updates=("id",))

    def test_sample_is_seed_reproducible(self):
        space = default_space()
        a = space.sample(5, seed=42)
        b = space.sample(5, seed=42)
        c = space.sample(5, seed=43)
        assert a == b
        assert len(a) == 5 and len(set(a)) == 5
        assert a != c                     # astronomically unlikely tie

    def test_sample_larger_than_space_returns_all(self):
        space = paper_space()
        assert space.sample(10_000, seed=1) == space.points()

    def test_digest_pins_the_space(self):
        assert paper_space().digest() == paper_space().digest()
        assert paper_space().digest() != default_space().digest()

    def test_dict_roundtrip(self):
        space = default_space()
        again = ConfigSpace.from_dict(space.to_dict())
        assert again == space and again.digest() == space.digest()


class TestGetSpace:
    def test_presets(self):
        assert get_space("paper") == paper_space()
        assert get_space("default") == default_space()

    def test_json_file(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text(json.dumps(paper_space().to_dict()))
        assert get_space(str(path)) == paper_space()

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown space"):
            get_space("nope")


class TestFrontendDimensions:
    """The decoupled-frontend knobs as design-space dimensions."""

    def test_non_frontend_point_canonicalises_knobs(self):
        a = DesignPoint(frontend=False, fdip=True, ftq_depth=4,
                        btb_l1_entries=16)
        b = DesignPoint(frontend=False)
        assert a == b, "frontend knobs leaked into a frontend-less point"

    def test_frontend_knobs_distinguish_points(self):
        base = DesignPoint(frontend=True)
        assert DesignPoint(frontend=True, fdip=True) != base
        assert DesignPoint(frontend=True, ftq_depth=4) != base
        assert DesignPoint(frontend=True, btb_l1_entries=16) != base
        assert base.key() != DesignPoint().key()

    def test_frontend_point_validated_at_construction(self):
        with pytest.raises(ValueError):
            DesignPoint(frontend=True, btb_l2_assoc=3)
        with pytest.raises(ValueError):
            DesignPoint(frontend=True, ftq_depth=0)

    def test_grid_collapses_frontend_dims_when_off(self):
        space = ConfigSpace(predictors=("bimodal-512-512",),
                            asbr=(False,), frontends=(False,),
                            ftq_depths=(4, 8), fdip=(False, True))
        assert len(space.points()) == 1

    def test_grid_expands_frontend_dims_when_on(self):
        space = ConfigSpace(predictors=("bimodal-512-512",),
                            asbr=(False,), frontends=(False, True),
                            ftq_depths=(4, 8), fdip=(False, True))
        # 1 frontend-less + 2 depths x 2 fdip
        assert len(space.points()) == 5

    def test_to_spec_carries_frontend_knobs(self):
        p = DesignPoint(frontend=True, fdip=True, ftq_depth=4)
        spec = p.to_spec("adpcm_enc", 64, 1)
        assert (spec.frontend, spec.fdip, spec.ftq_depth) == (True, True, 4)

    def test_from_dict_tolerates_pre_frontend_journals(self):
        d = DesignPoint().to_dict()
        for name in ("frontend", "btb_l1_entries", "btb_l2_entries",
                     "btb_l2_assoc", "ftq_depth", "fdip"):
            del d[name]
        assert DesignPoint.from_dict(d) == DesignPoint()

    def test_cost_formula_matches_structures(self):
        from repro.dse.objectives import (FTQ_ENTRY_BITS,
                                          frontend_cost_bits)
        from repro.frontend import FetchTargetQueue, TwoLevelBTB

        p = DesignPoint(frontend=True, btb_l1_entries=16,
                        btb_l2_entries=512, btb_l2_assoc=2, ftq_depth=4)
        btb = TwoLevelBTB(p.btb_l1_entries, p.btb_l2_entries,
                          p.btb_l2_assoc)
        assert frontend_cost_bits(p) == (btb.state_bits
                                         + p.ftq_depth * FTQ_ENTRY_BITS)
        assert frontend_cost_bits(DesignPoint(frontend=False)) == 0
