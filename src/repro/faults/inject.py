"""The fault injector: arm one bit flip, fire it at one cycle.

Zero-overhead design
--------------------
Like the telemetry layer (:mod:`repro.telemetry.traced`), injection
costs nothing unless it is armed: :meth:`FaultInjector.attach` wraps
``sim.tick`` *on that one instance* before the run starts, so a
fault-free simulator keeps the PR 1 fast path byte for byte.  The
wrapper composes with tracing — it wraps whatever ``sim.tick``
currently is, traced twin or base method.  ``PipelineSimulator.run``
reads ``self.tick`` once before its loop, which is why the wrap must
happen at construction time (the workload harness's ``on_sim`` hook)
and why the fired injector keeps a one-flag check per cycle instead of
unbinding itself mid-run.

Protection semantics
--------------------
* ``none``   — the flip really lands in the table.  Whatever the
  machine does next (wrong-direction fold, fold to a garbage target,
  a validity-counter protocol violation) is the experiment's result;
  protocol violations surface as the simulator's own exceptions and the
  campaign classifies them as SDC (crash).
* ``parity`` — the flip is *latent*: the entry is marked dirty and
  detected at the next read.  A dirty BDT/BIT read behaves exactly like
  the architected miss path (``lookup`` returns None → fold suppressed
  → auxiliary predictor takes over); a rewrite of the entry clears the
  dirty bit, as recomputing parity would.  A dirty PHT counter is reset
  to its power-on value — parity cannot restore a counter, but a reset
  counter is merely a cold predictor, never a wrong fold.
* ``ecc``    — the flip is corrected at first read; every read observes
  the fault-free value, so the run is bit-identical to the reference.

When the simulator carries a telemetry tracer, the injector emits
``fault_inject`` / ``fault_detect`` / ``fault_correct`` events into the
same stream, so campaign activity shows up in pipeline timelines and
metric tables like any other microarchitectural occurrence.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.faults.model import (
    BDT_CNT,
    BDT_DIR,
    BIT_FIELD,
    CONDITION_ORDER,
    PRED_PHT,
    PROTECTIONS,
    FaultSpec,
)
from repro.isa.conditions import Condition
from repro.isa.encoding import decode

#: power-on value of a 2-bit saturating PHT counter (weak not-taken)
_PHT_RESET = 1


class FaultInducedError(RuntimeError):
    """A corrupted field decoded to something the machine cannot mean
    (an undefined condition encoding, an undecodable replacement
    word).  Raised mid-run and classified as SDC (crash)."""


class FaultInjector:
    """Arms one :class:`~repro.faults.model.FaultSpec` on one simulator.

    Use as the workload harness's construction hook::

        inj = FaultInjector(spec, protection="parity")
        wl.run_pipeline(pcm, predictor=p, asbr=unit, on_sim=inj.attach)

    After the run, ``fired`` says whether the fault's cycle was reached
    and the counters say what the protection machinery observed.
    """

    def __init__(self, spec: FaultSpec, protection: str = "none") -> None:
        if protection not in PROTECTIONS:
            raise ValueError("unknown protection %r (have: %s)"
                             % (protection, ", ".join(PROTECTIONS)))
        self.spec = spec
        self.protection = protection
        self.fired = False
        self.detections = 0          # parity/ecc reads that saw the flip
        self.corrections = 0         # ecc reads that repaired it
        self.suppressed_folds = 0    # parity reads that fell back
        self.events: List[Tuple[int, str, str]] = []   # (cycle, kind, label)

    # ------------------------------------------------------------------
    def attach(self, sim):
        """Wrap ``sim.tick`` so the fault fires at its cycle.

        Returns ``sim`` so it can be passed directly as the harness's
        ``on_sim`` callback.
        """
        base_tick = sim.tick
        fire_at = self.spec.cycle
        armed = [True]

        def tick_with_fault():
            base_tick()
            if armed[0] and sim.stats.cycles >= fire_at:
                armed[0] = False
                self._fire(sim)

        sim.tick = tick_with_fault
        return sim

    # ------------------------------------------------------------------
    def _fire(self, sim) -> None:
        self.fired = True
        self._note(sim, "fault_inject")
        site = self.spec.site
        if site.structure == PRED_PHT:
            self._fire_pred(sim)
        elif self.protection == "none":
            self._corrupt(sim)
        else:
            self._guard(sim)

    def _note(self, sim, kind: str) -> None:
        cycle = sim.stats.cycles
        label = self.spec.site.label()
        self.events.append((cycle, kind, label))
        tracer = getattr(sim, "trace", None)
        if tracer is not None:
            from repro.telemetry.events import TraceEvent
            tracer.emit(TraceEvent(cycle, kind,
                                   data={"site": label,
                                         "protection": self.protection}))

    # ------------------------------------------------------------------
    # unprotected: the flip lands in the table
    # ------------------------------------------------------------------
    def _corrupt(self, sim) -> None:
        site = self.spec.site
        asbr = sim.asbr
        if asbr is None:
            return                    # no table to strike: trivially masked
        if site.structure == BDT_DIR:
            entry = asbr.bdt.entries[site.index]
            cond = Condition[site.field]
            entry.bits[cond] = not entry.bits[cond]
        elif site.structure == BDT_CNT:
            asbr.bdt.entries[site.index].counter ^= (1 << site.bit)
        elif site.structure == BIT_FIELD:
            self._corrupt_bit_entry(asbr.bit, site)

    @staticmethod
    def _find_bit_entry(banked, pc: int):
        for bank in banked.banks:
            e = bank.lookup(pc)
            if e is not None:
                return bank, e
        return None, None

    def _corrupt_bit_entry(self, banked, site) -> None:
        bank, e = self._find_bit_entry(banked, site.index)
        if e is None:
            return                    # entry evicted/absent: masked
        mask = 1 << site.bit
        if site.field == "tag":
            # the entry now answers for a different (garbage) PC
            new_pc = e.pc ^ mask
            del bank._by_pc[e.pc]
            e.pc = new_pc
            bank._by_pc[new_pc] = e
        elif site.field == "bta":
            e.bta ^= mask
        elif site.field in ("bti", "bfi"):
            word = getattr(e, site.field + "_word") ^ mask
            setattr(e, site.field + "_word", word)
            try:
                setattr(e, site.field, decode(word))
            except Exception as exc:
                raise FaultInducedError(
                    "corrupted %s word of BIT[0x%x] is undecodable: %s"
                    % (site.field.upper(), site.index, exc))
        elif site.field == "di_reg":
            e.cond_reg ^= mask        # 5 bits: stays a register number
        elif site.field == "di_cond":
            i = CONDITION_ORDER.index(e.condition) ^ mask
            if i >= len(CONDITION_ORDER):
                raise FaultInducedError(
                    "corrupted DI of BIT[0x%x] encodes no condition (%d)"
                    % (site.index, i))
            e.condition = CONDITION_ORDER[i]

    # ------------------------------------------------------------------
    # parity / ECC: latent flip, observed at read time
    # ------------------------------------------------------------------
    def _guard(self, sim) -> None:
        site = self.spec.site
        asbr = sim.asbr
        if asbr is None:
            return
        if site.structure in (BDT_DIR, BDT_CNT):
            self._guard_bdt(sim, asbr.bdt, site)
        elif site.structure == BIT_FIELD:
            self._guard_bit(sim, asbr.bit, site)

    def _guard_bdt(self, sim, bdt, site) -> None:
        reg = site.index
        dirty = [True]
        parity = self.protection == "parity"
        base_lookup = bdt.lookup
        base_release = bdt.release

        def lookup(r, cond):
            if r == reg and dirty[0]:
                self.detections += 1
                if parity:
                    self.suppressed_folds += 1
                    self._note(sim, "fault_detect")
                    return None       # miss path: predictor takes over
                dirty[0] = False
                self.corrections += 1
                self._note(sim, "fault_correct")
            return base_lookup(r, cond)

        def release(r, value):
            base_release(r, value)
            if r == reg:
                dirty[0] = False      # entry rewritten; parity recomputed

        bdt.lookup = lookup
        bdt.release = release
        if site.structure == BDT_CNT:
            # counter faults also clear on the counter's own updates
            base_acquire = bdt.acquire
            base_cancel = bdt.cancel

            def acquire(r):
                base_acquire(r)
                if r == reg:
                    dirty[0] = False

            def cancel(r):
                base_cancel(r)
                if r == reg:
                    dirty[0] = False

            bdt.acquire = acquire
            bdt.cancel = cancel

    def _guard_bit(self, sim, banked, site) -> None:
        _bank, target = self._find_bit_entry(banked, site.index)
        if target is None:
            return
        dirty = [True]
        parity = self.protection == "parity"
        base_lookup = banked.lookup

        def lookup(pc):
            e = base_lookup(pc)
            if e is target and dirty[0]:
                self.detections += 1
                if parity:
                    self.suppressed_folds += 1
                    self._note(sim, "fault_detect")
                    return None       # fold suppressed, never wrong
                dirty[0] = False
                self.corrections += 1
                self._note(sim, "fault_correct")
            return e

        banked.lookup = lookup

    # ------------------------------------------------------------------
    # predictor PHT: self-correcting state
    # ------------------------------------------------------------------
    def _fire_pred(self, sim) -> None:
        site = self.spec.site
        counters = getattr(sim.predictor, "_counters", None)
        if counters is None or site.index >= len(counters):
            return
        if self.protection == "none":
            counters[site.index] ^= (1 << site.bit)
        elif self.protection == "parity":
            # parity cannot restore the counter; reset to power-on
            counters[site.index] = _PHT_RESET
            self.detections += 1
            self._note(sim, "fault_detect")
        else:                          # ecc: corrected in place
            self.detections += 1
            self.corrections += 1
            self._note(sim, "fault_correct")
