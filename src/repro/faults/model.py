"""Fault model: where a soft error can land, and when.

The ASBR mechanism adds fetch-stage state the baseline core does not
have — BDT direction bits and validity counters (paper Section 4,
Figure 8), BIT entries (Section 7: PC tag, BTA, the BTI/BFI replacement
words and the DI register/condition index) — plus the auxiliary
predictor's pattern-history counters.  A particle strike in any of
those bits is *architecturally invisible* to the unprotected design:
the fetch stage folds a branch using whatever the table says, so a
flipped direction bit silently executes the wrong path.  This module
enumerates every such bit as a :class:`FaultSite` and pairs sites with
injection cycles into :class:`FaultSpec` plans.

Everything here is deterministic: sites enumerate in a total order,
plans are drawn from a seeded ``random.Random``, and the same
``(sites, n_faults, cycles, seed)`` always yields the same plan — the
property the ``faults-smoke`` CI step (bit-identical campaign reports)
rests on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.isa.conditions import Condition

#: Detection/recovery models a campaign can assume for the ASBR state.
#:
#: * ``"none"``   — raw latches: the flip lands and stays until the
#:   structure is rewritten (direction bits/counters) or forever (BIT).
#: * ``"parity"`` — per-entry parity detects the flip on *read*; the
#:   fold is suppressed and fetch falls back to the auxiliary
#:   predictor, exactly like a BDT-busy miss.  Detection only — the
#:   value is not restored, but a later rewrite clears the bad parity.
#: * ``"ecc"``    — SEC code corrects the flip on first read; the read
#:   observes the fault-free value.
PROTECTIONS = ("none", "parity", "ecc")

#: structure identifiers (FaultSite.structure)
BDT_DIR = "bdt.dir"        # one of the six per-register direction bits
BDT_CNT = "bdt.cnt"        # a validity-counter bit
BIT_FIELD = "bit"          # a field bit of one BIT entry
PRED_PHT = "pred"          # a pattern-history-table counter bit

STRUCTURES = (BDT_DIR, BDT_CNT, BIT_FIELD, PRED_PHT)

#: BIT entry fields and their widths in bits (matches
#: :data:`repro.asbr.bit.BITS_PER_ENTRY`: 30+30+32+32+5+3 plus the
#: valid bit, which we do not target — a dropped valid bit is a plain
#: fold miss, indistinguishable from a cold table).
BIT_FIELD_BITS: Dict[str, int] = {
    "tag": 30,        # branch PC match (word address)
    "bta": 30,        # branch target address
    "bti": 32,        # taken-path replacement instruction word
    "bfi": 32,        # fall-through replacement instruction word
    "di_reg": 5,      # DI: condition register number
    "di_cond": 3,     # DI: condition code
}

#: ``tag``/``bta`` hold word addresses, so the flippable bits of the
#: byte address the simulator carries start at bit 2.
_WORD_ADDR_SHIFT = 2

#: deterministic condition order for the 3-bit DI condition encoding
CONDITION_ORDER = tuple(Condition)


@dataclass(frozen=True, order=True)
class FaultSite:
    """One flippable bit of microarchitectural state.

    ``index`` identifies the entry (register number for BDT sites, the
    entry's branch PC for BIT sites, the PHT row for predictor sites);
    ``field``/``bit`` locate the bit within it.
    """

    structure: str
    field: str
    index: int
    bit: int

    def label(self) -> str:
        if self.structure == BDT_DIR:
            return "bdt.dir[r%d].%s" % (self.index, self.field)
        if self.structure == BDT_CNT:
            return "bdt.cnt[r%d].b%d" % (self.index, self.bit)
        if self.structure == BIT_FIELD:
            return "bit[0x%x].%s.b%d" % (self.index, self.field, self.bit)
        return "pred.pht[%d].b%d" % (self.index, self.bit)


@dataclass(frozen=True, order=True)
class FaultSpec:
    """One injection: flip ``site`` once the run reaches ``cycle``."""

    site: FaultSite
    cycle: int

    def label(self) -> str:
        return "%s@%d" % (self.site.label(), self.cycle)

    def to_dict(self) -> dict:
        return {"structure": self.site.structure, "field": self.site.field,
                "index": self.site.index, "bit": self.site.bit,
                "cycle": self.cycle}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        return cls(FaultSite(d["structure"], d["field"], d["index"],
                             d["bit"]), d["cycle"])


def enumerate_sites(asbr=None, predictor=None,
                    live_only: bool = True) -> List[FaultSite]:
    """Every targetable bit of ``asbr``'s tables and ``predictor``'s PHT.

    With ``live_only`` (the default for campaigns) BDT sites are
    restricted to the ``(register, condition)`` pairs some BIT entry
    actually reads — a flip in a direction bit no fold ever consumes is
    masked by construction and only dilutes the campaign.  Pass
    ``live_only=False`` to measure raw (whole-structure) vulnerability.

    The returned list is sorted, so site identity is stable across runs
    and processes.
    """
    sites: List[FaultSite] = []
    if asbr is not None:
        entries = [e for bank in asbr.bit.banks for e in bank]
        live_pairs = {(e.cond_reg, e.condition) for e in entries}
        live_regs = sorted({r for r, _ in live_pairs})
        bdt = asbr.bdt
        regs = live_regs if live_only else list(range(bdt.num_regs))
        for reg in regs:
            for cond in CONDITION_ORDER:
                if live_only and (reg, cond) not in live_pairs:
                    continue
                sites.append(FaultSite(BDT_DIR, cond.name, reg, 0))
            for b in range(bdt.counter_bits):
                sites.append(FaultSite(BDT_CNT, "counter", reg, b))
        for e in entries:
            for field, width in BIT_FIELD_BITS.items():
                lo = _WORD_ADDR_SHIFT if field in ("tag", "bta") else 0
                for b in range(lo, lo + width):
                    sites.append(FaultSite(BIT_FIELD, field, e.pc, b))
    if predictor is not None:
        counters = getattr(predictor, "_counters", None)
        if counters is not None:
            for idx in range(len(counters)):
                for b in range(2):          # 2-bit saturating counters
                    sites.append(FaultSite(PRED_PHT, "pht", idx, b))
    sites.sort()
    return sites


def sites_by_structure(sites: Sequence[FaultSite]
                       ) -> Dict[str, List[FaultSite]]:
    groups: Dict[str, List[FaultSite]] = {}
    for s in sites:
        groups.setdefault(s.structure, []).append(s)
    return groups


def sample_campaign(sites: Sequence[FaultSite], n_faults: int,
                    cycles: int, seed: int,
                    structures: Optional[Sequence[str]] = None
                    ) -> List[FaultSpec]:
    """Draw a deterministic, stratified injection plan.

    ``n_faults`` is split as evenly as possible across the structures
    present in ``sites`` (AVF is reported per structure, so each needs
    its own sample), then ``(site, cycle)`` pairs are drawn without
    replacement from a ``random.Random(seed)``.  ``cycles`` is the
    fault-free run length; injection cycles land in ``[1, cycles)`` so
    every fault fires before the reference run would have halted.
    """
    if n_faults < 0:
        raise ValueError("n_faults must be >= 0")
    groups = sites_by_structure(sites)
    order = [s for s in (structures or STRUCTURES) if s in groups]
    if not order or n_faults == 0:
        return []
    plan: List[FaultSpec] = []
    seen = set()
    rng = random.Random(seed)
    base, extra = divmod(n_faults, len(order))
    for i, structure in enumerate(order):
        pool = groups[structure]
        want = base + (1 if i < extra else 0)
        drawn = 0
        # bounded draw loop: duplicates are rejected, tiny site pools
        # cannot spin forever
        for _ in range(want * 50):
            if drawn >= want:
                break
            site = pool[rng.randrange(len(pool))]
            cycle = rng.randrange(1, max(2, cycles))
            if (site, cycle) in seen:
                continue
            seen.add((site, cycle))
            plan.append(FaultSpec(site, cycle))
            drawn += 1
    plan.sort()
    return plan
