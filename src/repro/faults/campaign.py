"""Injection campaigns: classify every fault, report AVF per structure.

A campaign fixes one workload, one input, one ASBR configuration and
one protection model, then replays the run once per planned fault.
Classification is fully differential:

* the **golden model** (:meth:`Workload.golden_output`, backed by the
  functional simulator's semantics) defines architectural correctness —
  any output mismatch, simulator crash or watchdog timeout is **SDC**;
* the **fault-free reference run** defines microarchitectural
  correctness — a fault whose run is cycle-for-cycle bit-identical is
  **masked**; one whose outputs are right but whose protection hardware
  visibly intervened (folds suppressed, counters reset) is
  **detected-recovered**.

A fault that perturbs only timing without any detection (possible only
when unprotected — e.g. a predictor counter flip) is reported as masked
with detail ``timing``: architecturally invisible, but not silent in
the cycle counts.

Every injected run gets a watchdog cycle budget derived from the
reference (a wrong-target fold can send fetch into data and stall the
machine forever); the budget turns hangs into prompt ``SimulationError``
→ SDC(hang) classifications instead of multi-minute stalls.

Determinism: the plan is drawn by :func:`repro.faults.model.sample_campaign`
from ``fault_seed``; site enumeration, classification and report
serialisation are all order-stable, so the same config produces a
byte-identical JSON report on every run — the ``faults-smoke`` CI step
diffs exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.inject import FaultInjector
from repro.faults.model import (
    PROTECTIONS,
    STRUCTURES,
    FaultSpec,
    enumerate_sites,
    sample_campaign,
)

OUTCOME_MASKED = "masked"
OUTCOME_RECOVERED = "detected_recovered"
OUTCOME_SDC = "sdc"

OUTCOMES = (OUTCOME_MASKED, OUTCOME_RECOVERED, OUTCOME_SDC)

#: watchdog slack on top of 4x the reference cycle count
_WATCHDOG_SLACK = 10_000


@dataclass(frozen=True)
class CampaignConfig:
    """Identity of one campaign (everything the plan derives from)."""

    benchmark: str = "adpcm_enc"
    n_samples: int = 600
    seed: int = 20010618
    predictor_spec: str = "bimodal-512-512"
    bit_capacity: int = 16
    bdt_update: str = "execute"
    protection: str = "none"
    n_faults: int = 24
    fault_seed: int = 1
    live_only: bool = True

    def __post_init__(self) -> None:
        if self.protection not in PROTECTIONS:
            raise ValueError("unknown protection %r" % (self.protection,))

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark, "n_samples": self.n_samples,
            "seed": self.seed, "predictor_spec": self.predictor_spec,
            "bit_capacity": self.bit_capacity,
            "bdt_update": self.bdt_update, "protection": self.protection,
            "n_faults": self.n_faults, "fault_seed": self.fault_seed,
            "live_only": self.live_only,
        }


@dataclass
class InjectionResult:
    """One classified injection."""

    structure: str
    field: str
    index: int
    bit: int
    cycle: int
    outcome: str
    detail: str = ""        # wrong_output | crash | hang | timing |
    #                         suppressed | corrected | "" (bit-identical)
    detections: int = 0
    corrections: int = 0
    suppressed_folds: int = 0

    def to_dict(self) -> dict:
        return {
            "structure": self.structure, "field": self.field,
            "index": self.index, "bit": self.bit, "cycle": self.cycle,
            "outcome": self.outcome, "detail": self.detail,
            "detections": self.detections,
            "corrections": self.corrections,
            "suppressed_folds": self.suppressed_folds,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "InjectionResult":
        return cls(**d)


@dataclass
class CampaignReport:
    """Everything a campaign measured, JSON-serialisable and stable."""

    config: dict
    ref_cycles: int = 0
    ref_committed: int = 0
    ref_folds: int = 0
    sites_enumerated: int = 0
    injections: List[InjectionResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    def count(self, outcome: str,
              structure: Optional[str] = None) -> int:
        return sum(1 for r in self.injections
                   if r.outcome == outcome
                   and (structure is None or r.structure == structure))

    def by_structure(self) -> Dict[str, Dict[str, float]]:
        """Per-structure outcome counts and the SDC-AVF estimate
        (fraction of injected faults that corrupted architecture)."""
        out: Dict[str, Dict[str, float]] = {}
        for s in STRUCTURES:
            rows = [r for r in self.injections if r.structure == s]
            if not rows:
                continue
            sdc = sum(1 for r in rows if r.outcome == OUTCOME_SDC)
            out[s] = {
                "injections": len(rows),
                "masked": sum(1 for r in rows
                              if r.outcome == OUTCOME_MASKED),
                "detected_recovered": sum(
                    1 for r in rows if r.outcome == OUTCOME_RECOVERED),
                "sdc": sdc,
                "avf": sdc / len(rows),
            }
        return out

    @property
    def sdc_total(self) -> int:
        return self.count(OUTCOME_SDC)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "ref": {"cycles": self.ref_cycles,
                    "committed": self.ref_committed,
                    "folds_committed": self.ref_folds},
            "sites_enumerated": self.sites_enumerated,
            "injections": [r.to_dict() for r in self.injections],
            "summary": self.by_structure(),
            "totals": {o: self.count(o) for o in OUTCOMES},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignReport":
        ref = d.get("ref", {})
        return cls(config=d["config"],
                   ref_cycles=ref.get("cycles", 0),
                   ref_committed=ref.get("committed", 0),
                   ref_folds=ref.get("folds_committed", 0),
                   sites_enumerated=d.get("sites_enumerated", 0),
                   injections=[InjectionResult.from_dict(r)
                               for r in d["injections"]])


# ======================================================================
# campaign execution
# ======================================================================
class _Context:
    """Shared per-benchmark state: program, input, selection, reference.

    Built once per (benchmark, input, ASBR config); every injection then
    costs one pipeline run with a fresh predictor and a fresh ASBR unit
    (tables are mutable state — a corrupted run must never leak into the
    next one).
    """

    def __init__(self, cfg: CampaignConfig) -> None:
        from repro.predictors import evaluate_on_trace, make_predictor
        from repro.profiling import BranchProfiler, select_branches
        from repro.runner.pool import SELECTION_BASELINE
        from repro.sim.functional import collect_branch_trace
        from repro.sim.pipeline import PipelineConfig
        from repro.workloads import get_workload, speech_like

        self.cfg = cfg
        self.wl = get_workload(cfg.benchmark)
        self.pcm = speech_like(cfg.n_samples, cfg.seed)
        self.golden = self.wl.golden_output(self.pcm)
        self._make_predictor = make_predictor

        # profile-driven selection, exactly as repro.runner.pool._execute
        stream = self.wl.input_stream(self.pcm)
        memory = self.wl.build_memory(stream)
        profile = BranchProfiler().profile(self.wl.program, memory)
        trace_b = collect_branch_trace(self.wl.program,
                                       self.wl.build_memory(stream))
        baseline = evaluate_on_trace(make_predictor(SELECTION_BASELINE),
                                     trace_b)
        sel = select_branches(profile, baseline,
                              bit_capacity=cfg.bit_capacity,
                              bdt_update=cfg.bdt_update)
        self.infos = sel.infos

        ref = self.wl.run_pipeline(self.pcm,
                                   predictor=self.predictor(),
                                   asbr=self.asbr())
        if ref.outputs != self.golden:
            raise AssertionError("fault-free reference run of %s is "
                                 "already wrong" % cfg.benchmark)
        self.ref_stats = ref.stats
        self.watchdog = PipelineConfig(
            max_cycles=ref.stats.cycles * 4 + _WATCHDOG_SLACK)

        self.sites = enumerate_sites(self.asbr(), self.predictor(),
                                     live_only=cfg.live_only)
        self.plan = sample_campaign(self.sites, cfg.n_faults,
                                    self.ref_stats.cycles, cfg.fault_seed)

    def predictor(self):
        return self._make_predictor(self.cfg.predictor_spec)

    def asbr(self):
        from repro.asbr import ASBRUnit
        return ASBRUnit.from_branch_infos(self.infos,
                                          capacity=self.cfg.bit_capacity,
                                          bdt_update=self.cfg.bdt_update)


def _classify(ctx: _Context, spec: FaultSpec,
              protection: str) -> InjectionResult:
    """Run one injection and classify it differentially."""
    from repro.sim.functional import SimulationError

    inj = FaultInjector(spec, protection)
    site = spec.site
    result = InjectionResult(site.structure, site.field, site.index,
                             site.bit, spec.cycle, OUTCOME_MASKED)
    try:
        run = ctx.wl.run_pipeline(ctx.pcm, predictor=ctx.predictor(),
                                  asbr=ctx.asbr(), config=ctx.watchdog,
                                  on_sim=inj.attach)
    except SimulationError:
        result.outcome, result.detail = OUTCOME_SDC, "hang"
    except Exception:
        result.outcome, result.detail = OUTCOME_SDC, "crash"
    else:
        if run.outputs != ctx.golden:
            result.outcome, result.detail = OUTCOME_SDC, "wrong_output"
        elif run.stats == ctx.ref_stats:
            result.detail = "corrected" if inj.corrections else ""
        elif inj.detections:
            result.outcome = OUTCOME_RECOVERED
            result.detail = "suppressed" if inj.suppressed_folds \
                else "reset"
        else:
            result.detail = "timing"   # unprotected, arch-invisible
    result.detections = inj.detections
    result.corrections = inj.corrections
    result.suppressed_folds = inj.suppressed_folds
    return result


#: campaign batching modes (see :func:`run_campaign`)
BATCH_MODES = ("auto", "on", "off")


def _batchable(protection: str) -> bool:
    """Whether a whole campaign collapses into one batched replay.

    Only ``ecc`` qualifies: every read observes the corrected value, so
    an ecc injection is *read-transparent* — it never mutates mid-run
    state (``none`` flips the table in place) and never alters the
    trajectory at read time (``parity`` suppresses folds / resets
    counters).  N read-transparent faults therefore compose on a single
    run without interacting, which is what lets the batch path arm the
    whole plan at once.
    """
    return protection == "ecc"


def _classify_batched(ctx: _Context, plan,
                      protection: str) -> Optional[List[InjectionResult]]:
    """Classify every planned fault from ONE reference-replay run.

    The batched sibling of :func:`_classify` for read-transparent
    protections: all injectors are armed on the same pipeline run
    (N fault sites of one program = one batch), and each classifies
    from its own counters.  Per-injector wrappers chain and pass reads
    through unchanged, so each observes exactly the detections it would
    have seen alone — the equivalence the ``--batch`` tests lock.  The
    replay must come back bit-identical to the reference (outputs *and*
    stats); if it does not, the premise is violated and the caller
    falls back to per-site runs rather than guessing.
    """
    injectors = [FaultInjector(spec, protection) for spec in plan]

    def attach_all(sim):
        for inj in injectors:
            inj.attach(sim)

    try:
        run = ctx.wl.run_pipeline(ctx.pcm, predictor=ctx.predictor(),
                                  asbr=ctx.asbr(), config=ctx.watchdog,
                                  on_sim=attach_all)
    except Exception:
        return None
    if run.outputs != ctx.golden or run.stats != ctx.ref_stats:
        return None
    results = []
    for spec, inj in zip(plan, injectors):
        site = spec.site
        result = InjectionResult(site.structure, site.field, site.index,
                                 site.bit, spec.cycle, OUTCOME_MASKED)
        # identical to _classify's bit-identical-run arm: an ecc run
        # always matches the reference, so the only question is whether
        # the corrector was exercised
        result.detail = "corrected" if inj.corrections else ""
        result.detections = inj.detections
        result.corrections = inj.corrections
        result.suppressed_folds = inj.suppressed_folds
        results.append(result)
    return results


def run_campaign(cfg: CampaignConfig,
                 context: Optional[_Context] = None,
                 batch: str = "auto") -> CampaignReport:
    """Execute a full campaign and return its report.

    ``batch`` controls plan execution: ``"auto"`` (default) and
    ``"on"`` collapse the campaign into one batched replay when the
    protection model permits (:func:`_batchable`), running the whole
    plan as a single pipeline pass; faults that need mid-run state
    mutation the batched path cannot express (``none``/``parity``)
    fall back to per-site runs, as does a replay that fails its
    bit-identity check.  ``"off"`` forces per-site runs.  Both paths
    produce identical classifications (asserted by
    ``tests/test_faults.py``), so the report — and the byte-stable
    JSON the CI smoke step diffs — does not depend on the mode.
    """
    if batch not in BATCH_MODES:
        raise ValueError("batch must be one of %s" % (BATCH_MODES,))
    ctx = context if context is not None else _Context(cfg)
    report = CampaignReport(config=dict(cfg.to_dict(),
                                        protection=cfg.protection),
                            ref_cycles=ctx.ref_stats.cycles,
                            ref_committed=ctx.ref_stats.committed,
                            ref_folds=ctx.ref_stats.folds_committed,
                            sites_enumerated=len(ctx.sites))
    rows = None
    if batch != "off" and ctx.plan and _batchable(cfg.protection):
        rows = _classify_batched(ctx, ctx.plan, cfg.protection)
    if rows is None:
        rows = [_classify(ctx, spec, cfg.protection)
                for spec in ctx.plan]
    report.injections.extend(rows)
    return report


def run_protection_matrix(cfg: CampaignConfig,
                          batch: str = "auto"
                          ) -> Dict[str, CampaignReport]:
    """One campaign per protection model, over the *same* plan.

    The plan derives only from (sites, reference cycles, fault_seed) —
    none of which depend on the protection — so the three reports
    classify the identical fault set and are directly comparable.
    """
    import dataclasses as _dc

    ctx = _Context(cfg)
    return {p: run_campaign(_dc.replace(cfg, protection=p), context=ctx,
                            batch=batch)
            for p in PROTECTIONS}
