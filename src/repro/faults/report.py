"""Text rendering of campaign reports (``repro faults campaign|report``)."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.faults.campaign import (
    OUTCOME_MASKED,
    OUTCOME_RECOVERED,
    OUTCOME_SDC,
    CampaignReport,
)


def report_to_json(report: CampaignReport) -> str:
    """Canonical (byte-stable) JSON of one report."""
    return json.dumps(report.to_dict(), indent=1, sort_keys=True)


def matrix_to_json(reports: Dict[str, CampaignReport]) -> str:
    """Canonical JSON of a protection matrix, keyed by protection."""
    return json.dumps({p: r.to_dict() for p, r in sorted(reports.items())},
                      indent=1, sort_keys=True)


def reports_from_json(text: str) -> Dict[str, CampaignReport]:
    """Parse either a single report or a protection matrix."""
    obj = json.loads(text)
    if "injections" in obj:             # single report
        rep = CampaignReport.from_dict(obj)
        return {rep.config.get("protection", "?"): rep}
    return {p: CampaignReport.from_dict(d) for p, d in obj.items()}


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in rows]
    return "\n".join(lines)


def render_report(report: CampaignReport) -> str:
    cfg = report.config
    head = ("fault campaign: %s n=%s seed=%s | protection=%s | "
            "%d faults over %d sites (fault_seed=%s)"
            % (cfg.get("benchmark"), cfg.get("n_samples"),
               cfg.get("seed"), cfg.get("protection"),
               len(report.injections), report.sites_enumerated,
               cfg.get("fault_seed")))
    ref = ("reference: %d cycles, %d committed, %d folds"
           % (report.ref_cycles, report.ref_committed, report.ref_folds))
    rows = []
    for s, d in report.by_structure().items():
        rows.append([s, "%d" % d["injections"], "%d" % d["masked"],
                     "%d" % d["detected_recovered"], "%d" % d["sdc"],
                     "%.3f" % d["avf"]])
    totals = report.to_dict()["totals"]
    rows.append(["TOTAL", "%d" % len(report.injections),
                 "%d" % totals[OUTCOME_MASKED],
                 "%d" % totals[OUTCOME_RECOVERED],
                 "%d" % totals[OUTCOME_SDC],
                 "%.3f" % (totals[OUTCOME_SDC] / len(report.injections)
                           if report.injections else 0.0)])
    table = _table(["structure", "inj", "masked", "recovered", "sdc",
                    "avf"], rows)
    return "\n".join([head, ref, "", table])


def render_matrix(reports: Dict[str, CampaignReport]) -> str:
    """Side-by-side outcome totals across protection models."""
    order = [p for p in ("none", "parity", "ecc") if p in reports]
    order += [p for p in sorted(reports) if p not in order]
    rows = []
    for p in order:
        r = reports[p]
        t = r.to_dict()["totals"]
        n = len(r.injections)
        rows.append([p, "%d" % n, "%d" % t[OUTCOME_MASKED],
                     "%d" % t[OUTCOME_RECOVERED], "%d" % t[OUTCOME_SDC],
                     "%.3f" % (t[OUTCOME_SDC] / n if n else 0.0)])
    table = _table(["protection", "inj", "masked", "recovered", "sdc",
                    "avf"], rows)
    sections = [table, ""]
    for p in order:
        sections.append(render_report(reports[p]))
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"
