"""Soft-error injection into the ASBR state (Extension E4).

The paper argues ASBR's fetch-stage tables fold branches with no
architectural risk; this package measures what happens when those
tables themselves break.  It provides:

* :mod:`repro.faults.model` — the fault space: every flippable bit of
  BDT/BIT/predictor state as a :class:`FaultSite`, and deterministic
  seeded campaign plans (:func:`sample_campaign`);
* :mod:`repro.faults.inject` — :class:`FaultInjector`, which arms one
  flip on one simulator via the telemetry layer's construction-time
  rebinding trick (the fault-free path stays zero-overhead) and models
  none / parity-detect / ECC-correct protection;
* :mod:`repro.faults.campaign` — campaign execution and differential
  classification (masked / detected-recovered / SDC) against the golden
  model and the fault-free reference, with per-structure AVF;
* :mod:`repro.faults.report` — stable JSON serialisation and text
  tables (``repro faults campaign|report``).

The campaign doubles as a chaos workload for the hardened runner
(:mod:`repro.runner`): injected runs crash, hang and time out by
design, which is exactly what the pool's timeout/retry/quarantine
machinery must absorb.
"""

from repro.faults.campaign import (
    OUTCOME_MASKED,
    OUTCOME_RECOVERED,
    OUTCOME_SDC,
    OUTCOMES,
    CampaignConfig,
    CampaignReport,
    InjectionResult,
    run_campaign,
    run_protection_matrix,
)
from repro.faults.inject import FaultInducedError, FaultInjector
from repro.faults.model import (
    BDT_CNT,
    BDT_DIR,
    BIT_FIELD,
    PRED_PHT,
    PROTECTIONS,
    STRUCTURES,
    FaultSite,
    FaultSpec,
    enumerate_sites,
    sample_campaign,
    sites_by_structure,
)
from repro.faults.report import (
    matrix_to_json,
    render_matrix,
    render_report,
    report_to_json,
    reports_from_json,
)

__all__ = [
    "BDT_CNT",
    "BDT_DIR",
    "BIT_FIELD",
    "CampaignConfig",
    "CampaignReport",
    "FaultInducedError",
    "FaultInjector",
    "FaultSite",
    "FaultSpec",
    "InjectionResult",
    "OUTCOMES",
    "OUTCOME_MASKED",
    "OUTCOME_RECOVERED",
    "OUTCOME_SDC",
    "PRED_PHT",
    "PROTECTIONS",
    "STRUCTURES",
    "enumerate_sites",
    "matrix_to_json",
    "render_matrix",
    "render_report",
    "report_to_json",
    "reports_from_json",
    "run_campaign",
    "run_protection_matrix",
    "sample_campaign",
    "sites_by_structure",
]
