"""Test support: random terminating programs for differential testing.

The strongest correctness argument this project makes is differential:
for any program, the pipelined simulator (under any predictor and any
ASBR configuration) must end with exactly the architectural state of the
functional simulator.  This module generates arbitrary-but-terminating
programs to feed that comparison.

Termination is guaranteed by construction: control flow is forward-only
except for counted loops whose dedicated counter registers (k0/k1) are
never written by generated body instructions.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.asm.program import Program
from repro.isa.instruction import Instruction

#: registers the generator may write (excludes r0; the loop counters
#: k0/k1 = r26/r27; sp = r29, which bases the scratch memory region; and
#: ra = r31, so a pending jal return address is never clobbered)
_WRITABLE = [r for r in range(1, 26)] + [28, 30]
_READABLE = _WRITABLE + [0, 31]

_ALU_RRR = ["add", "addu", "sub", "subu", "and", "or", "xor", "nor",
            "slt", "sltu", "mul", "div", "rem", "sllv", "srlv", "srav"]
_ALU_RRI = ["addi", "addiu", "slti", "sltiu"]
_ALU_RRI_U = ["andi", "ori", "xori"]
_SHIFTS = ["sll", "srl", "sra"]
_LOADS = ["lw", "lh", "lhu", "lb", "lbu"]
_STORES = ["sw", "sh", "sb"]
_BRANCH_Z = ["blez", "bgtz", "bltz", "bgez", "beqz", "bnez"]

#: scratch data region: word offsets off sp (sp itself is never moved)
_MEM_SLOTS = 64


class ProgramBuilder:
    """Accumulates instructions with pending-forward-branch patching."""

    def __init__(self) -> None:
        self.instrs: List[Instruction] = []

    def emit(self, instr: Instruction) -> int:
        self.instrs.append(instr)
        return len(self.instrs) - 1

    def patch_branch(self, index: int, target_index: int) -> None:
        """Point the branch at ``index`` to the instruction at
        ``target_index`` (both text indices)."""
        self.instrs[index].imm = target_index - index - 1

    def build(self) -> Program:
        return Program.from_instrs(self.instrs)


def _rand_alu(rng: random.Random) -> Instruction:
    choice = rng.randrange(4)
    if choice == 0:
        return Instruction(rng.choice(_ALU_RRR),
                           rd=rng.choice(_WRITABLE),
                           rs=rng.choice(_READABLE),
                           rt=rng.choice(_READABLE))
    if choice == 1:
        return Instruction(rng.choice(_ALU_RRI),
                           rt=rng.choice(_WRITABLE),
                           rs=rng.choice(_READABLE),
                           imm=rng.randint(-32768, 32767))
    if choice == 2:
        return Instruction(rng.choice(_ALU_RRI_U),
                           rt=rng.choice(_WRITABLE),
                           rs=rng.choice(_READABLE),
                           imm=rng.randint(0, 0xFFFF))
    return Instruction(rng.choice(_SHIFTS),
                       rd=rng.choice(_WRITABLE),
                       rs=rng.choice(_READABLE),
                       shamt=rng.randrange(32))


def _rand_mem(rng: random.Random) -> Instruction:
    # aligned accesses relative to sp; sizes respect natural alignment
    op = rng.choice(_LOADS + _STORES)
    size = {"lw": 4, "sw": 4, "lh": 2, "lhu": 2, "sh": 2,
            "lb": 1, "lbu": 1, "sb": 1}[op]
    slot = rng.randrange(_MEM_SLOTS) * 4
    offset = slot + rng.randrange(4 // size) * size if size < 4 else slot
    # negative offsets from sp keep accesses below the stack top
    imm = -(offset + 4)
    reg = rng.choice(_WRITABLE) if op in _LOADS else rng.choice(_READABLE)
    return Instruction(op, rt=reg, rs=29, imm=imm)


def _rand_instr(rng: random.Random) -> Instruction:
    return _rand_mem(rng) if rng.random() < 0.25 else _rand_alu(rng)


def random_program(seed: int, units: int = 12,
                   rng: Optional[random.Random] = None) -> Program:
    """A random terminating program.

    ``units`` controls size; each unit is a short straight-line run, a
    forward branch over some instructions, a counted loop, or a ``jal``
    skip.  Dynamic length stays modest (loops are 2-5 iterations).
    """
    rng = rng if rng is not None else random.Random(seed)
    b = ProgramBuilder()
    for _ in range(units):
        kind = rng.random()
        if kind < 0.40:                                   # straight line
            for _i in range(rng.randint(2, 6)):
                b.emit(_rand_instr(rng))
        elif kind < 0.70:                                 # forward branch
            if rng.random() < 0.7:
                br = b.emit(Instruction(rng.choice(_BRANCH_Z),
                                        rs=rng.choice(_READABLE)))
            else:
                br = b.emit(Instruction(rng.choice(["beq", "bne"]),
                                        rs=rng.choice(_READABLE),
                                        rt=rng.choice(_READABLE)))
            for _i in range(rng.randint(1, 5)):
                b.emit(_rand_instr(rng))
            b.patch_branch(br, len(b.instrs))
        elif kind < 0.95:                                 # counted loop
            counter = rng.choice([26, 27])
            b.emit(Instruction("addiu", rt=counter, rs=0,
                               imm=rng.randint(2, 5)))
            top = len(b.instrs)
            for _i in range(rng.randint(2, 6)):
                b.emit(_rand_instr(rng))
            b.emit(Instruction("addiu", rt=counter, rs=counter, imm=-1))
            br = b.emit(Instruction("bnez", rs=counter))
            b.patch_branch(br, top)
        else:                                             # jal skip + jr
            jal = b.emit(Instruction("jal"))
            for _i in range(rng.randint(1, 3)):
                b.emit(_rand_instr(rng))
            # the "function": a couple of instructions then return
            target = len(b.instrs)
            b.emit(_rand_alu(rng))
            b.emit(Instruction("jr", rs=31))
            # jal target is absolute (filled from the final layout)
            prog_pc = Program().text_base + 4 * target
            b.instrs[jal].target = (prog_pc >> 2) & 0x03FFFFFF
            # fix up: fall through must skip the function body
            # (the jal-skipped instructions run, then jump over the fn)
            b.instrs.insert(target, Instruction("beq", rs=0, rt=0, imm=2))
            b.instrs[jal].target = ((Program().text_base
                                     + 4 * (target + 1)) >> 2) & 0x03FFFFFF
    b.emit(Instruction("halt"))
    return b.build()
