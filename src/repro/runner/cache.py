"""Content-addressed on-disk cache of pipeline-run results.

Each entry is one JSON file named by the hex digest of the run's full
identity::

    sha256( program digest | input digest | config digest )

* **program digest** — the assembled text words, data segment and entry
  point.  Editing a workload's ``.s`` source changes it, so stale
  results can never be returned for modified programs.
* **input digest** — the exact input sample values (not just
  ``(n_samples, seed)``), so a change to the synthetic-input generator
  also invalidates.
* **config digest** — every :class:`~repro.runner.pool.RunSpec` field
  plus :data:`CACHE_VERSION`.  Bump the version when simulator *timing*
  semantics change; architectural changes are already covered by the
  golden-output check at record time.

Corrupted or truncated entries (killed process, disk full, concurrent
writer) are deleted on read and treated as misses — the cache is an
accelerator, never a source of errors.  Writes go through a temp file
and ``os.replace`` so readers never observe a half-written entry.

The cache can be size-capped: ``ResultCache(root, max_bytes=...)``
garbage-collects least-recently-used entries (by mtime — read hits
touch their entry) whenever a write pushes the directory over the cap.
``repro cache gc`` exposes the same collector for unattended caches; a
design-space sweep (:mod:`repro.dse`) can write thousands of entries,
so unbounded growth is no longer hypothetical.

The directory can be *sharded*: ``ResultCache(root, shards=256)``
spreads entries over ``root/<key prefix>/`` subdirectories so that
many concurrent writers (the :mod:`repro.serve` daemon's pool workers,
several tenants pointed at one cache volume) don't contend on a single
directory's inode.  Keys are uniform sha256 hex, so prefix sharding is
balanced by construction.  Opening an existing flat-layout cache with
``shards>0`` performs a one-time migration: every flat entry is
``os.replace``-moved into its shard (same filesystem, atomic, content and
mtime preserved — results are byte-identical before and after).
``gc`` and ``verify`` traverse both layouts regardless of the handle's
own ``shards`` setting.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro.runner.pool import SELECTION_BASELINE, RunSpec
from repro.sim.ooo import OoOStats
from repro.sim.pipeline import PipelineStats

#: Bump when a change alters cycle-accurate timing without changing
#: program bytes or inputs (e.g. a new stall rule in the pipeline), or
#: when the entry schema changes.  v2 added the optional ``metrics``
#: block (serialised telemetry tables riding alongside the stats); v3
#: added the selection-policy knobs to the config digest; v4 added the
#: in-entry payload checksum (``sha256``), verified on every read; v5
#: added the decoupled-frontend knobs (frontend/BTB/FTQ/FDIP) to the
#: config digest; v6 added the out-of-order backend knobs
#: (backend/issue_width/rob_size/iq_size/phys_regs) and the per-entry
#: stats kind (``"pipeline"`` | ``"ooo"``).
CACHE_VERSION = 6

#: Entry ``kind`` → stats dataclass; entries written before v6 carry no
#: kind and default to the in-order shape.
_STATS_TYPES = {"pipeline": PipelineStats, "ooo": OoOStats}


def _stats_from_entry(entry: dict):
    """Rebuild the stats dataclass recorded in ``entry``.

    Raises ``KeyError``/``TypeError`` on an unknown kind or mismatched
    field set — both are treated as corruption by the callers.
    """
    cls = _STATS_TYPES[entry.get("kind", "pipeline")]
    return cls(**entry["stats"])


def _stats_kind(stats) -> str:
    return "ooo" if isinstance(stats, OoOStats) else "pipeline"

_digest_memo: Dict[tuple, str] = {}

_SIZE_SUFFIX = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_size(text: str) -> int:
    """``"64M"``/``"2g"``/``"4096"`` → bytes (for ``--max-bytes``)."""
    s = str(text).strip().lower()
    mult = 1
    if s and s[-1] in _SIZE_SUFFIX:
        mult = _SIZE_SUFFIX[s[-1]]
        s = s[:-1]
    try:
        value = int(s)
    except ValueError:
        raise ValueError("unparseable size %r (want e.g. 4096, 64M, 2G)"
                         % (text,))
    if value < 0:
        raise ValueError("size must be >= 0")
    return value * mult


#: Allowed ``shards=`` values: 0 keeps the legacy flat layout, powers
#: of 16 shard by that many hex-prefix subdirectories.
_SHARD_WIDTH = {0: 0, 16: 1, 256: 2, 4096: 3}


def shard_width(shards: int) -> int:
    """Hex-prefix length of a shard directory name (0 → flat layout)."""
    try:
        return _SHARD_WIDTH[shards]
    except (KeyError, TypeError):
        raise ValueError("shards must be one of %s, got %r"
                         % (sorted(_SHARD_WIDTH), shards))


def shard_of(key: str, shards: int) -> str:
    """Shard subdirectory of ``key`` (``""`` for the flat layout).

    This is *the* layout function: :class:`ResultCache`, the serve
    daemon and the wire-format property tests all resolve a key's
    on-disk home through it, so they can never disagree.
    """
    return key[:shard_width(shards)]


def _sha(*parts: str) -> str:
    h = hashlib.sha256()
    for p in parts:
        h.update(p.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def _payload_checksum(entry: dict) -> str:
    """sha256 of an entry's canonical JSON (without the ``sha256`` key).

    Stored inside every entry at write time and re-derived on read: a
    torn write, a flipped byte or a hand-edited file fails the compare
    and the entry is evicted as corrupt instead of ever being served.
    """
    body = {k: v for k, v in entry.items() if k != "sha256"}
    canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def program_digest(program) -> str:
    """Digest of the assembled program (text, data, entry)."""
    return _sha("program",
                str(program.text_base),
                str(program.entry),
                ",".join("%x" % w for w in program.words),
                ",".join("%x:%x" % (a, v)
                         for a, v in sorted(program.data.items())))


def input_digest(values) -> str:
    """Digest of an input sample sequence."""
    return _sha("input", ",".join(str(v) for v in values))


def config_digest(spec: RunSpec) -> str:
    """Digest of the run configuration (spec fields + cache version).

    ``spec.engine`` is deliberately *excluded*: the interpreted and
    block-compiled engines are bit-identical (locked by the golden and
    differential suites), so results cached under one engine are served
    to runs requesting the other.
    """
    return _sha("config", "v%d" % CACHE_VERSION, SELECTION_BASELINE,
                spec.predictor_spec, str(spec.with_asbr),
                str(spec.bit_capacity), spec.bdt_update,
                repr(spec.min_fold_fraction), str(spec.min_count),
                str(spec.frontend), str(spec.btb_l1_entries),
                str(spec.btb_l2_entries), str(spec.btb_l2_assoc),
                str(spec.ftq_depth), str(spec.fdip),
                spec.backend, str(spec.issue_width),
                str(spec.rob_size), str(spec.iq_size),
                str(spec.phys_regs))


def key_for_spec(spec: RunSpec) -> str:
    """Full cache key of a spec, resolving its workload and input.

    The (program, input) digests are memoised per benchmark and per
    ``(n_samples, seed)`` — a sweep over many predictor configs hashes
    each program and input once.
    """
    pk = ("prog", spec.benchmark)
    if pk not in _digest_memo:
        from repro.workloads import get_workload
        _digest_memo[pk] = program_digest(get_workload(spec.benchmark)
                                          .program)
    ik = ("input", spec.n_samples, spec.seed)
    if ik not in _digest_memo:
        from repro.workloads import speech_like
        _digest_memo[ik] = input_digest(speech_like(spec.n_samples,
                                                    spec.seed))
    return _sha(_digest_memo[pk], _digest_memo[ik], config_digest(spec))


@dataclasses.dataclass
class VerifyResult:
    """Outcome of one :meth:`ResultCache.verify` scan."""

    scanned: int = 0
    ok: int = 0
    stale: int = 0        # older CACHE_VERSION (valid, but unusable)
    corrupt: int = 0      # unparseable / bad checksum / bad payload
    pruned: int = 0       # stale+corrupt entries deleted (prune=True)

    def render(self) -> str:
        return ("cache verify: %d entries scanned, %d ok, %d stale, "
                "%d corrupt, %d pruned"
                % (self.scanned, self.ok, self.stale, self.corrupt,
                   self.pruned))


@dataclasses.dataclass
class GCResult:
    """Outcome of one :meth:`ResultCache.gc` pass."""

    scanned: int = 0            # entries present before collection
    total_bytes: int = 0        # directory size before collection
    removed: int = 0
    freed_bytes: int = 0

    @property
    def remaining_bytes(self) -> int:
        return self.total_bytes - self.freed_bytes

    def render(self) -> str:
        return ("cache gc: %d entries (%d bytes) scanned, "
                "%d removed, %d bytes freed, %d bytes remain"
                % (self.scanned, self.total_bytes, self.removed,
                   self.freed_bytes, self.remaining_bytes))


class ResultCache:
    """Directory of ``<key>.json`` entries holding PipelineStats.

    With ``max_bytes`` set, every write that grows the directory past
    the cap triggers an LRU-by-mtime collection (oldest entries deleted
    until the cap is respected again).  Reads touch the entry's mtime,
    so "least recently used" means used, not written.

    With ``shards`` set (16/256/4096), entries live under a hex-prefix
    subdirectory; opening a flat directory with sharding on migrates
    every flat entry once, atomically, preserving content and mtime.
    The layout is a property of the directory — point every handle at
    one directory with the same ``shards`` value.
    """

    def __init__(self, root: str,
                 max_bytes: Optional[int] = None,
                 shards: int = 0) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.root = root
        self.max_bytes = max_bytes
        self.shards = shards
        self._shard_width = shard_width(shards)
        self.hits = 0
        self.misses = 0
        self.dropped = 0      # corrupted entries deleted on read
        self.evicted = 0      # entries removed by gc over this handle
        self.migrated = 0     # flat entries moved into shards at open
        self._approx_bytes: Optional[int] = None   # lazy running total
        if self._shard_width:
            self.migrated = self._migrate_flat()

    def shard_of(self, key: str) -> str:
        """This handle's shard subdirectory for ``key`` (may be "")."""
        return key[: self._shard_width]

    def _path(self, key: str) -> str:
        if self._shard_width:
            return os.path.join(self.root, self.shard_of(key),
                                key + ".json")
        return os.path.join(self.root, key + ".json")

    def _migrate_flat(self) -> int:
        """Move flat-layout ``<key>.json`` entries into their shards.

        ``os.replace`` within one filesystem: atomic per entry, bytes
        and mtime untouched, safe against a concurrent migrator (the
        loser's replace simply overwrites with identical content).
        """
        moved = 0
        try:
            names = [de.name for de in os.scandir(self.root)
                     if de.is_file() and de.name.endswith(".json")]
        except OSError:
            return 0                  # no directory yet — nothing flat
        for name in names:
            dst = self._path(name[: -len(".json")])
            try:
                os.makedirs(os.path.dirname(dst), exist_ok=True)
                os.replace(os.path.join(self.root, name), dst)
            except OSError:
                continue              # raced with another migrator
            moved += 1
        return moved

    # ------------------------------------------------------------------
    # size accounting and garbage collection
    # ------------------------------------------------------------------
    def _scan(self):
        """``(mtime, size, path)`` for every entry, oldest first.

        Walks the flat layer *and* every shard subdirectory, whatever
        this handle's own ``shards`` setting — so ``gc`` and ``verify``
        (and the CLI commands over them) cover mixed and migrated
        layouts without being told how the directory is organised.
        """
        entries = []

        def add(de) -> None:
            try:
                st = de.stat()
            except OSError:
                return                    # raced with another collector
            entries.append((st.st_mtime, st.st_size, de.path))

        try:
            with os.scandir(self.root) as it:
                for de in it:
                    if de.is_dir(follow_symlinks=False):
                        try:
                            with os.scandir(de.path) as sub:
                                for se in sub:
                                    if se.name.endswith(".json"):
                                        add(se)
                        except OSError:
                            continue
                    elif de.name.endswith(".json"):
                        add(de)
        except OSError:
            return []                     # no directory yet
        entries.sort()
        return entries

    def gc(self, max_bytes: Optional[int] = None) -> GCResult:
        """Delete least-recently-used entries until the cache fits
        ``max_bytes`` (defaulting to the handle's cap; no cap → the
        pass only measures).  Safe against concurrent collectors —
        already-deleted files are skipped, never errors."""
        cap = self.max_bytes if max_bytes is None else max_bytes
        entries = self._scan()
        result = GCResult(scanned=len(entries),
                          total_bytes=sum(e[1] for e in entries))
        if cap is not None:
            excess = result.total_bytes - cap
            for _mtime, size, path in entries:
                if excess <= 0:
                    break
                try:
                    os.remove(path)
                except OSError:
                    continue
                excess -= size
                result.removed += 1
                result.freed_bytes += size
        self.evicted += result.removed
        self._approx_bytes = result.remaining_bytes
        return result

    def verify(self, prune: bool = True) -> VerifyResult:
        """Scan every entry, checking parseability, version and payload
        checksum; with ``prune`` (default) bad entries are deleted.

        ``repro cache verify`` exposes this for unattended caches; a
        killed writer, a full disk or bit rot all surface here as
        ``corrupt`` instead of as mystery misses at sweep time.
        """
        result = VerifyResult()
        for _mtime, _size, path in self._scan():
            result.scanned += 1
            bad = None
            try:
                with open(path) as f:
                    entry = json.load(f)
                if entry["version"] != CACHE_VERSION:
                    bad = "stale"       # old schema; may lack a checksum
                elif entry.get("sha256") != _payload_checksum(entry):
                    raise ValueError("payload checksum mismatch")
                else:
                    _stats_from_entry(entry)
            except (ValueError, KeyError, TypeError, OSError):
                bad = "corrupt"
            if bad is None:
                result.ok += 1
                continue
            setattr(result, bad, getattr(result, bad) + 1)
            if prune:
                try:
                    os.remove(path)
                    result.pruned += 1
                except OSError:
                    pass
        return result

    def get(self, key: str, with_metrics: bool = False):
        """Stats for ``key``, or None; drops unreadable entries.

        With ``with_metrics`` the return value is a ``(stats,
        metrics_dict)`` pair, and an otherwise-valid entry recorded
        *without* metrics is reported as a miss — but kept on disk,
        since it still serves metric-less lookups.
        """
        path = self._path(key)
        try:
            with open(path) as f:
                entry = json.load(f)
            if entry["version"] != CACHE_VERSION:
                raise ValueError("cache version mismatch")
            if entry.get("sha256") != _payload_checksum(entry):
                raise ValueError("payload checksum mismatch")
            stats = _stats_from_entry(entry)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # corrupted/stale entry: delete and treat as a miss
            try:
                os.remove(path)
            except OSError:
                pass
            self.dropped += 1
            self.misses += 1
            return None
        if with_metrics:
            metrics = entry.get("metrics")
            if not isinstance(metrics, dict):
                self.misses += 1
                return None
            self.hits += 1
            self._touch(path)
            return stats, metrics
        self.hits += 1
        self._touch(path)
        return stats

    @staticmethod
    def _touch(path: str) -> None:
        """Refresh an entry's mtime so LRU gc spares recent reads."""
        try:
            os.utime(path)
        except OSError:
            pass

    def put(self, key: str, stats, describe: str = "",
            metrics: Optional[dict] = None) -> None:
        """Atomically record ``stats`` (a :class:`PipelineStats` or
        :class:`~repro.sim.ooo.OoOStats`, plus optional serialised
        telemetry ``metrics``) under ``key``."""
        dst = self._path(key)
        dst_dir = os.path.dirname(dst)
        os.makedirs(dst_dir, exist_ok=True)
        entry = {
            "version": CACHE_VERSION,
            "describe": describe,          # human breadcrumb only
            "kind": _stats_kind(stats),
            "stats": dataclasses.asdict(stats),
        }
        if metrics is not None:
            entry["metrics"] = metrics
        entry["sha256"] = _payload_checksum(entry)
        fd, tmp = tempfile.mkstemp(dir=dst_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f, indent=1, sort_keys=True)
            os.replace(tmp, dst)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._account_put(key)

    def _account_put(self, key: str) -> None:
        """Track directory growth; collect once it crosses the cap.

        The running total is seeded by one scan and then maintained
        incrementally, so a long sweep pays O(entries) once, not per
        write; gc re-synchronises the estimate with the filesystem.
        """
        try:
            size = os.path.getsize(self._path(key))
        except OSError:
            size = 0
        if self._approx_bytes is None:
            self._approx_bytes = sum(e[1] for e in self._scan())
        else:
            self._approx_bytes += size
        if self._approx_bytes > self.max_bytes:
            self.gc()
