"""Content-addressed on-disk cache of pipeline-run results.

Each entry is one JSON file named by the hex digest of the run's full
identity::

    sha256( program digest | input digest | config digest )

* **program digest** — the assembled text words, data segment and entry
  point.  Editing a workload's ``.s`` source changes it, so stale
  results can never be returned for modified programs.
* **input digest** — the exact input sample values (not just
  ``(n_samples, seed)``), so a change to the synthetic-input generator
  also invalidates.
* **config digest** — every :class:`~repro.runner.pool.RunSpec` field
  plus :data:`CACHE_VERSION`.  Bump the version when simulator *timing*
  semantics change; architectural changes are already covered by the
  golden-output check at record time.

Corrupted or truncated entries (killed process, disk full, concurrent
writer) are deleted on read and treated as misses — the cache is an
accelerator, never a source of errors.  Writes go through a temp file
and ``os.replace`` so readers never observe a half-written entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro.runner.pool import SELECTION_BASELINE, RunSpec
from repro.sim.pipeline import PipelineStats

#: Bump when a change alters cycle-accurate timing without changing
#: program bytes or inputs (e.g. a new stall rule in the pipeline), or
#: when the entry schema changes.  v2 added the optional ``metrics``
#: block (serialised telemetry tables riding alongside the stats).
CACHE_VERSION = 2

_digest_memo: Dict[tuple, str] = {}


def _sha(*parts: str) -> str:
    h = hashlib.sha256()
    for p in parts:
        h.update(p.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def program_digest(program) -> str:
    """Digest of the assembled program (text, data, entry)."""
    return _sha("program",
                str(program.text_base),
                str(program.entry),
                ",".join("%x" % w for w in program.words),
                ",".join("%x:%x" % (a, v)
                         for a, v in sorted(program.data.items())))


def input_digest(values) -> str:
    """Digest of an input sample sequence."""
    return _sha("input", ",".join(str(v) for v in values))


def config_digest(spec: RunSpec) -> str:
    """Digest of the run configuration (spec fields + cache version)."""
    return _sha("config", "v%d" % CACHE_VERSION, SELECTION_BASELINE,
                spec.predictor_spec, str(spec.with_asbr),
                str(spec.bit_capacity), spec.bdt_update)


def key_for_spec(spec: RunSpec) -> str:
    """Full cache key of a spec, resolving its workload and input.

    The (program, input) digests are memoised per benchmark and per
    ``(n_samples, seed)`` — a sweep over many predictor configs hashes
    each program and input once.
    """
    pk = ("prog", spec.benchmark)
    if pk not in _digest_memo:
        from repro.workloads import get_workload
        _digest_memo[pk] = program_digest(get_workload(spec.benchmark)
                                          .program)
    ik = ("input", spec.n_samples, spec.seed)
    if ik not in _digest_memo:
        from repro.workloads import speech_like
        _digest_memo[ik] = input_digest(speech_like(spec.n_samples,
                                                    spec.seed))
    return _sha(_digest_memo[pk], _digest_memo[ik], config_digest(spec))


class ResultCache:
    """Directory of ``<key>.json`` entries holding PipelineStats."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.dropped = 0      # corrupted entries deleted on read

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    def get(self, key: str, with_metrics: bool = False):
        """Stats for ``key``, or None; drops unreadable entries.

        With ``with_metrics`` the return value is a ``(stats,
        metrics_dict)`` pair, and an otherwise-valid entry recorded
        *without* metrics is reported as a miss — but kept on disk,
        since it still serves metric-less lookups.
        """
        path = self._path(key)
        try:
            with open(path) as f:
                entry = json.load(f)
            if entry["version"] != CACHE_VERSION:
                raise ValueError("cache version mismatch")
            stats = PipelineStats(**entry["stats"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # corrupted/stale entry: delete and treat as a miss
            try:
                os.remove(path)
            except OSError:
                pass
            self.dropped += 1
            self.misses += 1
            return None
        if with_metrics:
            metrics = entry.get("metrics")
            if not isinstance(metrics, dict):
                self.misses += 1
                return None
            self.hits += 1
            return stats, metrics
        self.hits += 1
        return stats

    def put(self, key: str, stats: PipelineStats, describe: str = "",
            metrics: Optional[dict] = None) -> None:
        """Atomically record ``stats`` (and optional serialised
        telemetry ``metrics``) under ``key``."""
        os.makedirs(self.root, exist_ok=True)
        entry = {
            "version": CACHE_VERSION,
            "describe": describe,          # human breadcrumb only
            "stats": dataclasses.asdict(stats),
        }
        if metrics is not None:
            entry["metrics"] = metrics
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f, indent=1, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
