"""Parallel experiment runner with an on-disk result cache.

Cycle-accurate pipeline runs dominate every experiment's cost, and the
experiment drivers ask for many independent (workload, predictor, ASBR)
configurations.  This package turns those requests into:

* :class:`~repro.runner.pool.RunSpec` — a picklable, hashable
  description of one pipeline run (workload by name, input by
  ``(n_samples, seed)``, predictor spec, ASBR parameters);
* :func:`~repro.runner.pool.execute_spec` — the one function that turns
  a spec into verified :class:`~repro.sim.pipeline.PipelineStats`
  (profiling, branch selection, simulation and the golden-output check);
* :func:`~repro.runner.pool.map_specs` — fan a spec list over a
  ``multiprocessing`` pool (``workers <= 1`` runs inline, bit-for-bit
  identically);
* :class:`~repro.runner.batch.FuncSpec` — the functional-run sibling of
  ``RunSpec``: :func:`map_specs` detects batchable ``FuncSpec`` groups
  sharing a program digest and collapses each into one vectorized
  :func:`repro.sim.batch.run_batch` call;
* :class:`~repro.runner.cache.ResultCache` — content-addressed JSON
  store keyed by (program digest, input digest, config digest), so a
  re-run of a figure with unchanged code and inputs costs one file read
  per configuration;
* :func:`~repro.runner.sweep.run_sweep` — the orchestration glue:
  dedupe, consult the cache, compute misses in parallel, refill;
* :func:`~repro.runner.aggregate.aggregate_metrics` — merge the
  per-run telemetry tables of a metric sweep
  (``run_sweep(..., collect_metrics=True)``) into one
  :class:`~repro.telemetry.MetricsRegistry` per benchmark.

``repro.experiments.common.ExperimentSetup`` submits its runs through
here; ``repro.cli experiments --workers N`` exposes it to users.
"""

from repro.runner.aggregate import aggregate_metrics, sweep_metrics
from repro.runner.batch import (
    FuncResult,
    FuncSpec,
    execute_func_spec,
    execute_func_specs,
)
from repro.runner.cache import (
    CACHE_VERSION,
    GCResult,
    ResultCache,
    VerifyResult,
    key_for_spec,
    parse_size,
    shard_of,
    shard_width,
)
from repro.runner.pool import (
    DeadlineExpired,
    FailedResult,
    RunSpec,
    TaskTimeout,
    execute_spec,
    execute_spec_metrics,
    map_specs,
)
from repro.runner.sweep import run_sweep

__all__ = [
    "CACHE_VERSION",
    "DeadlineExpired",
    "FailedResult",
    "FuncResult",
    "FuncSpec",
    "GCResult",
    "ResultCache",
    "RunSpec",
    "TaskTimeout",
    "VerifyResult",
    "parse_size",
    "aggregate_metrics",
    "execute_func_spec",
    "execute_func_specs",
    "execute_spec",
    "execute_spec_metrics",
    "key_for_spec",
    "map_specs",
    "run_sweep",
    "shard_of",
    "shard_width",
    "sweep_metrics",
]
