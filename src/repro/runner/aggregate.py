"""Aggregation of telemetry metrics across sweep runs.

A sweep returns one serialised :class:`~repro.telemetry.MetricsRegistry`
per run; the questions the paper asks, though, are per *benchmark* —
which branch PCs dominate, how often folds hit, why misses happen.
:func:`aggregate_metrics` merges the per-run tables into one registry
per group (benchmark by default), which the per-branch report renders
directly::

    results = run_sweep(specs, cache=cache, collect_metrics=True)
    merged = aggregate_metrics(specs, [m for _, m in results])
    print(render_branch_report(merged["adpcm_enc"]))

Merging is exact, not sampled: counters add, per-PC tables add
field-wise, distance histograms add bin-wise (see
``BranchPCStats.merge``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.pool import RunSpec
from repro.telemetry import MetricsRegistry


def aggregate_metrics(specs: Sequence[RunSpec],
                      metrics: Sequence[Optional[dict]],
                      group_by: Optional[Callable[[RunSpec], str]] = None
                      ) -> Dict[str, MetricsRegistry]:
    """Merged registries keyed by group (``spec.benchmark`` by default).

    ``metrics`` holds the serialised registry of each spec, aligned by
    index (as returned by ``run_sweep(..., collect_metrics=True)``);
    ``None`` entries are skipped.  ``group_by`` overrides the grouping,
    e.g. ``lambda s: s.predictor_spec`` to compare predictors.
    """
    if len(specs) != len(metrics):
        raise ValueError("specs and metrics differ in length (%d vs %d)"
                         % (len(specs), len(metrics)))
    if group_by is None:
        group_by = lambda s: s.benchmark
    merged: Dict[str, MetricsRegistry] = {}
    for spec, m in zip(specs, metrics):
        if m is None:
            continue
        group = group_by(spec)
        registry = merged.get(group)
        if registry is None:
            registry = merged[group] = MetricsRegistry()
        registry.merge(MetricsRegistry.from_dict(m))
    return merged


def sweep_metrics(specs: Sequence[RunSpec], results: Sequence,
                  group_by: Optional[Callable[[RunSpec], str]] = None
                  ) -> Dict[str, MetricsRegistry]:
    """Convenience wrapper taking ``run_sweep`` pairs directly."""
    return aggregate_metrics(specs, [m for _, m in results],
                             group_by=group_by)
