"""Batchable functional runs for the worker pool.

A :class:`FuncSpec` is the functional-simulation sibling of
:class:`~repro.runner.pool.RunSpec`: one workload + one synthetic input,
executed architecturally (no pipeline timing).  Functional runs are what
profiling sweeps, DSE rung prefetches and fault-campaign references
spend their time on, and N of them over the *same program* are exactly
the shape the lockstep batch engine (:mod:`repro.sim.batch`) vectorizes.

:func:`execute_func_specs` therefore groups specs by
``(program digest, max_instructions)`` — the conditions under which N
runs are one ``run_batch`` call — and collapses each group into a single
vectorized pass.  Results come back in input order, each verified
against the workload's golden model, so a batched sweep is
observationally identical to N :func:`execute_func_spec` calls; the
per-lane exactness of that collapse is the batch engine's contract
(``tests/test_batch_engine.py``).

:func:`~repro.runner.pool.map_specs` detects ``FuncSpec`` entries in a
mixed spec list, routes them through here, and splices the results back
into their original slots — callers opt into vectorization simply by
the spec type they submit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Default instruction budget, matching ``Workload.run_functional``.
_DEFAULT_BUDGET = 500_000_000


@dataclass(frozen=True)
class FuncSpec:
    """One functional (architectural) run, reproducible from scratch.

    Frozen/hashable like :class:`~repro.runner.pool.RunSpec` so sweeps
    can dedupe specs, and deliberately minimal: a functional run has no
    predictor, ASBR or machine knobs — its result is the architectural
    output stream and retire count, which every configuration shares.
    """

    benchmark: str
    n_samples: int
    seed: int
    max_instructions: int = _DEFAULT_BUDGET


@dataclass(frozen=True)
class FuncResult:
    """Verified result of one functional run.

    ``outputs`` is stored as a tuple so the result is hashable and
    immutable like its spec; ``instructions`` is the retired count —
    the work metric batched speed comparisons are denominated in.
    """

    outputs: Tuple[int, ...]
    instructions: int


def execute_func_spec(spec: FuncSpec) -> FuncResult:
    """Run one functional spec serially and return its verified result.

    The scalar reference path for :func:`execute_func_specs`: the
    batched path must produce exactly this, lane for lane.
    """
    from repro.workloads import get_workload, speech_like

    wl = get_workload(spec.benchmark)
    pcm = speech_like(spec.n_samples, spec.seed)
    res = wl.run_functional(pcm, max_instructions=spec.max_instructions)
    if res.outputs != wl.golden_output(pcm):
        raise AssertionError("%s produced wrong functional output"
                             % spec.benchmark)
    return FuncResult(tuple(res.outputs), res.instructions)


def _group_key(spec: FuncSpec, digests: Dict[str, str]) -> tuple:
    """Batchability key: specs collapse into one ``run_batch`` call iff
    they share a program (by content digest, so two workload names
    assembling to the same text batch together) and a budget (the
    budget is a property of the whole lockstep pass, not of a lane)."""
    if spec.benchmark not in digests:
        from repro.runner.cache import program_digest
        from repro.workloads import get_workload
        digests[spec.benchmark] = program_digest(
            get_workload(spec.benchmark).program)
    return (digests[spec.benchmark], spec.max_instructions)


def execute_func_specs(specs: Sequence[FuncSpec]) -> List:
    """Execute functional specs, vectorizing batchable groups.

    Specs sharing a program digest and instruction budget become one
    :func:`repro.sim.batch.run_batch` call (one lane each); singleton
    groups run serially — the batch engine's setup cost buys nothing
    for one lane.  Returns, in input order, a :class:`FuncResult` per
    spec or a :class:`~repro.runner.pool.FailedResult` for a lane that
    trapped or failed its golden check (batching must not let one bad
    lane abort its neighbours, mirroring ``on_error="return"``).
    """
    from repro.memory.main_memory import MainMemory
    from repro.runner.pool import FailedResult
    from repro.sim.batch import run_batch
    from repro.workloads import get_workload, speech_like

    specs = list(specs)
    results: List = [None] * len(specs)
    digests: Dict[str, str] = {}
    groups: Dict[tuple, List[int]] = {}
    for i, spec in enumerate(specs):
        groups.setdefault(_group_key(spec, digests), []).append(i)

    for lanes in groups.values():
        if len(lanes) == 1:
            i = lanes[0]
            try:
                results[i] = execute_func_spec(specs[i])
            except Exception as exc:
                results[i] = FailedResult(specs[i], "%s: %s"
                                          % (type(exc).__name__, exc),
                                          "error", 1)
            continue
        # the digest guarantees one program text across the group, but
        # each lane keeps its *own* workload object: two benchmark names
        # hashing to the same program may still prepare inputs
        # differently, and labels resolve identically either way
        wls = [get_workload(specs[i].benchmark) for i in lanes]
        pcms, counts, mems = [], [], []
        for wl, i in zip(wls, lanes):
            pcm = speech_like(specs[i].n_samples, specs[i].seed)
            stream = wl.input_stream(pcm)
            pcms.append(pcm)
            counts.append(wl._count(pcm, stream))
            mems.append(wl.build_memory(stream, counts[-1]))
        batch = run_batch(wls[0].program, mems,
                          max_instructions=specs[lanes[0]].max_instructions)
        for k, i in enumerate(lanes):
            lr = batch[k]
            wl = wls[k]
            if lr.error is not None:
                results[i] = FailedResult(specs[i], "%s: %s"
                                          % lr.error, "error", 1)
                continue
            m = MainMemory()
            m.load_words(lr.memory.items())
            outputs = wl.read_output(m, counts[k])
            if outputs != wl.golden_output(pcms[k]):
                results[i] = FailedResult(
                    specs[i], "AssertionError: %s produced wrong "
                    "functional output" % specs[i].benchmark, "error", 1)
                continue
            results[i] = FuncResult(tuple(outputs),
                                    lr.instructions_retired)
    return results
