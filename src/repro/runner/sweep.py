"""Sweep orchestration: dedupe, cache lookup, parallel fill.

:func:`run_sweep` is what the experiment layer calls: give it the full
list of configurations a figure needs and it returns their stats in the
same order, having simulated only the distinct, uncached ones — in
parallel when asked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.runner.cache import ResultCache, key_for_spec
from repro.runner.pool import FailedResult, RunSpec, map_specs


def run_sweep(specs: Sequence[RunSpec],
              workers: int = 0,
              cache: Optional[ResultCache] = None,
              collect_metrics: bool = False,
              task_timeout: Optional[float] = None,
              retries: int = 0,
              on_error: str = "raise",
              on_result=None,
              deadline: Optional[float] = None) -> List:
    """Stats for every spec, in input order.

    Duplicate specs are simulated once.  With a cache, known results are
    read back instead of simulated and fresh results are recorded; with
    ``workers > 1`` the remaining distinct runs go through a process
    pool.  The result list is a pure function of ``specs`` — neither the
    worker count nor the cache state can change what is returned, only
    how fast (enforced by ``tests/test_runner.py``).

    With ``collect_metrics`` each element is a ``(stats, metrics_dict)``
    pair: runs are traced through a telemetry
    :class:`~repro.telemetry.MetricsRegistry` (bit-identical timing) and
    the serialised tables are cached alongside the stats, so a repeated
    metric sweep costs one file read per configuration.  Cache entries
    recorded without metrics are upgraded in place by the refill.

    ``task_timeout`` / ``retries`` / ``on_error`` / ``deadline`` pass
    straight through to :func:`~repro.runner.pool.map_specs`; with
    ``on_error="return"`` a spec that exhausts its retries (or the
    end-to-end ``deadline``) occupies its result slots as a
    :class:`~repro.runner.pool.FailedResult`, which is reported to the
    caller but never written to the cache.  Cache hits settle before
    the deadline is consulted — known answers are never expired.

    ``on_result(spec, result, cached)`` is a progress hook fired once
    per *distinct* spec, in the order results become available: cache
    hits fire immediately during the lookup pass with ``cached=True``,
    simulated specs fire as the pool settles them (``cached=False``,
    fresh results already recorded to the cache).  The serve daemon
    streams these events over the wire; observer exceptions are
    swallowed so a broken stream cannot lose a sweep.
    """

    def notify(spec, result, cached: bool) -> None:
        if on_result is None:
            return
        try:
            on_result(spec, result, cached)
        except Exception:
            pass

    specs = list(specs)
    resolved: Dict[RunSpec, object] = {}
    todo: List[RunSpec] = []
    keys: Dict[RunSpec, str] = {}

    for spec in specs:
        if spec in resolved or spec in keys:
            continue            # duplicate of one already seen
        if cache is not None:
            keys[spec] = key_for_spec(spec)
            hit = cache.get(keys[spec], with_metrics=collect_metrics)
            if hit is not None:
                resolved[spec] = hit
                notify(spec, hit, True)
                continue
        else:
            keys[spec] = ""
        todo.append(spec)

    def settle(_i: int, spec: RunSpec, result) -> None:
        if cache is not None and not isinstance(result, FailedResult):
            if collect_metrics:
                stats, metrics = result
            else:
                stats, metrics = result, None
            cache.put(keys[spec], stats, describe=repr(spec),
                      metrics=metrics)
        notify(spec, result, False)

    results = map_specs(todo, workers=workers,
                        collect_metrics=collect_metrics,
                        task_timeout=task_timeout, retries=retries,
                        on_error=on_error, on_result=settle,
                        deadline=deadline)
    for spec, result in zip(todo, results):
        resolved[spec] = result

    return [resolved[spec] for spec in specs]
