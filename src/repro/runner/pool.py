"""Run specifications and the worker pool.

A :class:`RunSpec` is everything a worker process needs to reproduce one
pipeline run from scratch: the workload *name* (programs are assembled
in-process from the packaged ``.s`` sources), the synthetic input's
``(n_samples, seed)`` pair, the auxiliary predictor spec and the ASBR
parameters.  Specs are frozen/hashable so sweeps can dedupe them, and
picklable so ``multiprocessing`` can ship them.

:func:`_execute` is deliberately the *only* code path that turns a
spec into statistics — :func:`execute_spec` and its telemetry-carrying
twin :func:`execute_spec_metrics` are thin wrappers over it, and the
inline (``workers <= 1``) and pooled paths run the same function, which
is what makes the workers=1-vs-N determinism test
(``tests/test_runner.py``) meaningful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.pipeline import PipelineStats

#: selection baseline used by profile-driven branch selection; matches
#: ExperimentSetup.selection (the paper's reference predictor).
SELECTION_BASELINE = "bimodal-2048"


@dataclass(frozen=True)
class RunSpec:
    """One cycle-accurate pipeline run, reproducible from scratch.

    ``min_fold_fraction`` / ``min_count`` are the profile-driven
    selection policy's knobs (:func:`repro.profiling.select_branches`);
    they only matter for ``with_asbr`` runs but are part of every spec's
    identity so the design-space explorer (:mod:`repro.dse`) can sweep
    them through the same cache and pool as every other parameter.
    """

    benchmark: str
    n_samples: int
    seed: int
    predictor_spec: str
    with_asbr: bool = False
    bit_capacity: int = 16
    bdt_update: str = "execute"
    min_fold_fraction: float = 0.5
    min_count: int = 16
    #: execution engine ("interp" | "blocks" | "superblocks"); never
    #: part of the result cache key — all engines are bit-identical by
    #: construction
    engine: str = "interp"
    #: decoupled front end (:mod:`repro.frontend`); off by default so
    #: legacy specs keep their exact seed timing.  The five knobs below
    #: only matter when ``frontend`` is set but, like the ASBR selection
    #: knobs, are part of every spec's identity so DSE sweeps them
    #: through the same cache and pool.
    frontend: bool = False
    btb_l1_entries: int = 64
    btb_l2_entries: int = 2048
    btb_l2_assoc: int = 4
    ftq_depth: int = 8
    fdip: bool = False
    #: execution backend ("inorder" | "ooo").  The four machine knobs
    #: below only matter for the out-of-order backend
    #: (:mod:`repro.sim.ooo`) but are part of every spec's identity for
    #: the same reason as the frontend knobs above.
    backend: str = "inorder"
    issue_width: int = 2
    rob_size: int = 32
    iq_size: int = 16
    phys_regs: int = 64


def _execute(spec: RunSpec, trace=None) -> PipelineStats:
    """Shared body of :func:`execute_spec` / :func:`execute_spec_metrics`.

    Mirrors ``ExperimentSetup.run``: for ASBR configurations the
    benchmark is first profiled, a ``bimodal-2048`` trace accuracy is
    collected as the selection baseline, and the BIT branch set is
    chosen by :func:`repro.profiling.select_branches`.  The run's
    outputs are checked against the workload's golden model; a mismatch
    raises ``AssertionError`` (and is therefore never cached).
    """
    from repro.asbr import ASBRUnit
    from repro.predictors import evaluate_on_trace, make_predictor
    from repro.profiling import BranchProfiler, select_branches
    from repro.sim.functional import collect_branch_trace
    from repro.workloads import get_workload, speech_like

    wl = get_workload(spec.benchmark)
    pcm = speech_like(spec.n_samples, spec.seed)
    asbr = None
    if spec.with_asbr:
        stream = wl.input_stream(pcm)
        memory = wl.build_memory(stream)
        profile = BranchProfiler().profile(wl.program, memory)
        trace_b = collect_branch_trace(wl.program, wl.build_memory(stream))
        baseline = evaluate_on_trace(make_predictor(SELECTION_BASELINE),
                                     trace_b)
        sel = select_branches(profile, baseline,
                              bit_capacity=spec.bit_capacity,
                              bdt_update=spec.bdt_update,
                              min_fold_fraction=spec.min_fold_fraction,
                              min_count=spec.min_count)
        asbr = ASBRUnit.from_branch_infos(sel.infos,
                                          capacity=spec.bit_capacity,
                                          bdt_update=spec.bdt_update)
    frontend = None
    if getattr(spec, "frontend", False):
        from repro.frontend import FrontendConfig
        frontend = FrontendConfig(btb_l1_entries=spec.btb_l1_entries,
                                  btb_l2_entries=spec.btb_l2_entries,
                                  btb_l2_assoc=spec.btb_l2_assoc,
                                  ftq_depth=spec.ftq_depth,
                                  fdip=spec.fdip)
    if getattr(spec, "backend", "inorder") == "ooo":
        from repro.sim.ooo import OoOConfig
        config = OoOConfig(issue_width=spec.issue_width,
                           rob_size=spec.rob_size,
                           iq_size=spec.iq_size,
                           phys_regs=spec.phys_regs)
        result = wl.run_ooo(pcm,
                            predictor=make_predictor(spec.predictor_spec),
                            asbr=asbr, trace=trace, config=config,
                            frontend=frontend)
    else:
        result = wl.run_pipeline(pcm,
                                 predictor=make_predictor(
                                     spec.predictor_spec),
                                 asbr=asbr, trace=trace,
                                 engine=getattr(spec, "engine", "interp"),
                                 frontend=frontend)
    if result.outputs != wl.golden_output(pcm):
        raise AssertionError(
            "%s produced wrong output under %s (asbr=%s)"
            % (spec.benchmark, spec.predictor_spec, spec.with_asbr))
    return result.stats


def execute_spec(spec: RunSpec) -> PipelineStats:
    """Run one spec end-to-end and return its verified stats."""
    return _execute(spec)


def execute_spec_metrics(spec: RunSpec) -> Tuple[PipelineStats, dict]:
    """Like :func:`execute_spec`, but the run is traced through a
    :class:`~repro.telemetry.MetricsRegistry` and its serialised
    per-branch tables ride along with the stats.

    The traced pipeline produces bit-identical timing (enforced by
    ``tests/test_telemetry.py``), so callers may freely mix cached
    metric-less results with traced reruns.
    """
    from repro.telemetry import MetricsRegistry, Tracer

    registry = MetricsRegistry()
    stats = _execute(spec, trace=Tracer(registry))
    return stats, registry.to_dict()


@dataclass(frozen=True)
class FailedResult:
    """Sentinel standing in for a spec that could not be executed.

    Returned (never raised) by :func:`map_specs` when
    ``on_error="return"``: the sweep keeps its shape, the caller sees
    exactly which spec failed and why, and a poisoned spec is
    quarantined instead of aborting its 75 healthy neighbours.

    ``kind`` is ``"error"`` (the run raised — the message carries the
    exception), ``"timeout"`` (no result arrived within
    ``task_timeout`` — a hung run or a killed worker; the pool cannot
    tell those apart from the outside) or ``"deadline"`` (the sweep's
    end-to-end ``deadline`` passed before this spec produced a result —
    expired work is settled, never waited on).  ``attempts`` counts the
    tries that were spent before giving up.
    """

    spec: RunSpec
    error: str
    kind: str
    attempts: int

    def render(self) -> str:
        return ("FAILED[%s after %d attempt(s)] %r: %s"
                % (self.kind, self.attempts, self.spec, self.error))


class TaskTimeout(RuntimeError):
    """A task produced no result within ``task_timeout`` (raised only
    with ``on_error="raise"``; otherwise a :class:`FailedResult`)."""


class DeadlineExpired(RuntimeError):
    """The sweep's end-to-end ``deadline`` passed with work pending
    (raised only with ``on_error="raise"``; otherwise each expired
    spec settles as a ``kind="deadline"`` :class:`FailedResult`)."""


def _deadline_passed(deadline: Optional[float]) -> bool:
    return deadline is not None and time.monotonic() >= deadline


def _deadline_failed(spec: RunSpec, attempts: int) -> FailedResult:
    return FailedResult(spec, "deadline expired before a result was "
                        "produced", "deadline", attempts)


def _backoff_sleep(backoff: float, attempt: int) -> None:
    """Exponential backoff before retry ``attempt + 1``."""
    if backoff > 0:
        time.sleep(backoff * (2 ** (attempt - 1)))


def _run_inline(fn, spec: RunSpec, retries: int, backoff: float,
                on_error: str, deadline: Optional[float] = None):
    """Execute one spec in this process, with bounded retries.

    The ``deadline`` (absolute ``time.monotonic()`` value) is checked
    before each attempt — inline execution cannot be interrupted
    mid-run, so an expired deadline stops *starting* work rather than
    aborting it.
    """
    for attempt in range(1, retries + 2):
        if _deadline_passed(deadline):
            if on_error == "return":
                return _deadline_failed(spec, attempt - 1)
            raise DeadlineExpired("%r: deadline expired" % (spec,))
        try:
            return fn(spec)
        except Exception as exc:
            if attempt <= retries:
                _backoff_sleep(backoff, attempt)
                continue
            if on_error == "return":
                return FailedResult(spec, "%s: %s"
                                    % (type(exc).__name__, exc),
                                    "error", attempt)
            raise


def _pool_worker_init() -> None:
    """Reset inherited signal state in a freshly forked worker.

    A parent running an asyncio loop with ``add_signal_handler`` (the
    serve daemon) has Python-level SIGTERM/SIGINT handlers that write
    into the loop's wakeup pipe.  A forked worker inherits both the
    handlers and the *shared* pipe, with two failure modes: a SIGTERM
    aimed at the worker (``Pool.terminate``) is swallowed by the
    inherited handler, leaving the worker alive and ``join`` wedged —
    and the handler's write into the shared pipe makes the *parent's*
    loop believe it received the signal and shut the daemon down.
    Restore defaults before any task runs.
    """
    import signal
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):
        pass
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):
            pass


def _try_build_pool(procs: int):
    """A worker pool, or None when one cannot be built (fd exhaustion,
    a platform without multiprocessing support, ...) — the caller then
    degrades gracefully to serial execution."""
    try:
        import multiprocessing
        return multiprocessing.Pool(processes=procs,
                                    initializer=_pool_worker_init)
    except Exception:
        return None


def _shutdown_pool(pool, grace: float = 5.0) -> None:
    """Tear a pool down without ever hanging the sweep.

    ``Pool.terminate``/``join`` can deadlock: a worker killed (or
    SIGTERMed by ``terminate`` itself) while holding the shared task
    queue's lock leaves the pool's supervisor threads blocked on that
    lock forever.  Every result has already been collected by the time
    we get here, so nothing of value is at risk — run each teardown
    step in a daemon thread with a bounded wait, escalate to
    SIGKILLing straggler workers, and abandon the pool if it still
    will not die.  A leaked supervisor thread beats a wedged sweep.
    """
    import os
    import signal
    import threading

    def bounded(fn) -> bool:
        t = threading.Thread(target=fn, daemon=True)
        t.start()
        t.join(grace)
        return not t.is_alive()

    def stuck_workers():
        try:
            return [p for p in (pool._pool or []) if p.is_alive()]
        except Exception:
            return []

    if bounded(pool.terminate) and bounded(pool.join):
        return
    for proc in stuck_workers():
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except Exception:
            pass
    bounded(pool.join)


def _notify(on_result, i: int, spec: RunSpec, result) -> None:
    """Fire a progress callback; a broken observer never kills a sweep."""
    if on_result is None:
        return
    try:
        on_result(i, spec, result)
    except Exception:
        pass


def _finish_inline(specs, fn, results, done, retries, backoff, on_error,
                   on_result=None, deadline=None):
    """Serial fallback: complete every unfinished task in-process."""
    for j in range(len(specs)):
        if not done[j]:
            results[j] = _run_inline(fn, specs[j], retries, backoff,
                                     on_error, deadline)
            done[j] = True
            _notify(on_result, j, specs[j], results[j])
    return results


def _map_pooled(specs: List[RunSpec], fn, procs: int,
                task_timeout: Optional[float], retries: int,
                backoff: float, on_error: str,
                on_result=None, deadline: Optional[float] = None) -> List:
    """Fan ``specs`` over a worker pool, surviving crashed workers.

    ``pool.map`` would hang forever on a worker killed mid-task (the
    pool respawns the worker but the task's result is simply gone), so
    each task is an ``apply_async`` handle polled with
    ``get(task_timeout)``.  A timeout means a hung run or a killed
    worker; the task is resubmitted (the pool's respawned workers pick
    it up) until its retries are spent.  If the pool itself refuses new
    work it is rebuilt once per incident, and if it cannot be rebuilt
    the remaining tasks complete serially in this process — a sweep
    never dies of pool trouble.
    """
    import multiprocessing

    pool = _try_build_pool(procs)
    if pool is None:
        return _finish_inline(specs, fn, [None] * len(specs),
                              [False] * len(specs), retries, backoff,
                              on_error, on_result, deadline)
    n = len(specs)
    results: List = [None] * n
    done = [False] * n
    attempts = [0] * n
    handles: dict = {}

    def submit(i: int) -> bool:
        attempts[i] += 1
        try:
            handles[i] = pool.apply_async(fn, (specs[i],))
            return True
        except Exception:
            return False

    def rebuild() -> bool:
        """Replace a broken pool, resubmitting every unfinished task
        (resubmission is free — blame stays on the task that failed)."""
        nonlocal pool
        try:
            _shutdown_pool(pool)
        except Exception:
            pass
        pool = _try_build_pool(procs)
        if pool is None:
            return False
        for j in range(n):
            if not done[j]:
                attempts[j] = max(attempts[j], 1)
                try:
                    handles[j] = pool.apply_async(fn, (specs[j],))
                except Exception:
                    return False
        return True

    def resubmit(i: int) -> bool:
        _backoff_sleep(backoff, attempts[i])
        return submit(i) or rebuild()

    try:
        for i in range(n):
            if not submit(i):
                if not rebuild():
                    return _finish_inline(specs, fn, results, done,
                                          retries, backoff, on_error,
                                          on_result, deadline)
                break                 # rebuild submitted the rest too
        for i in range(n):
            while not done[i]:
                if _deadline_passed(deadline):
                    # end-to-end deadline: settle, don't wait — the
                    # in-flight pool task is abandoned (its eventual
                    # result is discarded by the pool teardown)
                    if on_error != "return":
                        raise DeadlineExpired(
                            "%r: deadline expired" % (specs[i],))
                    results[i] = _deadline_failed(specs[i], attempts[i])
                    done[i] = True
                    _notify(on_result, i, specs[i], results[i])
                    continue
                wait = task_timeout
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    wait = remaining if wait is None \
                        else min(wait, remaining)
                try:
                    results[i] = handles[i].get(wait)
                    done[i] = True
                    _notify(on_result, i, specs[i], results[i])
                except multiprocessing.TimeoutError:
                    if _deadline_passed(deadline):
                        continue      # loop top settles it as deadline
                    if attempts[i] <= retries:
                        if not resubmit(i):
                            return _finish_inline(specs, fn, results,
                                                  done, retries,
                                                  backoff, on_error,
                                                  on_result, deadline)
                        continue
                    msg = ("no result within %.3gs after %d attempt(s) "
                           "(worker hung or killed)"
                           % (wait, attempts[i]))
                    if on_error == "return":
                        results[i] = FailedResult(specs[i], msg,
                                                  "timeout", attempts[i])
                        done[i] = True
                        _notify(on_result, i, specs[i], results[i])
                    else:
                        raise TaskTimeout("%r: %s" % (specs[i], msg))
                except Exception as exc:
                    if attempts[i] <= retries:
                        if not resubmit(i):
                            return _finish_inline(specs, fn, results,
                                                  done, retries,
                                                  backoff, on_error,
                                                  on_result, deadline)
                        continue
                    if on_error == "return":
                        results[i] = FailedResult(
                            specs[i], "%s: %s" % (type(exc).__name__,
                                                  exc),
                            "error", attempts[i])
                        done[i] = True
                        _notify(on_result, i, specs[i], results[i])
                    else:
                        raise
    finally:
        try:
            _shutdown_pool(pool)
        except Exception:
            pass
    return results


def _map_with_func_specs(specs: List, func_idx: List[int], workers: int,
                         collect_metrics: bool,
                         task_timeout: Optional[float], retries: int,
                         backoff: float, on_error: str,
                         on_result=None,
                         deadline: Optional[float] = None) -> List:
    """Mixed-spec path: batch the ``FuncSpec`` entries, pool the rest.

    Functional specs are collapsed into vectorized
    :func:`repro.sim.batch.run_batch` calls by
    :func:`repro.runner.batch.execute_func_specs` — in-process, since
    the lockstep engine replaces process fan-out for them — while the
    remaining :class:`RunSpec` entries take the ordinary pooled path.
    Results land back in their original slots.  Functional runs carry
    no pipeline telemetry, so ``collect_metrics`` is rejected for a
    mixed list rather than silently shaping results inconsistently.
    """
    from repro.runner.batch import execute_func_specs

    if collect_metrics:
        raise ValueError("collect_metrics is not supported for FuncSpec "
                         "entries (functional runs have no pipeline "
                         "telemetry)")
    results: List = [None] * len(specs)
    func_res = execute_func_specs([specs[i] for i in func_idx])
    for i, r in zip(func_idx, func_res):
        if isinstance(r, FailedResult) and on_error == "raise":
            raise RuntimeError("%r: %s" % (r.spec, r.error))
        results[i] = r
        _notify(on_result, i, specs[i], r)
    rest_idx = [i for i in range(len(specs)) if i not in set(func_idx)]
    if rest_idx:
        hook = None
        if on_result is not None:
            def hook(j, spec, result):
                on_result(rest_idx[j], spec, result)
        rest = map_specs([specs[i] for i in rest_idx], workers=workers,
                         task_timeout=task_timeout, retries=retries,
                         backoff=backoff, on_error=on_error,
                         on_result=hook, deadline=deadline)
        for i, r in zip(rest_idx, rest):
            results[i] = r
    return results


def map_specs(specs: Sequence[RunSpec], workers: int = 0,
              collect_metrics: bool = False,
              task_timeout: Optional[float] = None,
              retries: int = 0, backoff: float = 0.25,
              on_error: str = "raise",
              on_result=None,
              deadline: Optional[float] = None) -> List:
    """Execute every spec, returning results in input order.

    Each result is a ``PipelineStats``, or a ``(stats, metrics_dict)``
    pair when ``collect_metrics`` is set.  The list may mix in
    :class:`~repro.runner.batch.FuncSpec` entries (functional runs):
    those sharing a program digest and budget are collapsed into one
    vectorized :func:`repro.sim.batch.run_batch` call and yield
    :class:`~repro.runner.batch.FuncResult` in their slots
    (``collect_metrics`` is rejected for such lists — functional runs
    carry no pipeline telemetry).  ``workers <= 1`` runs inline
    in this process — no multiprocessing import, no pickling,
    deterministic and debuggable.  Larger values fan out over a process
    pool; results are identical because both paths run the same function
    and every spec is self-contained.

    Robustness knobs (defaults preserve the strict legacy semantics:
    one attempt, failures propagate):

    * ``task_timeout`` — seconds a pooled task may go without producing
      a result before it is considered lost (hung run or SIGKILLed
      worker) and retried/failed.  This is the crash detector: without
      it a killed worker's task would be waited on forever.
    * ``retries`` / ``backoff`` — each failed or timed-out task is
      retried up to ``retries`` times with exponential backoff
      (``backoff * 2**(attempt-1)`` seconds) before giving up.
    * ``on_error="return"`` — a task out of retries yields a
      :class:`FailedResult` in its slot instead of raising, so one
      poisoned spec cannot abort the sweep.  ``"raise"`` (default)
      propagates the worker's exception / :class:`TaskTimeout`.
    * ``deadline`` — an absolute ``time.monotonic()`` instant bounding
      the *whole call* end to end (the serve daemon propagates a
      request's ``deadline_ms`` here).  Specs without a result when it
      passes settle as ``kind="deadline"`` :class:`FailedResult`\\ s
      (or raise :class:`DeadlineExpired` with ``on_error="raise"``):
      pooled waits are clipped to the remaining budget, and the
      inline/serial paths stop starting new work.  Expired work is
      never waited on and never cached.

    If the pool cannot be built or rebuilt, the remaining work degrades
    to serial in-process execution rather than failing.

    ``on_result(i, spec, result)`` is a progress hook fired exactly
    once per spec as its slot settles (a success *or* a quarantined
    :class:`FailedResult`), on every execution path — pooled, inline
    and serial fallback.  It runs in the submitting process; the serve
    daemon streams these straight onto job event feeds.  Observer
    exceptions are swallowed: progress reporting can never lose a
    sweep.  With ``on_error="raise"`` a propagating failure means later
    slots never fire.
    """
    if on_error not in ("raise", "return"):
        raise ValueError("on_error must be 'raise' or 'return'")
    specs = list(specs)
    from repro.runner.batch import FuncSpec
    func_idx = [i for i, s in enumerate(specs)
                if isinstance(s, FuncSpec)]
    if func_idx:
        return _map_with_func_specs(specs, func_idx, workers,
                                    collect_metrics, task_timeout,
                                    retries, backoff, on_error,
                                    on_result, deadline)
    fn = execute_spec_metrics if collect_metrics else execute_spec
    if workers <= 1 or len(specs) <= 1:
        results = []
        for i, s in enumerate(specs):
            results.append(_run_inline(fn, s, retries, backoff,
                                       on_error, deadline))
            _notify(on_result, i, s, results[-1])
        return results
    return _map_pooled(specs, fn, min(workers, len(specs)),
                       task_timeout, retries, backoff, on_error,
                       on_result, deadline)
