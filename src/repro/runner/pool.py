"""Run specifications and the worker pool.

A :class:`RunSpec` is everything a worker process needs to reproduce one
pipeline run from scratch: the workload *name* (programs are assembled
in-process from the packaged ``.s`` sources), the synthetic input's
``(n_samples, seed)`` pair, the auxiliary predictor spec and the ASBR
parameters.  Specs are frozen/hashable so sweeps can dedupe them, and
picklable so ``multiprocessing`` can ship them.

:func:`_execute` is deliberately the *only* code path that turns a
spec into statistics — :func:`execute_spec` and its telemetry-carrying
twin :func:`execute_spec_metrics` are thin wrappers over it, and the
inline (``workers <= 1``) and pooled paths run the same function, which
is what makes the workers=1-vs-N determinism test
(``tests/test_runner.py``) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.sim.pipeline import PipelineStats

#: selection baseline used by profile-driven branch selection; matches
#: ExperimentSetup.selection (the paper's reference predictor).
SELECTION_BASELINE = "bimodal-2048"


@dataclass(frozen=True)
class RunSpec:
    """One cycle-accurate pipeline run, reproducible from scratch.

    ``min_fold_fraction`` / ``min_count`` are the profile-driven
    selection policy's knobs (:func:`repro.profiling.select_branches`);
    they only matter for ``with_asbr`` runs but are part of every spec's
    identity so the design-space explorer (:mod:`repro.dse`) can sweep
    them through the same cache and pool as every other parameter.
    """

    benchmark: str
    n_samples: int
    seed: int
    predictor_spec: str
    with_asbr: bool = False
    bit_capacity: int = 16
    bdt_update: str = "execute"
    min_fold_fraction: float = 0.5
    min_count: int = 16


def _execute(spec: RunSpec, trace=None) -> PipelineStats:
    """Shared body of :func:`execute_spec` / :func:`execute_spec_metrics`.

    Mirrors ``ExperimentSetup.run``: for ASBR configurations the
    benchmark is first profiled, a ``bimodal-2048`` trace accuracy is
    collected as the selection baseline, and the BIT branch set is
    chosen by :func:`repro.profiling.select_branches`.  The run's
    outputs are checked against the workload's golden model; a mismatch
    raises ``AssertionError`` (and is therefore never cached).
    """
    from repro.asbr import ASBRUnit
    from repro.predictors import evaluate_on_trace, make_predictor
    from repro.profiling import BranchProfiler, select_branches
    from repro.sim.functional import collect_branch_trace
    from repro.workloads import get_workload, speech_like

    wl = get_workload(spec.benchmark)
    pcm = speech_like(spec.n_samples, spec.seed)
    asbr = None
    if spec.with_asbr:
        stream = wl.input_stream(pcm)
        memory = wl.build_memory(stream)
        profile = BranchProfiler().profile(wl.program, memory)
        trace_b = collect_branch_trace(wl.program, wl.build_memory(stream))
        baseline = evaluate_on_trace(make_predictor(SELECTION_BASELINE),
                                     trace_b)
        sel = select_branches(profile, baseline,
                              bit_capacity=spec.bit_capacity,
                              bdt_update=spec.bdt_update,
                              min_fold_fraction=spec.min_fold_fraction,
                              min_count=spec.min_count)
        asbr = ASBRUnit.from_branch_infos(sel.infos,
                                          capacity=spec.bit_capacity,
                                          bdt_update=spec.bdt_update)
    result = wl.run_pipeline(pcm,
                             predictor=make_predictor(spec.predictor_spec),
                             asbr=asbr, trace=trace)
    if result.outputs != wl.golden_output(pcm):
        raise AssertionError(
            "%s produced wrong output under %s (asbr=%s)"
            % (spec.benchmark, spec.predictor_spec, spec.with_asbr))
    return result.stats


def execute_spec(spec: RunSpec) -> PipelineStats:
    """Run one spec end-to-end and return its verified stats."""
    return _execute(spec)


def execute_spec_metrics(spec: RunSpec) -> Tuple[PipelineStats, dict]:
    """Like :func:`execute_spec`, but the run is traced through a
    :class:`~repro.telemetry.MetricsRegistry` and its serialised
    per-branch tables ride along with the stats.

    The traced pipeline produces bit-identical timing (enforced by
    ``tests/test_telemetry.py``), so callers may freely mix cached
    metric-less results with traced reruns.
    """
    from repro.telemetry import MetricsRegistry, Tracer

    registry = MetricsRegistry()
    stats = _execute(spec, trace=Tracer(registry))
    return stats, registry.to_dict()


def map_specs(specs: Sequence[RunSpec], workers: int = 0,
              collect_metrics: bool = False) -> List:
    """Execute every spec, returning results in input order.

    Each result is a ``PipelineStats``, or a ``(stats, metrics_dict)``
    pair when ``collect_metrics`` is set.  ``workers <= 1`` runs inline
    in this process — no multiprocessing import, no pickling,
    deterministic and debuggable.  Larger values fan out over a process
    pool; results are identical because both paths run the same function
    and every spec is self-contained.  A worker failure (e.g. a
    golden-output mismatch) propagates.
    """
    specs = list(specs)
    fn = execute_spec_metrics if collect_metrics else execute_spec
    if workers <= 1 or len(specs) <= 1:
        return [fn(s) for s in specs]
    import multiprocessing
    procs = min(workers, len(specs))
    with multiprocessing.Pool(processes=procs) as pool:
        return pool.map(fn, specs)
