"""Benefit-ranked branch selection for the BIT (paper Section 6).

"Frequently executed, hard-to-predict branches are especially propitious
to resolve by using ASBR."  The score used here is the expected number
of cycles ASBR saves on a branch:

    benefit = count * fold_fraction * ((1 - accuracy) * penalty + 1)

where ``accuracy`` is the baseline predictor's accuracy on this branch
(from a trace replay), ``penalty`` the misprediction penalty, and the
``+ 1`` the pipeline slot the folded branch itself no longer occupies.

Selection filters out branches ASBR hardware cannot handle (two-register
compares, control-flow replacement instructions, r0 predicates) and
branches that would rarely fold at the configured BDT update point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.asbr.branch_info import (
    BranchInfo,
    FoldabilityError,
    extract_branch_info,
)
from repro.predictors.evaluate import PredictorAccuracy
from repro.profiling.profiler import BranchProfile, BranchStats


@dataclass
class SelectedBranch:
    """One branch chosen for the BIT, with its selection rationale."""

    info: BranchInfo
    stats: BranchStats
    accuracy: float          # baseline predictor accuracy on this branch
    fold_fraction: float
    benefit: float

    @property
    def pc(self) -> int:
        return self.info.pc


@dataclass
class SelectionResult:
    """Outcome of a selection pass."""

    selected: List[SelectedBranch] = field(default_factory=list)
    rejected: Dict[int, str] = field(default_factory=dict)  # pc -> reason
    bdt_update: str = "mem"

    @property
    def infos(self) -> List[BranchInfo]:
        """BIT-ready records, in rank order."""
        return [s.info for s in self.selected]

    @property
    def pcs(self) -> set:
        return {s.pc for s in self.selected}

    def describe(self, program=None) -> str:
        lines = ["selected %d branches (bdt_update=%s):"
                 % (len(self.selected), self.bdt_update)]
        for i, s in enumerate(self.selected):
            lines.append(
                "  br%-3d pc=0x%x exec=%-9d acc=%.2f fold=%.2f benefit=%.0f"
                % (i, s.pc, s.stats.count, s.accuracy, s.fold_fraction,
                   s.benefit))
        return "\n".join(lines)


def select_branches(profile: BranchProfile,
                    baseline_accuracy: Optional[PredictorAccuracy] = None,
                    bit_capacity: int = 16,
                    bdt_update: str = "mem",
                    min_fold_fraction: float = 0.5,
                    min_count: int = 16,
                    mispredict_penalty: int = 2) -> SelectionResult:
    """Pick the best ``bit_capacity`` branches for ASBR folding.

    ``baseline_accuracy`` supplies the per-branch accuracy of the
    predictor being displaced (paper: the 2048-entry bimodal); without
    it, accuracy defaults to max(taken rate, 1-taken rate), i.e. the
    branch's inherent bias.
    """
    result = SelectionResult(bdt_update=bdt_update)
    program = profile.program
    candidates: List[SelectedBranch] = []

    for stats in profile.sorted_by_count():
        pc = stats.pc
        if stats.count < min_count:
            result.rejected[pc] = "executed only %d times" % stats.count
            continue
        if not stats.is_zero_comparison:
            result.rejected[pc] = "not a zero comparison"
            continue
        fold_fraction = stats.fold_fraction(bdt_update)
        if fold_fraction < min_fold_fraction:
            result.rejected[pc] = ("fold fraction %.2f below %.2f "
                                   "(min distance %d)"
                                   % (fold_fraction, min_fold_fraction,
                                      stats.min_distance))
            continue
        try:
            info = extract_branch_info(program, pc)
        except FoldabilityError as exc:
            result.rejected[pc] = str(exc)
            continue
        if baseline_accuracy is not None \
                and baseline_accuracy.pc_count(pc) > 0:
            accuracy = baseline_accuracy.pc_accuracy(pc)
        else:
            accuracy = max(stats.taken_rate, 1.0 - stats.taken_rate)
        benefit = stats.count * fold_fraction \
            * ((1.0 - accuracy) * mispredict_penalty + 1.0)
        candidates.append(SelectedBranch(
            info=info, stats=stats, accuracy=accuracy,
            fold_fraction=fold_fraction, benefit=benefit))

    candidates.sort(key=lambda s: (-s.benefit, s.pc))
    result.selected = candidates[:bit_capacity]
    for s in candidates[bit_capacity:]:
        result.rejected[s.pc] = "beyond BIT capacity %d" % bit_capacity
    return result
