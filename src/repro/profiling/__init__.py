"""Profiling and branch selection for ASBR.

The paper selects fold candidates by profiling (Section 6): branches are
ranked by expected benefit — frequently executed, hard to predict, and
*foldable* (their predicate-defining instruction is far enough ahead of
the branch for the configured BDT forwarding path).

* :class:`~repro.profiling.profiler.BranchProfiler` runs a program on
  the functional simulator and collects, per static branch: execution
  and taken counts, and the dynamic distance from the last write of the
  predicate register to the branch (with the producer's kind, since
  loads deliver their value a stage later).
* :func:`~repro.profiling.selection.select_branches` filters and ranks
  candidates and returns loaded-BIT-ready :class:`BranchInfo` records
  plus a per-branch report table (the paper's Figures 7, 9, 10).
"""

from repro.profiling.profiler import (
    BranchProfile,
    BranchProfiler,
    BranchStats,
)
from repro.profiling.selection import (
    SelectedBranch,
    SelectionResult,
    select_branches,
)

__all__ = [
    "BranchProfile",
    "BranchProfiler",
    "BranchStats",
    "SelectedBranch",
    "SelectionResult",
    "select_branches",
]
