"""Branch profiler: execution counts, taken rates and fold distances.

Runs the program once on the functional simulator, tracking for every
register the retire-index of its last producer.  At each conditional
branch it records the *definition-to-branch distance* — the number of
dynamic instructions between the predicate-defining instruction and the
branch — which, compared against the pipeline *threshold* (paper
Section 5), decides whether an ASBR fold would succeed on that
execution.

Load-produced predicates are tracked separately: a load delivers its
value at the memory stage, so under the aggressive ``execute`` BDT
update it still behaves like the ``mem`` one (threshold 3 instead of 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.asbr.folding import THRESHOLD_BY_UPDATE
from repro.asm.program import Program
from repro.isa.conditions import Condition
from repro.isa.instruction import Instruction
from repro.memory.main_memory import MainMemory
from repro.sim.functional import FunctionalSimulator

#: Distances larger than this are recorded as "far" (always foldable).
FAR_DISTANCE = 1 << 30


@dataclass
class BranchStats:
    """Dynamic statistics for one static conditional branch."""

    pc: int
    instr: Instruction
    count: int = 0
    taken: int = 0
    target: int = 0
    zero_cond: Optional[tuple] = None       # (Condition, reg) or None
    min_distance: int = FAR_DISTANCE
    # executions whose fold would succeed, per BDT update point
    foldable: Dict[str, int] = field(default_factory=lambda: {
        "commit": 0, "mem": 0, "execute": 0})
    load_produced: int = 0                  # predicate came from a load

    @property
    def taken_rate(self) -> float:
        return self.taken / self.count if self.count else 0.0

    def fold_fraction(self, bdt_update: str) -> float:
        """Fraction of executions ASBR would fold at this update point."""
        if not self.count:
            return 0.0
        return self.foldable[bdt_update] / self.count

    @property
    def is_zero_comparison(self) -> bool:
        return self.zero_cond is not None


@dataclass
class BranchProfile:
    """Profile of all conditional branches in one program run."""

    program: Program
    branches: Dict[int, BranchStats] = field(default_factory=dict)
    total_instructions: int = 0

    @property
    def total_branch_executions(self) -> int:
        return sum(b.count for b in self.branches.values())

    def sorted_by_count(self):
        """Branches ordered by execution count, descending."""
        return sorted(self.branches.values(),
                      key=lambda b: (-b.count, b.pc))


class BranchProfiler:
    """Collects a :class:`BranchProfile` from one functional run."""

    def __init__(self, max_instructions: int = 200_000_000) -> None:
        self.max_instructions = max_instructions

    def profile(self, program: Program,
                memory: Optional[MainMemory] = None) -> BranchProfile:
        sim = FunctionalSimulator(program, memory)
        result = BranchProfile(program)
        branches = result.branches
        last_def_index = [-FAR_DISTANCE] * 32
        last_def_load = [False] * 32
        index = 0

        while not sim.halted:
            if index >= self.max_instructions:
                raise RuntimeError("profiling instruction budget exhausted")
            pc = sim.pc
            instr = sim.program.instr_at(pc)

            if instr.is_branch:
                stats = branches.get(pc)
                if stats is None:
                    stats = BranchStats(pc=pc, instr=instr,
                                        target=instr.branch_target(pc),
                                        zero_cond=instr.zero_condition)
                    branches[pc] = stats
                taken = sim.branch_outcome(instr)
                stats.count += 1
                if taken:
                    stats.taken += 1
                zc = stats.zero_cond
                if zc is not None:
                    _reg = zc[1]
                    distance = index - last_def_index[_reg]
                    if distance < stats.min_distance:
                        stats.min_distance = distance
                    is_load = last_def_load[_reg]
                    if is_load:
                        stats.load_produced += 1
                    for update, threshold in THRESHOLD_BY_UPDATE.items():
                        eff = threshold
                        if is_load and update == "execute":
                            eff = THRESHOLD_BY_UPDATE["mem"]
                        if distance > eff:
                            stats.foldable[update] += 1

            dest = instr.dest_reg
            if dest is not None and dest != 0:
                last_def_index[dest] = index
                last_def_load[dest] = instr.is_load

            sim.execute(instr)
            index += 1

        result.total_instructions = index
        return result
