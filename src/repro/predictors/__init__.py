"""Baseline branch predictors and their hardware cost model.

These are the general-purpose predictors the paper measures against
(Section 8): ``not taken``, ``bimodal`` (2-bit saturating counters +
BTB) and ``gshare`` (global-history-XOR two-level predictor + BTB), plus
``always taken``, profile-based ``static`` and a McFarling-style
``combining`` predictor as extensions.

Every predictor reports its SRAM state in bits (:attr:`state_bits`),
which backs the paper's "comparable accuracy at significantly lower
area" claim (Sections 1, 6) and the area ablation bench.
"""

from repro.predictors.base import BranchPredictor, Prediction
from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.simple import (
    AlwaysTakenPredictor,
    NotTakenPredictor,
    StaticPredictor,
)
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.local import LocalHistoryPredictor
from repro.predictors.combining import CombiningPredictor
from repro.predictors.evaluate import (
    PredictorAccuracy,
    evaluate_on_trace,
    make_predictor,
)

__all__ = [
    "BranchPredictor",
    "Prediction",
    "BranchTargetBuffer",
    "NotTakenPredictor",
    "AlwaysTakenPredictor",
    "StaticPredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "LocalHistoryPredictor",
    "CombiningPredictor",
    "PredictorAccuracy",
    "evaluate_on_trace",
    "make_predictor",
]
