"""Gshare predictor: global history XOR PC, two-bit counters + BTB.

The paper's configuration (Section 8): 11-bit global history register,
2048-entry second-level table, 2048-entry BTB.
"""

from __future__ import annotations

from typing import List

from repro.predictors.base import BranchPredictor, Prediction
from repro.predictors.bimodal import WEAK_NOT_TAKEN, WEAK_TAKEN
from repro.predictors.btb import BranchTargetBuffer


class GSharePredictor(BranchPredictor):
    """McFarling's gshare: PHT indexed by (PC xor global history)."""

    def __init__(self, history_bits: int = 11, entries: int = 2048,
                 btb_entries: int = 2048) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("PHT entries must be a power of two")
        if history_bits > entries.bit_length() - 1:
            raise ValueError("history register wider than the PHT index")
        self.entries = entries
        self.history_bits = history_bits
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._counters: List[int] = [WEAK_NOT_TAKEN] * entries
        self.btb = BranchTargetBuffer(btb_entries)
        self.name = "gshare-%d" % entries

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> Prediction:
        taken = self._counters[self._index(pc)] >= WEAK_TAKEN
        return Prediction(taken, self.btb.lookup(pc) if taken else None)

    def update(self, pc: int, taken: bool, target: int) -> None:
        i = self._index(pc)
        c = self._counters[i]
        if taken:
            if c < 3:
                self._counters[i] = c + 1
            self.btb.insert(pc, target)
        elif c > 0:
            self._counters[i] = c - 1
        self._history = ((self._history << 1) | int(taken)) \
            & self._history_mask

    def reset(self) -> None:
        self._history = 0
        self._counters = [WEAK_NOT_TAKEN] * self.entries
        self.btb.reset()

    @property
    def state_bits(self) -> int:
        return 2 * self.entries + self.history_bits + self.btb.state_bits
