"""Replay recorded branch traces through standalone predictors.

This reproduces the *accuracy* columns of the paper's tables without
re-running the cycle simulator once per predictor: the functional
simulator records every conditional branch once
(:func:`repro.sim.functional.collect_branch_trace`), and each predictor
replays the identical stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.combining import CombiningPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.local import LocalHistoryPredictor
from repro.predictors.simple import AlwaysTakenPredictor, NotTakenPredictor
from repro.sim.functional import BranchRecord


@dataclass
class PredictorAccuracy:
    """Accuracy of one predictor over one branch trace."""

    predictor_name: str
    total: int = 0
    correct: int = 0
    per_pc_total: Dict[int, int] = field(default_factory=dict)
    per_pc_correct: Dict[int, int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def pc_accuracy(self, pc: int) -> float:
        total = self.per_pc_total.get(pc, 0)
        return self.per_pc_correct.get(pc, 0) / total if total else 0.0

    def pc_count(self, pc: int) -> int:
        return self.per_pc_total.get(pc, 0)


def evaluate_on_trace(predictor: BranchPredictor,
                      trace: Iterable[BranchRecord],
                      skip_pcs: Optional[set] = None,
                      direction_only: bool = True) -> PredictorAccuracy:
    """Replay ``trace`` through ``predictor`` and score it.

    ``skip_pcs`` removes a set of branches from the stream *entirely*
    (they neither predict nor train) — this models ASBR having folded
    those branches out, which is what lets the auxiliary predictor see
    less destructive aliasing (paper Section 6, third bullet).

    With ``direction_only`` (the default, matching the paper's accuracy
    columns) a prediction is correct when the direction matches; with it
    off, a taken prediction additionally needs the right BTB target.
    """
    acc = PredictorAccuracy(predictor.name)
    per_total = acc.per_pc_total
    per_correct = acc.per_pc_correct
    for rec in trace:
        pc = rec.pc
        if skip_pcs and pc in skip_pcs:
            continue
        pred = predictor.predict(pc)
        if direction_only:
            ok = pred.taken == rec.taken
        else:
            ok = (pred.taken == rec.taken
                  and (not rec.taken or pred.target == rec.target))
        predictor.update(pc, rec.taken, rec.target)
        acc.total += 1
        per_total[pc] = per_total.get(pc, 0) + 1
        if ok:
            acc.correct += 1
            per_correct[pc] = per_correct.get(pc, 0) + 1
    return acc


def make_predictor(spec: str) -> BranchPredictor:
    """Build a predictor from a short spec string.

    Recognised specs::

        not-taken | always-taken
        bimodal[-N[-BTB]]      e.g. bimodal-2048, bimodal-512-512
        gshare[-N[-H[-BTB]]]   e.g. gshare-2048-11
        combining[-N]

    These are the names used throughout the experiment drivers.
    """
    parts = spec.split("-")
    if spec == "not-taken":
        return NotTakenPredictor()
    if spec == "always-taken":
        return AlwaysTakenPredictor()
    if parts[0] == "bimodal":
        entries = int(parts[1]) if len(parts) > 1 else 2048
        btb = int(parts[2]) if len(parts) > 2 else 2048
        return BimodalPredictor(entries, btb)
    if parts[0] == "gshare":
        entries = int(parts[1]) if len(parts) > 1 else 2048
        hist = int(parts[2]) if len(parts) > 2 else 11
        btb = int(parts[3]) if len(parts) > 3 else 2048
        return GSharePredictor(hist, entries, btb)
    if parts[0] == "combining":
        entries = int(parts[1]) if len(parts) > 1 else 2048
        return CombiningPredictor(entries)
    if parts[0] == "local":
        hist = int(parts[1]) if len(parts) > 1 else 8
        pht = int(parts[2]) if len(parts) > 2 else 1024
        return LocalHistoryPredictor(hist, pht_entries=pht)
    raise ValueError("unknown predictor spec %r" % spec)
