"""Branch target buffer, and the tag/index math every PC-keyed table shares.

A direct-mapped, tagged table mapping branch PC to its taken-target
address.  Direction predictors pair with one of these: a taken
prediction can only redirect fetch when the BTB holds the target.

The *shared entry model* for PC-keyed prediction structures —
word-granular slot indexing (:func:`pc_index`) and per-entry SRAM
sizing (:func:`entry_state_bits`) — lives in the dependency-leaf module
:mod:`repro.tablegeom` and is re-exported here.  The ASBR Branch
Identification Table (:mod:`repro.asbr.bit`) and the two-level BTB
hierarchy (:mod:`repro.frontend.btb`) size and index their entries
through the same helpers instead of duplicating the tag math.
"""

from __future__ import annotations

from typing import List, Optional

from repro.tablegeom import (  # noqa: F401  (re-exported API)
    PC_TAG_BITS,
    TARGET_BITS,
    entry_state_bits,
    pc_index,
)


class BranchTargetBuffer:
    """Direct-mapped BTB with full tags."""

    def __init__(self, entries: int = 2048) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._tags: List[Optional[int]] = [None] * entries
        self._targets: List[int] = [0] * entries

    def _index(self, pc: int) -> int:
        return pc_index(pc, self._mask)

    def lookup(self, pc: int) -> Optional[int]:
        """Target address for the branch at ``pc``, or None on miss."""
        i = pc_index(pc, self._mask)
        return self._targets[i] if self._tags[i] == pc else None

    def insert(self, pc: int, target: int) -> None:
        """Record (or overwrite) the target of a taken branch."""
        i = pc_index(pc, self._mask)
        self._tags[i] = pc
        self._targets[i] = target

    def reset(self) -> None:
        self._tags = [None] * self.entries
        self._targets = [0] * self.entries

    @property
    def state_bits(self) -> int:
        return self.entries * entry_state_bits(TARGET_BITS)


#: Deprecation-free short alias (kept stable; both names are public).
BTB = BranchTargetBuffer
