"""Branch target buffer.

A direct-mapped, tagged table mapping branch PC to its taken-target
address.  Direction predictors pair with one of these: a taken
prediction can only redirect fetch when the BTB holds the target.
"""

from __future__ import annotations

from typing import List, Optional


class BranchTargetBuffer:
    """Direct-mapped BTB with full tags."""

    def __init__(self, entries: int = 2048) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._tags: List[Optional[int]] = [None] * entries
        self._targets: List[int] = [0] * entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def lookup(self, pc: int) -> Optional[int]:
        """Target address for the branch at ``pc``, or None on miss."""
        i = self._index(pc)
        return self._targets[i] if self._tags[i] == pc else None

    def insert(self, pc: int, target: int) -> None:
        """Record (or overwrite) the target of a taken branch."""
        i = self._index(pc)
        self._tags[i] = pc
        self._targets[i] = target

    def reset(self) -> None:
        self._tags = [None] * self.entries
        self._targets = [0] * self.entries

    @property
    def state_bits(self) -> int:
        # tag (30 significant PC bits) + target (30) + valid, per entry
        return self.entries * (30 + 30 + 1)
