"""Two-level local-history (PAg) predictor — extension baseline.

Yeh & Patt's per-address history scheme, the other classic two-level
organisation next to gshare's global history (McFarling [3] compares
both).  Each branch keeps its own shift register of recent outcomes,
which indexes a shared table of 2-bit counters: periodic per-branch
patterns (loop trip counts, alternation) are learned exactly even when
global history is polluted by interleaved branches.
"""

from __future__ import annotations

from typing import List

from repro.predictors.base import BranchPredictor, Prediction
from repro.predictors.bimodal import WEAK_NOT_TAKEN, WEAK_TAKEN
from repro.predictors.btb import BranchTargetBuffer


class LocalHistoryPredictor(BranchPredictor):
    """PAg: per-branch history registers over one global PHT."""

    def __init__(self, history_bits: int = 8, history_entries: int = 512,
                 pht_entries: int = 1024, btb_entries: int = 2048) -> None:
        for name, v in (("history_entries", history_entries),
                        ("pht_entries", pht_entries)):
            if v <= 0 or v & (v - 1):
                raise ValueError("%s must be a power of two" % name)
        if (1 << history_bits) > pht_entries:
            raise ValueError("history wider than the PHT index")
        self.history_bits = history_bits
        self.history_entries = history_entries
        self.pht_entries = pht_entries
        self._hist_mask = history_entries - 1
        self._pattern_mask = (1 << history_bits) - 1
        self._histories: List[int] = [0] * history_entries
        self._counters: List[int] = [WEAK_NOT_TAKEN] * pht_entries
        self.btb = BranchTargetBuffer(btb_entries)
        self.name = "local-%d-%d" % (history_bits, pht_entries)

    def _history_index(self, pc: int) -> int:
        return (pc >> 2) & self._hist_mask

    def predict(self, pc: int) -> Prediction:
        pattern = self._histories[self._history_index(pc)]
        taken = self._counters[pattern] >= WEAK_TAKEN
        return Prediction(taken, self.btb.lookup(pc) if taken else None)

    def update(self, pc: int, taken: bool, target: int) -> None:
        hi = self._history_index(pc)
        pattern = self._histories[hi]
        c = self._counters[pattern]
        if taken:
            if c < 3:
                self._counters[pattern] = c + 1
            self.btb.insert(pc, target)
        elif c > 0:
            self._counters[pattern] = c - 1
        self._histories[hi] = ((pattern << 1) | int(taken)) \
            & self._pattern_mask

    def reset(self) -> None:
        self._histories = [0] * self.history_entries
        self._counters = [WEAK_NOT_TAKEN] * self.pht_entries
        self.btb.reset()

    @property
    def state_bits(self) -> int:
        return (self.history_entries * self.history_bits
                + 2 * self.pht_entries + self.btb.state_bits)
