"""McFarling combining (tournament) predictor — an extension baseline.

Not evaluated in the paper's tables, but the paper cites McFarling [3]
for both component predictors; the tournament combination is the natural
"even larger general-purpose predictor" point for the area ablation.
"""

from __future__ import annotations

from typing import List

from repro.predictors.base import BranchPredictor, Prediction
from repro.predictors.bimodal import BimodalPredictor, WEAK_NOT_TAKEN
from repro.predictors.gshare import GSharePredictor


class CombiningPredictor(BranchPredictor):
    """Chooser-selected bimodal/gshare tournament predictor.

    The chooser is a table of 2-bit counters indexed by PC: >=2 selects
    gshare, otherwise bimodal.  Both components train on every branch;
    the chooser trains toward whichever component was correct.
    """

    name = "combining"

    def __init__(self, entries: int = 2048, history_bits: int = 11,
                 btb_entries: int = 2048) -> None:
        self.bimodal = BimodalPredictor(entries, btb_entries)
        self.gshare = GSharePredictor(history_bits, entries, btb_entries=1)
        # share one BTB: the gshare component reuses the bimodal's table
        self.gshare.btb = self.bimodal.btb
        self.entries = entries
        self._mask = entries - 1
        self._chooser: List[int] = [WEAK_NOT_TAKEN] * entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> Prediction:
        use_gshare = self._chooser[self._index(pc)] >= 2
        return self.gshare.predict(pc) if use_gshare \
            else self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool, target: int) -> None:
        b_ok = self.bimodal.predict(pc).taken == taken
        g_ok = self.gshare.predict(pc).taken == taken
        i = self._index(pc)
        if g_ok and not b_ok and self._chooser[i] < 3:
            self._chooser[i] += 1
        elif b_ok and not g_ok and self._chooser[i] > 0:
            self._chooser[i] -= 1
        self.bimodal.update(pc, taken, target)
        self.gshare.update(pc, taken, target)

    def reset(self) -> None:
        self.bimodal.reset()
        self.gshare.reset()
        self.gshare.btb = self.bimodal.btb
        self._chooser = [WEAK_NOT_TAKEN] * self.entries

    @property
    def state_bits(self) -> int:
        return (2 * self.entries            # chooser
                + self.bimodal.state_bits   # includes the shared BTB
                + 2 * self.gshare.entries + self.gshare.history_bits)
