"""Bimodal predictor: per-PC 2-bit saturating counters + BTB.

The paper's baseline configuration is 2048 counters with a 2048-entry
BTB; the ASBR auxiliary configurations are ``bi-512`` and ``bi-256``
with the BTB "reduced to a quarter of its size" (512 entries).
"""

from __future__ import annotations

from typing import List

from repro.predictors.base import BranchPredictor, Prediction
from repro.predictors.btb import BranchTargetBuffer

WEAK_NOT_TAKEN = 1
WEAK_TAKEN = 2


class BimodalPredictor(BranchPredictor):
    """Smith-style 2-bit saturating counter table indexed by PC."""

    def __init__(self, entries: int = 2048, btb_entries: int = 2048) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("PHT entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._counters: List[int] = [WEAK_NOT_TAKEN] * entries
        self.btb = BranchTargetBuffer(btb_entries)
        self.name = "bimodal-%d" % entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> Prediction:
        taken = self._counters[self._index(pc)] >= WEAK_TAKEN
        return Prediction(taken, self.btb.lookup(pc) if taken else None)

    def update(self, pc: int, taken: bool, target: int) -> None:
        i = self._index(pc)
        c = self._counters[i]
        if taken:
            if c < 3:
                self._counters[i] = c + 1
            self.btb.insert(pc, target)
        elif c > 0:
            self._counters[i] = c - 1

    def reset(self) -> None:
        self._counters = [WEAK_NOT_TAKEN] * self.entries
        self.btb.reset()

    @property
    def state_bits(self) -> int:
        return 2 * self.entries + self.btb.state_bits
