"""Trivial and profile-based predictors."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.predictors.base import NOT_TAKEN, BranchPredictor, Prediction
from repro.predictors.btb import BranchTargetBuffer


class NotTakenPredictor(BranchPredictor):
    """Always predicts not-taken.

    "This is the default in many embedded processors that lack branch
    predictors" (paper, Section 8) — fetch simply falls through and every
    taken branch pays the full misprediction penalty.
    """

    name = "not-taken"

    def predict(self, pc: int) -> Prediction:
        return NOT_TAKEN

    def update(self, pc: int, taken: bool, target: int) -> None:
        pass

    @property
    def state_bits(self) -> int:
        return 0


class AlwaysTakenPredictor(BranchPredictor):
    """Always predicts taken, with a BTB for the target (extension)."""

    name = "always-taken"

    def __init__(self, btb_entries: int = 2048) -> None:
        self.btb = BranchTargetBuffer(btb_entries)

    def predict(self, pc: int) -> Prediction:
        return Prediction(True, self.btb.lookup(pc))

    def update(self, pc: int, taken: bool, target: int) -> None:
        if taken:
            self.btb.insert(pc, target)

    def reset(self) -> None:
        self.btb.reset()

    @property
    def state_bits(self) -> int:
        return self.btb.state_bits


class StaticPredictor(BranchPredictor):
    """Profile-driven static prediction (cf. related work [2]).

    The compiler profiles a training run and fixes each branch's
    predicted direction to its majority outcome; targets are static so no
    BTB state is charged (the direction bit travels with the
    instruction).  Branches absent from the profile default to not-taken.
    """

    name = "static"

    def __init__(self, directions: Mapping[int, bool],
                 targets: Mapping[int, int]) -> None:
        self._directions: Dict[int, bool] = dict(directions)
        self._targets: Dict[int, int] = dict(targets)

    @classmethod
    def from_profile(cls, profile) -> "StaticPredictor":
        """Build from a :class:`repro.profiling.BranchProfile`."""
        directions = {pc: b.taken_rate >= 0.5
                      for pc, b in profile.branches.items()}
        targets = {pc: b.target for pc, b in profile.branches.items()}
        return cls(directions, targets)

    def predict(self, pc: int) -> Prediction:
        if self._directions.get(pc, False):
            return Prediction(True, self._targets.get(pc))
        return NOT_TAKEN

    def update(self, pc: int, taken: bool, target: int) -> None:
        pass

    @property
    def state_bits(self) -> int:
        return 0  # encoded in the instruction stream, not predictor SRAM
