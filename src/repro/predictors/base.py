"""Branch predictor interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Prediction:
    """A fetch-stage prediction for a conditional branch.

    ``taken`` is the predicted direction.  ``target`` is the predicted
    taken-target address, or None when the hardware has no target to
    redirect to (BTB miss) — in that case the front end must keep
    fetching sequentially even if the direction predictor says taken,
    exactly as in a real BTB-based front end.
    """

    taken: bool
    target: Optional[int] = None

    @property
    def redirects(self) -> bool:
        """Does this prediction actually redirect fetch?"""
        return self.taken and self.target is not None


NOT_TAKEN = Prediction(False, None)


class BranchPredictor(abc.ABC):
    """Interface shared by all direction predictors.

    The pipeline calls :meth:`predict` in the fetch stage for every
    conditional branch and :meth:`update` when the branch resolves in
    execute.  Predictors are deterministic and contain only their own
    table state, so the same object can be replayed over recorded branch
    traces (:mod:`repro.predictors.evaluate`).
    """

    #: short name used in experiment tables (e.g. "bimodal")
    name: str = "base"

    @abc.abstractmethod
    def predict(self, pc: int) -> Prediction:
        """Predict the branch at address ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool, target: int) -> None:
        """Train on the resolved outcome of the branch at ``pc``."""

    @property
    @abc.abstractmethod
    def state_bits(self) -> int:
        """Bits of SRAM/flip-flop state the predictor occupies."""

    def reset(self) -> None:
        """Return all tables to power-on state (optional override)."""

    def __repr__(self) -> str:
        return "%s(state_bits=%d)" % (type(self).__name__, self.state_bits)
