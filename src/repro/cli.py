"""Command-line toolchain: assemble, simulate, profile, customize.

Usage (also installed as the ``repro-asbr`` console script)::

    python -m repro.cli asm program.s --disasm
    python -m repro.cli run program.s
    python -m repro.cli sim program.s --predictor bimodal-512-512
    python -m repro.cli sim program.s --asbr --bdt-update execute
    python -m repro.cli sim program.s --trace-out t.jsonl --branch-report
    python -m repro.cli profile program.s
    python -m repro.cli workload adpcm_enc --samples 1000 --asbr --json
    python -m repro.cli trace pipeview t.jsonl --skip 100 --limit 40
    python -m repro.cli trace report t.jsonl
    python -m repro.cli experiments fig11 --samples 600
    python -m repro.cli experiments all --workers 4
    python -m repro.cli dse run --space paper --journal results/dse.jsonl
    python -m repro.cli dse run --tolerant --task-timeout 120 --retries 2
    python -m repro.cli dse frontier --journal results/dse.jsonl --csv
    python -m repro.cli dse report --journal results/dse.jsonl
    python -m repro.cli faults campaign --n-faults 24 --protection all
    python -m repro.cli faults report results/faults.json
    python -m repro.cli cache gc --cache-dir results/.runcache --max-bytes 64M
    python -m repro.cli cache verify --cache-dir results/.runcache
    python -m repro.cli serve --port 8765 --workers 4 --cache-dir results/.servecache

``sim --asbr`` performs the paper's whole methodology on the program:
profile it, select fold candidates, load the BIT, and re-simulate.
``dse`` explores the whole configuration space instead of one point
(:mod:`repro.dse`): ``run`` evaluates a space through the journal +
cache + pool, ``frontier``/``report`` re-render a journal without any
simulation.  ``faults campaign`` injects seeded soft errors into the
ASBR state and classifies every one (:mod:`repro.faults`).  ``cache
gc`` size-caps the on-disk result cache; ``cache verify`` checks every
entry's payload checksum and prunes corruption (both traverse sharded
and flat cache layouts).  ``serve`` runs the long-lived simulation
daemon (:mod:`repro.serve`): JSON/HTTP submission of single runs,
sweeps and DSE jobs with request coalescing, a sharded result cache
and streamed job progress; with ``--state-dir`` every job journals to
a write-ahead log and a restarted daemon resumes unfinished work.
``--trace-out`` / ``--branch-report`` / ``--json`` attach the telemetry
layer (:mod:`repro.telemetry`) to the run; ``trace`` renders a
previously captured JSONL event stream.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Optional

from repro.asbr import ASBRUnit
from repro.asm import assemble
from repro.isa.registers import REG_NAMES
from repro.predictors import evaluate_on_trace, make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.sim.functional import FunctionalSimulator, collect_branch_trace
from repro.sim.pipeline import PipelineSimulator


def _load_program(path: str):
    with open(path) as f:
        return assemble(f.read())


def _print_stats(stats, asbr: Optional[ASBRUnit] = None) -> None:
    print("cycles              %12d" % stats.cycles)
    print("instructions        %12d   (CPI %.3f)"
          % (stats.committed, stats.cpi))
    print("fetched / squashed  %12d / %d" % (stats.fetched, stats.squashed))
    print("branches            %12d   (%d mispredicted, accuracy %.1f%%)"
          % (stats.branches, stats.branch_mispredicts,
             100 * stats.branch_accuracy))
    print("load-use stalls     %12d" % stats.load_use_stalls)
    print("icache/dcache stall %12d / %d"
          % (stats.icache_miss_stalls, stats.dcache_miss_stalls))
    if asbr is not None:
        print("branches folded     %12d   (%d taken / %d not-taken, "
              "%d invalid fallbacks)"
              % (stats.folds_committed, asbr.stats.folded_taken,
                 asbr.stats.folded_not_taken,
                 asbr.stats.invalid_fallbacks))
        print("ASBR state          %12d bits" % asbr.state_bits)


def _make_cli_tracer(args):
    """Tracer for ``--trace-out`` / ``--branch-report`` / ``--json``,
    or None when no telemetry flag was given (zero-overhead run)."""
    trace_out = getattr(args, "trace_out", None)
    want_metrics = getattr(args, "branch_report", False) \
        or getattr(args, "json", False)
    if trace_out is None and not want_metrics:
        return None
    from repro.telemetry import make_tracer
    return make_tracer(jsonl_path=trace_out, with_metrics=want_metrics)


def _stats_dict(stats, asbr: Optional[ASBRUnit] = None,
                tracer=None) -> dict:
    """JSON-ready view of a run: stats, derived rates, ASBR counters
    and (when traced) the telemetry tables."""
    out = dataclasses.asdict(stats)
    out["cpi"] = stats.cpi
    out["branch_accuracy"] = stats.branch_accuracy
    if asbr is not None:
        out["asbr"] = {
            "folded_taken": asbr.stats.folded_taken,
            "folded_not_taken": asbr.stats.folded_not_taken,
            "invalid_fallbacks": asbr.stats.invalid_fallbacks,
            "state_bits": asbr.state_bits,
        }
    if tracer is not None and tracer.metrics is not None:
        out["telemetry"] = tracer.metrics.to_dict()
    return out


def _report_run(args, stats, asbr, tracer, prog=None,
                extra: Optional[dict] = None) -> None:
    """Shared tail of ``sim`` / ``workload``: close the tracer, then
    print stats (text or ``--json``) and the per-branch report."""
    if tracer is not None:
        tracer.close()
    if getattr(args, "json", False):
        out = _stats_dict(stats, asbr, tracer)
        if extra:
            out.update(extra)
        print(json.dumps(out, indent=1, sort_keys=True))
    else:
        _print_stats(stats, asbr)
    if getattr(args, "branch_report", False) and not getattr(
            args, "json", False):
        from repro.telemetry import render_branch_report
        print()
        print(render_branch_report(tracer.metrics, prog))
    if getattr(args, "trace_out", None):
        from repro.telemetry import JsonlTraceSink
        sink = tracer.find_sink(JsonlTraceSink)
        note = " (truncated at byte bound)" if sink.truncated else ""
        print("trace: %d events -> %s%s"
              % (sink.written, args.trace_out, note), file=sys.stderr)


def cmd_asm(args) -> int:
    prog = _load_program(args.file)
    if args.disasm:
        print(prog.disassemble())
    else:
        for i, word in enumerate(prog.words):
            print("%08x: %08x" % (prog.pc_of(i), word))
    print("; %d instructions, %d data words, entry 0x%x"
          % (len(prog.instrs), len(prog.data), prog.entry), file=sys.stderr)
    return 0


def cmd_run(args) -> int:
    prog = _load_program(args.file)
    sim = FunctionalSimulator(prog, engine=args.engine)
    n = sim.run(max_instructions=args.max_instructions)
    print("retired %d instructions" % n)
    for i in range(32):
        if sim.regs[i]:
            print("  %-4s = %10d  (0x%08x)"
                  % (REG_NAMES[i], sim.regs[i] - 0x100000000
                     if sim.regs[i] & 0x80000000 else sim.regs[i],
                     sim.regs[i]))
    return 0


def _build_asbr(prog, args) -> Optional[ASBRUnit]:
    if not args.asbr:
        return None
    profile = BranchProfiler().profile(prog)
    trace = collect_branch_trace(prog)
    accuracy = evaluate_on_trace(make_predictor(args.predictor), trace)
    selection = select_branches(profile, accuracy,
                                bit_capacity=args.bit_size,
                                bdt_update=args.bdt_update)
    print(selection.describe(), file=sys.stderr)
    return ASBRUnit.from_branch_infos(selection.infos,
                                      capacity=args.bit_size,
                                      bdt_update=args.bdt_update)


def cmd_sim(args) -> int:
    prog = _load_program(args.file)
    asbr = _build_asbr(prog, args)
    tracer = _make_cli_tracer(args)
    sim = PipelineSimulator(prog, predictor=make_predictor(args.predictor),
                            asbr=asbr, trace=tracer, engine=args.engine)
    stats = sim.run()
    _report_run(args, stats, asbr, tracer, prog)
    return 0


def cmd_profile(args) -> int:
    prog = _load_program(args.file)
    profile = BranchProfiler().profile(prog)
    trace = collect_branch_trace(prog)
    accuracy = evaluate_on_trace(make_predictor(args.predictor), trace)
    print("%d instructions, %d static branches, %d executions"
          % (profile.total_instructions, len(profile.branches),
             profile.total_branch_executions))
    print("%-12s %-10s %8s %6s %6s %9s %8s"
          % ("pc", "label", "exec", "taken", "acc",
             "min dist", "foldable"))
    for stats in profile.sorted_by_count():
        label = prog.label_at(stats.pc) or "-"
        dist = str(stats.min_distance) if stats.min_distance < 1 << 20 \
            else "inf"
        fold = "%.0f%%" % (100 * stats.fold_fraction(args.bdt_update)) \
            if stats.is_zero_comparison else "n/a"
        print("0x%-10x %-10s %8d %5.0f%% %5.0f%% %9s %8s"
              % (stats.pc, label, stats.count, 100 * stats.taken_rate,
                 100 * accuracy.pc_accuracy(stats.pc), dist, fold))
    return 0


def cmd_workload(args) -> int:
    from repro.workloads import get_workload, speech_like
    wl = get_workload(args.name)
    pcm = speech_like(args.samples, seed=args.seed)
    asbr = None
    if args.asbr:
        stream = wl.input_stream(pcm)
        count = wl.count_fn(pcm)
        profile = BranchProfiler().profile(
            wl.program, wl.build_memory(stream, count))
        selection = select_branches(profile, bit_capacity=args.bit_size,
                                    bdt_update=args.bdt_update)
        print(selection.describe(), file=sys.stderr)
        asbr = ASBRUnit.from_branch_infos(selection.infos,
                                          capacity=args.bit_size,
                                          bdt_update=args.bdt_update)
    tracer = _make_cli_tracer(args)
    result = wl.run_pipeline(pcm, predictor=make_predictor(args.predictor),
                             asbr=asbr, trace=tracer, engine=args.engine)
    ok = result.outputs == wl.golden_output(pcm)
    _report_run(args, result.stats, asbr, tracer, wl.program,
                extra={"workload": wl.name, "outputs_match_golden": ok})
    if not args.json:
        print("outputs match golden model: %s" % ok)
    return 0 if ok else 1


def cmd_trace(args) -> int:
    """Render a captured JSONL event stream (``--trace-out`` output)."""
    from repro.telemetry import (MetricsRegistry, read_jsonl,
                                 render_branch_report, render_counters,
                                 render_pipeview)
    from repro.telemetry.events import TRUNCATED
    events = read_jsonl(args.file)
    truncated = bool(events) and events[-1].kind == TRUNCATED
    if args.mode == "pipeview":
        print(render_pipeview(events, limit=args.limit, skip=args.skip,
                              max_cycles=args.max_cycles))
    else:
        registry = MetricsRegistry()
        for e in events:
            registry.emit(e)
        print(render_counters(registry))
        print()
        print(render_branch_report(registry))
    if truncated:
        print("note: trace was truncated at its byte bound; renders "
              "cover the recorded prefix only", file=sys.stderr)
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments import (ablations, dse_frontier, energy,
                                   fault_campaign, fig6, fig7, fig9,
                                   fig10, fig11, frontend_frontier,
                                   ooo_fold_sensitivity)
    from repro.experiments.common import ExperimentSetup
    cache_dir = None if args.no_cache else args.cache_dir
    setup = ExperimentSetup(n_samples=args.samples, workers=args.workers,
                            cache_dir=cache_dir, engine=args.engine)
    drivers = {
        "fig6": fig6.main, "fig7": fig7.main, "fig9": fig9.main,
        "fig10": fig10.main, "fig11": fig11.main,
        "ablations": ablations.main, "energy": energy.main,
        "dse_frontier": dse_frontier.main,
        "frontend_frontier": lambda s: frontend_frontier.main(
            s, quick=args.quick),
        "ooo_fold_sensitivity": lambda s: ooo_fold_sensitivity.main(
            s, quick=args.quick),
        "fault_campaign": fault_campaign.main,
    }
    names = list(drivers) if args.which == "all" else [args.which]
    for name in names:
        drivers[name](setup)
        print()
    cache = setup.result_cache()
    if cache is not None:
        print("run cache (%s): %d hits, %d misses, %d corrupt dropped"
              % (cache.root, cache.hits, cache.misses, cache.dropped),
              file=sys.stderr)
    return 0


def _dse_objectives(args):
    from repro.dse import DEFAULT_OBJECTIVES, validate_objectives
    if not getattr(args, "objectives", None):
        return DEFAULT_OBJECTIVES
    return validate_objectives(
        n.strip() for n in args.objectives.split(",") if n.strip())


def _dse_emit(args, results, objectives) -> None:
    """Shared tail of the ``dse`` subcommands: table/plot or export."""
    from repro.dse import (export_csv, export_json, frontier_of,
                           render_frontier_plot, render_results_table)
    if args.json:
        print(export_json(results, objectives))
        return
    if args.csv:
        print(export_csv(results, objectives), end="")
        return
    front = frontier_of(results, objectives)
    print(render_results_table(
        results, objectives,
        title="%d evaluated configurations, %d on the frontier"
              % (len(results), len(front))))
    print()
    print(render_frontier_plot(results, x=args.plot_x, y=args.plot_y,
                               objectives=objectives))


def cmd_dse_run(args) -> int:
    from repro.dse import Evaluator, Journal, get_space, make_search
    from repro.runner import ResultCache

    space = get_space(args.space)
    journal_path = args.journal or os.path.join(
        "results", "dse", "%s-n%d-s%d.jsonl"
        % (args.benchmark, args.samples, args.seed))
    if os.path.exists(journal_path) and not args.resume:
        print("journal %s already exists; pass --resume to continue it "
              "or remove it to start over" % journal_path,
              file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    objectives = _dse_objectives(args)
    search = make_search(args.search, n_points=args.n_points,
                         seed=args.seed)
    with Journal(journal_path).open({
            "space": space.digest(), "benchmark": args.benchmark,
            "n_samples": args.samples, "seed": args.seed}) as journal:
        evaluator = Evaluator(args.benchmark, args.samples, args.seed,
                              workers=args.workers, cache=cache,
                              journal=journal,
                              task_timeout=args.task_timeout,
                              retries=args.retries,
                              tolerant=args.tolerant,
                              engine=args.engine)
        results = search.run(evaluator, space)
    print("dse: %d points evaluated on %s (%d simulated, %d from "
          "journal) -> %s"
          % (len(results), args.benchmark, evaluator.simulated,
             evaluator.journal_hits, journal_path), file=sys.stderr)
    if evaluator.failed:
        print("dse: %d point(s) failed and were quarantined (journaled "
              "as failed; a --resume retries them)"
              % evaluator.failed, file=sys.stderr)
    _dse_emit(args, results, objectives)
    if args.expect_no_new and evaluator.simulated:
        print("--expect-no-new: %d evaluations were NOT served by the "
              "journal" % evaluator.simulated, file=sys.stderr)
        return 1
    return 0


def _load_journal_results(args):
    """Full-input EvalResults from a journal (no simulation)."""
    from repro.dse import Journal
    from repro.dse.engine import result_from_record
    journal = Journal(args.journal).load()
    if not journal.records and journal.meta is None:
        raise SystemExit("no journal at %s" % args.journal)
    n_full = journal.meta.get("n_samples") if journal.meta else None
    results = [result_from_record(rec) for rec in journal.evals(n_full)]
    return journal, results


def cmd_dse_frontier(args) -> int:
    from repro.dse import frontier_of
    objectives = _dse_objectives(args)
    _journal, results = _load_journal_results(args)
    front = frontier_of(results, objectives)
    _dse_emit(args, front, objectives)
    return 0


def cmd_dse_report(args) -> int:
    objectives = _dse_objectives(args)
    journal, results = _load_journal_results(args)
    meta = journal.meta or {}
    print("journal %s: %d evaluations (benchmark=%s, n_samples=%s, "
          "seed=%s, %d corrupt lines dropped)"
          % (args.journal, len(journal), meta.get("benchmark", "?"),
             meta.get("n_samples", "?"), meta.get("seed", "?"),
             journal.dropped))
    print()
    _dse_emit(args, results, objectives)
    return 0


def cmd_cache_gc(args) -> int:
    from repro.runner import ResultCache, parse_size
    cap = parse_size(args.max_bytes) if args.max_bytes is not None \
        else None
    result = ResultCache(args.cache_dir).gc(cap)
    print(result.render())
    return 0


def cmd_cache_verify(args) -> int:
    from repro.runner import ResultCache
    result = ResultCache(args.cache_dir).verify(prune=not args.keep)
    print(result.render())
    return 0


def cmd_serve(args) -> int:
    """Run the simulation service daemon until SIGINT/SIGTERM."""
    import asyncio
    import logging

    from repro.runner import parse_size
    from repro.serve import ServeConfig, run_server

    logging.basicConfig(
        level=logging.INFO, stream=sys.stderr,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    config = ServeConfig(
        host=args.host, port=args.port,
        cache_dir=None if args.no_cache else args.cache_dir,
        shards=args.shards,
        max_bytes=parse_size(args.max_bytes)
        if args.max_bytes is not None else None,
        workers=args.workers, task_timeout=args.task_timeout,
        retries=args.retries,
        state_dir=args.state_dir,
        max_active_jobs=args.max_active_jobs,
        max_queued_jobs=args.max_queued_jobs,
        max_inflight_runs=args.max_inflight,
        retry_after=args.retry_after)
    asyncio.run(run_server(config))
    return 0


def cmd_faults_campaign(args) -> int:
    from repro.faults import (CampaignConfig, matrix_to_json,
                              render_matrix, render_report,
                              report_to_json, run_campaign,
                              run_protection_matrix)
    cfg = CampaignConfig(benchmark=args.benchmark,
                         n_samples=args.samples, seed=args.seed,
                         predictor_spec=args.predictor,
                         bit_capacity=args.bit_size,
                         bdt_update=args.bdt_update,
                         protection=args.protection
                         if args.protection != "all" else "none",
                         n_faults=args.n_faults,
                         fault_seed=args.fault_seed,
                         live_only=not args.all_sites)
    if args.protection == "all":
        reports = run_protection_matrix(cfg, batch=args.batch)
        text = matrix_to_json(reports) if args.json \
            else render_matrix(reports)
    else:
        report = run_campaign(cfg, batch=args.batch)
        text = report_to_json(report) if args.json \
            else render_report(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text if text.endswith("\n") else text + "\n")
        print("wrote %s" % args.out, file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_faults_report(args) -> int:
    from repro.faults import render_matrix, render_report, \
        reports_from_json
    with open(args.file) as f:
        reports = reports_from_json(f.read())
    if len(reports) == 1:
        (report,) = reports.values()
        print(render_report(report))
    else:
        print(render_matrix(reports))
    return 0


def _add_engine_option(p) -> None:
    p.add_argument("--engine", default="interp",
                   choices=("interp", "blocks", "superblocks"),
                   help="execution engine: interpreted fast path, the "
                        "block-compiled translation cache, or the "
                        "fold-specialized superblock loop "
                        "(all bit-identical; compiled engines fall "
                        "back to interp when tracing/fault hooks are "
                        "attached)")


def _add_sim_options(p) -> None:
    p.add_argument("--predictor", default="bimodal-2048",
                   help="predictor spec (e.g. not-taken, bimodal-512-512, "
                        "gshare-2048-11)")
    p.add_argument("--asbr", action="store_true",
                   help="profile, select and fold branches with ASBR")
    p.add_argument("--bit-size", type=int, default=16,
                   help="BIT capacity (default 16)")
    p.add_argument("--bdt-update", default="execute",
                   choices=("commit", "mem", "execute"),
                   help="early-condition forwarding path")
    p.add_argument("--trace-out", metavar="FILE",
                   help="stream telemetry events to a bounded JSONL "
                        "trace (render with 'trace pipeview/report')")
    p.add_argument("--branch-report", action="store_true",
                   help="print the per-branch-PC telemetry table "
                        "after the run")
    p.add_argument("--json", action="store_true",
                   help="emit stats (and telemetry tables when "
                        "enabled) as JSON on stdout")
    _add_engine_option(p)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-asbr",
        description="ASBR toolchain (Petrov & Orailoglu, DAC 2001 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("asm", help="assemble a program")
    p.add_argument("file")
    p.add_argument("--disasm", action="store_true",
                   help="print disassembly instead of hex words")
    p.set_defaults(fn=cmd_asm)

    p = sub.add_parser("run", help="functional (golden) simulation")
    p.add_argument("file")
    p.add_argument("--max-instructions", type=int, default=100_000_000)
    _add_engine_option(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("sim", help="cycle-accurate pipeline simulation")
    p.add_argument("file")
    _add_sim_options(p)
    p.set_defaults(fn=cmd_sim)

    p = sub.add_parser("profile", help="branch profile and foldability")
    p.add_argument("file")
    p.add_argument("--predictor", default="bimodal-2048")
    p.add_argument("--bdt-update", default="execute",
                   choices=("commit", "mem", "execute"))
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("workload", help="run a built-in benchmark")
    p.add_argument("name", help="adpcm_enc, adpcm_dec, g721_enc, "
                                "g721_dec, huffman_dec, ...")
    p.add_argument("--samples", type=int, default=1000)
    p.add_argument("--seed", type=int, default=20010618)
    _add_sim_options(p)
    p.set_defaults(fn=cmd_workload)

    p = sub.add_parser("trace", help="render a captured JSONL trace")
    p.add_argument("mode", choices=("pipeview", "report"),
                   help="pipeview: ASCII pipeline timeline; report: "
                        "counters + per-branch table")
    p.add_argument("file", help="JSONL trace from sim --trace-out")
    p.add_argument("--limit", type=int, default=64,
                   help="pipeview: instructions to show (default 64)")
    p.add_argument("--skip", type=int, default=0,
                   help="pipeview: instructions to skip first")
    p.add_argument("--max-cycles", type=int, default=200,
                   help="pipeview: clip the cycle axis (default 200)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("experiments", help="regenerate paper tables")
    p.add_argument("which", choices=("fig6", "fig7", "fig9", "fig10",
                                     "fig11", "ablations", "energy",
                                     "dse_frontier", "frontend_frontier",
                                     "ooo_fold_sensitivity",
                                     "fault_campaign", "all"))
    p.add_argument("--samples", type=int, default=600)
    p.add_argument("--quick", action="store_true",
                   help="frontend_frontier / ooo_fold_sensitivity: "
                        "shrink the sweep to the verdict-bearing corner "
                        "(the CI smoke mode)")
    p.add_argument("--workers", type=int,
                   default=int(os.environ.get("REPRO_WORKERS", "0")),
                   help="simulate independent configurations on N "
                        "processes (0/1 = inline; results identical)")
    p.add_argument("--cache-dir",
                   default=os.environ.get("REPRO_CACHE_DIR",
                                          "results/.runcache"),
                   help="on-disk result cache location (content-"
                        "addressed; safe to delete at any time)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result cache")
    _add_engine_option(p)
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser("dse", help="design-space exploration "
                                   "(repro.dse)")
    dse_sub = p.add_subparsers(dest="dse_command", required=True)

    def _add_dse_output_options(sp) -> None:
        sp.add_argument("--objectives",
                        help="comma-separated objective list (default "
                             "speedup,table_bits,energy)")
        sp.add_argument("--json", action="store_true",
                        help="emit points + frontier as JSON")
        sp.add_argument("--csv", action="store_true",
                        help="emit points + frontier as CSV")
        sp.add_argument("--plot-x", default="table_bits",
                        help="x objective of the ASCII frontier plot")
        sp.add_argument("--plot-y", default="speedup",
                        help="y objective of the ASCII frontier plot")

    sp = dse_sub.add_parser("run", help="evaluate a configuration "
                                        "space (resumable)")
    sp.add_argument("--space", default="paper",
                    help="preset name (paper, default) or a JSON "
                         "space file")
    sp.add_argument("--benchmark", default="adpcm_enc",
                    help="workload to characterise (default adpcm_enc)")
    sp.add_argument("--samples", type=int, default=600,
                    help="full input length (default 600)")
    sp.add_argument("--seed", type=int, default=20010618,
                    help="one seed for inputs AND random search — a "
                         "rerun with the same seed is bit-identical")
    sp.add_argument("--search", default="grid",
                    choices=("grid", "random", "halving"),
                    help="search driver (default grid)")
    sp.add_argument("--n-points", type=int, default=8,
                    help="random search: points to draw")
    sp.add_argument("--workers", type=int,
                    default=int(os.environ.get("REPRO_WORKERS", "0")),
                    help="parallel simulations (0/1 = inline)")
    sp.add_argument("--journal",
                    help="JSONL journal path (default results/dse/"
                         "<benchmark>-n<samples>-s<seed>.jsonl)")
    sp.add_argument("--resume", action="store_true",
                    help="continue an existing journal, skipping every "
                         "recorded evaluation")
    sp.add_argument("--expect-no-new", action="store_true",
                    help="fail if any evaluation was not served by the "
                         "journal (CI resume check)")
    sp.add_argument("--cache-dir",
                    default=os.environ.get("REPRO_CACHE_DIR",
                                           "results/.runcache"),
                    help="on-disk run-result cache location")
    sp.add_argument("--no-cache", action="store_true",
                    help="disable the on-disk run-result cache")
    sp.add_argument("--task-timeout", type=float,
                    help="seconds a pooled run may go silent before "
                         "it is retried (crash/hang detector)")
    sp.add_argument("--retries", type=int, default=0,
                    help="retries per failed/timed-out run "
                         "(exponential backoff)")
    sp.add_argument("--tolerant", action="store_true",
                    help="quarantine failing points (journaled as "
                         "failed, retried on --resume) instead of "
                         "aborting the exploration")
    _add_engine_option(sp)
    _add_dse_output_options(sp)
    sp.set_defaults(fn=cmd_dse_run)

    sp = dse_sub.add_parser("frontier", help="Pareto frontier of a "
                                             "recorded journal")
    sp.add_argument("--journal", required=True)
    _add_dse_output_options(sp)
    sp.set_defaults(fn=cmd_dse_frontier)

    sp = dse_sub.add_parser("report", help="full table + plot of a "
                                           "recorded journal")
    sp.add_argument("--journal", required=True)
    _add_dse_output_options(sp)
    sp.set_defaults(fn=cmd_dse_report)

    p = sub.add_parser("faults", help="soft-error injection campaigns "
                                      "(repro.faults)")
    faults_sub = p.add_subparsers(dest="faults_command", required=True)
    sp = faults_sub.add_parser("campaign",
                               help="run a seeded injection campaign "
                                    "(deterministic: same flags -> "
                                    "byte-identical report)")
    sp.add_argument("--benchmark", default="adpcm_enc")
    sp.add_argument("--samples", type=int, default=600)
    sp.add_argument("--seed", type=int, default=20010618,
                    help="input seed (the campaign plan has its own "
                         "--fault-seed)")
    sp.add_argument("--predictor", default="bimodal-512-512")
    sp.add_argument("--bit-size", type=int, default=16)
    sp.add_argument("--bdt-update", default="execute",
                    choices=("commit", "mem", "execute"))
    sp.add_argument("--protection", default="all",
                    choices=("none", "parity", "ecc", "all"),
                    help="detection/recovery model ('all' runs the "
                         "same plan under every model)")
    sp.add_argument("--n-faults", type=int, default=24,
                    help="injections per campaign (stratified across "
                         "structures)")
    sp.add_argument("--fault-seed", type=int, default=1,
                    help="seed of the (site, cycle) plan")
    sp.add_argument("--all-sites", action="store_true",
                    help="target every enumerable bit, not just BDT "
                         "state that live BIT entries read")
    sp.add_argument("--batch", default="auto",
                    choices=("auto", "on", "off"),
                    help="collapse the campaign into one batched "
                         "replay when the protection model permits "
                         "(read-transparent ecc faults compose on a "
                         "single run); per-site fallback otherwise. "
                         "Classifications are identical either way")
    sp.add_argument("--json", action="store_true",
                    help="emit the canonical JSON report")
    sp.add_argument("--out", metavar="FILE",
                    help="write the report to FILE instead of stdout")
    sp.set_defaults(fn=cmd_faults_campaign)

    sp = faults_sub.add_parser("report", help="render a saved campaign "
                                              "JSON report")
    sp.add_argument("file", help="JSON from 'faults campaign --json'")
    sp.set_defaults(fn=cmd_faults_report)

    p = sub.add_parser("cache", help="manage the on-disk result cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    sp = cache_sub.add_parser("gc", help="LRU-by-mtime garbage "
                                         "collection")
    sp.add_argument("--cache-dir",
                    default=os.environ.get("REPRO_CACHE_DIR",
                                           "results/.runcache"))
    sp.add_argument("--max-bytes",
                    help="size cap, e.g. 4096, 64M, 2G (omit to only "
                         "measure)")
    sp.set_defaults(fn=cmd_cache_gc)
    sp = cache_sub.add_parser("verify",
                              help="scan entries: parse, version and "
                                   "payload-checksum checks; prunes "
                                   "bad entries unless --keep")
    sp.add_argument("--cache-dir",
                    default=os.environ.get("REPRO_CACHE_DIR",
                                           "results/.runcache"))
    sp.add_argument("--keep", action="store_true",
                    help="report only; do not delete bad entries")
    sp.set_defaults(fn=cmd_cache_verify)

    p = sub.add_parser("serve", help="simulation-as-a-service daemon "
                                     "(repro.serve)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 = ephemeral; the bound port is "
                        "logged on startup)")
    p.add_argument("--workers", type=int,
                   default=int(os.environ.get("REPRO_WORKERS", "0")),
                   help="pool size for sweep/DSE jobs (0/1 = inline)")
    p.add_argument("--cache-dir",
                   default=os.environ.get("REPRO_CACHE_DIR",
                                          "results/.servecache"),
                   help="sharded on-disk result cache location")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without a disk cache (memory only)")
    p.add_argument("--shards", type=int, default=256,
                   choices=(0, 16, 256, 4096),
                   help="cache shard count (hex-prefix directories; "
                        "0 = flat legacy layout)")
    p.add_argument("--max-bytes",
                   help="cache size cap, e.g. 64M (LRU gc on write)")
    p.add_argument("--task-timeout", type=float, default=60.0,
                   help="seconds a pooled run may go silent before it "
                        "is failed/retried (crash detector)")
    p.add_argument("--retries", type=int, default=0,
                   help="retries per failed/timed-out run")
    p.add_argument("--state-dir", default=None,
                   help="job WAL directory; restart on the same dir "
                        "replays every job's journal and resumes "
                        "unfinished work (omit = in-memory jobs)")
    p.add_argument("--max-active-jobs", type=int, default=4,
                   help="sweep/DSE jobs executing concurrently")
    p.add_argument("--max-queued-jobs", type=int, default=16,
                   help="jobs waiting beyond the active bound before "
                        "submissions shed with 429")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="distinct uncached /run executions in flight "
                        "before submissions shed with 429")
    p.add_argument("--retry-after", type=float, default=1.0,
                   help="Retry-After hint (seconds) on 429/503")
    p.set_defaults(fn=cmd_serve)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
