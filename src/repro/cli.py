"""Command-line toolchain: assemble, simulate, profile, customize.

Usage (also installed as the ``repro-asbr`` console script)::

    python -m repro.cli asm program.s --disasm
    python -m repro.cli run program.s
    python -m repro.cli sim program.s --predictor bimodal-512-512
    python -m repro.cli sim program.s --asbr --bdt-update execute
    python -m repro.cli profile program.s
    python -m repro.cli workload adpcm_enc --samples 1000 --asbr
    python -m repro.cli experiments fig11 --samples 600
    python -m repro.cli experiments all --workers 4

``sim --asbr`` performs the paper's whole methodology on the program:
profile it, select fold candidates, load the BIT, and re-simulate.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.asbr import ASBRUnit
from repro.asm import assemble
from repro.isa.registers import REG_NAMES
from repro.predictors import evaluate_on_trace, make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.sim.functional import FunctionalSimulator, collect_branch_trace
from repro.sim.pipeline import PipelineSimulator


def _load_program(path: str):
    with open(path) as f:
        return assemble(f.read())


def _print_stats(stats, asbr: Optional[ASBRUnit] = None) -> None:
    print("cycles              %12d" % stats.cycles)
    print("instructions        %12d   (CPI %.3f)"
          % (stats.committed, stats.cpi))
    print("fetched / squashed  %12d / %d" % (stats.fetched, stats.squashed))
    print("branches            %12d   (%d mispredicted, accuracy %.1f%%)"
          % (stats.branches, stats.branch_mispredicts,
             100 * stats.branch_accuracy))
    print("load-use stalls     %12d" % stats.load_use_stalls)
    print("icache/dcache stall %12d / %d"
          % (stats.icache_miss_stalls, stats.dcache_miss_stalls))
    if asbr is not None:
        print("branches folded     %12d   (%d taken / %d not-taken, "
              "%d invalid fallbacks)"
              % (stats.folds_committed, asbr.stats.folded_taken,
                 asbr.stats.folded_not_taken,
                 asbr.stats.invalid_fallbacks))
        print("ASBR state          %12d bits" % asbr.state_bits)


def cmd_asm(args) -> int:
    prog = _load_program(args.file)
    if args.disasm:
        print(prog.disassemble())
    else:
        for i, word in enumerate(prog.words):
            print("%08x: %08x" % (prog.pc_of(i), word))
    print("; %d instructions, %d data words, entry 0x%x"
          % (len(prog.instrs), len(prog.data), prog.entry), file=sys.stderr)
    return 0


def cmd_run(args) -> int:
    prog = _load_program(args.file)
    sim = FunctionalSimulator(prog)
    n = sim.run(max_instructions=args.max_instructions)
    print("retired %d instructions" % n)
    for i in range(32):
        if sim.regs[i]:
            print("  %-4s = %10d  (0x%08x)"
                  % (REG_NAMES[i], sim.regs[i] - 0x100000000
                     if sim.regs[i] & 0x80000000 else sim.regs[i],
                     sim.regs[i]))
    return 0


def _build_asbr(prog, args) -> Optional[ASBRUnit]:
    if not args.asbr:
        return None
    profile = BranchProfiler().profile(prog)
    trace = collect_branch_trace(prog)
    accuracy = evaluate_on_trace(make_predictor(args.predictor), trace)
    selection = select_branches(profile, accuracy,
                                bit_capacity=args.bit_size,
                                bdt_update=args.bdt_update)
    print(selection.describe(), file=sys.stderr)
    return ASBRUnit.from_branch_infos(selection.infos,
                                      capacity=args.bit_size,
                                      bdt_update=args.bdt_update)


def cmd_sim(args) -> int:
    prog = _load_program(args.file)
    asbr = _build_asbr(prog, args)
    sim = PipelineSimulator(prog, predictor=make_predictor(args.predictor),
                            asbr=asbr)
    stats = sim.run()
    _print_stats(stats, asbr)
    return 0


def cmd_profile(args) -> int:
    prog = _load_program(args.file)
    profile = BranchProfiler().profile(prog)
    trace = collect_branch_trace(prog)
    accuracy = evaluate_on_trace(make_predictor(args.predictor), trace)
    print("%d instructions, %d static branches, %d executions"
          % (profile.total_instructions, len(profile.branches),
             profile.total_branch_executions))
    print("%-12s %-10s %8s %6s %6s %9s %8s"
          % ("pc", "label", "exec", "taken", "acc",
             "min dist", "foldable"))
    for stats in profile.sorted_by_count():
        label = prog.label_at(stats.pc) or "-"
        dist = str(stats.min_distance) if stats.min_distance < 1 << 20 \
            else "inf"
        fold = "%.0f%%" % (100 * stats.fold_fraction(args.bdt_update)) \
            if stats.is_zero_comparison else "n/a"
        print("0x%-10x %-10s %8d %5.0f%% %5.0f%% %9s %8s"
              % (stats.pc, label, stats.count, 100 * stats.taken_rate,
                 100 * accuracy.pc_accuracy(stats.pc), dist, fold))
    return 0


def cmd_workload(args) -> int:
    from repro.workloads import get_workload, speech_like
    wl = get_workload(args.name)
    pcm = speech_like(args.samples, seed=args.seed)
    asbr = None
    if args.asbr:
        stream = wl.input_stream(pcm)
        count = wl.count_fn(pcm)
        profile = BranchProfiler().profile(
            wl.program, wl.build_memory(stream, count))
        selection = select_branches(profile, bit_capacity=args.bit_size,
                                    bdt_update=args.bdt_update)
        print(selection.describe(), file=sys.stderr)
        asbr = ASBRUnit.from_branch_infos(selection.infos,
                                          capacity=args.bit_size,
                                          bdt_update=args.bdt_update)
    result = wl.run_pipeline(pcm, predictor=make_predictor(args.predictor),
                             asbr=asbr)
    ok = result.outputs == wl.golden_output(pcm)
    _print_stats(result.stats, asbr)
    print("outputs match golden model: %s" % ok)
    return 0 if ok else 1


def cmd_experiments(args) -> int:
    from repro.experiments import (ablations, energy, fig6, fig7, fig9,
                                   fig10, fig11)
    from repro.experiments.common import ExperimentSetup
    cache_dir = None if args.no_cache else args.cache_dir
    setup = ExperimentSetup(n_samples=args.samples, workers=args.workers,
                            cache_dir=cache_dir)
    drivers = {
        "fig6": fig6.main, "fig7": fig7.main, "fig9": fig9.main,
        "fig10": fig10.main, "fig11": fig11.main,
        "ablations": ablations.main, "energy": energy.main,
    }
    names = list(drivers) if args.which == "all" else [args.which]
    for name in names:
        drivers[name](setup)
        print()
    cache = setup.result_cache()
    if cache is not None:
        print("run cache (%s): %d hits, %d misses, %d corrupt dropped"
              % (cache.root, cache.hits, cache.misses, cache.dropped),
              file=sys.stderr)
    return 0


def _add_sim_options(p) -> None:
    p.add_argument("--predictor", default="bimodal-2048",
                   help="predictor spec (e.g. not-taken, bimodal-512-512, "
                        "gshare-2048-11)")
    p.add_argument("--asbr", action="store_true",
                   help="profile, select and fold branches with ASBR")
    p.add_argument("--bit-size", type=int, default=16,
                   help="BIT capacity (default 16)")
    p.add_argument("--bdt-update", default="execute",
                   choices=("commit", "mem", "execute"),
                   help="early-condition forwarding path")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-asbr",
        description="ASBR toolchain (Petrov & Orailoglu, DAC 2001 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("asm", help="assemble a program")
    p.add_argument("file")
    p.add_argument("--disasm", action="store_true",
                   help="print disassembly instead of hex words")
    p.set_defaults(fn=cmd_asm)

    p = sub.add_parser("run", help="functional (golden) simulation")
    p.add_argument("file")
    p.add_argument("--max-instructions", type=int, default=100_000_000)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("sim", help="cycle-accurate pipeline simulation")
    p.add_argument("file")
    _add_sim_options(p)
    p.set_defaults(fn=cmd_sim)

    p = sub.add_parser("profile", help="branch profile and foldability")
    p.add_argument("file")
    p.add_argument("--predictor", default="bimodal-2048")
    p.add_argument("--bdt-update", default="execute",
                   choices=("commit", "mem", "execute"))
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("workload", help="run a built-in benchmark")
    p.add_argument("name", help="adpcm_enc, adpcm_dec, g721_enc, "
                                "g721_dec, huffman_dec, ...")
    p.add_argument("--samples", type=int, default=1000)
    p.add_argument("--seed", type=int, default=20010618)
    _add_sim_options(p)
    p.set_defaults(fn=cmd_workload)

    p = sub.add_parser("experiments", help="regenerate paper tables")
    p.add_argument("which", choices=("fig6", "fig7", "fig9", "fig10",
                                     "fig11", "ablations", "energy",
                                     "all"))
    p.add_argument("--samples", type=int, default=600)
    p.add_argument("--workers", type=int,
                   default=int(os.environ.get("REPRO_WORKERS", "0")),
                   help="simulate independent configurations on N "
                        "processes (0/1 = inline; results identical)")
    p.add_argument("--cache-dir",
                   default=os.environ.get("REPRO_CACHE_DIR",
                                          "results/.runcache"),
                   help="on-disk result cache location (content-"
                        "addressed; safe to delete at any time)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result cache")
    p.set_defaults(fn=cmd_experiments)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
