"""Shared write-ahead-log helpers: fsync'd append-only JSONL files.

Two subsystems persist progress as one-JSON-object-per-line files with
identical durability semantics — the DSE journal
(:mod:`repro.dse.journal`, since PR 3) and the serve daemon's job
store (:mod:`repro.serve.jobs`).  This leaf module is the extraction
of the file-level mechanics they share, so the crash-safety argument
lives (and is tested) in exactly one place:

* **Append is durable.**  Every record is serialised, written, flushed
  and ``fsync``'d before :meth:`JsonlWal.append` returns.  A record
  the caller saw appended survives any subsequent crash of the
  process or the machine (modulo the disk honouring fsync).
* **A torn tail is dropped, never parsed.**  A writer killed
  mid-record leaves a final line without a trailing newline;
  :func:`load_jsonl` drops it (counting it) instead of guessing, so a
  replayed log contains only records that were completely written.
* **A torn tail is repaired before appending.**  Re-opening for
  append first truncates the file back to the last complete line
  (:func:`repair_tail`), so a new record can never concatenate onto a
  crashed writer's half-record and corrupt *two* records.

The unit of recovery is therefore exactly one record: a crash costs at
most the single record that was mid-write, and everything before it
replays verbatim.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple


def load_jsonl(path: str) -> Tuple[List[dict], int]:
    """Tolerantly read a JSONL file into ``(records, dropped)``.

    ``dropped`` counts lines that could not be decoded as a JSON
    object — including a torn final line with no trailing newline (a
    crashed writer) even when its bytes happen to parse, because a
    record is only *committed* once its newline is on disk.  A missing
    file is simply an empty log.
    """
    try:
        with open(path) as f:
            raw = f.read()
    except FileNotFoundError:
        return [], 0
    records: List[dict] = []
    dropped = 0
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    elif lines:
        # no trailing newline: the writer died mid-record
        dropped += 1
        lines.pop()
    for line in lines:
        try:
            rec = json.loads(line)
        except ValueError:
            dropped += 1
            continue
        if not isinstance(rec, dict):
            dropped += 1
            continue
        records.append(rec)
    return records, dropped


def repair_tail(path: str) -> bool:
    """Truncate a half-written final record off ``path``.

    Returns True when bytes were chopped.  Idempotent; a missing file
    or a clean tail is a no-op.
    """
    try:
        with open(path, "rb+") as f:
            data = f.read()
            if data and not data.endswith(b"\n"):
                f.truncate(data.rfind(b"\n") + 1)
                return True
    except FileNotFoundError:
        pass
    return False


class JsonlWal:
    """One append-only fsync'd JSONL file.

    Use :func:`load_jsonl` (or :meth:`load`) to replay, :meth:`open`
    to begin appending (repairing any torn tail first), and
    :meth:`append` per record.  Callers own record *semantics* (kinds,
    keys, dedup); this class owns durability only.
    """

    def __init__(self, path: str, sort_keys: bool = True) -> None:
        self.path = path
        self.sort_keys = sort_keys
        self.dropped = 0              # torn/corrupt lines seen by load()
        self.appended = 0             # records written by this handle
        self._fh = None

    # -- reading -------------------------------------------------------
    def load(self) -> List[dict]:
        records, self.dropped = load_jsonl(self.path)
        return records

    # -- writing -------------------------------------------------------
    def open(self) -> "JsonlWal":
        """Open for appending; repairs a torn tail, creates parents."""
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        repair_tail(self.path)
        self._fh = open(self.path, "a")
        return self

    @property
    def is_open(self) -> bool:
        return self._fh is not None

    def append(self, record: dict) -> dict:
        """Durably append one record (write + flush + fsync)."""
        if self._fh is None:
            raise RuntimeError("WAL %s not open for writing" % self.path)
        self._fh.write(json.dumps(record, sort_keys=self.sort_keys)
                       + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def wal_size(path: str) -> Optional[int]:
    """Size of a WAL file in bytes, or None when absent (introspection
    for stats endpoints and tests)."""
    try:
        return os.path.getsize(path)
    except OSError:
        return None
