"""Event sinks: in-memory ring buffer and bounded JSONL trace files.

A *sink* is anything with an ``emit(event)`` method (and optionally
``close()``).  The :class:`~repro.telemetry.tracer.Tracer` fans every
event out to its sinks; the :class:`~repro.telemetry.metrics.
MetricsRegistry` is itself a sink.
"""

from __future__ import annotations

from collections import deque
from typing import IO, Iterator, List, Optional

from repro.telemetry.events import TRUNCATED, TraceEvent


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory.

    ``capacity=None`` keeps everything — convenient for tests and for
    rendering a pipeview of a short run; bound it for long simulations.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.emitted = 0          # total seen, including evicted

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.emitted += 1

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def evicted(self) -> int:
        return self.emitted - len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


class CallbackSink:
    """Forwards every event to a callable — the streaming primitive.

    ``CallbackSink(fn)`` turns any consumer (a queue feeding an HTTP
    chunked response in :mod:`repro.serve`, a live dashboard, a test
    probe) into a sink without subclassing.  Errors raised by the
    callback are counted and swallowed: a slow or broken consumer must
    never perturb the simulation it is watching.
    """

    def __init__(self, fn) -> None:
        self.fn = fn
        self.forwarded = 0
        self.errors = 0

    def emit(self, event: TraceEvent) -> None:
        try:
            self.fn(event)
        except Exception:
            self.errors += 1
            return
        self.forwarded += 1


class JsonlTraceSink:
    """Streams events to a JSON-lines file with a hard size bound.

    Once ``max_bytes`` of event lines have been written the sink stops
    recording (the simulation itself is unaffected) and counts what it
    dropped; :meth:`close` then appends one ``truncated`` sentinel event
    so readers can tell a bounded trace from a complete one.  The bound
    is what makes ``--trace-out`` safe on multi-million-cycle runs.
    """

    def __init__(self, path: str, max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.path = path
        self.max_bytes = max_bytes
        self.written = 0          # events recorded
        self.bytes_written = 0
        self.dropped = 0          # events lost to the size bound
        self._fh: Optional[IO[str]] = open(path, "w")

    def emit(self, event: TraceEvent) -> None:
        fh = self._fh
        if fh is None:
            raise ValueError("emit() on a closed JsonlTraceSink")
        if self.bytes_written >= self.max_bytes:
            self.dropped += 1
            return
        line = event.to_json()
        fh.write(line)
        fh.write("\n")
        self.written += 1
        self.bytes_written += len(line) + 1

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def close(self) -> None:
        fh = self._fh
        if fh is None:
            return
        if self.dropped:
            marker = TraceEvent(0, TRUNCATED,
                                data={"dropped": self.dropped,
                                      "max_bytes": self.max_bytes})
            fh.write(marker.to_json())
            fh.write("\n")
        fh.close()
        self._fh = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` objects.

    The ``truncated`` sentinel (if any) is returned too — callers that
    care about completeness check ``events[-1].kind``; the renderers
    simply ignore kinds they do not know.
    """
    events: List[TraceEvent] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_json(line))
    return events
