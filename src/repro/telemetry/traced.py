"""Instrumented pipeline fast path: the event hook layer.

Zero-overhead design
--------------------
``PipelineSimulator.tick`` runs ~0.5M times per simulated second, so a
per-site ``if trace is not None`` check inside it would cost several
percent even when tracing is off.  Instead the hook check happens
*once, at construction*: ``PipelineSimulator(..., trace=tracer)`` calls
:func:`attach`, which rebinds ``tick``/``_start_fetch``/``_squash``/
``_redirect`` on that one instance to the traced twins below.  With no
tracer the base methods are untouched — the disabled path is the PR 1
fast path, byte for byte.

The twins are line-for-line copies of the base methods with event
emissions inserted (marked ``# [trace]``).  Their timing and statistics
must stay bit-identical to the base implementation —
``tests/test_telemetry.py::TestTracedEquivalence`` locks traced-vs-base
``PipelineStats`` equality across predictors, ASBR and unconditional
folding, on top of the golden-stats lock.

Branch events are reconstructed *after* the EX handler runs: the
handler mutates no architectural state the condition reads (registers
and the forwarding slot are unchanged within the cycle), so re-evaluating
the condition gives exactly the direction the handler used, and the
mispredict flag falls out of the stats delta.
"""

from __future__ import annotations

from types import MethodType
from typing import Optional

from repro.sim.pipeline import _Slot
from repro.telemetry.events import (
    BDT_UPDATE,
    BRANCH,
    COMMIT,
    DECODE,
    FETCH,
    FOLD_HIT,
    FOLD_MISS,
    ISSUE,
    NO_DATA,
    REDIRECT,
    SQUASH,
    TraceEvent,
)


def attach(sim, tracer) -> None:
    """Bind the traced twins onto ``sim`` (one instance, not the class)."""
    sim.trace = tracer
    sim._emit = tracer.emit
    sim.tick = MethodType(_tick_traced, sim)
    sim._start_fetch = MethodType(_start_fetch_traced, sim)
    sim._squash = MethodType(_squash_traced, sim)
    sim._redirect = MethodType(_redirect_traced, sim)
    fe = getattr(sim, "frontend", None)
    if fe is not None:
        # the decoupled front end guards its emit sites itself (it only
        # exists in opted-in runs); no method rebinding needed there
        fe._emit = tracer.emit


# ======================================================================
# traced twins (copies of repro.sim.pipeline with [trace] insertions)
# ======================================================================
def _tick_traced(self) -> None:
    """One clock cycle, emitting lifecycle events (see base ``tick``)."""
    stats = self.stats
    stats.cycles += 1
    self._suppress_fetch = False
    asbr = self.asbr
    pending = self._pending_releases
    emit = self._emit                                      # [trace]
    cycle = stats.cycles                                   # [trace]

    # ---- WB: commit -------------------------------------------------
    wb = self.s_wb
    if wb is not None:
        d = wb.d
        dest = d.dest
        if dest is not None and dest != 0:
            self._reglist[dest] = wb.result & 0xFFFFFFFF
            if wb.acquired_reg is not None and self._bdt_commit:
                pending.append((dest, wb.result))
        if wb.folded:
            stats.folds_committed += 1
        if wb.uncond_folded:
            stats.uncond_folds_committed += 1
        stats.committed += 1
        if wb.folded:                                      # [trace]
            emit(TraceEvent(cycle, COMMIT, wb.pc, wb.seq,
                            {"fold_pc": wb.fold_pc,
                             "fold_taken": wb.fold_taken}))
        elif wb.uncond_folded:                             # [trace]
            emit(TraceEvent(cycle, COMMIT, wb.pc, wb.seq,
                            {"uncond_fold": True}))
        else:                                              # [trace]
            emit(TraceEvent(cycle, COMMIT, wb.pc, wb.seq))
        self.s_wb = None
        if d.is_halt:
            self.halted = True
            return
        if d.is_ctl and asbr is not None:
            asbr.control_write(d.imm)

    # ---- MEM: first-cycle work --------------------------------------
    mem = self.s_mem
    if mem is not None and not mem.mem_done:
        self._mem_work(mem)

    # ---- EX: first-cycle work (may squash and redirect) -------------
    ex = self.s_ex
    if ex is not None and not ex.ex_done:
        ex.ex_done = True
        d = ex.d
        dest = d.dest                                      # [trace]
        emit(TraceEvent(cycle, ISSUE, ex.pc, ex.seq,       # [trace]
                        {"dest": dest} if dest else NO_DATA))
        if d.is_branch:                                    # [trace]
            pre_misp = stats.branch_mispredicts
            d.ex(self, ex, d)
            if d.cond is not None:
                taken = d.cond(self._operand(d.rs))
            else:
                taken = ((self._operand(d.rs) == self._operand(d.rt))
                         == d.eq_sense)
            emit(TraceEvent(cycle, BRANCH, ex.pc, ex.seq, {
                "taken": taken,
                "target": d.br_target if taken else d.pc4,
                "pred": ex.pred_next_pc,
                "misp": stats.branch_mispredicts > pre_misp,
                "srcs": list(d.srcs),
            }))
        else:
            d.ex(self, ex, d)

    # ---- ID: first-cycle work (jump redirect, BDT acquire) ----------
    did = self.s_id
    if did is not None and not did.id_done:
        did.id_done = True
        d = did.d
        emit(TraceEvent(cycle, DECODE, did.pc, did.seq))   # [trace]
        if asbr is not None:
            dest = d.dest
            if dest is not None and dest != 0:
                asbr.producer_decoded(dest)
                did.acquired_reg = dest
        if d.is_halt:
            self._fetch_halted = True
        elif d.is_jump:
            fe = self.frontend
            if fe is not None and did.pred_next_pc == d.jump_target:
                fe.stats.jumps_steered += 1
            else:
                self._squash(self.s_if)
                self.s_if = None
                self.if_wait = 0
                self.fetch_pc = d.jump_target
                self._suppress_fetch = True
                stats.jump_bubbles += 1
                if fe is not None:
                    fe.jump_resolved(did.pc, d.jump_target)
                emit(TraceEvent(cycle, REDIRECT, d.jump_target,  # [trace]
                                data={"why": "jump"}))

    # ---- IF: start a new fetch --------------------------------------
    fe = self.frontend
    if fe is not None:
        fe.begin_cycle()
        if (self.s_if is None and not self._suppress_fetch
                and not self._fetch_halted):
            self._frontend_fetch(fe)
    elif (self.s_if is None and not self._suppress_fetch
            and not self._fetch_halted):
        self._start_fetch()

    # ---- end of cycle: advance latches downstream-first -------------
    # MEM -> WB
    if mem is not None and mem.mem_done:
        if mem.mem_wait > 0:
            mem.mem_wait -= 1
        else:
            if (mem.acquired_reg is not None
                    and (self._rel_mem
                         or (self._rel_ex and mem.d.is_load))):
                pending.append((mem.acquired_reg, mem.result))
                mem.acquired_reg = None
            self.s_wb = mem
            self.s_mem = None

    # EX -> MEM
    if ex is not None and ex.ex_done and self.s_mem is None:
        if (self._rel_ex and ex.acquired_reg is not None
                and not ex.d.is_load):
            pending.append((ex.acquired_reg, ex.result))
            ex.acquired_reg = None
        self.s_mem = ex
        self.s_ex = None

    # ID -> EX (load-use interlock; see base tick)
    if did is not None and did.id_done and self.s_ex is None:
        if ex is not None and ex.d.is_load:
            ex_dest = ex.d.dest
            if (ex_dest is not None and ex_dest != 0
                    and ex_dest in did.d.srcs):
                stats.load_use_stalls += 1
            else:
                self.s_ex = did
                self.s_id = None
        else:
            self.s_ex = did
            self.s_id = None

    # IF -> ID
    fslot = self.s_if
    if fslot is not None:
        if self.if_wait > 0:
            self.if_wait -= 1
        elif self.s_id is None:
            self.s_id = fslot
            self.s_if = None

    # ---- apply deferred BDT releases (visible from next cycle) ------
    if pending:
        for reg, value in pending:
            asbr.producer_value(reg, value)
            emit(TraceEvent(cycle, BDT_UPDATE,              # [trace]
                            data={"reg": reg, "value": value}))
        pending.clear()


def _start_fetch_traced(self) -> None:
    """Base ``_start_fetch`` plus fetch / fold-attempt events."""
    pc = self.fetch_pc
    if pc & 3 or not self._text_base <= pc < self._text_end:
        return
    d = self._dec[(pc - self._text_base) >> 2]
    stats = self.stats
    emit = self._emit                                      # [trace]
    cycle = stats.cycles                                   # [trace]
    extra = self._icache_access(pc)
    self.if_wait = extra
    if extra:
        stats.icache_miss_stalls += extra

    uf = d.uncond_fold
    if uf is not None:
        td, tpc, next_pc = uf
        slot = _Slot(td, tpc)
        slot.uncond_folded = True
        self.s_if = slot
        stats.fetched += 1
        slot.seq = stats.fetched - 1                       # [trace]
        emit(TraceEvent(cycle, FETCH, tpc, slot.seq,       # [trace]
                        {"fold": "uncond", "branch_pc": pc}))
        self.fetch_pc = next_pc
        return

    if d.is_branch:
        if self.asbr is not None:
            fold = self.asbr.try_fold(pc)
            if fold is not None:
                fd = self._foreign_decode(fold.instr, fold.instr_pc)
                slot = _Slot(fd, fold.instr_pc)
                slot.folded = True
                slot.fold_pc = pc                          # [trace]
                slot.fold_taken = fold.taken               # [trace]
                self.s_if = slot
                stats.fetched += 1
                slot.seq = stats.fetched - 1               # [trace]
                emit(TraceEvent(cycle, FOLD_HIT, pc, slot.seq,  # [trace]
                                {"taken": fold.taken,
                                 "instr_pc": fold.instr_pc,
                                 "next_pc": fold.next_pc}))
                emit(TraceEvent(cycle, FETCH, fold.instr_pc,    # [trace]
                                slot.seq,
                                {"fold": "asbr", "branch_pc": pc}))
                self.fetch_pc = fold.next_pc
                return
            emit(TraceEvent(cycle, FOLD_MISS, pc,          # [trace]
                            data={"reason": self.asbr.miss_reason(pc)}))
        pred = self.predictor.predict(pc)
        stats.predictor_lookups += 1
        slot = _Slot(d, pc)
        if pred.taken and pred.target is not None:
            slot.pred_next_pc = pred.target
        else:
            slot.pred_next_pc = d.pc4
        self.s_if = slot
        stats.fetched += 1
        slot.seq = stats.fetched - 1                       # [trace]
        emit(TraceEvent(cycle, FETCH, pc, slot.seq))       # [trace]
        self.fetch_pc = slot.pred_next_pc
        return

    slot = _Slot(d, pc)
    self.s_if = slot
    stats.fetched += 1
    slot.seq = stats.fetched - 1                           # [trace]
    emit(TraceEvent(cycle, FETCH, pc, slot.seq))           # [trace]
    self.fetch_pc = d.pc4


def _redirect_traced(self, new_pc: int) -> None:
    """Base ``_redirect`` plus a redirect event."""
    self._squash(self.s_id)
    self.s_id = None
    self._squash(self.s_if)
    self.s_if = None
    self.if_wait = 0
    self.fetch_pc = new_pc
    self._suppress_fetch = True
    self._fetch_halted = False
    if self.frontend is not None:
        self.frontend.redirect(new_pc)
    self._emit(TraceEvent(self.stats.cycles, REDIRECT, new_pc,  # [trace]
                          data={"why": "ex"}))


def _squash_traced(self, slot: Optional[_Slot]) -> None:
    """Base ``_squash`` plus a squash event."""
    if slot is None:
        return
    self.stats.squashed += 1
    self._emit(TraceEvent(self.stats.cycles, SQUASH,       # [trace]
                          slot.pc, slot.seq))
    if self.asbr is not None and slot.acquired_reg is not None:
        self.asbr.producer_squashed(slot.acquired_reg)
        slot.acquired_reg = None
