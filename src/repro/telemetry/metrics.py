"""Metrics registry: counters plus per-branch-PC tables.

The registry is itself an event *sink* — attach it to a
:class:`~repro.telemetry.tracer.Tracer` and it folds the event stream
into aggregates as the simulation runs:

* event-kind counters (``fetch``, ``commit``, ``squash``, ...);
* one :class:`BranchPCStats` row per static branch PC: executions,
  taken count, mispredicts, commit-level fold hits split by direction,
  fetch-level fold attempts, fold misses split by reason, and a
  producer-distance histogram (dynamic instructions between the
  condition-defining instruction and the branch — the quantity the
  paper's threshold rule is about, Section 5.2).

Registries serialise to plain JSON-able dicts (:meth:`MetricsRegistry.
to_dict` / :meth:`from_dict`) so they can ride alongside cached run
results, and :meth:`merge` sums them across the runs of a sweep.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.asbr.folding import MISS_BDT_BUSY, MISS_NO_BIT_ENTRY
from repro.telemetry import events as ev

#: Producer distances at or above this land in one terminal bucket.
DISTANCE_CAP = 32

_BRANCH_FIELDS = ("executions", "taken", "mispredicts", "fold_taken",
                  "fold_not_taken", "fold_fetched", "miss_no_bit",
                  "miss_bdt_busy")


class BranchPCStats:
    """Aggregates for one static branch PC."""

    __slots__ = _BRANCH_FIELDS + ("distances",)

    def __init__(self) -> None:
        self.executions = 0       # resolved in EX (unfolded, right-path)
        self.taken = 0
        self.mispredicts = 0
        self.fold_taken = 0       # committed folds, by direction
        self.fold_not_taken = 0
        self.fold_fetched = 0     # fetch-level folds (incl. wrong-path)
        self.miss_no_bit = 0
        self.miss_bdt_busy = 0
        self.distances: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def fold_hits(self) -> int:
        """Committed folds (== the branch's share of folds_committed)."""
        return self.fold_taken + self.fold_not_taken

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def accuracy(self) -> float:
        if not self.executions:
            return 0.0
        return 1.0 - self.mispredicts / self.executions

    def typical_distance(self) -> Optional[int]:
        """Most frequently observed producer distance, if any."""
        if not self.distances:
            return None
        return max(self.distances.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    # ------------------------------------------------------------------
    def observe_distance(self, dist: int) -> None:
        dist = min(dist, DISTANCE_CAP)
        self.distances[dist] = self.distances.get(dist, 0) + 1

    def merge(self, other: "BranchPCStats") -> None:
        for f in _BRANCH_FIELDS:
            setattr(self, f, getattr(self, f) + getattr(other, f))
        for d, n in other.distances.items():
            self.distances[d] = self.distances.get(d, 0) + n

    def to_dict(self) -> dict:
        d = {f: getattr(self, f) for f in _BRANCH_FIELDS}
        if self.distances:
            d["dist"] = {str(k): v for k, v in sorted(self.distances.items())}
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "BranchPCStats":
        s = cls()
        for f in _BRANCH_FIELDS:
            setattr(s, f, int(d.get(f, 0)))
        s.distances = {int(k): int(v) for k, v in d.get("dist", {}).items()}
        return s


class MetricsRegistry:
    """Counters + per-branch tables, fed by emitted events."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.branches: Dict[int, BranchPCStats] = {}
        # transient (not serialised): destination register -> the issue
        # index of its most recent right-path producer, used to measure
        # definition-to-branch distances in dynamic instructions.
        self._writer: Dict[int, int] = {}
        self._issue_index = 0

    # ------------------------------------------------------------------
    def _branch(self, pc: int) -> BranchPCStats:
        b = self.branches.get(pc)
        if b is None:
            b = self.branches[pc] = BranchPCStats()
        return b

    def emit(self, event) -> None:
        """Sink interface: fold one event into the aggregates."""
        kind = event.kind
        self.counters[kind] = self.counters.get(kind, 0) + 1
        if kind == ev.ISSUE:
            dest = event.data.get("dest")
            if dest:
                self._writer[dest] = self._issue_index
            self._issue_index += 1
        elif kind == ev.BRANCH:
            b = self._branch(event.pc)
            b.executions += 1
            data = event.data
            if data.get("taken"):
                b.taken += 1
            if data.get("misp"):
                b.mispredicts += 1
            # the branch's own issue event has already been counted, so
            # its dynamic index is _issue_index - 1
            my_index = self._issue_index - 1
            dist = None
            for reg in data.get("srcs", ()):
                w = self._writer.get(reg)
                if w is not None:
                    d = my_index - w
                    if dist is None or d < dist:
                        dist = d
            if dist is not None and dist > 0:
                b.observe_distance(dist)
        elif kind == ev.COMMIT:
            data = event.data
            fold_pc = data.get("fold_pc")
            if fold_pc is not None:
                b = self._branch(fold_pc)
                if data.get("fold_taken"):
                    b.fold_taken += 1
                else:
                    b.fold_not_taken += 1
        elif kind == ev.FOLD_HIT:
            self._branch(event.pc).fold_fetched += 1
        elif kind == ev.FOLD_MISS:
            b = self._branch(event.pc)
            reason = event.data.get("reason")
            if reason == MISS_NO_BIT_ENTRY:
                b.miss_no_bit += 1
            elif reason == MISS_BDT_BUSY:
                b.miss_bdt_busy += 1

    def close(self) -> None:     # sink interface; nothing buffered
        pass

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    def count(self, kind: str) -> int:
        return self.counters.get(kind, 0)

    @property
    def total_branch_executions(self) -> int:
        return sum(b.executions for b in self.branches.values())

    @property
    def total_fold_hits(self) -> int:
        return sum(b.fold_hits for b in self.branches.values())

    @property
    def total_fold_misses(self) -> int:
        return sum(b.miss_no_bit + b.miss_bdt_busy
                   for b in self.branches.values())

    def sorted_branches(self) -> List[tuple]:
        """(pc, stats) pairs, busiest branch first."""
        return sorted(self.branches.items(),
                      key=lambda kv: (-(kv[1].executions
                                        + kv[1].fold_hits), kv[0]))

    # ------------------------------------------------------------------
    # serialisation / merging
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "branches": {"0x%x" % pc: b.to_dict()
                         for pc, b in sorted(self.branches.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricsRegistry":
        reg = cls()
        reg.counters = {str(k): int(v)
                        for k, v in d.get("counters", {}).items()}
        reg.branches = {int(pc, 16): BranchPCStats.from_dict(b)
                        for pc, b in d.get("branches", {}).items()}
        return reg

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Add ``other``'s aggregates into this registry (returns self)."""
        for k, v in other.counters.items():
            self.counters[k] = self.counters.get(k, 0) + v
        for pc, b in other.branches.items():
            self._branch(pc).merge(b)
        return self


def merge_registries(registries: Iterable[MetricsRegistry]
                     ) -> MetricsRegistry:
    """Sum many registries into a fresh one."""
    merged = MetricsRegistry()
    for reg in registries:
        merged.merge(reg)
    return merged
