"""Per-branch report rendering (the human view of a MetricsRegistry)."""

from __future__ import annotations

from typing import List, Optional

from repro.telemetry.metrics import MetricsRegistry


def _table(headers: List[str], rows: List[List[str]],
           title: str = "") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines = [title] if title else []
    lines.append(fmt % tuple(headers))
    lines.append(fmt % tuple("-" * w for w in widths))
    for row in rows:
        lines.append((fmt % tuple(row)).rstrip())
    return "\n".join(lines)


def render_branch_report(registry: MetricsRegistry,
                         program=None, title: str = "") -> str:
    """Tabulate every branch PC the registry has seen.

    ``program`` (a :class:`repro.asm.program.Program`) adds the source
    label column.  Executions count unfolded EX resolutions; ``foldT``/
    ``foldNT`` are committed folds by direction; the miss columns split
    failed fetch-stage fold attempts by reason; ``dist`` is the most
    common observed producer-to-branch distance in dynamic instructions.
    """
    headers = ["pc", "label", "exec", "taken%", "misp", "acc%",
               "foldT", "foldNT", "miss:nobit", "miss:busy", "dist"]
    rows = []
    tot = {"exec": 0, "misp": 0, "foldT": 0, "foldNT": 0,
           "nobit": 0, "busy": 0}
    for pc, b in registry.sorted_branches():
        label = (program.label_at(pc) or "-") if program is not None \
            else "-"
        dist = b.typical_distance()
        rows.append([
            "0x%x" % pc, label, str(b.executions),
            "%.0f" % (100 * b.taken_rate) if b.executions else "-",
            str(b.mispredicts),
            "%.1f" % (100 * b.accuracy) if b.executions else "-",
            str(b.fold_taken), str(b.fold_not_taken),
            str(b.miss_no_bit), str(b.miss_bdt_busy),
            str(dist) if dist is not None else "-",
        ])
        tot["exec"] += b.executions
        tot["misp"] += b.mispredicts
        tot["foldT"] += b.fold_taken
        tot["foldNT"] += b.fold_not_taken
        tot["nobit"] += b.miss_no_bit
        tot["busy"] += b.miss_bdt_busy
    rows.append(["total", "", str(tot["exec"]), "", str(tot["misp"]), "",
                 str(tot["foldT"]), str(tot["foldNT"]),
                 str(tot["nobit"]), str(tot["busy"]), ""])
    if not title:
        title = ("per-branch telemetry (%d branch PCs, %d executions, "
                 "%d folds committed)"
                 % (len(registry.branches), tot["exec"],
                    tot["foldT"] + tot["foldNT"]))
    return _table(headers, rows, title)


def render_counters(registry: MetricsRegistry) -> str:
    """One-line event-count summary."""
    return "  ".join("%s=%d" % (k, v)
                     for k, v in sorted(registry.counters.items()))
