"""The tracer: fans events out to sinks; builders for common setups."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.telemetry.events import RETIRE, TraceEvent
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import JsonlTraceSink, RingBufferSink


class Tracer:
    """Distributes every emitted event to each attached sink.

    The simulators hold a tracer (or None); attaching one selects the
    instrumented fast path at construction time, so a disabled tracer
    costs the simulation nothing at all (see ``repro.telemetry.traced``).
    """

    def __init__(self, *sinks) -> None:
        self.sinks: List = list(sinks)

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        """Flush/close every sink that supports it (JSONL writers)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def find_sink(self, cls) -> Optional[object]:
        for sink in self.sinks:
            if isinstance(sink, cls):
                return sink
        return None

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The first attached metrics registry, if any."""
        return self.find_sink(MetricsRegistry)

    @property
    def ring(self) -> Optional[RingBufferSink]:
        return self.find_sink(RingBufferSink)


def make_tracer(ring_capacity: Optional[int] = None,
                jsonl_path: Optional[str] = None,
                jsonl_max_bytes: int = 64 * 1024 * 1024,
                with_ring: bool = False,
                with_metrics: bool = True) -> Tracer:
    """Convenience constructor for the usual sink combinations."""
    tracer = Tracer()
    if with_metrics:
        tracer.add_sink(MetricsRegistry())
    if with_ring or ring_capacity is not None:
        tracer.add_sink(RingBufferSink(ring_capacity))
    if jsonl_path is not None:
        tracer.add_sink(JsonlTraceSink(jsonl_path, jsonl_max_bytes))
    return tracer


def retire_observer(tracer: Tracer,
                    chain: Optional[Callable[[int, object, int], None]]
                    = None) -> Callable[[int, object, int], None]:
    """An observer for :meth:`FunctionalSimulator.run` emitting ``retire``
    events — the functional simulator's light telemetry hook.

    The functional model has no clock, so ``cycle`` carries the retire
    index (== ``seq``).  ``chain`` composes with an existing observer.
    """
    emit = tracer.emit
    state = [0]

    def observe(pc: int, instr, next_pc: int) -> None:
        seq = state[0]
        state[0] = seq + 1
        emit(TraceEvent(seq, RETIRE, pc, seq, {"next": next_pc}))
        if chain is not None:
            chain(pc, instr, next_pc)

    return observe
