"""Typed trace events emitted by the instrumented simulators.

One :class:`TraceEvent` describes one micro-architectural occurrence at
one clock cycle.  The event *kinds* map directly onto the paper's
mechanisms (see DESIGN.md "Telemetry"):

=============  =====================================================
kind           meaning / payload (``data`` keys)
=============  =====================================================
``fetch``      an instruction entered the IF stage.  For replacement
               (BTI/BFI) instructions ``data`` holds ``fold``
               ("asbr" or "uncond") and ``branch_pc``.
``decode``     ID-stage work ran (jump redirects, BDT acquire).
``issue``      EX-stage work ran; ``data["dest"]`` is the destination
               register when the instruction writes one.
``commit``     the instruction reached write-back.  Folded
               replacements carry ``fold_pc``/``fold_taken``;
               CRISP-style folds carry ``uncond_fold``.
``branch``     a conditional branch resolved in EX: ``taken``,
               ``target`` (actual next PC), ``pred`` (the fetch-stage
               assumption), ``misp`` and ``srcs`` (condition regs).
``fold_hit``   the ASBR unit folded the branch at ``pc`` out of the
               fetch stream: ``taken``, ``instr_pc``, ``next_pc``.
``fold_miss``  a branch hit fetch with the ASBR unit present but was
               not folded; ``data["reason"]`` is one of
               :data:`~repro.asbr.folding.MISS_NO_BIT_ENTRY` /
               :data:`~repro.asbr.folding.MISS_BDT_BUSY`.
``bdt_update`` a producer value reached the early condition
               evaluation logic: ``reg``, ``value``.
``squash``     a wrong-path instruction was killed in IF or ID.
``redirect``   fetch was redirected; ``pc`` is the new target.
``retire``     functional-simulator retirement (the light hook).
``fault_inject``  a soft error was injected into BDT/BIT/predictor
               state (:mod:`repro.faults`); ``data`` holds ``site``
               and ``protection``.
``fault_detect``  parity caught a corrupted entry on read; the fold
               was suppressed (predictor fallback) or the counter
               reset.
``fault_correct`` ECC repaired a corrupted entry on read; the read
               observed the fault-free value.
``truncated``  sentinel appended by a size-bounded JSONL sink;
               ``data["dropped"]`` counts the lost events.
``btb_hit``    the decoupled front end (:mod:`repro.frontend`) found a
               target in the BTB hierarchy; ``data["level"]`` is 1
               (L1) or 2 (last level — the hit also promotes).
``btb_miss``   no BTB level held a target for a control instruction
               scanned by the branch-prediction unit.
``ftq_occupancy``  per-cycle fetch-target-queue depth sample:
               ``data["occ"]`` entries of ``data["depth"]``.
``prefetch_issue``  FDIP issued an I-cache prefetch for the block
               holding ``pc``.
``prefetch_useful``  a demand fetch hit a prefetched block (or merged
               with one still in flight — ``data["late"]`` true).
``prefetch_useless``  a prefetched block was evicted before any demand
               fetch used it.
``rename_alloc``  the out-of-order machine (:mod:`repro.sim.ooo`)
               renamed a destination: ``dest`` (architectural),
               ``new``/``old`` (physical registers).
``iq_wakeup``  a completing op broadcast its result: ``data["preg"]``
               turned ready, waking issue-queue dependants.
``checkpoint_restore``  misprediction recovery restored the map-table
               checkpoint of the branch at ``pc``; ``data["depth"]``
               counts the squashed ops.
``squash_depth``  companion sample to ``checkpoint_restore`` for
               recovery-depth histograms (``data["depth"]``).
``serve_recover``  the serve daemon rebuilt a job from its WAL at
               startup (:mod:`repro.serve`); ``data`` holds ``job``,
               ``settled`` (replayed results) and ``pending``
               (re-enqueued specs).  Lifecycle events use
               ``cycle == 0`` — they describe the *service*, not a
               simulated machine.
``serve_shed`` admission control rejected work (HTTP 429/503);
               ``data`` holds ``path`` and ``reason``
               ("saturated" or "draining").
``serve_deadline``  a request/job deadline expired pending work into
               journaled ``fail_kind="deadline"`` records; ``data``
               holds ``job`` (or ``path`` for single runs) and
               ``expired`` (spec count).
``serve_drain``  the daemon began draining (SIGTERM, ``POST
               /shutdown``); in-flight jobs keep journaling, new work
               is shed until exit.
=============  =====================================================

``seq`` is the dynamic fetch sequence number (the value of
``stats.fetched`` when the instruction entered the pipeline), linking
the lifecycle events of one in-flight instruction; events not tied to
an in-flight instruction use ``seq == -1``.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.asbr.folding import FOLD_MISS_REASONS  # noqa: F401  (re-export)
from repro.asbr.folding import MISS_BDT_BUSY, MISS_NO_BIT_ENTRY  # noqa: F401

FETCH = "fetch"
DECODE = "decode"
ISSUE = "issue"
COMMIT = "commit"
BRANCH = "branch"
FOLD_HIT = "fold_hit"
FOLD_MISS = "fold_miss"
BDT_UPDATE = "bdt_update"
SQUASH = "squash"
REDIRECT = "redirect"
RETIRE = "retire"
FAULT_INJECT = "fault_inject"
FAULT_DETECT = "fault_detect"
FAULT_CORRECT = "fault_correct"
TRUNCATED = "truncated"
BTB_HIT = "btb_hit"
BTB_MISS = "btb_miss"
FTQ_OCCUPANCY = "ftq_occupancy"
PREFETCH_ISSUE = "prefetch_issue"
PREFETCH_USEFUL = "prefetch_useful"
PREFETCH_USELESS = "prefetch_useless"
RENAME_ALLOC = "rename_alloc"
IQ_WAKEUP = "iq_wakeup"
CHECKPOINT_RESTORE = "checkpoint_restore"
SQUASH_DEPTH = "squash_depth"
SERVE_RECOVER = "serve_recover"
SERVE_SHED = "serve_shed"
SERVE_DEADLINE = "serve_deadline"
SERVE_DRAIN = "serve_drain"

EVENT_KINDS = (FETCH, DECODE, ISSUE, COMMIT, BRANCH, FOLD_HIT, FOLD_MISS,
               BDT_UPDATE, SQUASH, REDIRECT, RETIRE, FAULT_INJECT,
               FAULT_DETECT, FAULT_CORRECT, TRUNCATED, BTB_HIT, BTB_MISS,
               FTQ_OCCUPANCY, PREFETCH_ISSUE, PREFETCH_USEFUL,
               PREFETCH_USELESS, RENAME_ALLOC, IQ_WAKEUP,
               CHECKPOINT_RESTORE, SQUASH_DEPTH, SERVE_RECOVER,
               SERVE_SHED, SERVE_DEADLINE, SERVE_DRAIN)

#: the service-level subset: emitted by the serve daemon onto its
#: ``lifecycle_sink``, never by a simulator
SERVE_EVENT_KINDS = (SERVE_RECOVER, SERVE_SHED, SERVE_DEADLINE,
                     SERVE_DRAIN)

#: Shared payload for events that carry none — emit sites pass it so the
#: hot tracing path never allocates an empty dict per event.
NO_DATA: Dict[str, Any] = {}


class TraceEvent:
    """One occurrence at one cycle (see the module table for kinds)."""

    __slots__ = ("cycle", "kind", "pc", "seq", "data")

    def __init__(self, cycle: int, kind: str, pc: int = 0,
                 seq: int = -1, data: Dict[str, Any] = NO_DATA) -> None:
        self.cycle = cycle
        self.kind = kind
        self.pc = pc
        self.seq = seq
        self.data = data

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Compact single-line JSON (the JSONL trace format)."""
        obj: Dict[str, Any] = {"c": self.cycle, "k": self.kind}
        if self.pc:
            obj["p"] = self.pc
        if self.seq >= 0:
            obj["s"] = self.seq
        if self.data:
            obj["d"] = self.data
        return json.dumps(obj, separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        obj = json.loads(line)
        return cls(obj["c"], obj["k"], obj.get("p", 0), obj.get("s", -1),
                   obj.get("d", NO_DATA))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (self.cycle == other.cycle and self.kind == other.kind
                and self.pc == other.pc and self.seq == other.seq
                and self.data == other.data)

    def __hash__(self) -> int:            # pragma: no cover - rarely used
        return hash((self.cycle, self.kind, self.pc, self.seq))

    def __repr__(self) -> str:
        extra = " %r" % (self.data,) if self.data else ""
        return ("TraceEvent(c=%d %s pc=0x%x seq=%d%s)"
                % (self.cycle, self.kind, self.pc, self.seq, extra))
