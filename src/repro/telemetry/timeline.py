"""Konata-style ASCII pipeline timeline rendered from an event stream.

Each row is one dynamic instruction (by fetch sequence number); each
column is one clock cycle.  Stage letters::

    F  in fetch (repeated across I-cache miss stalls)
    D  in decode (repeated while interlocked, e.g. load-use)
    X  execute
    M  memory (repeated across D-cache miss stalls)
    W  write-back / commit
    x  squashed on a wrong path

Replacement (BTI/BFI) instructions injected by an ASBR fold are
annotated with the branch PC they folded out — the folded branch itself
never appears because it never enters the pipeline, which is exactly
the paper's point.

The stage spans are reconstructed from the lifecycle events alone
(fetch/decode/issue/commit/squash): an instruction is in IF from its
fetch cycle until the cycle before its decode event, in ID until the
cycle before its issue event, in EX at the issue cycle, in MEM until
the cycle before commit, and in WB at the commit cycle.  This is exact
for the 5-stage in-order pipeline because every stage latches at end of
cycle and each stage's first-cycle work fires exactly once.

The same lifecycle shape covers the out-of-order backend
(:mod:`repro.sim.ooo`): there ``decode`` is the rename cycle, ``issue``
the wakeup/select grant and the D span the instruction's wait in the
issue queue.  A row whose issue grant lands *earlier* than an older
row's is flagged ``<ooo`` — dynamic scheduling made visible against the
strictly in-order W column (commit order never inverts; the in-order
machines never trigger the flag).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.telemetry import events as ev


class _Row:
    __slots__ = ("seq", "pc", "fetch", "decode", "issue", "commit",
                 "squash", "note_bits", "fold", "branch")

    def __init__(self, seq: int) -> None:
        self.seq = seq
        self.pc = 0
        self.fetch: Optional[int] = None
        self.decode: Optional[int] = None
        self.issue: Optional[int] = None
        self.commit: Optional[int] = None
        self.squash: Optional[int] = None
        self.fold: Optional[dict] = None      # fetch-event fold payload
        self.branch: Optional[dict] = None    # branch-event payload


def _collect(events: Iterable) -> Dict[int, _Row]:
    rows: Dict[int, _Row] = {}

    def row(seq: int) -> _Row:
        r = rows.get(seq)
        if r is None:
            r = rows[seq] = _Row(seq)
        return r

    for e in events:
        if e.seq < 0:
            continue
        k = e.kind
        if k == ev.FETCH:
            r = row(e.seq)
            r.fetch = e.cycle
            r.pc = e.pc
            if e.data.get("fold"):
                r.fold = e.data
        elif k == ev.DECODE:
            row(e.seq).decode = e.cycle
        elif k == ev.ISSUE:
            row(e.seq).issue = e.cycle
        elif k == ev.COMMIT:
            row(e.seq).commit = e.cycle
        elif k == ev.SQUASH:
            row(e.seq).squash = e.cycle
        elif k == ev.BRANCH:
            row(e.seq).branch = e.data
    return rows


def _stage_chars(r: _Row, c0: int, c1: int) -> str:
    """The stage letter for each cycle in [c0, c1], '.' when absent."""
    chars = []
    f, d, x, w, sq = r.fetch, r.decode, r.issue, r.commit, r.squash
    for c in range(c0, c1 + 1):
        ch = "."
        if f is None or c < f:
            chars.append(ch)
            continue
        if sq is not None and c >= sq:
            ch = "x" if c == sq else "."
        elif d is None or c < d:
            ch = "F"
        elif x is None or c < x:
            ch = "D"
        elif c == x:
            ch = "X"
        elif w is None or c < w:
            ch = "M"
        elif c == w:
            ch = "W"
        chars.append(ch)
    return "".join(chars)


def ooo_issued_seqs(rows: Iterable[_Row]) -> set:
    """Seqs whose issue grant precedes an older row's — the rows where
    the machine visibly scheduled out of program order.  Empty for any
    in-order event stream (issue cycles are monotone in seq there)."""
    out = set()
    max_issue = None
    for r in sorted(rows, key=lambda r: r.seq):
        if r.issue is None:
            continue
        if max_issue is not None and r.issue < max_issue:
            out.add(r.seq)
        if max_issue is None or r.issue > max_issue:
            max_issue = r.issue
    return out


def _note(r: _Row, ooo: bool = False) -> str:
    parts = []
    if ooo:
        parts.append("<ooo")
    if r.fold is not None:
        kind = r.fold.get("fold")
        parts.append("folds %s 0x%x"
                     % ("branch" if kind == "asbr" else "jump",
                        r.fold.get("branch_pc", 0)))
    if r.branch is not None:
        parts.append("taken" if r.branch.get("taken") else "not-taken")
        if r.branch.get("misp"):
            parts.append("MISPREDICT")
    if r.squash is not None:
        parts.append("squashed")
    return " ".join(parts)


def render_pipeview(events: Iterable, limit: int = 64, skip: int = 0,
                    max_cycles: int = 200) -> str:
    """Render up to ``limit`` instructions (after skipping ``skip``)
    as an ASCII timeline; the cycle axis is clipped to ``max_cycles``
    columns starting at the first shown instruction's fetch."""
    all_rows = [r for _, r in sorted(_collect(events).items())
                if r.fetch is not None]
    # computed over the full stream so windowing never hides an
    # inversion against an older, skipped row
    ooo_seqs = ooo_issued_seqs(all_rows)
    rows = all_rows[skip:skip + limit] if limit else all_rows[skip:]
    if not rows:
        return "(no instruction events)"

    c0 = min(r.fetch for r in rows)
    ends = [c for r in rows
            for c in (r.commit, r.squash, r.issue, r.decode, r.fetch)
            if c is not None]
    c1 = min(max(ends), c0 + max_cycles - 1)

    ruler = "".join("|" if c % 10 == 0 else ("+" if c % 5 == 0 else ".")
                    for c in range(c0, c1 + 1))
    lines = ["pipeline timeline: cycles %d..%d ('|' every 10)" % (c0, c1),
             "%4s %-10s %s" % ("seq", "pc", ruler)]
    for r in rows:
        line = ("%4d 0x%08x %s  %s"
                % (r.seq, r.pc, _stage_chars(r, c0, c1),
                   _note(r, ooo=r.seq in ooo_seqs)))
        lines.append(line.rstrip())
    return "\n".join(lines)


def lifecycle_cycles(events: Iterable) -> List[tuple]:
    """(seq, fetch, decode, issue, commit, squash) per instruction —
    the raw material of the ordering-invariant tests."""
    return [(r.seq, r.fetch, r.decode, r.issue, r.commit, r.squash)
            for _, r in sorted(_collect(events).items())]
