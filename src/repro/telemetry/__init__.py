"""Zero-overhead tracing, metrics and pipeline-timeline observability.

The paper's argument is *per-branch*: which branches fold, why a fold
attempt misses, how far the condition-defining instruction sits from
its branch.  This package turns the simulators into analysis tools:

* :mod:`~repro.telemetry.events` — typed per-cycle events (fetch /
  issue / commit, branch resolution, fold hit/miss with reason, BDT
  updates, squashes, redirects);
* :mod:`~repro.telemetry.traced` — the instrumented pipeline fast
  path, attached at construction so a disabled tracer costs nothing;
* :mod:`~repro.telemetry.sinks` — in-memory ring buffer and bounded
  JSONL trace files;
* :mod:`~repro.telemetry.metrics` — counters and per-branch-PC tables
  (mergeable across sweep runs, serialisable into the run cache);
* :mod:`~repro.telemetry.timeline` / :mod:`~repro.telemetry.report` —
  the ASCII pipeview and the per-branch report.

Entry points: ``PipelineSimulator(..., trace=Tracer(...))``,
``FunctionalSimulator.run(trace=...)``, ``repro sim --trace-out/
--branch-report`` and ``repro trace pipeview|report``.
"""

from repro.telemetry.events import (
    EVENT_KINDS,
    FOLD_MISS_REASONS,
    MISS_BDT_BUSY,
    MISS_NO_BIT_ENTRY,
    SERVE_EVENT_KINDS,
    TraceEvent,
)
from repro.telemetry.sinks import (
    CallbackSink,
    JsonlTraceSink,
    RingBufferSink,
    read_jsonl,
)
from repro.telemetry.metrics import (
    BranchPCStats,
    MetricsRegistry,
    merge_registries,
)
from repro.telemetry.tracer import Tracer, make_tracer, retire_observer
from repro.telemetry.report import render_branch_report, render_counters
from repro.telemetry.timeline import lifecycle_cycles, render_pipeview

__all__ = [
    "BranchPCStats",
    "CallbackSink",
    "EVENT_KINDS",
    "SERVE_EVENT_KINDS",
    "FOLD_MISS_REASONS",
    "JsonlTraceSink",
    "MetricsRegistry",
    "MISS_BDT_BUSY",
    "MISS_NO_BIT_ENTRY",
    "RingBufferSink",
    "TraceEvent",
    "Tracer",
    "lifecycle_cycles",
    "make_tracer",
    "merge_registries",
    "read_jsonl",
    "render_branch_report",
    "render_counters",
    "render_pipeview",
    "retire_observer",
]
