"""Set-associative cache timing model.

Only tags, LRU order and dirty bits are tracked — the cache never holds
data (architectural data lives in :class:`~repro.memory.MainMemory`).
This is the standard decoupled functional/timing split: the cache's job
is to answer "how many cycles does this access cost?".

Default geometry matches the paper: 8KB, 32-byte blocks, 2-way.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class CacheConfig:
    """Cache geometry and latency parameters."""

    size_bytes: int = 8192
    block_bytes: int = 32
    assoc: int = 2
    hit_latency: int = 1      # cycles, already covered by the pipeline stage
    miss_penalty: int = 8     # extra stall cycles on a miss
    writeback_penalty: int = 2  # extra cycles to evict a dirty block

    def __post_init__(self) -> None:
        if self.size_bytes % (self.block_bytes * self.assoc):
            raise ValueError("size must be a multiple of block*assoc")
        for name in ("size_bytes", "block_bytes", "assoc"):
            v = getattr(self, name)
            if v <= 0 or (v & (v - 1)):
                raise ValueError("%s must be a positive power of two" % name)

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.block_bytes * self.assoc)


@dataclass
class CacheStats:
    """Access statistics."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0   # blocks installed via the prefetch port

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0
        self.prefetch_fills = 0


class Cache:
    """Write-back, write-allocate, LRU set-associative cache."""

    def __init__(self, config: CacheConfig = CacheConfig(),
                 name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # per-set: OrderedDict tag -> dirty flag; order = LRU (oldest first)
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._block_shift = config.block_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1

    def access(self, addr: int, is_write: bool = False) -> int:
        """Access one address; returns the *extra* stall cycles incurred.

        A hit costs 0 extra cycles (the hit latency is the pipeline
        stage's own cycle); a miss costs ``miss_penalty`` plus a possible
        dirty writeback.
        """
        # full block number doubles as the tag (index redundancy is fine)
        tag = addr >> self._block_shift
        way = self._sets[tag & self._set_mask]
        stats = self.stats
        stats.accesses += 1

        if tag in way:
            way.move_to_end(tag)
            if is_write:
                way[tag] = True
            return 0

        stats.misses += 1
        penalty = self.config.miss_penalty
        if len(way) >= self.config.assoc:
            _victim, dirty = way.popitem(last=False)
            if dirty:
                stats.writebacks += 1
                penalty += self.config.writeback_penalty
        way[tag] = is_write
        return penalty

    def prefetch(self, addr: int) -> bool:
        """Install the block holding ``addr`` without demand accounting.

        The fill obeys normal placement (LRU victim, dirty writeback
        still charged to ``stats.writebacks``) but touches neither the
        demand ``accesses`` nor ``misses`` counters — a prefetcher
        (:mod:`repro.frontend`) must not launder its traffic into the
        demand miss rate.  The block is installed clean and in MRU
        position.  Returns True when a fill happened, False when the
        block was already resident (the resident block's LRU state is
        left untouched, like :meth:`contains`).
        """
        tag = addr >> self._block_shift
        way = self._sets[tag & self._set_mask]
        if tag in way:
            return False
        if len(way) >= self.config.assoc:
            _victim, dirty = way.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
        way[tag] = False
        self.stats.prefetch_fills += 1
        return True

    def contains(self, addr: int) -> bool:
        """True if the block holding ``addr`` is resident (no LRU update)."""
        block = addr >> self._block_shift
        return block in self._sets[block & self._set_mask]

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty writebacks."""
        dirty = 0
        for way in self._sets:
            dirty += sum(1 for d in way.values() if d)
            way.clear()
        self.stats.writebacks += dirty
        return dirty

    # ------------------------------------------------------------------
    @property
    def state_bits(self) -> int:
        """Approximate SRAM state of the cache (tag+state bits only)."""
        tag_bits = 32 - self._block_shift
        per_line = tag_bits + 2  # valid + dirty
        lines = self.config.num_sets * self.config.assoc
        return lines * per_line

    def __repr__(self) -> str:
        c = self.config
        return ("Cache(%s, %dB, %dB blocks, %d-way, misses=%d/%d)"
                % (self.name, c.size_bytes, c.block_bytes, c.assoc,
                   self.stats.misses, self.stats.accesses))
