"""Memory subsystem: flat main memory and set-associative caches.

The paper's evaluation platform uses an 8KB instruction cache and an 8KB
data cache in front of main memory (Section 8).  Caches here are timing
models: they track tags/LRU/dirty state and report hit/miss so the
pipeline can charge stall cycles; data always lives in
:class:`MainMemory`, which both simulators share as the single source of
architectural truth.
"""

from repro.memory.main_memory import MainMemory, MisalignedAccess
from repro.memory.cache import Cache, CacheConfig, CacheStats

__all__ = [
    "MainMemory",
    "MisalignedAccess",
    "Cache",
    "CacheConfig",
    "CacheStats",
]
