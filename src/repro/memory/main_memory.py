"""Flat word-granular main memory.

Storage is a sparse ``dict`` keyed by word address, so multi-hundred-MB
address spaces cost nothing until touched.  Sub-word accesses (bytes and
halfwords) are implemented by masking inside the containing word;
accesses must be naturally aligned, as on real MIPS-style cores.
Byte order is little-endian.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.isa.alu import MASK32


class MisalignedAccess(ValueError):
    """Raised for an unaligned memory access."""


class MainMemory:
    """Sparse 32-bit word-addressable memory."""

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # word access (hot path)
    # ------------------------------------------------------------------
    def read_word(self, addr: int) -> int:
        if addr & 3:
            raise MisalignedAccess("lw at 0x%x" % addr)
        return self._words.get(addr & ~3 & MASK32, 0)

    def write_word(self, addr: int, value: int) -> None:
        if addr & 3:
            raise MisalignedAccess("sw at 0x%x" % addr)
        self._words[addr & MASK32] = value & MASK32

    # ------------------------------------------------------------------
    # sized access
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes (1, 2 or 4), zero-extended to an int."""
        addr &= MASK32
        if size == 4:
            return self.read_word(addr)
        if size == 2:
            if addr & 1:
                raise MisalignedAccess("halfword read at 0x%x" % addr)
            word = self._words.get(addr & ~3, 0)
            return (word >> (8 * (addr & 3))) & 0xFFFF
        if size == 1:
            word = self._words.get(addr & ~3, 0)
            return (word >> (8 * (addr & 3))) & 0xFF
        raise ValueError("bad access size %d" % size)

    def write(self, addr: int, value: int, size: int) -> None:
        """Write the low ``size`` bytes of ``value``."""
        addr &= MASK32
        if size == 4:
            self.write_word(addr, value)
            return
        if size == 2:
            if addr & 1:
                raise MisalignedAccess("halfword write at 0x%x" % addr)
            shift = 8 * (addr & 3)
            base = addr & ~3
            word = self._words.get(base, 0)
            word = (word & ~(0xFFFF << shift)) | ((value & 0xFFFF) << shift)
            self._words[base] = word & MASK32
            return
        if size == 1:
            shift = 8 * (addr & 3)
            base = addr & ~3
            word = self._words.get(base, 0)
            word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
            self._words[base] = word & MASK32
            return
        raise ValueError("bad access size %d" % size)

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------
    def load_words(self, items: Iterable[Tuple[int, int]]) -> None:
        """Bulk-load ``(word_addr, value)`` pairs (program/data upload)."""
        for addr, value in items:
            self.write_word(addr, value)

    def read_block(self, addr: int, nwords: int) -> list:
        """Read ``nwords`` consecutive words starting at ``addr``."""
        return [self.read_word(addr + 4 * i) for i in range(nwords)]

    def snapshot(self) -> Dict[int, int]:
        """Copy of all touched words (for differential testing)."""
        return dict(self._words)

    def copy(self) -> "MainMemory":
        """Deep copy (each simulator run gets its own memory)."""
        mem = MainMemory()
        mem._words = dict(self._words)
        return mem

    def __len__(self) -> int:
        return len(self._words)
