"""repro — Application-Specific Branch Resolution for embedded processors.

A from-scratch reproduction of *"Speeding Up Control-Dominated
Applications through Microarchitectural Customizations in Embedded
Processors"* (Petrov & Orailoglu, DAC 2001): a MIPS-like ISA, assembler,
functional and cycle-accurate 5-stage pipeline simulators, classic
branch predictors, the ASBR branch-folding microarchitecture, a
profiling/selection toolchain, compiler scheduling support, and the
MediaBench-style ADPCM / G.721 workloads the paper evaluates on.

Quickstart::

    from repro.asm import assemble
    from repro.sim import PipelineSimulator
    from repro.predictors import BimodalPredictor

    prog = assemble(open("program.s").read())
    sim = PipelineSimulator(prog, predictor=BimodalPredictor())
    stats = sim.run()
    print(stats.cycles, stats.cpi)

See :mod:`repro.experiments` for the drivers that regenerate every table
and figure of the paper.
"""

__version__ = "1.0.0"
