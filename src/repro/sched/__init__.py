"""Compiler support for ASBR (paper Section 5.1).

ASBR needs the branch-condition register defined more than *threshold*
instructions before the branch.  This package supplies the compiler half
of that bargain:

* :mod:`repro.sched.cfg` — control-flow graph over an assembled program,
  with def-use information per basic block;
* :mod:`repro.sched.scheduler` — a dependence-respecting local list
  scheduler that hoists each branch's predicate-defining chain as early
  as possible within its basic block, maximising the definition-to-
  branch distance (the paper's "the branch must be considered as a data
  dependent instruction on the condition register producing
  instruction");
* :func:`~repro.sched.scheduler.static_fold_distances` — static distance
  analysis used by the scheduling ablation to quantify the improvement.

The transformation is semantics-preserving by construction (all RAW/
WAR/WAW and memory dependences are honoured) and is differentially
tested against the functional simulator.
"""

from repro.sched.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.sched.scheduler import (
    schedule_program,
    schedule_for_folding,
    static_fold_distances,
)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "schedule_program",
    "schedule_for_folding",
    "static_fold_distances",
]
