"""Control-flow graph construction over assembled programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.asm.program import Program
from repro.isa.opcodes import Kind


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence.

    ``start``/``end`` are text-segment instruction indices
    (end-exclusive).  Successors are block start indices; a ``jr``/
    ``jalr`` terminator yields no static successors (indirect).
    """

    start: int
    end: int
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return self.end - self.start

    def indices(self):
        return range(self.start, self.end)


@dataclass
class ControlFlowGraph:
    program: Program
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)

    def block_of(self, index: int) -> BasicBlock:
        """The block containing instruction ``index``."""
        for b in self.blocks.values():
            if b.start <= index < b.end:
                return b
        raise KeyError("no block contains index %d" % index)

    def sorted_blocks(self) -> List[BasicBlock]:
        return [self.blocks[s] for s in sorted(self.blocks)]


def _target_index(program: Program, i: int) -> Optional[int]:
    """Static control target of instruction ``i``, as a text index."""
    instr = program.instrs[i]
    pc = program.pc_of(i)
    if instr.is_branch:
        addr = instr.branch_target(pc)
    elif instr.spec.kind in (Kind.JUMP, Kind.JAL):
        addr = instr.jump_target(pc)
    else:
        return None
    try:
        return program.index_of(addr)
    except ValueError:
        return None   # target outside text (dead code / data jump)


def build_cfg(program: Program) -> ControlFlowGraph:
    """Partition the text segment into basic blocks and link them."""
    n = len(program.instrs)
    if n == 0:
        return ControlFlowGraph(program)
    leaders: Set[int] = {0}
    for i, instr in enumerate(program.instrs):
        kind = instr.spec.kind
        if instr.is_branch or kind in (Kind.JUMP, Kind.JAL,
                                       Kind.JR, Kind.JALR):
            target = _target_index(program, i)
            if target is not None:
                leaders.add(target)
            if i + 1 < n:
                leaders.add(i + 1)
        elif kind is Kind.HALT and i + 1 < n:
            leaders.add(i + 1)

    starts = sorted(leaders)
    cfg = ControlFlowGraph(program)
    for j, start in enumerate(starts):
        end = starts[j + 1] if j + 1 < len(starts) else n
        cfg.blocks[start] = BasicBlock(start, end)

    for block in cfg.blocks.values():
        last = block.end - 1
        instr = program.instrs[last]
        kind = instr.spec.kind
        succs: List[int] = []
        target = _target_index(program, last)
        if instr.is_branch:
            if target is not None:
                succs.append(target)
            if block.end < n:
                succs.append(block.end)     # fall-through
        elif kind in (Kind.JUMP, Kind.JAL):
            if target is not None:
                succs.append(target)
        elif kind in (Kind.JR, Kind.JALR, Kind.HALT):
            pass                            # indirect or terminal
        elif block.end < n:
            succs.append(block.end)
        block.succs = succs
        for s in succs:
            cfg.blocks[s].preds.append(block.start)
    return cfg
