"""Local list scheduling that maximises definition-to-branch distance.

Within each basic block the scheduler reorders instructions — honouring
all register RAW/WAR/WAW dependences and conservative memory ordering —
so that the backward slice of the terminating branch's predicate is
issued as early as possible and all independent work drops in between.
This is precisely the compiler support of paper Section 5.1: it turns
branches whose predicate is computed "just in time" into ASBR fold
candidates.

Only positions *within* a block change, and any labelled instruction is
treated as a block leader, so every control-flow target (including
potential indirect ones) keeps its address; the transformation is
therefore address-stable and semantics-preserving.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.asm.program import Program
from repro.isa.opcodes import Kind
from repro.sched.cfg import BasicBlock, build_cfg

_CONTROL = (Kind.BRANCH_CMP, Kind.BRANCH_Z, Kind.JUMP, Kind.JAL,
            Kind.JR, Kind.JALR, Kind.HALT, Kind.CTL)


_ACCESS_WIDTH = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4,
                 "sb": 1, "sh": 2, "sw": 4}


def _block_deps(program: Program, block: BasicBlock) -> Dict[int, Set[int]]:
    """Dependence predecessors for each instruction index in the block.

    Memory ordering uses base+offset alias analysis: two accesses
    through the *same, unmodified* base register with provably disjoint
    ``[offset, offset+width)`` ranges are independent; anything else
    involving a store is ordered conservatively.  This is what lets
    compiled code (whose locals all live at distinct frame offsets) be
    scheduled as freely as hand-written code.
    """
    deps: Dict[int, Set[int]] = {i: set() for i in block.indices()}
    last_def: Dict[int, int] = {}
    readers: Dict[int, List[int]] = {}
    reg_version: Dict[int, int] = {}
    # (index, is_store, base_reg, base_version, offset, width)
    mem_ops: List[tuple] = []

    def _disjoint(a, b) -> bool:
        _i1, _s1, base1, ver1, off1, w1 = a
        _i2, _s2, base2, ver2, off2, w2 = b
        if base1 != base2 or ver1 != ver2:
            return False          # bases not provably equal -> may alias
        return off1 + w1 <= off2 or off2 + w2 <= off1

    for i in block.indices():
        instr = program.instrs[i]
        # register dependences
        for r in instr.src_regs:
            if r == 0:
                continue
            if r in last_def:
                deps[i].add(last_def[r])          # RAW
            readers.setdefault(r, []).append(i)
        # the address uses the base register's value *before* any write
        # this instruction itself performs (e.g. lw r4, 0(r4))
        base_version = reg_version.get(instr.rs, 0)
        dest = instr.dest_reg
        if dest is not None and dest != 0:
            if dest in last_def:
                deps[i].add(last_def[dest])       # WAW
            for rd in readers.get(dest, []):
                if rd != i:
                    deps[i].add(rd)               # WAR
            last_def[dest] = i
            readers[dest] = []
            reg_version[dest] = reg_version.get(dest, 0) + 1
        # memory ordering with alias analysis
        if instr.is_load or instr.is_store:
            record = (i, instr.is_store, instr.rs,
                      base_version, instr.imm,
                      _ACCESS_WIDTH[instr.op])
            for prev in mem_ops:
                if (instr.is_store or prev[1]) \
                        and not _disjoint(prev, record):
                    deps[i].add(prev[0])
            mem_ops.append(record)

    # a control terminator stays last
    last = block.end - 1
    if program.instrs[last].spec.kind in _CONTROL:
        for i in block.indices():
            if i != last:
                deps[last].add(i)
    return deps


def _predicate_slice(program: Program, block: BasicBlock,
                     deps: Dict[int, Set[int]]) -> Set[int]:
    """Backward slice of the terminator branch's predicate, if any."""
    last = block.end - 1
    terminator = program.instrs[last]
    if not terminator.is_branch:
        return set()
    zc = terminator.zero_condition
    if zc is None:
        return set()
    _cond, reg = zc
    producer: Optional[int] = None
    for i in range(last - 1, block.start - 1, -1):
        dest = program.instrs[i].dest_reg
        if dest == reg:
            producer = i
            break
    if producer is None:
        return set()   # predicate defined in another block: nothing to do
    sl = set()
    work = [producer]
    while work:
        node = work.pop()
        if node in sl:
            continue
        sl.add(node)
        work.extend(d for d in deps[node] if d not in sl)
    return sl


def _schedule_block(program: Program, block: BasicBlock) -> List[int]:
    """New intra-block order (list of original indices)."""
    deps = _block_deps(program, block)
    priority_set = _predicate_slice(program, block, deps)
    remaining: Dict[int, Set[int]] = {i: set(d) for i, d in deps.items()}
    scheduled: List[int] = []
    ready = [i for i, d in remaining.items() if not d]

    while ready:
        # slice members first, then original order (stable & deterministic)
        ready.sort(key=lambda i: (0 if i in priority_set else 1, i))
        pick = ready.pop(0)
        scheduled.append(pick)
        del remaining[pick]
        for i, d in remaining.items():
            d.discard(pick)
        ready = [i for i, d in remaining.items()
                 if not d and i not in scheduled]
    if len(scheduled) != len(deps):   # pragma: no cover - DAG is acyclic
        raise AssertionError("scheduling deadlock in block %d" % block.start)
    return scheduled


def schedule_program(program: Program) -> Program:
    """Return a new, identically-laid-out program with scheduled blocks."""
    cfg = build_cfg(program)
    # address-taken labels are potential indirect-jump targets and must
    # keep their index; plain (fall-through/branch-target) labels are
    # already block leaders or free to let instructions move past them
    extra_leaders = set()
    for name in program.address_taken:
        try:
            extra_leaders.add(program.index_of(program.labels[name]))
        except (KeyError, ValueError):
            pass
    order: List[int] = list(range(len(program.instrs)))
    for block in cfg.sorted_blocks():
        # honour label leaders inside the block by sub-splitting
        cuts = sorted({block.start, block.end}
                      | {i for i in extra_leaders
                         if block.start < i < block.end})
        for a, b in zip(cuts, cuts[1:]):
            sub = BasicBlock(a, b)
            new_order = _schedule_block(program, sub)
            order[a:b] = new_order

    new_prog = Program(text_base=program.text_base,
                       data_base=program.data_base)
    new_prog.labels = dict(program.labels)
    new_prog.data = dict(program.data)
    new_prog.entry = program.entry
    new_prog.instrs = [program.instrs[i] for i in order]
    from repro.isa.encoding import encode
    new_prog.words = [encode(ins) for ins in new_prog.instrs]
    for new_i, old_i in enumerate(order):
        loc = program.source_map.get(program.pc_of(old_i))
        if loc is not None:
            new_prog.source_map[new_prog.pc_of(new_i)] = loc
    return new_prog


def schedule_for_folding(program: Program) -> Program:
    """Alias with the paper's intent in the name."""
    return schedule_program(program)


def static_fold_distances(program: Program) -> Dict[int, Optional[int]]:
    """Static definition-to-branch distance for every zero-cond branch.

    Returns ``{branch_pc: distance}`` where the distance is counted in
    instructions within the branch's own basic block; ``None`` means the
    predicate register is not defined in the block (the dynamic distance
    is then at least the block length, usually much larger).
    """
    cfg = build_cfg(program)
    result: Dict[int, Optional[int]] = {}
    for block in cfg.sorted_blocks():
        last = block.end - 1
        instr = program.instrs[last]
        if not instr.is_branch:
            continue
        zc = instr.zero_condition
        if zc is None:
            continue
        _cond, reg = zc
        distance: Optional[int] = None
        for i in range(last - 1, block.start - 1, -1):
            if program.instrs[i].dest_reg == reg:
                distance = last - i
                break
        result[program.pc_of(last)] = distance
    return result
