"""Two-level BTB hierarchy: small direct-mapped L1, big set-associative L2.

The organisation follows "Micro BTB" (Gupta & Panda, PAPERS.md): a tiny
first-level table answers in the fetch-critical path, backed by a large
set-associative last level.  Movement between the levels is two-way:

* **upward promotion** — a last-level hit copies the entry into L1 so
  the next lookup of a hot branch is a first-level hit;
* **victim fill** — whatever L1 evicts (on an insert *or* a promotion)
  is demoted into the last level instead of being dropped.

Together these give the invariant the hypothesis suite locks: promotion
never loses a target — any PC→target mapping present before a lookup is
still resolvable after it.

Tag/index math and per-entry sizing come from the shared helpers in
:mod:`repro.predictors.btb`; a plain direct-mapped
:class:`~repro.predictors.btb.BranchTargetBuffer` serves as the L1.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.predictors.btb import (
    TARGET_BITS,
    BranchTargetBuffer,
    entry_state_bits,
    pc_index,
)


class TwoLevelBTB:
    """Decoupled-frontend BTB hierarchy (L1 direct + set-assoc L2)."""

    def __init__(self, l1_entries: int = 64, l2_entries: int = 2048,
                 l2_assoc: int = 4) -> None:
        if l2_assoc <= 0 or l2_assoc & (l2_assoc - 1):
            raise ValueError("L2 associativity must be a power of two")
        if l2_entries <= 0 or l2_entries & (l2_entries - 1):
            raise ValueError("L2 entries must be a power of two")
        if l2_entries % l2_assoc:
            raise ValueError("L2 entries must be a multiple of the "
                             "associativity")
        self.l1 = BranchTargetBuffer(l1_entries)
        self.l2_entries = l2_entries
        self.l2_assoc = l2_assoc
        self._l2_sets = l2_entries // l2_assoc
        self._l2_mask = self._l2_sets - 1
        # per-set: OrderedDict pc -> target; order = LRU (oldest first)
        self._l2: List["OrderedDict[int, int]"] = [
            OrderedDict() for _ in range(self._l2_sets)
        ]

    # ------------------------------------------------------------------
    def lookup(self, pc: int) -> Tuple[Optional[int], int]:
        """``(target, level)`` for ``pc`` — level 1, 2, or ``(None, 0)``.

        A last-level hit promotes the entry to L1; the L1 victim (if
        any) is demoted into the last level, so the pair behaves like an
        exclusive hierarchy and no target is lost to promotion.
        """
        target = self.l1.lookup(pc)
        if target is not None:
            return target, 1
        way = self._l2[pc_index(pc, self._l2_mask)]
        target = way.get(pc)
        if target is None:
            return None, 0
        del way[pc]                      # exclusive: moves up, not copies
        self._fill_l1(pc, target)
        return target, 2

    def insert(self, pc: int, target: int) -> None:
        """Train with a resolved taken target (new entries enter L1)."""
        self._fill_l1(pc, target)

    # ------------------------------------------------------------------
    def _fill_l1(self, pc: int, target: int) -> None:
        l1 = self.l1
        i = pc_index(pc, l1._mask)
        victim_pc = l1._tags[i]
        if victim_pc is not None and victim_pc != pc:
            self._fill_l2(victim_pc, l1._targets[i])
        l1._tags[i] = pc
        l1._targets[i] = target

    def _fill_l2(self, pc: int, target: int) -> None:
        way = self._l2[pc_index(pc, self._l2_mask)]
        if pc in way:
            way.move_to_end(pc)
            way[pc] = target
            return
        if len(way) >= self.l2_assoc:
            way.popitem(last=False)      # true capacity loss, not promotion
        way[pc] = target

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.l1.reset()
        for way in self._l2:
            way.clear()

    def __len__(self) -> int:
        l1_live = sum(1 for t in self.l1._tags if t is not None)
        return l1_live + sum(len(way) for way in self._l2)

    @property
    def state_bits(self) -> int:
        per_entry = entry_state_bits(TARGET_BITS)
        return (self.l1.entries + self.l2_entries) * per_entry

    def __repr__(self) -> str:
        return ("TwoLevelBTB(l1=%d, l2=%dx%d-way)"
                % (self.l1.entries, self._l2_sets, self.l2_assoc))
