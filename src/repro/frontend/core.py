"""The decoupled front end: BPU + FTQ + FDIP glued onto the pipeline.

Mechanism (one simulated cycle, run by ``PipelineSimulator.tick`` just
before the fetch stage):

1. **prefetch retire** — FDIP fills whose memory latency has elapsed
   are installed into the I-cache through its prefetch port (no demand
   accounting);
2. **BPU** — the branch-prediction unit walks the static decode table
   up to ``bpu_width`` instructions ahead of fetch, consulting the
   direction predictor and the :class:`~repro.frontend.btb.TwoLevelBTB`
   for targets, and pushes one :class:`~repro.frontend.ftq.FTQEntry`
   per instruction.  It stops at anything it cannot run past (indirect
   jumps, halt, off-text PCs) by marking the FTQ unresolved;
3. **FDIP issue** — up to ``fdip_degree`` I-cache block prefetches are
   launched for newly-enqueued FTQ entries ("Fetch-Directed Instruction
   Prefetching Revisited", PAPERS.md).

The fetch stage then pops one entry per cycle (``_frontend_fetch``) —
the slack between BPU and fetch is the prefetch lead.  Because the BPU
runs *before* fetch within the cycle, a redirect (EX mispredict, ID
jump miss, or an ASBR fold disagreeing with the predicted direction)
refills the FTQ in time for the next cycle's fetch: redirect penalties
and the zero-cycle ASBR fold are preserved exactly.

Telemetry: the component emits typed events (``btb_hit``/``btb_miss``,
``ftq_occupancy``, ``prefetch_issue``/``useful``/``useless``) through
``self._emit``, which is None until :func:`repro.telemetry.traced.
attach` wires a tracer — the untraced path pays one None check per
site, only in frontend mode.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import Dict, Optional

from repro.frontend.btb import TwoLevelBTB
from repro.frontend.ftq import FetchTargetQueue, FTQEntry
from repro.isa.opcodes import Kind
from repro.telemetry.events import (
    BTB_HIT,
    BTB_MISS,
    FETCH,
    FOLD_HIT,
    FOLD_MISS,
    FTQ_OCCUPANCY,
    PREFETCH_ISSUE,
    PREFETCH_USEFUL,
    PREFETCH_USELESS,
    TraceEvent,
)


@dataclass(frozen=True)
class FrontendConfig:
    """Knobs of the decoupled front end (the DSE dimensions + widths)."""

    btb_l1_entries: int = 64
    btb_l2_entries: int = 2048
    btb_l2_assoc: int = 4
    ftq_depth: int = 8
    fdip: bool = True
    #: instructions the BPU predicts per cycle; > 1 lets it outrun the
    #: single-issue fetch stage and build up FTQ slack for FDIP
    bpu_width: int = 2
    #: prefetches FDIP may issue per cycle
    fdip_degree: int = 2

    def __post_init__(self) -> None:
        if self.bpu_width <= 0:
            raise ValueError("bpu_width must be positive")
        if self.fdip_degree <= 0:
            raise ValueError("fdip_degree must be positive")
        # delegate table-shape validation to the structures themselves
        TwoLevelBTB(self.btb_l1_entries, self.btb_l2_entries,
                    self.btb_l2_assoc)
        FetchTargetQueue(self.ftq_depth)


@dataclass
class FrontendStats:
    """Per-run counters of the decoupled front end."""

    cycles: int = 0               # cycles the front end was clocked
    btb_l1_hits: int = 0
    btb_l2_hits: int = 0
    btb_misses: int = 0
    ftq_pushes: int = 0
    ftq_squashes: int = 0         # redirect recoveries that drained it
    ftq_empty_cycles: int = 0     # fetch wanted an entry, queue was dry
    ftq_occupancy_sum: int = 0    # summed per-cycle depth (for the avg)
    jumps_steered: int = 0        # j/jal resolved by the FTQ, no bubble
    fold_resteers: int = 0        # ASBR fold disagreed with the BPU path
    prefetch_issued: int = 0
    prefetch_useful: int = 0      # demand hit a prefetched block
    prefetch_useless: int = 0     # prefetched block evicted before use
    prefetch_late: int = 0        # demand merged with an in-flight fill

    @property
    def avg_ftq_occupancy(self) -> float:
        return self.ftq_occupancy_sum / self.cycles if self.cycles else 0.0

    def to_dict(self) -> dict:
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["avg_ftq_occupancy"] = self.avg_ftq_occupancy
        return d


class _BTBTrainingPredictor:
    """Predictor proxy installed in frontend mode: ``predict`` passes
    through, ``update`` additionally trains the BTB hierarchy with
    resolved taken targets (the EX-stage handlers keep calling
    ``sim.predictor.update`` unchanged)."""

    __slots__ = ("inner", "btb")

    def __init__(self, inner, btb: TwoLevelBTB) -> None:
        self.inner = inner
        self.btb = btb

    def predict(self, pc: int):
        return self.inner.predict(pc)

    def update(self, pc: int, taken: bool, target: Optional[int]) -> None:
        self.inner.update(pc, taken, target)
        if taken and target is not None:
            self.btb.insert(pc, target)

    def __getattr__(self, name):          # state_bits, reset, repr hooks
        return getattr(self.inner, name)


class DecoupledFrontend:
    """Runtime state of the decoupled front end, bound to one simulator."""

    def __init__(self, sim, config: Optional[FrontendConfig] = None) -> None:
        self.sim = sim
        self.config = config if config is not None else FrontendConfig()
        cfg = self.config
        self.btb = TwoLevelBTB(cfg.btb_l1_entries, cfg.btb_l2_entries,
                               cfg.btb_l2_assoc)
        self.ftq = FetchTargetQueue(cfg.ftq_depth)
        self.stats = FrontendStats()
        self.bpu_pc = sim.fetch_pc
        self._emit = None                 # set by telemetry attach
        self._icache = sim.icache
        self._block_shift = sim.icache._block_shift
        # FDIP state: candidate blocks, fills in flight, fills landed
        self._pending: "deque[int]" = deque()
        self._last_noted = -1
        self._inflight: Dict[int, int] = {}    # block -> ready cycle
        self._prefetched: Dict[int, bool] = {} # block -> unused-so-far

    # ==================================================================
    # per-cycle work (called by tick before the fetch stage)
    # ==================================================================
    def begin_cycle(self) -> None:
        if self._inflight:
            self._fdip_retire()
        self._bpu_step()
        if self._pending:
            self._fdip_issue()
        st = self.stats
        st.cycles += 1
        st.ftq_occupancy_sum += len(self.ftq)
        if self._emit is not None:
            self._emit(TraceEvent(self.sim.stats.cycles, FTQ_OCCUPANCY,
                                  data={"occ": len(self.ftq),
                                        "depth": self.ftq.depth}))

    def _bpu_step(self) -> None:
        """Predict up to ``bpu_width`` instructions ahead of fetch."""
        ftq = self.ftq
        if ftq.unresolved:
            return
        sim = self.sim
        dec = sim._dec
        base = sim._text_base
        end = sim._text_end
        stats = self.stats
        for _ in range(self.config.bpu_width):
            if ftq.full:
                return
            pc = self.bpu_pc
            if pc & 3 or not base <= pc < end:
                # ran off the text segment (wrong path): wait for the
                # redirect rather than fabricating fetches
                ftq.mark_unresolved()
                return
            d = dec[(pc - base) >> 2]

            uf = d.uncond_fold           # CRISP fold resolved statically
            if uf is not None:
                _td, tpc, next_pc = uf
                ftq.push(FTQEntry(tpc, pc, next_pc, False, True))
                stats.ftq_pushes += 1
                self._fdip_note(pc)
                self.bpu_pc = next_pc
                continue

            if d.is_branch:
                pred = sim.predictor.predict(pc)
                sim.stats.predictor_lookups += 1
                target = self._btb_lookup(pc)
                nxt = target if pred.taken and target is not None \
                    else d.pc4
                ftq.push(FTQEntry(pc, pc, nxt, True, False))
                stats.ftq_pushes += 1
                self._fdip_note(pc)
                self.bpu_pc = nxt
                continue

            if d.is_jump:                # j/jal: target only via the BTB
                target = self._btb_lookup(pc)
                nxt = target if target is not None else d.pc4
                ftq.push(FTQEntry(pc, pc, nxt, False, False))
                stats.ftq_pushes += 1
                self._fdip_note(pc)
                self.bpu_pc = nxt
                continue

            ftq.push(FTQEntry(pc, pc, d.pc4, False, False))
            stats.ftq_pushes += 1
            self._fdip_note(pc)
            k = d.instr.spec.kind
            if d.is_halt or k is Kind.JR or k is Kind.JALR:
                # the entry itself must still reach the pipeline; the
                # BPU just cannot predict what follows it
                ftq.mark_unresolved()
                return
            self.bpu_pc = d.pc4

    def _btb_lookup(self, pc: int) -> Optional[int]:
        target, level = self.btb.lookup(pc)
        stats = self.stats
        if level == 1:
            stats.btb_l1_hits += 1
        elif level == 2:
            stats.btb_l2_hits += 1
        else:
            stats.btb_misses += 1
        if self._emit is not None:
            if level:
                self._emit(TraceEvent(self.sim.stats.cycles, BTB_HIT, pc,
                                      data={"level": level}))
            else:
                self._emit(TraceEvent(self.sim.stats.cycles, BTB_MISS, pc))
        return target

    # ==================================================================
    # FDIP: fetch-directed instruction prefetch
    # ==================================================================
    def _fdip_note(self, addr: int) -> None:
        """Nominate the I-cache block of a just-enqueued fetch."""
        if not self.config.fdip:
            return
        block = addr >> self._block_shift
        if block != self._last_noted:
            self._last_noted = block
            self._pending.append(block)

    def _fdip_issue(self) -> None:
        cache = self._icache
        cycle = self.sim.stats.cycles
        penalty = cache.config.miss_penalty
        pending = self._pending
        issued = 0
        while pending and issued < self.config.fdip_degree:
            block = pending.popleft()
            addr = block << self._block_shift
            if block in self._inflight or cache.contains(addr):
                continue
            self._inflight[block] = cycle + penalty
            self.stats.prefetch_issued += 1
            issued += 1
            if self._emit is not None:
                self._emit(TraceEvent(cycle, PREFETCH_ISSUE, addr))

    def _fdip_retire(self) -> None:
        cycle = self.sim.stats.cycles
        ready = [b for b, r in self._inflight.items() if r <= cycle]
        for block in ready:
            del self._inflight[block]
            self._icache.prefetch(block << self._block_shift)
            self._prefetched[block] = True

    def demand_access(self, addr: int) -> int:
        """Fetch-stage I-cache access; returns extra stall cycles.

        Demand hits/misses keep their normal accounting.  A demand
        landing on an in-flight prefetch *merges*: the block fills now,
        the access counts as a demand hit, and only the fill's
        remaining latency is paid.
        """
        cache = self._icache
        block = addr >> self._block_shift
        inflight = self._inflight
        if block in inflight:
            ready = inflight.pop(block)
            cache.prefetch(addr)
            cache.access(addr)           # demand hit on the merged fill
            st = self.stats
            st.prefetch_useful += 1
            st.prefetch_late += 1
            if self._emit is not None:
                self._emit(TraceEvent(self.sim.stats.cycles,
                                      PREFETCH_USEFUL, addr,
                                      data={"late": True}))
            remaining = ready - self.sim.stats.cycles
            return remaining if remaining > 0 else 0
        if block in self._prefetched:
            del self._prefetched[block]
            extra = cache.access(addr)
            if extra == 0:
                self.stats.prefetch_useful += 1
                kind = PREFETCH_USEFUL
            else:                        # evicted before first use
                self.stats.prefetch_useless += 1
                kind = PREFETCH_USELESS
            if self._emit is not None:
                self._emit(TraceEvent(self.sim.stats.cycles, kind, addr))
            return extra
        return cache.access(addr)

    # ==================================================================
    # pipeline-facing control
    # ==================================================================
    def fetch_entry(self) -> Optional[FTQEntry]:
        entry = self.ftq.pop()
        if entry is None:
            self.stats.ftq_empty_cycles += 1
        return entry

    def redirect(self, new_pc: int) -> None:
        """Recovery: drain the FTQ and re-steer the BPU.

        Called for EX redirects (mispredicts, jr/jalr), unsteered ID
        jumps and disagreeing ASBR folds.  The BPU refills from
        ``new_pc`` on the very next :meth:`begin_cycle`, which runs
        before the fetch stage — redirect penalties match the coupled
        front end exactly.
        """
        self.stats.ftq_squashes += 1
        self.ftq.squash()
        self._pending.clear()
        self._last_noted = -1
        self.bpu_pc = new_pc

    def jump_resolved(self, pc: int, target: int) -> None:
        """ID found a j/jal the FTQ did not steer: train and re-steer."""
        self.btb.insert(pc, target)
        self.redirect(target)

    def fold_consumed(self, fold) -> None:
        """Align the FTQ with an ASBR fold taken at demand fetch.

        The fold swallowed the instruction at ``fold.instr_pc``.  When
        the BPU predicted the same direction, the FTQ head *is* that
        instruction — drop it and keep the (still correct, already
        prefetched) queue.  Otherwise re-steer to ``fold.next_pc``; the
        BPU refills before next cycle's fetch, so the fold still costs
        zero cycles.
        """
        head = self.ftq.head()
        if (head is not None and head.pc == fold.instr_pc
                and not head.uncond_fold
                and head.pred_next_pc == fold.next_pc):
            self.ftq.pop()
            return
        if (self.ftq.empty and not self.ftq.unresolved
                and self.bpu_pc == fold.instr_pc):
            self.bpu_pc = fold.next_pc   # BPU had not emitted it yet
            return
        self.stats.fold_resteers += 1
        self.redirect(fold.next_pc)

    # ------------------------------------------------------------------
    # fetch-event emission (mirrors _start_fetch_traced's event shapes;
    # no-ops until a tracer attaches)
    # ------------------------------------------------------------------
    def note_fetch(self, pc: int, seq: int) -> None:
        if self._emit is not None:
            self._emit(TraceEvent(self.sim.stats.cycles, FETCH, pc, seq))

    def note_uncond_fetch(self, tpc: int, seq: int, branch_pc: int) -> None:
        if self._emit is not None:
            self._emit(TraceEvent(self.sim.stats.cycles, FETCH, tpc, seq,
                                  {"fold": "uncond",
                                   "branch_pc": branch_pc}))

    def note_fold_hit(self, fold, pc: int, seq: int) -> None:
        if self._emit is not None:
            cycle = self.sim.stats.cycles
            self._emit(TraceEvent(cycle, FOLD_HIT, pc, seq,
                                  {"taken": fold.taken,
                                   "instr_pc": fold.instr_pc,
                                   "next_pc": fold.next_pc}))
            self._emit(TraceEvent(cycle, FETCH, fold.instr_pc, seq,
                                  {"fold": "asbr", "branch_pc": pc}))

    def note_fold_miss(self, pc: int, asbr) -> None:
        if self._emit is not None:
            self._emit(TraceEvent(self.sim.stats.cycles, FOLD_MISS, pc,
                                  data={"reason": asbr.miss_reason(pc)}))

    @property
    def state_bits(self) -> int:
        """SRAM of the new structures: BTB hierarchy + FTQ payload."""
        # one FTQ entry holds two word-aligned PCs and two flags
        return self.btb.state_bits + self.ftq.depth * (30 + 30 + 2)


def attach_frontend(sim, config) -> DecoupledFrontend:
    """Build a :class:`DecoupledFrontend` onto ``sim`` (pipeline ctor).

    ``config`` may be a :class:`FrontendConfig` or ``True`` (defaults).
    Installs the BTB-training predictor proxy so EX-stage resolution
    trains the hierarchy without touching the resolve handlers.
    """
    if config is True:
        config = FrontendConfig()
    if not isinstance(config, FrontendConfig):
        raise TypeError("frontend= expects a FrontendConfig or True, "
                        "got %r" % (config,))
    fe = DecoupledFrontend(sim, config)
    sim.frontend = fe
    sim.predictor = _BTBTrainingPredictor(sim.predictor, fe.btb)
    return fe
