"""Fetch target queue: the decoupling buffer between BPU and fetch.

The branch-prediction unit (BPU) runs ahead of the fetch stage and
pushes one :class:`FTQEntry` per predicted instruction; the fetch stage
pops one per cycle.  The slack between the two is what FDIP prefetches
against ("Fetch-Directed Instruction Prefetching Revisited", PAPERS.md).

Two safety properties (locked by ``tests/test_frontend_ftq.py``):

* the queue never runs past an *unresolved redirect* — once the BPU
  marks one (an indirect jump, a halt, a PC outside the text segment),
  pushes are refused until a squash resolves it;
* a squash drains the queue completely and clears the unresolved mark
  (the pipeline then re-steers the BPU to the recovery PC).
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class FTQEntry:
    """One predicted fetch: where to fetch, and where fetch goes next."""

    __slots__ = ("pc", "fetch_addr", "pred_next_pc", "is_branch",
                 "uncond_fold")

    def __init__(self, pc: int, fetch_addr: int, pred_next_pc: int,
                 is_branch: bool = False,
                 uncond_fold: bool = False) -> None:
        self.pc = pc                      # PC entering the pipeline
        self.fetch_addr = fetch_addr      # address the I-cache sees
        self.pred_next_pc = pred_next_pc  # BPU's next-fetch assumption
        self.is_branch = is_branch        # conditional: predictor consulted
        self.uncond_fold = uncond_fold    # CRISP fold: pc is the target

    def __repr__(self) -> str:
        return ("FTQEntry(pc=0x%x, next=0x%x%s%s)"
                % (self.pc, self.pred_next_pc,
                   ", br" if self.is_branch else "",
                   ", uncond" if self.uncond_fold else ""))


class FetchTargetQueue:
    """Bounded FIFO of :class:`FTQEntry` with an unresolved-redirect gate."""

    def __init__(self, depth: int = 8) -> None:
        if depth <= 0:
            raise ValueError("FTQ depth must be positive")
        self.depth = depth
        self._q: "deque[FTQEntry]" = deque()
        self._unresolved = False

    # ------------------------------------------------------------------
    @property
    def full(self) -> bool:
        return len(self._q) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._q

    @property
    def occupancy(self) -> int:
        return len(self._q)

    @property
    def unresolved(self) -> bool:
        """True while the BPU waits on a redirect it cannot predict."""
        return self._unresolved

    def __len__(self) -> int:
        return len(self._q)

    # ------------------------------------------------------------------
    def push(self, entry: FTQEntry) -> bool:
        """Append a predicted fetch; refused (False) when the queue is
        full or an unresolved redirect is pending."""
        if self._unresolved or len(self._q) >= self.depth:
            return False
        self._q.append(entry)
        return True

    def mark_unresolved(self) -> None:
        """The BPU hit something it cannot run past (jr/halt/off-text)."""
        self._unresolved = True

    def pop(self) -> Optional[FTQEntry]:
        """Oldest entry, or None when fetch must bubble."""
        return self._q.popleft() if self._q else None

    def head(self) -> Optional[FTQEntry]:
        return self._q[0] if self._q else None

    def squash(self) -> int:
        """Drain everything (redirect recovery); returns entries killed.

        Also clears the unresolved mark — the redirect that squashes is
        by definition the resolution the BPU was waiting for.
        """
        n = len(self._q)
        self._q.clear()
        self._unresolved = False
        return n
