"""Decoupled front end: two-level BTB, fetch target queue, FDIP.

The modern alternative to the paper's fetch-stage branch folding: a
branch-prediction unit that runs *ahead* of fetch, feeding a fetch
target queue whose entries drive fetch-directed instruction prefetching
into the I-cache.  See PAPERS.md ("Fetch-Directed Instruction
Prefetching Revisited"; "Micro BTB") and the ``frontend_frontier``
experiment for the question this package exists to answer: does ASBR
folding still earn its table bits once the front end prefetches and
predicts ahead?

Attach via ``PipelineSimulator(..., frontend=FrontendConfig(...))`` —
default off; a ``frontend=None`` run is bit-identical to the seed
simulator (locked by the golden-stats suite).
"""

from repro.frontend.btb import TwoLevelBTB
from repro.frontend.core import (
    DecoupledFrontend,
    FrontendConfig,
    FrontendStats,
    attach_frontend,
)
from repro.frontend.ftq import FetchTargetQueue, FTQEntry

__all__ = [
    "DecoupledFrontend",
    "FetchTargetQueue",
    "FTQEntry",
    "FrontendConfig",
    "FrontendStats",
    "TwoLevelBTB",
    "attach_frontend",
]
