"""Architectural simulators.

* :class:`~repro.sim.functional.FunctionalSimulator` — instruction-accurate
  golden model; also drives profiling and branch-trace collection.
* :class:`~repro.sim.pipeline.PipelineSimulator` — cycle-accurate 5-stage
  in-order single-issue pipeline with caches, a pluggable branch
  predictor, and optional ASBR branch folding; the measurement vehicle
  for every experiment in the paper.
* :mod:`~repro.sim.blocks` — the block-compiled execution engine behind
  ``engine="blocks"`` on both simulators: basic blocks are compiled to
  specialized Python functions (content-addressed, memoised on disk),
  bit-identical to the interpreted paths.
* :mod:`~repro.sim.superblocks` — the fold-specialized execution engine
  behind ``engine="superblocks"`` on the pipeline simulator: the ASBR
  fold check, BDT update points and predictor updates are compiled into
  the loop body, bit-identical to ``blocks`` and ``interp``.
* :mod:`~repro.sim.batch` — NumPy lockstep batch functional engine
  (:func:`~repro.sim.batch.run_batch`): one program over N lanes as
  ``(32, N)`` array operations, exactly per-lane-equivalent to serial
  :class:`~repro.sim.functional.FunctionalSimulator` runs.
* :class:`~repro.sim.ooo.OoOSimulator` — cycle-accurate R10000-style
  out-of-order backend (rename, issue queue, active list, checkpoint
  recovery) sharing the in-order machine's fetch-side mechanisms
  (ASBR folding, decoupled front end) and architectural semantics.
"""

from repro.sim.batch import BatchResult, LaneResult, run_batch
from repro.sim.blocks import BlockCache, CompiledBlocks, compile_blocks
from repro.sim.functional import (
    FunctionalSimulator,
    SimulationError,
    BranchRecord,
    collect_branch_trace,
)
from repro.sim.ooo import OoOConfig, OoOSimulator, OoOStats
from repro.sim.pipeline import PipelineConfig, PipelineSimulator, PipelineStats

__all__ = [
    "FunctionalSimulator",
    "SimulationError",
    "BranchRecord",
    "collect_branch_trace",
    "PipelineConfig",
    "PipelineSimulator",
    "PipelineStats",
    "OoOConfig",
    "OoOSimulator",
    "OoOStats",
    "BlockCache",
    "CompiledBlocks",
    "compile_blocks",
    "BatchResult",
    "LaneResult",
    "run_batch",
]
