"""Architectural simulators.

* :class:`~repro.sim.functional.FunctionalSimulator` — instruction-accurate
  golden model; also drives profiling and branch-trace collection.
* :class:`~repro.sim.pipeline.PipelineSimulator` — cycle-accurate 5-stage
  in-order single-issue pipeline with caches, a pluggable branch
  predictor, and optional ASBR branch folding; the measurement vehicle
  for every experiment in the paper.
"""

from repro.sim.functional import (
    FunctionalSimulator,
    SimulationError,
    BranchRecord,
    collect_branch_trace,
)
from repro.sim.pipeline import PipelineConfig, PipelineSimulator, PipelineStats

__all__ = [
    "FunctionalSimulator",
    "SimulationError",
    "BranchRecord",
    "collect_branch_trace",
    "PipelineConfig",
    "PipelineSimulator",
    "PipelineStats",
]
