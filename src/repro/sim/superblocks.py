"""Fold-specialized pipeline superblocks (``engine="superblocks"``).

The pipeline blocks engine (:func:`repro.sim.blocks.run_pipeline_blocks`)
already holds every latch and counter in locals, but it still pays three
interpreter-style costs per cycle:

* every control instruction crosses the ``ASBRUnit`` object graph —
  ``try_fold`` walks BIT bank -> dict -> ``BITEntry`` -> BDT entry ->
  ``Dict[Condition, bool]`` and allocates a frozen ``FoldDecision``;
  every producer pays ``acquire``/``release`` bound calls, and every
  release rewrites six ``Condition``-keyed dict slots;
* every in-flight instruction lives in a ``_Slot`` object, so each
  stage's work is a burst of attribute traffic and each fetch re-
  initialises nine attributes through the recycling pool;
* every cache access re-proves MRU status through an ``OrderedDict``
  membership test plus ``move_to_end``.

This module compiles all three away while keeping the cycle-for-cycle
semantics *provably* identical (see DESIGN.md, "Compiled fold checks"):

**Fold superblocks.**  Each BIT entry is compiled, per bank, into one
direct-threaded record ``pc -> (cond_reg, dirs, taken-chain,
fall-chain)`` where both chains carry the pre-decoded replacement
instruction (``_foreign_decode``'d once) and its successor fetch PC.
The BDT is shadowed by two flat lists — per-register validity counter
and *sign class* (0 = zero, 1 = positive, 2 = negative).  The six
direction bits of a :class:`~repro.asbr.bdt.BDTEntry` are a pure
function of the sign class of the last released value, so the compiled
check ``dirs[cls]`` is bit-identical to ``bdt.lookup(reg, cond)`` and a
release collapses from six enum-dict stores to one list store.  The
threshold-2/3/4 update points (``execute``/``mem``/``commit``) keep the
exact deferred-release discipline of the interpreted loop: releases are
queued during stage advance and drained at end of cycle, *after* the
fetch-stage fold check, preserving the paper's validity-counter timing.
Committed ``ctlw`` bank switches fall back to the real
:meth:`~repro.asbr.bit.BankedBIT.select_bank` (validation + switch
counting) and swap in the per-bank compiled map.

**Local-variable latches.**  The five pipeline slots are exploded into
per-stage local variables; a stage advance is a handful of local moves
and a squash is one assignment, so the steady state does no attribute
access and no allocation at all.  ``finally`` rebuilds real ``_Slot``
objects so budget errors and post-run inspection observe exactly the
state the interpreted loop would leave.

**MRU memo.**  Per-set last-tag arrays skip the OrderedDict reproof
when an access hits the line that is already most-recently-used (the
overwhelmingly common case for sequential fetch).  Store hits still
write the dirty bit; miss/eviction/writeback behavior is untouched.

Fallback surface: exactly the blocks engine's — telemetry attach,
fault-injection ``tick`` rebinding, a decoupled frontend or subclassing
all fall back to the interpreted loop (observers need per-cycle
visibility into the real object graph).  The golden-stats locks,
the differential sweep and ``benchmarks/perf_smoke.py`` pin
bit-identity of the full ``PipelineStats`` against both other engines.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.isa.conditions import Condition
from repro.sim.functional import SimulationError

#: direction bit per condition for each sign class of the released
#: value: index 0 = zero, 1 = positive, 2 = negative.  This is
#: ``BDTEntry.update_bits`` evaluated symbolically.
_DIRS_BY_COND: Dict[Condition, Tuple[bool, bool, bool]] = {
    Condition.EQZ: (True, False, False),
    Condition.NEZ: (False, True, True),
    Condition.LTZ: (False, False, True),
    Condition.LEZ: (True, False, True),
    Condition.GTZ: (False, True, False),
    Condition.GEZ: (True, True, False),
}


def _class_of_bits(bits: Dict[Condition, bool]) -> int:
    """Recover the sign class encoded by a consistent direction-bit set."""
    if bits[Condition.EQZ]:
        return 0
    return 2 if bits[Condition.LTZ] else 1


def compile_fold_map(sim, asbr, bank_index: int) -> dict:
    """Compile one BIT bank into direct-threaded fold superblocks.

    Each entry becomes ``pc -> (cond_reg, dirs, taken_d, taken_pc,
    taken_next, fall_d, fall_pc, fall_next)``: the replacement
    instructions are pre-decoded through the simulator's pinned
    ``_foreign_decode`` memo (so identity matches the interpreted fold
    path exactly) and both successor fetch PCs are constants — a fold
    hit transfers straight from the branch PC to its replacement's
    decoded record with no table walk and no allocation.
    """
    fm = {}
    for entry in asbr.bit.banks[bank_index]:
        dirs = _DIRS_BY_COND[entry.condition]
        taken_d = sim._foreign_decode(entry.bti, entry.bta)
        fall_d = sim._foreign_decode(entry.bfi, entry.pc + 4)
        fm[entry.pc] = (entry.cond_reg, dirs,
                        taken_d, entry.bta, entry.bta + 4,
                        fall_d, entry.pc + 4, entry.pc + 8)
    return fm


def run_pipeline_superblocks(sim):
    """Monolithic fast twin of ``PipelineSimulator.run`` with ASBR
    folding, BDT updates and predictor decisions compiled in.

    Derived from :func:`repro.sim.blocks.run_pipeline_blocks`; see the
    module docstring for what is specialized further.  Bit-identical
    timing and ASBR statistics are locked by the golden suite.
    """
    from repro.predictors.bimodal import BimodalPredictor
    from repro.predictors.simple import NotTakenPredictor
    from repro.sim.pipeline import _Slot

    stats = sim.stats
    if sim.halted:
        return stats
    max_cycles = sim.config.max_cycles
    asbr = sim.asbr
    predictor = sim.predictor
    pred_predict = predictor.predict
    pred_update = predictor.update
    if type(predictor) is NotTakenPredictor:
        pmode = 1
        counters = p_mask = btb_tags = btb_targets = b_mask = None
    elif type(predictor) is BimodalPredictor:
        pmode = 2
        counters = predictor._counters
        p_mask = predictor._mask
        btb = predictor.btb
        btb_tags = btb._tags
        btb_targets = btb._targets
        b_mask = btb._mask
    else:
        pmode = 0
        counters = p_mask = btb_tags = btb_targets = b_mask = None
    regs = sim._reglist
    mem_read = sim._mem_read
    mem_write = sim._mem_write
    dec = sim._dec
    base = sim._text_base
    end = sim._text_end
    bdt_commit = sim._bdt_commit
    rel_mem = sim._rel_mem
    rel_ex = sim._rel_ex
    pending = sim._pending_releases     # list identity is stable

    # ---- ASBR compiled state (shadow BDT + per-bank fold maps) -------
    if asbr is not None:
        bit = asbr.bit
        bdt = asbr.bdt
        bdt_entries = bdt.entries
        cmax = bdt.counter_max
        bcnt = [e.counter for e in bdt_entries]
        bcls = [_class_of_bits(e.bits) for e in bdt_entries]
        btouched = [False] * len(bdt_entries)
        ctl_write = asbr.control_write
        fold_maps = {bit.active: compile_fold_map(sim, asbr, bit.active)}
        fold_map = fold_maps[bit.active]
        fstats = asbr.stats
        f_taken = fstats.folded_taken
        f_nt = fstats.folded_not_taken
        f_inv = fstats.invalid_fallbacks
        per_pc = fstats.per_pc_folds
        asbr_on = True
    else:
        bit = bdt = bdt_entries = None
        cmax = 0
        bcnt = bcls = btouched = None
        ctl_write = None
        fold_map = None
        fstats = None
        f_taken = f_nt = f_inv = 0
        per_pc = None
        asbr_on = False

    # cache geometry/statistics, hoisted, plus per-set MRU tag memos
    icache = sim.icache
    ic_sets = icache._sets
    ic_shift = icache._block_shift
    ic_smask = icache._set_mask
    ic_assoc = icache.config.assoc
    ic_pen = icache.config.miss_penalty
    ic_wbpen = icache.config.writeback_penalty
    ic_stats = icache.stats
    ic_acc = ic_stats.accesses
    ic_miss = ic_stats.misses
    ic_wbk = ic_stats.writebacks
    ic_last = [-1] * len(ic_sets)
    dcache = sim.dcache
    dc_sets = dcache._sets
    dc_shift = dcache._block_shift
    dc_smask = dcache._set_mask
    dc_assoc = dcache.config.assoc
    dc_pen = dcache.config.miss_penalty
    dc_wbpen = dcache.config.writeback_penalty
    dc_stats = dcache.stats
    dc_acc = dc_stats.accesses
    dc_miss = dc_stats.misses
    dc_wbk = dc_stats.writebacks
    dc_last = [-1] * len(dc_sets)

    # ---- latches exploded into per-stage locals ----------------------
    # d is the occupancy sentinel (stage empty <=> d is None); fields
    # not listed for a stage are never read once the slot is there.
    s = sim.s_if
    if s is not None:
        f_d, f_pc, f_fo, f_uf, f_pr = (s.d, s.pc, s.folded,
                                       s.uncond_folded, s.pred_next_pc)
    else:
        f_d = None
        f_pc = f_pr = 0
        f_fo = f_uf = False
    s = sim.s_id
    if s is not None:
        i_d, i_pc, i_fo, i_uf, i_pr = (s.d, s.pc, s.folded,
                                       s.uncond_folded, s.pred_next_pc)
        i_acq = s.acquired_reg
        i_done = s.id_done
    else:
        i_d = i_acq = None
        i_pc = i_pr = 0
        i_fo = i_uf = i_done = False
    s = sim.s_ex
    if s is not None:
        e_d, e_pc, e_fo, e_uf, e_pr = (s.d, s.pc, s.folded,
                                       s.uncond_folded, s.pred_next_pc)
        e_acq = s.acquired_reg
        e_done = s.ex_done
        e_res, e_addr, e_sv = s.result, s.mem_addr, s.store_val
    else:
        e_d = e_acq = None
        e_pc = e_pr = e_res = e_addr = e_sv = 0
        e_fo = e_uf = e_done = False
    s = sim.s_mem
    if s is not None:
        m_d, m_pc, m_fo, m_uf = s.d, s.pc, s.folded, s.uncond_folded
        m_acq = s.acquired_reg
        m_done, m_wait = s.mem_done, s.mem_wait
        m_res, m_addr, m_sv = s.result, s.mem_addr, s.store_val
        dd = s.d.dest
        m_dest = dd if dd is not None else -1
    else:
        m_d = m_acq = None
        m_pc = m_wait = m_res = m_addr = m_sv = 0
        m_fo = m_uf = m_done = False
        m_dest = -1
    s = sim.s_wb
    if s is not None:
        w_d, w_pc, w_fo, w_uf = s.d, s.pc, s.folded, s.uncond_folded
        w_acq = s.acquired_reg
        w_res = s.result
    else:
        w_d = w_acq = None
        w_pc = w_res = 0
        w_fo = w_uf = False
    s = None

    if_wait = sim.if_wait
    fetch_pc = sim.fetch_pc
    fetch_halted = sim._fetch_halted
    suppress = sim._suppress_fetch
    halted = False

    # statistics counters
    cycles = stats.cycles
    committed = stats.committed
    fetched = stats.fetched
    squashed = stats.squashed
    branches = stats.branches
    mispredicts = stats.branch_mispredicts
    folds = stats.folds_committed
    uncond_folds = stats.uncond_folds_committed
    lookups = stats.predictor_lookups
    jump_bubbles = stats.jump_bubbles
    jr_redirects = stats.jr_redirects
    load_use = stats.load_use_stalls
    istalls = stats.icache_miss_stalls
    dstalls = stats.dcache_miss_stalls

    try:
        while True:
            if cycles >= max_cycles:
                raise SimulationError(
                    "cycle budget (%d) exhausted; fetch_pc=0x%x"
                    % (max_cycles, fetch_pc))
            cycles += 1
            suppress = False

            # ---- WB: commit ----------------------------------------
            if w_d is not None:
                d = w_d
                dest = d.dest
                if dest is not None and dest != 0:
                    regs[dest] = w_res & 4294967295
                    if w_acq is not None and bdt_commit:
                        pending.append((dest, w_res))
                if w_fo:
                    folds += 1
                if w_uf:
                    uncond_folds += 1
                committed += 1
                w_d = None
                if d.is_halt:
                    # nothing younger may have architectural effect —
                    # and pending releases die with the wrong path
                    halted = True
                    break
                if d.is_ctl and asbr_on:
                    prev_bank = bit.active
                    ctl_write(d.imm)
                    active = bit.active
                    if active != prev_bank:
                        fold_map = fold_maps.get(active)
                        if fold_map is None:
                            fold_map = compile_fold_map(sim, asbr, active)
                            fold_maps[active] = fold_map

            # ---- MEM: first-cycle work -----------------------------
            if m_d is not None and not m_done:
                d = m_d
                m_done = True
                if d.is_load:
                    addr = m_addr
                    v = mem_read(addr, d.size)
                    lf = d.lfk
                    if lf == 1:                     # lw
                        m_res = v & 4294967295
                    elif lf == 2:                   # lbu
                        m_res = v & 255
                    elif lf == 3:                   # lhu
                        m_res = v & 65535
                    elif lf == 4:                   # lb
                        v &= 255
                        m_res = ((v - 256) & 4294967295
                                 if v & 128 else v)
                    elif lf == 5:                   # lh
                        v &= 65535
                        m_res = ((v - 65536) & 4294967295
                                 if v & 32768 else v)
                    else:
                        m_res = d.load_fix(v)
                    tag = addr >> dc_shift
                    si = tag & dc_smask
                    dc_acc += 1
                    if dc_last[si] == tag:          # already MRU: hit
                        m_wait = 0
                    else:
                        way = dc_sets[si]
                        if tag in way:
                            way.move_to_end(tag)
                            dc_last[si] = tag
                            m_wait = 0
                        else:
                            dc_miss += 1
                            extra = dc_pen
                            if len(way) >= dc_assoc:
                                _victim, dirty = way.popitem(last=False)
                                if dirty:
                                    dc_wbk += 1
                                    extra += dc_wbpen
                            way[tag] = False
                            dc_last[si] = tag
                            m_wait = extra
                            dstalls += extra
                elif d.is_store:
                    addr = m_addr
                    mem_write(addr, m_sv, d.size)
                    tag = addr >> dc_shift
                    si = tag & dc_smask
                    dc_acc += 1
                    way = dc_sets[si]
                    if dc_last[si] == tag:          # already MRU: hit
                        way[tag] = True             # still sets dirty
                        m_wait = 0
                    elif tag in way:
                        way.move_to_end(tag)
                        way[tag] = True
                        dc_last[si] = tag
                        m_wait = 0
                    else:
                        dc_miss += 1
                        extra = dc_pen
                        if len(way) >= dc_assoc:
                            _victim, dirty = way.popitem(last=False)
                            if dirty:
                                dc_wbk += 1
                                extra += dc_wbpen
                        way[tag] = True
                        dc_last[si] = tag
                        m_wait = extra
                        dstalls += extra
                else:
                    m_wait = 0

            # ---- EX: first-cycle work (may squash and redirect) ----
            if e_d is not None and not e_done:
                e_done = True
                d = e_d
                k = d.exk
                if 1 <= k <= 3:                     # ALU_RRR/SHIFT_I/ALU_RRI
                    rr = d.rs
                    if rr == 0:
                        a = 0
                    elif rr == m_dest:
                        a = m_res
                    else:
                        a = regs[rr]
                    if k == 3:
                        b2 = d.imm
                    elif k == 2:
                        b2 = d.shamt
                    else:
                        rr = d.rt
                        if rr == 0:
                            b2 = 0
                        elif rr == m_dest:
                            b2 = m_res
                        else:
                            b2 = regs[rr]
                    ak = d.aluk
                    if ak == 1:                     # add/addu
                        e_res = (a + b2) & 4294967295
                    elif ak == 3:                   # and
                        e_res = a & b2
                    elif ak == 4:                   # or
                        e_res = a | b2
                    elif ak == 2:                   # sub/subu
                        e_res = (a - b2) & 4294967295
                    elif ak == 8:                   # sll
                        e_res = (a << (b2 & 31)) & 4294967295
                    elif ak == 9:                   # srl
                        e_res = (a & 4294967295) >> (b2 & 31)
                    elif ak == 6:                   # slt (sign-bias trick)
                        e_res = (1 if ((a & 4294967295) ^ 2147483648)
                                 < ((b2 & 4294967295) ^ 2147483648)
                                 else 0)
                    elif ak == 7:                   # sltu
                        e_res = (1 if (a & 4294967295)
                                 < (b2 & 4294967295) else 0)
                    elif ak == 5:                   # xor
                        e_res = a ^ b2
                    else:                           # sra/mul/div/rem/nor
                        e_res = d.alu(a, b2)
                elif k == 5:                        # LOAD
                    rr = d.rs
                    if rr == 0:
                        a = 0
                    elif rr == m_dest:
                        a = m_res
                    else:
                        a = regs[rr]
                    e_addr = (a + d.imm) & 4294967295
                elif k == 8 or k == 7:              # BRANCH_Z / BRANCH_CMP
                    rr = d.rs
                    if rr == 0:
                        a = 0
                    elif rr == m_dest:
                        a = m_res
                    else:
                        a = regs[rr]
                    if k == 8:
                        ck = d.condk
                        if ck == 1:                 # ==0
                            taken = a == 0
                        elif ck == 2:               # !=0
                            taken = a != 0
                        elif ck == 3:               # <0
                            taken = a >= 2147483648
                        elif ck == 4:               # <=0
                            taken = a == 0 or a >= 2147483648
                        elif ck == 5:               # >0
                            taken = 0 < a < 2147483648
                        elif ck == 6:               # >=0
                            taken = a < 2147483648
                        else:
                            taken = d.cond(a)
                    else:
                        rr = d.rt
                        if rr == 0:
                            bb = 0
                        elif rr == m_dest:
                            bb = m_res
                        else:
                            bb = regs[rr]
                        taken = (a == bb) == d.eq_sense
                    target = d.br_target
                    actual = target if taken else d.pc4
                    branches += 1
                    if pmode == 2:                  # bimodal, inlined
                        pp = e_pc
                        pi = (pp >> 2) & p_mask
                        c = counters[pi]
                        if taken:
                            if c < 3:
                                counters[pi] = c + 1
                            bi = (pp >> 2) & b_mask
                            btb_tags[bi] = pp
                            btb_targets[bi] = target
                        elif c > 0:
                            counters[pi] = c - 1
                    elif pmode == 0:
                        pred_update(e_pc, taken, target)
                    # pmode == 1: not-taken update is a no-op
                    if actual != e_pr:
                        mispredicts += 1
                        # EX redirect: squash the two younger stages
                        if i_d is not None:
                            squashed += 1
                            ar = i_acq
                            if ar is not None:
                                if bcnt[ar] <= 0:
                                    raise RuntimeError(
                                        "BDT cancel without acquire on r%d"
                                        % ar)
                                bcnt[ar] -= 1
                                i_acq = None
                            i_d = None
                        if f_d is not None:
                            squashed += 1
                            f_d = None
                        if_wait = 0
                        fetch_pc = actual
                        suppress = True
                        fetch_halted = False
                elif k == 6:                        # STORE
                    rr = d.rs
                    if rr == 0:
                        a = 0
                    elif rr == m_dest:
                        a = m_res
                    else:
                        a = regs[rr]
                    rr = d.rt
                    if rr == 0:
                        bb = 0
                    elif rr == m_dest:
                        bb = m_res
                    else:
                        bb = regs[rr]
                    e_addr = (a + d.imm) & 4294967295
                    e_sv = bb
                elif k == 4:                        # LUI
                    e_res = d.result_const
                elif k == 9:                        # JAL
                    e_res = d.pc4
                elif k == 10 or k == 11:            # JR / JALR
                    if k == 11:
                        e_res = d.pc4
                    rr = d.rs
                    if rr == 0:
                        a = 0
                    elif rr == m_dest:
                        a = m_res
                    else:
                        a = regs[rr]
                    if i_d is not None:
                        squashed += 1
                        ar = i_acq
                        if ar is not None:
                            if bcnt[ar] <= 0:
                                raise RuntimeError(
                                    "BDT cancel without acquire on r%d"
                                    % ar)
                            bcnt[ar] -= 1
                            i_acq = None
                        i_d = None
                    if f_d is not None:
                        squashed += 1
                        f_d = None
                    if_wait = 0
                    fetch_pc = a
                    suppress = True
                    fetch_halted = False
                    jr_redirects += 1
                # else k == 0: JUMP/HALT/CTL — nothing to compute

            # ---- ID: first-cycle work (jump redirect, BDT acquire) -
            if i_d is not None and not i_done:
                i_done = True
                d = i_d
                if asbr_on:
                    dest = d.dest
                    if dest is not None and dest != 0:
                        c = bcnt[dest]
                        if c >= cmax:
                            raise OverflowError(
                                "BDT validity counter overflow on r%d "
                                "(more than %d in-flight producers)"
                                % (dest, cmax))
                        bcnt[dest] = c + 1
                        i_acq = dest
                if d.is_halt:
                    fetch_halted = True
                elif d.is_jump:
                    if f_d is not None:
                        squashed += 1
                        f_d = None
                    if_wait = 0
                    fetch_pc = d.jump_target
                    suppress = True
                    jump_bubbles += 1

            # ---- IF: start a new fetch -----------------------------
            if f_d is None and not suppress and not fetch_halted:
                pc = fetch_pc
                if not (pc & 3) and base <= pc < end:
                    d = dec[(pc - base) >> 2]
                    tag = pc >> ic_shift
                    si = tag & ic_smask
                    ic_acc += 1
                    if ic_last[si] == tag:          # already MRU: hit
                        if_wait = 0
                    else:
                        way = ic_sets[si]
                        if tag in way:
                            way.move_to_end(tag)
                            ic_last[si] = tag
                            if_wait = 0
                        else:
                            ic_miss += 1
                            extra = ic_pen
                            if len(way) >= ic_assoc:
                                _victim, dirty = way.popitem(last=False)
                                if dirty:
                                    ic_wbk += 1
                                    extra += ic_wbpen
                            way[tag] = False
                            ic_last[si] = tag
                            if_wait = extra
                            istalls += extra
                    uf = d.uncond_fold
                    if uf is not None:
                        td, tpc, next_pc = uf
                        f_d = td
                        f_pc = tpc
                        f_fo = False
                        f_uf = True
                        fetched += 1
                        fetch_pc = next_pc
                    elif d.is_branch:
                        t = fold_map.get(pc) if asbr_on else None
                        if t is not None:
                            # compiled try_fold: BIT hit; check the
                            # shadow validity counter, then thread to
                            # the pre-decoded replacement chain
                            creg = t[0]
                            if bcnt[creg]:
                                f_inv += 1
                                t = None
                            else:
                                per_pc[pc] = per_pc.get(pc, 0) + 1
                                if t[1][bcls[creg]]:
                                    f_taken += 1
                                    f_d = t[2]
                                    f_pc = t[3]
                                    fetch_pc = t[4]
                                else:
                                    f_nt += 1
                                    f_d = t[5]
                                    f_pc = t[6]
                                    fetch_pc = t[7]
                                f_fo = True
                                f_uf = False
                                fetched += 1
                        if t is None:
                            lookups += 1
                            if pmode == 2:          # bimodal, inlined
                                if counters[(pc >> 2) & p_mask] >= 2:
                                    bi = (pc >> 2) & b_mask
                                    pt = (btb_targets[bi]
                                          if btb_tags[bi] == pc else None)
                                else:
                                    pt = None
                            elif pmode == 1:        # not-taken
                                pt = None
                            else:
                                pred = pred_predict(pc)
                                pt = (pred.target if pred.taken
                                      and pred.target is not None else None)
                            f_d = d
                            f_pc = pc
                            f_fo = False
                            f_uf = False
                            f_pr = pt if pt is not None else d.pc4
                            fetched += 1
                            fetch_pc = f_pr
                    else:
                        f_d = d
                        f_pc = pc
                        f_fo = False
                        f_uf = False
                        fetched += 1
                        fetch_pc = d.pc4

            # ---- advance latches downstream-first ------------------
            # MEM -> WB
            if m_d is not None and m_done:
                if m_wait > 0:
                    m_wait -= 1
                else:
                    ar = m_acq
                    if ar is not None and (rel_mem
                                           or (rel_ex and m_d.is_load)):
                        pending.append((ar, m_res))
                        m_acq = None
                    w_d = m_d
                    w_pc = m_pc
                    w_fo = m_fo
                    w_uf = m_uf
                    w_acq = m_acq
                    w_res = m_res
                    m_d = None
                    m_dest = -1

            # EX -> MEM (the load-use interlock below still checks the
            # instruction that spent this cycle in EX, so keep its d)
            exd0 = e_d
            if e_d is not None and e_done and m_d is None:
                ar = e_acq
                if rel_ex and ar is not None and not e_d.is_load:
                    pending.append((ar, e_res))
                    ar = None
                m_d = e_d
                m_pc = e_pc
                m_fo = e_fo
                m_uf = e_uf
                m_acq = ar
                m_done = False
                m_res = e_res
                m_addr = e_addr
                m_sv = e_sv
                dd = e_d.dest
                m_dest = dd if dd is not None else -1
                e_d = None

            # ID -> EX (load-use interlock against this cycle's EX)
            if i_d is not None and i_done and e_d is None:
                if exd0 is not None and exd0.is_load:
                    if exd0.dest_mask & i_d.src_mask:
                        load_use += 1
                    else:
                        e_d = i_d
                        e_pc = i_pc
                        e_fo = i_fo
                        e_uf = i_uf
                        e_pr = i_pr
                        e_acq = i_acq
                        e_done = False
                        i_d = None
                else:
                    e_d = i_d
                    e_pc = i_pc
                    e_fo = i_fo
                    e_uf = i_uf
                    e_pr = i_pr
                    e_acq = i_acq
                    e_done = False
                    i_d = None

            # IF -> ID
            if f_d is not None:
                if if_wait > 0:
                    if_wait -= 1
                elif i_d is None:
                    i_d = f_d
                    i_pc = f_pc
                    i_fo = f_fo
                    i_uf = f_uf
                    i_pr = f_pr
                    i_acq = None
                    i_done = False
                    f_d = None

            # ---- apply deferred BDT releases (compiled): decrement
            # the shadow counter and store the released value's sign
            # class — update_bits reduced to one list write ------------
            if pending:
                for reg, value in pending:
                    if bcnt[reg] <= 0:
                        raise RuntimeError(
                            "BDT release without acquire on r%d" % reg)
                    bcnt[reg] -= 1
                    v = value & 4294967295
                    bcls[reg] = (0 if v == 0
                                 else (2 if v >= 2147483648 else 1))
                    btouched[reg] = True
                del pending[:]
    finally:
        stats.cycles = cycles
        stats.committed = committed
        stats.fetched = fetched
        stats.squashed = squashed
        stats.branches = branches
        stats.branch_mispredicts = mispredicts
        stats.folds_committed = folds
        stats.uncond_folds_committed = uncond_folds
        stats.predictor_lookups = lookups
        stats.jump_bubbles = jump_bubbles
        stats.jr_redirects = jr_redirects
        stats.load_use_stalls = load_use
        stats.icache_miss_stalls = istalls
        stats.dcache_miss_stalls = dstalls
        ic_stats.accesses = ic_acc
        ic_stats.misses = ic_miss
        ic_stats.writebacks = ic_wbk
        dc_stats.accesses = dc_acc
        dc_stats.misses = dc_miss
        dc_stats.writebacks = dc_wbk
        # write the shadow BDT back into the real table: counters
        # always, direction bits for every register that saw a release
        if asbr_on:
            for r, e in enumerate(bdt_entries):
                e.counter = bcnt[r]
                if btouched[r]:
                    c = bcls[r]
                    b = e.bits
                    b[Condition.EQZ] = c == 0
                    b[Condition.NEZ] = c != 0
                    b[Condition.LTZ] = c == 2
                    b[Condition.LEZ] = c != 1
                    b[Condition.GTZ] = c == 1
                    b[Condition.GEZ] = c != 2
            fstats.folded_taken = f_taken
            fstats.folded_not_taken = f_nt
            fstats.invalid_fallbacks = f_inv
        # rebuild real slots so exception paths and inspection observe
        # the interpreted loop's state
        if f_d is not None:
            s = _Slot(f_d, f_pc)
            s.folded = f_fo
            s.uncond_folded = f_uf
            s.pred_next_pc = f_pr
            sim.s_if = s
        else:
            sim.s_if = None
        if i_d is not None:
            s = _Slot(i_d, i_pc)
            s.folded = i_fo
            s.uncond_folded = i_uf
            s.pred_next_pc = i_pr
            s.acquired_reg = i_acq
            s.id_done = i_done
            sim.s_id = s
        else:
            sim.s_id = None
        if e_d is not None:
            s = _Slot(e_d, e_pc)
            s.folded = e_fo
            s.uncond_folded = e_uf
            s.pred_next_pc = e_pr
            s.acquired_reg = e_acq
            s.ex_done = e_done
            s.result = e_res
            s.mem_addr = e_addr
            s.store_val = e_sv
            sim.s_ex = s
        else:
            sim.s_ex = None
        if m_d is not None:
            s = _Slot(m_d, m_pc)
            s.folded = m_fo
            s.uncond_folded = m_uf
            s.acquired_reg = m_acq
            s.mem_done = m_done
            s.mem_wait = m_wait
            s.result = m_res
            s.mem_addr = m_addr
            s.store_val = m_sv
            sim.s_mem = s
        else:
            sim.s_mem = None
        if w_d is not None:
            s = _Slot(w_d, w_pc)
            s.folded = w_fo
            s.uncond_folded = w_uf
            s.acquired_reg = w_acq
            s.result = w_res
            sim.s_wb = s
        else:
            sim.s_wb = None
        sim.if_wait = if_wait
        sim.fetch_pc = fetch_pc
        sim._fetch_halted = fetch_halted
        sim._suppress_fetch = suppress
        if halted:
            sim.halted = True
    return stats
