"""Instruction-accurate functional simulator (the golden model).

Executes one instruction per step with no timing.  Its committed
architectural state defines correctness for the pipelined simulator: for
any program and any pipeline configuration (predictor, ASBR on/off), the
final registers and memory must match this model exactly.

The simulator also doubles as the profiling engine: ``run`` accepts an
*observer* that is called on every retired instruction, which the branch
profiler in :mod:`repro.profiling` uses to collect branch outcome traces
and definition-to-branch distances.

Fast path
---------
At construction the simulator compiles every static instruction into a
small closure (an *execution plan*) with the opcode dispatch, ALU
callable, operand register indices and control-flow targets all resolved
ahead of time — the PC of each text slot is fixed, so even branch and
jump targets are absolute constants.  ``run``/``step`` execute plans
directly; :meth:`FunctionalSimulator.execute` remains the reference
(re-dispatching) implementation and defines the architectural semantics
the plans must reproduce (see ``tests/test_differential_random.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.asm.program import Program, STACK_TOP
from repro.isa.alu import (
    LOAD_FIX,
    MASK32,
    ZERO_TESTS_U,
    alu_execute,
    alu_fn,
    load_value,
    to_signed,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Kind
from repro.isa.registers import RegisterFile
from repro.memory.main_memory import MainMemory

_LOAD_SIZE = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}
_STORE_SIZE = {"sb": 1, "sh": 2, "sw": 4}


class SimulationError(RuntimeError):
    """A program did something architecturally illegal."""


@dataclass
class BranchRecord:
    """One dynamic conditional-branch execution."""

    pc: int
    taken: bool
    target: int          # taken-target address


class FunctionalSimulator:
    """Executes a :class:`~repro.asm.program.Program` one instruction at
    a time.

    Parameters
    ----------
    program:
        The assembled program.  Text and data are loaded into ``memory``.
    memory:
        Optional pre-built memory (e.g. with workload input arrays
        already written).  When supplied, the caller owns data-segment
        initialisation — typically by starting from ``program.data``
        and overlaying inputs, as :mod:`repro.workloads.loader` does.
        When omitted, a fresh memory is created and the program's data
        segment is loaded into it.  A private copy is NOT taken; pass
        ``memory.copy()`` if the caller wants to keep the original.
    engine:
        ``"interp"`` (default) runs the per-instruction plan loop;
        ``"blocks"`` runs the block-compiled translation cache
        (:mod:`repro.sim.blocks`) — bit-identical architectural state,
        retire counts and errors, several times faster.
        ``"superblocks"`` is accepted as an alias for ``"blocks"``:
        the functional translation cache already chains hot
        block-to-block successors (the pipeline engines are where the
        two differ).  ``run`` falls back to the interpreted loop
        whenever an observer or tracer is attached (they need
        per-instruction visibility).
    blocks_cache_dir:
        optional directory for on-disk compiled-block artifacts
        (defaults to ``$REPRO_BLOCKS_CACHE``; unset = no disk cache).
    """

    def __init__(self, program: Program,
                 memory: Optional[MainMemory] = None,
                 engine: str = "interp",
                 blocks_cache_dir: Optional[str] = None) -> None:
        if engine not in ("interp", "blocks", "superblocks"):
            raise ValueError(
                "unknown engine %r (expected 'interp', 'blocks' or "
                "'superblocks')" % (engine,))
        if engine == "superblocks":
            engine = "blocks"   # functional blocks already chain
        self.engine = engine
        self.program = program
        if memory is None:
            memory = MainMemory()
            for addr, word in program.data.items():
                memory.write_word(addr, word)
        self.memory = memory
        for i, word in enumerate(program.words):
            self.memory.write_word(program.pc_of(i), word)
        self.regs = RegisterFile()
        self.regs.write(29, STACK_TOP)  # sp
        self.pc = program.entry if program.entry is not None \
            else program.text_base
        self.halted = False
        self.instructions_retired = 0
        self.ctl_writes: List[int] = []   # values written via ctlw
        self._plans: List[Callable[[], int]] = [
            self._compile(instr, program.pc_of(i))
            for i, instr in enumerate(program.instrs)
        ]
        # block engine: compiled superblocks bound to this simulator's
        # registers/memory.  The plans above stay — they are the precise
        # single-step path for budget tails and indirect-jump misses.
        self._blocks = None
        if engine == "blocks":
            from repro.sim import blocks as _blocks_mod
            self._blocks = _blocks_mod.bind_functional(
                self, blocks_cache_dir)
            self._blocks_run = _blocks_mod.run_functional_blocks

    # ------------------------------------------------------------------
    # plan compilation (construction-time decode)
    # ------------------------------------------------------------------
    def _compile(self, instr: Instruction, pc: int) -> Callable[[], int]:
        """An argument-free closure executing ``instr`` at its fixed
        ``pc``; returns the next PC.  Must behave exactly like
        :meth:`execute` (the differential suite enforces this)."""
        regs = self.regs.raw
        spec = instr.spec
        k = spec.kind
        op = instr.op
        pc4 = (pc + 4) & MASK32

        if k is Kind.ALU_RRR:
            rd = instr.rd
            if rd == 0:     # write discarded; ALU ops cannot trap
                return lambda: pc4
            def plan(regs=regs, fn=alu_fn(spec.alu_op), rd=rd,
                     rs=instr.rs, rt=instr.rt, pc4=pc4):
                regs[rd] = fn(regs[rs], regs[rt])
                return pc4
            return plan
        if k is Kind.SHIFT_I:
            rd = instr.rd
            if rd == 0:
                return lambda: pc4
            def plan(regs=regs, fn=alu_fn(spec.alu_op), rd=rd,
                     rs=instr.rs, b=instr.shamt, pc4=pc4):
                regs[rd] = fn(regs[rs], b)
                return pc4
            return plan
        if k is Kind.ALU_RRI:
            rt = instr.rt
            if rt == 0:
                return lambda: pc4
            def plan(regs=regs, fn=alu_fn(spec.alu_op), rt=rt,
                     rs=instr.rs, b=instr.imm, pc4=pc4):
                regs[rt] = fn(regs[rs], b)
                return pc4
            return plan
        if k is Kind.LUI:
            rt = instr.rt
            value = (instr.imm << 16) & MASK32
            if rt == 0:
                return lambda: pc4
            def plan(regs=regs, rt=rt, value=value, pc4=pc4):
                regs[rt] = value
                return pc4
            return plan
        if k is Kind.LOAD:
            rt = instr.rt
            if rt == 0:
                # the access (and any alignment trap) still happens
                def plan(regs=regs, read=self.memory.read, rs=instr.rs,
                         imm=instr.imm, size=_LOAD_SIZE[op], pc4=pc4):
                    read((regs[rs] + imm) & MASK32, size)
                    return pc4
                return plan
            def plan(regs=regs, read=self.memory.read, rt=rt, rs=instr.rs,
                     imm=instr.imm, size=_LOAD_SIZE[op], fix=LOAD_FIX[op],
                     pc4=pc4):
                regs[rt] = fix(read((regs[rs] + imm) & MASK32, size))
                return pc4
            return plan
        if k is Kind.STORE:
            def plan(regs=regs, write=self.memory.write, rt=instr.rt,
                     rs=instr.rs, imm=instr.imm, size=_STORE_SIZE[op],
                     pc4=pc4):
                write((regs[rs] + imm) & MASK32, regs[rt], size)
                return pc4
            return plan
        if k is Kind.BRANCH_CMP:
            target = instr.branch_target(pc)
            if op == "beq":
                def plan(regs=regs, rs=instr.rs, rt=instr.rt,
                         target=target, pc4=pc4):
                    return target if regs[rs] == regs[rt] else pc4
            else:
                def plan(regs=regs, rs=instr.rs, rt=instr.rt,
                         target=target, pc4=pc4):
                    return target if regs[rs] != regs[rt] else pc4
            return plan
        if k is Kind.BRANCH_Z:
            def plan(regs=regs, rs=instr.rs,
                     test=ZERO_TESTS_U[spec.condition.value],
                     target=instr.branch_target(pc), pc4=pc4):
                return target if test(regs[rs]) else pc4
            return plan
        if k is Kind.JUMP:
            target = instr.jump_target(pc)
            return lambda: target
        if k is Kind.JAL:
            def plan(regs=regs, target=instr.jump_target(pc), pc4=pc4):
                regs[31] = pc4
                return target
            return plan
        if k is Kind.JR:
            def plan(regs=regs, rs=instr.rs):
                return regs[rs]
            return plan
        if k is Kind.JALR:
            # write before read: jalr rX, rX returns to PC+4
            def plan(regs=regs, rd=instr.rd, rs=instr.rs, pc4=pc4):
                if rd:
                    regs[rd] = pc4
                return regs[rs]
            return plan
        if k is Kind.HALT:
            def plan(sim=self, pc4=pc4):
                sim.halted = True
                return pc4
            return plan
        if k is Kind.CTL:
            def plan(append=self.ctl_writes.append, imm=instr.imm, pc4=pc4):
                append(imm)
                return pc4
            return plan
        raise SimulationError("unhandled kind %s" % k)  # pragma: no cover

    def _plan_index(self, pc: int) -> int:
        """Text index of ``pc``; raises the canonical out-of-text error."""
        i = (pc - self.program.text_base) >> 2
        if pc & 3 or not 0 <= i < len(self._plans):
            self.program.instr_at(pc)   # raises ValueError
        return i

    # ------------------------------------------------------------------
    def step(self) -> Instruction:
        """Execute one instruction; returns the instruction executed."""
        if self.halted:
            raise SimulationError("step() after halt")
        i = self._plan_index(self.pc)
        self.pc = self._plans[i]()
        self.instructions_retired += 1
        return self.program.instrs[i]

    def execute(self, instr: Instruction) -> None:
        """Execute ``instr`` at the current PC and advance the PC.

        This is the reference (re-dispatching) semantics; ``run`` and
        ``step`` use the pre-compiled plans, which must match it.
        """
        pc = self.pc
        next_pc = (pc + 4) & 0xFFFFFFFF
        regs = self.regs
        k = instr.spec.kind

        if k is Kind.ALU_RRR:
            regs.write(instr.rd, alu_execute(
                instr.spec.alu_op, regs[instr.rs], regs[instr.rt]))
        elif k is Kind.SHIFT_I:
            regs.write(instr.rd, alu_execute(
                instr.spec.alu_op, regs[instr.rs], instr.shamt))
        elif k is Kind.ALU_RRI:
            regs.write(instr.rt, alu_execute(
                instr.spec.alu_op, regs[instr.rs], instr.imm))
        elif k is Kind.LUI:
            regs.write(instr.rt, (instr.imm << 16) & 0xFFFFFFFF)
        elif k is Kind.LOAD:
            addr = (regs[instr.rs] + instr.imm) & 0xFFFFFFFF
            raw = self.memory.read(addr, _LOAD_SIZE[instr.op])
            regs.write(instr.rt, load_value(instr.op, raw))
        elif k is Kind.STORE:
            addr = (regs[instr.rs] + instr.imm) & 0xFFFFFFFF
            self.memory.write(addr, regs[instr.rt], _STORE_SIZE[instr.op])
        elif k is Kind.BRANCH_CMP:
            taken = (regs[instr.rs] == regs[instr.rt]) \
                if instr.op == "beq" else (regs[instr.rs] != regs[instr.rt])
            if taken:
                next_pc = instr.branch_target(pc)
        elif k is Kind.BRANCH_Z:
            value = to_signed(regs[instr.rs])
            cond = instr.spec.condition
            taken = _eval_zero(cond.value, value)
            if taken:
                next_pc = instr.branch_target(pc)
        elif k is Kind.JUMP:
            next_pc = instr.jump_target(pc)
        elif k is Kind.JAL:
            regs.write(31, next_pc)
            next_pc = instr.jump_target(pc)
        elif k is Kind.JR:
            next_pc = regs[instr.rs]
        elif k is Kind.JALR:
            regs.write(instr.rd, next_pc)
            next_pc = regs[instr.rs]
        elif k is Kind.HALT:
            self.halted = True
        elif k is Kind.CTL:
            self.ctl_writes.append(instr.imm)
        else:  # pragma: no cover - table is closed
            raise SimulationError("unhandled kind %s" % k)

        self.pc = next_pc
        self.instructions_retired += 1

    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 200_000_000,
            observer: Optional[Callable[[int, Instruction, int], None]]
            = None, trace=None) -> int:
        """Run to ``halt``; returns the number of instructions retired.

        ``observer(pc, instr, next_pc)`` is invoked after each retired
        instruction when supplied (used by the profiler).  ``trace``
        (a :class:`repro.telemetry.Tracer`) is the light telemetry
        hook: it rides the same observer slot, emitting one ``retire``
        event per instruction, and composes with an explicit observer.
        Both default to None and then cost nothing — the loop's
        existing None check is the whole disabled path.  Raises
        :class:`SimulationError` if the instruction budget is exhausted
        (runaway program).
        """
        if trace is not None:
            from repro.telemetry.tracer import retire_observer
            observer = retire_observer(trace, observer)
        if observer is None and self._blocks is not None:
            # block-compiled fast path (engine="blocks"); observers and
            # tracers need per-instruction callbacks, so their presence
            # falls back to the interpreted loop below
            return self._blocks_run(self, max_instructions)
        plans = self._plans
        instrs = self.program.instrs
        base = self.program.text_base
        n = len(plans)
        retired = 0
        try:
            while not self.halted:
                if retired >= max_instructions:
                    raise SimulationError(
                        "instruction budget (%d) exhausted at pc=0x%x"
                        % (max_instructions, self.pc))
                pc = self.pc
                i = (pc - base) >> 2
                if pc & 3 or not 0 <= i < n:
                    self.program.instr_at(pc)   # raises ValueError
                next_pc = plans[i]()
                self.pc = next_pc
                retired += 1
                if observer is not None:
                    observer(pc, instrs[i], next_pc)
        finally:
            self.instructions_retired += retired
        return retired

    # ------------------------------------------------------------------
    def branch_outcome(self, instr: Instruction) -> bool:
        """Would this conditional branch be taken in the current state?

        Does not modify any state — used by predictor evaluation.
        """
        k = instr.spec.kind
        if k is Kind.BRANCH_CMP:
            eq = self.regs[instr.rs] == self.regs[instr.rt]
            return eq if instr.op == "beq" else not eq
        if k is Kind.BRANCH_Z:
            return _eval_zero(instr.spec.condition.value,
                              to_signed(self.regs[instr.rs]))
        raise ValueError("not a conditional branch: %s" % instr)


def _eval_zero(cond_sym: str, value: int) -> bool:
    """Evaluate a zero-comparison on a signed value (hot helper)."""
    if cond_sym == "==0":
        return value == 0
    if cond_sym == "!=0":
        return value != 0
    if cond_sym == "<0":
        return value < 0
    if cond_sym == "<=0":
        return value <= 0
    if cond_sym == ">0":
        return value > 0
    return value >= 0


def collect_branch_trace(program: Program,
                         memory: Optional[MainMemory] = None,
                         max_instructions: int = 200_000_000
                         ) -> List[BranchRecord]:
    """Run a program functionally and record every conditional branch.

    The resulting trace can replay against any number of standalone
    branch predictors far faster than re-running the full simulation,
    which is how the per-branch accuracy tables (paper Figures 7, 9, 10)
    are produced.
    """
    sim = FunctionalSimulator(program, memory)
    trace: List[BranchRecord] = []
    append = trace.append
    plans = sim._plans
    instrs = program.instrs
    base = program.text_base
    n = len(plans)
    retired = 0
    try:
        while not sim.halted:
            if retired >= max_instructions:
                raise SimulationError("instruction budget exhausted")
            pc = sim.pc
            i = (pc - base) >> 2
            if pc & 3 or not 0 <= i < n:
                program.instr_at(pc)   # raises ValueError
            instr = instrs[i]
            if instr.is_branch:
                taken = sim.branch_outcome(instr)
                append(BranchRecord(pc, taken, instr.branch_target(pc)))
            sim.pc = plans[i]()
            retired += 1
    finally:
        sim.instructions_retired += retired
    return trace
