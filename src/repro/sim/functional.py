"""Instruction-accurate functional simulator (the golden model).

Executes one instruction per step with no timing.  Its committed
architectural state defines correctness for the pipelined simulator: for
any program and any pipeline configuration (predictor, ASBR on/off), the
final registers and memory must match this model exactly.

The simulator also doubles as the profiling engine: ``run`` accepts an
*observer* that is called on every retired instruction, which the branch
profiler in :mod:`repro.profiling` uses to collect branch outcome traces
and definition-to-branch distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.asm.program import Program, STACK_TOP
from repro.isa.alu import alu_execute, load_value, to_signed
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Kind
from repro.isa.registers import RegisterFile
from repro.memory.main_memory import MainMemory

_LOAD_SIZE = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}
_STORE_SIZE = {"sb": 1, "sh": 2, "sw": 4}


class SimulationError(RuntimeError):
    """A program did something architecturally illegal."""


@dataclass
class BranchRecord:
    """One dynamic conditional-branch execution."""

    pc: int
    taken: bool
    target: int          # taken-target address


class FunctionalSimulator:
    """Executes a :class:`~repro.asm.program.Program` one instruction at
    a time.

    Parameters
    ----------
    program:
        The assembled program.  Text and data are loaded into ``memory``.
    memory:
        Optional pre-built memory (e.g. with workload input arrays
        already written).  When supplied, the caller owns data-segment
        initialisation — typically by starting from ``program.data``
        and overlaying inputs, as :mod:`repro.workloads.loader` does.
        When omitted, a fresh memory is created and the program's data
        segment is loaded into it.  A private copy is NOT taken; pass
        ``memory.copy()`` if the caller wants to keep the original.
    """

    def __init__(self, program: Program,
                 memory: Optional[MainMemory] = None) -> None:
        self.program = program
        if memory is None:
            memory = MainMemory()
            for addr, word in program.data.items():
                memory.write_word(addr, word)
        self.memory = memory
        for i, word in enumerate(program.words):
            self.memory.write_word(program.pc_of(i), word)
        self.regs = RegisterFile()
        self.regs.write(29, STACK_TOP)  # sp
        self.pc = program.entry if program.entry is not None \
            else program.text_base
        self.halted = False
        self.instructions_retired = 0
        self.ctl_writes: List[int] = []   # values written via ctlw

    # ------------------------------------------------------------------
    def step(self) -> Instruction:
        """Execute one instruction; returns the instruction executed."""
        if self.halted:
            raise SimulationError("step() after halt")
        instr = self.program.instr_at(self.pc)
        self.execute(instr)
        return instr

    def execute(self, instr: Instruction) -> None:
        """Execute ``instr`` at the current PC and advance the PC."""
        pc = self.pc
        next_pc = (pc + 4) & 0xFFFFFFFF
        regs = self.regs
        k = instr.spec.kind

        if k is Kind.ALU_RRR:
            regs.write(instr.rd, alu_execute(
                instr.spec.alu_op, regs[instr.rs], regs[instr.rt]))
        elif k is Kind.SHIFT_I:
            regs.write(instr.rd, alu_execute(
                instr.spec.alu_op, regs[instr.rs], instr.shamt))
        elif k is Kind.ALU_RRI:
            regs.write(instr.rt, alu_execute(
                instr.spec.alu_op, regs[instr.rs], instr.imm))
        elif k is Kind.LUI:
            regs.write(instr.rt, (instr.imm << 16) & 0xFFFFFFFF)
        elif k is Kind.LOAD:
            addr = (regs[instr.rs] + instr.imm) & 0xFFFFFFFF
            raw = self.memory.read(addr, _LOAD_SIZE[instr.op])
            regs.write(instr.rt, load_value(instr.op, raw))
        elif k is Kind.STORE:
            addr = (regs[instr.rs] + instr.imm) & 0xFFFFFFFF
            self.memory.write(addr, regs[instr.rt], _STORE_SIZE[instr.op])
        elif k is Kind.BRANCH_CMP:
            taken = (regs[instr.rs] == regs[instr.rt]) \
                if instr.op == "beq" else (regs[instr.rs] != regs[instr.rt])
            if taken:
                next_pc = instr.branch_target(pc)
        elif k is Kind.BRANCH_Z:
            value = to_signed(regs[instr.rs])
            cond = instr.spec.condition
            taken = _eval_zero(cond.value, value)
            if taken:
                next_pc = instr.branch_target(pc)
        elif k is Kind.JUMP:
            next_pc = instr.jump_target(pc)
        elif k is Kind.JAL:
            regs.write(31, next_pc)
            next_pc = instr.jump_target(pc)
        elif k is Kind.JR:
            next_pc = regs[instr.rs]
        elif k is Kind.JALR:
            regs.write(instr.rd, next_pc)
            next_pc = regs[instr.rs]
        elif k is Kind.HALT:
            self.halted = True
        elif k is Kind.CTL:
            self.ctl_writes.append(instr.imm)
        else:  # pragma: no cover - table is closed
            raise SimulationError("unhandled kind %s" % k)

        self.pc = next_pc
        self.instructions_retired += 1

    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 200_000_000,
            observer: Optional[Callable[[int, Instruction, int], None]]
            = None) -> int:
        """Run to ``halt``; returns the number of instructions retired.

        ``observer(pc, instr, next_pc)`` is invoked after each retired
        instruction when supplied (used by the profiler).  Raises
        :class:`SimulationError` if the instruction budget is exhausted
        (runaway program).
        """
        start = self.instructions_retired
        while not self.halted:
            if self.instructions_retired - start >= max_instructions:
                raise SimulationError(
                    "instruction budget (%d) exhausted at pc=0x%x"
                    % (max_instructions, self.pc))
            pc = self.pc
            instr = self.program.instr_at(pc)
            self.execute(instr)
            if observer is not None:
                observer(pc, instr, self.pc)
        return self.instructions_retired - start

    # ------------------------------------------------------------------
    def branch_outcome(self, instr: Instruction) -> bool:
        """Would this conditional branch be taken in the current state?

        Does not modify any state — used by predictor evaluation.
        """
        k = instr.spec.kind
        if k is Kind.BRANCH_CMP:
            eq = self.regs[instr.rs] == self.regs[instr.rt]
            return eq if instr.op == "beq" else not eq
        if k is Kind.BRANCH_Z:
            return _eval_zero(instr.spec.condition.value,
                              to_signed(self.regs[instr.rs]))
        raise ValueError("not a conditional branch: %s" % instr)


def _eval_zero(cond_sym: str, value: int) -> bool:
    """Evaluate a zero-comparison on a signed value (hot helper)."""
    if cond_sym == "==0":
        return value == 0
    if cond_sym == "!=0":
        return value != 0
    if cond_sym == "<0":
        return value < 0
    if cond_sym == "<=0":
        return value <= 0
    if cond_sym == ">0":
        return value > 0
    return value >= 0


def collect_branch_trace(program: Program,
                         memory: Optional[MainMemory] = None,
                         max_instructions: int = 200_000_000
                         ) -> List[BranchRecord]:
    """Run a program functionally and record every conditional branch.

    The resulting trace can replay against any number of standalone
    branch predictors far faster than re-running the full simulation,
    which is how the per-branch accuracy tables (paper Figures 7, 9, 10)
    are produced.
    """
    sim = FunctionalSimulator(program, memory)
    trace: List[BranchRecord] = []
    append = trace.append
    while not sim.halted:
        if sim.instructions_retired >= max_instructions:
            raise SimulationError("instruction budget exhausted")
        pc = sim.pc
        instr = sim.program.instr_at(pc)
        if instr.is_branch:
            taken = sim.branch_outcome(instr)
            append(BranchRecord(pc, taken, instr.branch_target(pc)))
        sim.execute(instr)
    return trace
