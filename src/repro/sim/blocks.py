"""Block-compiled execution engine (a basic-block translation cache).

The decoded-dispatch fast paths still pay one Python-level indirect call
per retired instruction (functional) or per occupied stage per cycle
(pipeline).  This module removes that floor the way dynamic binary
translators do: straight-line regions are compiled *once per program*
into specialized Python functions, so the per-instruction work collapses
into consecutive statements inside one frame.

Functional engine
-----------------
:func:`discover_leaders` finds basic-block leaders (program entry,
branch targets, branch/``jal`` fall-throughs).  For each leader,
:func:`generate_source` emits one function containing the whole
*superblock*: straight-line code is inlined through unconditional
``j``/``jal`` transfers and across fall-through leader boundaries up to
:data:`CHAIN_CAP` instructions.  Dispatch is *threaded*: every generated
function returns the next block's function object directly (the
functions are siblings in one ``bind()`` scope, so the references are
closure cells — no table lookup between blocks), and the dispatcher
loop is three lines.  Exits that cannot be threaded (indirect jumps to
unknown targets, halt, running off text) are reported through a small
shared list ``S``:

``S[0]``
    progress index *within* the current block, written before every
    memory access — the only statements that can raise — so a trap
    handler can reconstruct the exact architectural PC and retire count.
``S[1]``/``S[3]``
    exit reason (1 = halt retired, 2 = leave the fast path) and exit PC.
``S[2]``
    cumulative retired-instruction count; each block adds its length
    right before its terminator.

Bit-identity with the interpreted loop — including mid-block traps,
``max_instructions`` exhaustion and out-of-text errors — is the whole
point: the generated statements replicate the execution plans of
:class:`~repro.sim.functional.FunctionalSimulator` expression by
expression, and a *budget margin* keeps the fast loop from ever running
past the instruction budget (the precise tail is single-stepped on the
always-present plans).  ``tests/test_differential_random.py``,
``tests/test_stats_golden.py`` and ``tests/test_blocks_engine.py``
enforce the equivalence.

Pipeline engine
---------------
:func:`run_pipeline_blocks` is a statement-for-statement transcription
of ``PipelineSimulator.tick()`` into one monolithic loop: all latch and
stats state lives in locals, the EX dispatch runs on precomputed integer
kind codes (``_Decoded.exk``), hazard checks use register bitmasks, and
commit/squash recycle their slots through a free list so the steady
state allocates nothing.  Cycle counts stay bit-identical (the golden
locks run against both engines).

Caching
-------
Generated sources are memoized per process keyed on the program object
(`id` + mutation ``version``) and content-addressed on disk by
``program_digest`` using the same envelope discipline as
:class:`repro.runner.cache.ResultCache` (version field, sha256 payload
checksum verified on read, atomic temp-file replace, corrupt entries
dropped) — sweep workers compile each workload once per machine, not
once per RunSpec.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.alu import MASK32, _op_div, _op_rem, _sra, to_signed
from repro.isa.opcodes import Kind
from repro.sim.functional import SimulationError

#: bump when the generated code's shape or semantics change — stale
#: on-disk artifacts are ignored, exactly like ResultCache entries
BLOCKS_VERSION = 1

#: superblock length cap: chains inline through unconditional transfers
#: and fall-through leaders until they hit control flow or this many
#: instructions.  Also the budget margin of the functional dispatcher.
CHAIN_CAP = 32

_LOAD_SIZE = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}
_STORE_SIZE = {"sb": 1, "sh": 2, "sw": 4}

# condition-expression templates; same unsigned tests as
# repro.isa.alu.ZERO_TESTS_U (bit 31 set <=> negative)
_ZTEST_FMT = {
    "==0": "%s == 0",
    "!=0": "%s != 0",
    "<0": "%s >= 2147483648",
    "<=0": "%s == 0 or %s >= 2147483648",
    ">0": "0 < %s < 2147483648",
    ">=0": "%s < 2147483648",
}


def _r(reg: int) -> str:
    """Operand expression for a register read (r0 is hardwired zero)."""
    return "0" if reg == 0 else "r[%d]" % reg


def _alu_expr(op: str, a: str, b: str) -> str:
    """Expression computing ALU ``op`` on operand expressions ``a``/``b``.

    Must be value-equivalent to ``repro.isa.alu._ALU_OPS[op](a, b)`` —
    the differential suite compares final register files bit for bit.
    """
    if op in ("add", "addu"):
        return "(%s + %s) & 4294967295" % (a, b)
    if op in ("sub", "subu"):
        return "(%s - %s) & 4294967295" % (a, b)
    if op == "and":
        return "%s & %s" % (a, b)
    if op == "or":
        return "%s | %s" % (a, b)
    if op == "xor":
        return "%s ^ %s" % (a, b)
    if op == "nor":
        return "~(%s | %s) & 4294967295" % (a, b)
    if op == "slt":
        # xor-with-bias maps signed order onto unsigned order, avoiding
        # two to_signed() calls; equivalent to to_signed(a) < to_signed(b)
        return ("1 if ((%s & 4294967295) ^ 2147483648)"
                " < ((%s & 4294967295) ^ 2147483648) else 0" % (a, b))
    if op == "sltu":
        return "1 if (%s & 4294967295) < (%s & 4294967295) else 0" % (a, b)
    if op == "sll":
        return "((%s) << (%s & 31)) & 4294967295" % (a, b)
    if op == "srl":
        return "((%s) & 4294967295) >> (%s & 31)" % (a, b)
    if op == "sra":
        return "_sra(%s, %s & 31)" % (a, b)
    if op == "mul":
        return "(_sgn(%s) * _sgn(%s)) & 4294967295" % (a, b)
    if op == "div":
        return "_div(%s, %s)" % (a, b)
    if op == "rem":
        return "_rem(%s, %s)" % (a, b)
    raise SimulationError("unhandled ALU op %r" % op)  # pragma: no cover


def discover_leaders(program) -> Set[int]:
    """Text indices that start a basic block.

    Leaders: index 0, the entry point, every in-text branch/jump target,
    and the fall-through successor of each conditional branch and each
    ``jal`` (the return point).  Indirect-jump targets are unknown
    statically; the dispatcher single-steps until it rejoins a leader.
    """
    instrs = program.instrs
    n = len(instrs)
    base = program.text_base
    leaders: Set[int] = set()
    if n == 0:
        return leaders
    leaders.add(0)
    if program.entry is not None:
        i = (program.entry - base) >> 2
        if program.entry % 4 == 0 and 0 <= i < n:
            leaders.add(i)

    def add_target(t: int) -> None:
        ti = (t - base) >> 2
        if t % 4 == 0 and 0 <= ti < n:
            leaders.add(ti)

    for i, instr in enumerate(instrs):
        k = instr.spec.kind
        pc = base + 4 * i
        if k is Kind.BRANCH_CMP or k is Kind.BRANCH_Z:
            add_target(instr.branch_target(pc))
            if i + 1 < n:
                leaders.add(i + 1)
        elif k is Kind.JUMP:
            add_target(instr.jump_target(pc))
        elif k is Kind.JAL:
            add_target(instr.jump_target(pc))
            if i + 1 < n:
                leaders.add(i + 1)
    return leaders


def _emit_straight(body: List[str], instr, pc: int, j: int) -> None:
    """Statements for one non-control instruction (plan-equivalent)."""
    spec = instr.spec
    k = spec.kind
    op = instr.op
    if k is Kind.ALU_RRR:
        rd = instr.rd
        if rd:      # rd == 0: write discarded; ALU ops cannot trap
            body.append("r[%d] = %s" % (
                rd, _alu_expr(spec.alu_op, _r(instr.rs), _r(instr.rt))))
        return
    if k is Kind.SHIFT_I:
        rd = instr.rd
        if rd:
            body.append("r[%d] = %s" % (
                rd, _alu_expr(spec.alu_op, _r(instr.rs), repr(instr.shamt))))
        return
    if k is Kind.ALU_RRI:
        rt = instr.rt
        if rt:
            body.append("r[%d] = %s" % (
                rt, _alu_expr(spec.alu_op, _r(instr.rs), repr(instr.imm))))
        return
    if k is Kind.LUI:
        rt = instr.rt
        if rt:
            body.append("r[%d] = %d" % (rt, (instr.imm << 16) & MASK32))
        return
    if k is Kind.LOAD:
        rs, rt = instr.rs, instr.rt
        size = _LOAD_SIZE[op]
        addr = ("%d" % (instr.imm & MASK32) if rs == 0
                else "(r[%d] + %d) & 4294967295" % (rs, instr.imm))
        body.append("S[0] = %d" % j)    # trap point: j instrs completed
        if rt == 0:
            # the access (and any alignment trap) still happens
            body.append("read(%s, %d)" % (addr, size))
        elif op == "lw":
            body.append("r[%d] = read(%s, 4) & 4294967295" % (rt, addr))
        elif op == "lbu":
            body.append("r[%d] = read(%s, 1) & 255" % (rt, addr))
        elif op == "lhu":
            body.append("r[%d] = read(%s, 2) & 65535" % (rt, addr))
        elif op == "lb":
            body.append("v = read(%s, 1) & 255" % addr)
            body.append("r[%d] = (v - 256) & 4294967295 if v & 128 else v"
                        % rt)
        else:   # lh
            body.append("v = read(%s, 2) & 65535" % addr)
            body.append("r[%d] = (v - 65536) & 4294967295 if v & 32768"
                        " else v" % rt)
        return
    if k is Kind.STORE:
        rs = instr.rs
        addr = ("%d" % (instr.imm & MASK32) if rs == 0
                else "(r[%d] + %d) & 4294967295" % (rs, instr.imm))
        body.append("S[0] = %d" % j)
        body.append("write(%s, %s, %d)" % (addr, _r(instr.rt),
                                           _STORE_SIZE[op]))
        return
    if k is Kind.CTL:
        body.append("ctl(%d)" % instr.imm)
        return
    raise SimulationError("unhandled kind %s" % k)  # pragma: no cover


def _compile_block(program, leaders: Set[int], L: int
                   ) -> Tuple[List[str], Tuple[int, ...]]:
    """Body lines + per-slot PCs for the superblock starting at ``L``."""
    instrs = program.instrs
    n = len(instrs)
    base = program.text_base

    def goto(pc: int) -> List[str]:
        """Thread to the block at ``pc``, or leave the fast path."""
        if pc % 4 == 0:
            i = (pc - base) >> 2
            if 0 <= i < n and i in leaders:
                return ["return b%d" % i]
        return ["S[1] = 2", "S[3] = %d" % pc, "return None"]

    body: List[str] = []
    pcs: List[int] = []
    idx = L
    while True:
        if idx >= n:
            # fell off the end of text: the dispatcher reproduces the
            # interpreter's canonical out-of-text error
            term = ["S[1] = 2", "S[3] = %d" % (base + 4 * idx),
                    "return None"]
            break
        pc = base + 4 * idx
        if pcs and len(pcs) >= CHAIN_CAP:
            term = goto(pc)
            break
        instr = instrs[idx]
        k = instr.spec.kind
        pc4 = (pc + 4) & MASK32

        if k is Kind.BRANCH_CMP or k is Kind.BRANCH_Z:
            pcs.append(pc)
            if k is Kind.BRANCH_CMP:
                cmp_op = "==" if instr.op == "beq" else "!="
                cond = "%s %s %s" % (_r(instr.rs), cmp_op, _r(instr.rt))
            else:
                fmt = _ZTEST_FMT[instr.spec.condition.value]
                a = _r(instr.rs)
                cond = fmt % ((a,) * fmt.count("%s"))
            taken = goto(instr.branch_target(pc))
            fall = goto(pc4)
            if len(taken) == 1 and len(fall) == 1:
                # both arms thread: fold into one conditional return
                term = ["%s if %s else %s"
                        % (taken[0], cond, fall[0].replace("return ", ""))]
            else:
                term = ["if %s:" % cond] \
                    + ["    " + ln for ln in taken] + fall
            break
        if k is Kind.JUMP or k is Kind.JAL:
            pcs.append(pc)
            if k is Kind.JAL:
                body.append("r[31] = %d" % pc4)
            t = instr.jump_target(pc)
            ti = (t - base) >> 2
            if t % 4 == 0 and 0 <= ti < n and len(pcs) < CHAIN_CAP:
                idx = ti        # inline straight through the transfer
                continue
            term = goto(t)
            break
        if k is Kind.JR or k is Kind.JALR:
            pcs.append(pc)
            if k is Kind.JALR and instr.rd:
                # write before read: jalr rX, rX returns to PC+4
                body.append("r[%d] = %d" % (instr.rd, pc4))
            rs = instr.rs
            if rs == 0:
                term = ["S[1] = 2", "S[3] = 0", "return None"]
            else:
                term = ["f = D.get(r[%d])" % rs,
                        "if f is None:",
                        "    S[1] = 2",
                        "    S[3] = r[%d]" % rs,
                        "    return None",
                        "return f"]
            break
        if k is Kind.HALT:
            pcs.append(pc)
            term = ["S[1] = 1", "S[3] = %d" % pc4, "return None"]
            break

        pcs.append(pc)
        _emit_straight(body, instr, pc, len(pcs) - 1)
        idx += 1

    body.append("S[2] += %d" % len(pcs))
    body.extend(term)
    return body, tuple(pcs)


def generate_source(program) -> str:
    """The complete generated module source for ``program``.

    Layout: one ``bind(r, read, write, ctl, S, D)`` function whose body
    defines one sibling function per leader (so inter-block references
    are closure cells shared through ``bind``'s scope) and finally fills
    the pc -> function dispatch dict ``D``; plus a ``META`` literal
    mapping each leader index to ``(block_length, per_slot_pcs)``.
    """
    base = program.text_base
    leaders = discover_leaders(program)
    order = sorted(leaders)
    meta: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    out: List[str] = [
        "# generated by repro.sim.blocks v%d -- do not edit"
        % BLOCKS_VERSION,
        "def bind(r, read, write, ctl, S, D):",
    ]
    for L in order:
        body, pcs = _compile_block(program, leaders, L)
        meta[L] = (len(pcs), pcs)
        out.append("    def b%d():" % L)
        for line in body:
            out.append("        " + line)
    out.append("    D.update({")
    for L in order:
        out.append("        %d: b%d," % (base + 4 * L, L))
    out.append("    })")
    out.append("    return D")
    out.append("META = %r" % (meta,))
    return "\n".join(out) + "\n"


# ======================================================================
# compiled artifacts and their caches
# ======================================================================
class BoundBlocks:
    """One program's compiled blocks bound to one simulator's state."""

    __slots__ = ("D", "pc_of", "pcs_of", "S", "max_len")

    def __init__(self, D, pc_of, pcs_of, S, max_len):
        self.D = D              # pc -> block function
        self.pc_of = pc_of      # block function -> entry pc
        self.pcs_of = pcs_of    # block function -> per-slot pcs
        self.S = S              # the shared exit/progress list
        self.max_len = max_len  # longest block (the budget margin)


class CompiledBlocks:
    """The exec'd translation of one program (shareable, stateless)."""

    __slots__ = ("source", "namespace", "max_len", "program")

    def __init__(self, source: str, program) -> None:
        self.source = source
        self.program = program   # strong ref keeps id(program) stable
        g = {"_sra": _sra, "_div": _op_div, "_rem": _op_rem,
             "_sgn": to_signed}
        exec(compile(source, "<repro.sim.blocks>", "exec"), g)
        self.namespace = g
        self.max_len = max(
            (m[0] for m in g["META"].values()), default=1) or 1

    def bind(self, regs, read, write, ctl) -> BoundBlocks:
        """Instantiate the blocks against one simulator's state."""
        S = [0, 0, 0, 0]
        D: Dict[int, object] = {}
        self.namespace["bind"](regs, read, write, ctl, S, D)
        base = self.program.text_base
        pc_of = {}
        pcs_of = {}
        for idx, (_length, pcs) in self.namespace["META"].items():
            fn = D[base + 4 * idx]
            pc_of[fn] = base + 4 * idx
            pcs_of[fn] = pcs
        return BoundBlocks(D, pc_of, pcs_of, S, self.max_len)


class BlockCache:
    """On-disk store of generated sources, content-addressed by program.

    Same envelope discipline as :class:`repro.runner.cache.ResultCache`:
    a version field, a sha256 checksum of the payload verified on read,
    atomic temp-file-then-replace writes, and corrupt or stale entries
    silently dropped (the source is regenerated).
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, program) -> str:
        from repro.runner.cache import _sha, program_digest
        key = _sha("blocks", "v%d" % BLOCKS_VERSION,
                   program_digest(program))
        return os.path.join(self.root, key + ".blocks.json")

    def get(self, program) -> Optional[str]:
        path = self._path(program)
        try:
            with open(path, "r") as f:
                entry = json.load(f)
            if entry["version"] != BLOCKS_VERSION:
                raise ValueError("stale blocks version")
            source = entry["source"]
            digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
            if digest != entry["sha256"]:
                raise ValueError("checksum mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (KeyError, TypeError, ValueError, OSError):
            try:
                os.remove(path)     # corrupt: drop and regenerate
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return source

    def put(self, program, source: str) -> None:
        os.makedirs(self.root, exist_ok=True)
        path = self._path(program)
        entry = {
            "version": BLOCKS_VERSION,
            "sha256": hashlib.sha256(source.encode("utf-8")).hexdigest(),
            "source": source,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise


#: per-process translation memo: (id(program), mutation version) ->
#: CompiledBlocks.  The artifact holds a strong program reference, so a
#: live entry's id can never be reused by a different program.
_MEMO: Dict[Tuple[int, int], CompiledBlocks] = {}
_MEMO_CAP = 128


def compile_blocks(program, cache_dir: Optional[str] = None
                   ) -> CompiledBlocks:
    """Translate ``program``, consulting the process and disk caches.

    ``cache_dir`` defaults to ``$REPRO_BLOCKS_CACHE`` (unset: no disk
    cache).  Mutating a program through ``replace_instr`` bumps its
    ``version`` and naturally invalidates the process memo; the disk key
    is the content digest, so it never goes stale.
    """
    key = (id(program), getattr(program, "version", 0))
    hit = _MEMO.get(key)
    if hit is not None and hit.program is program:
        return hit
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_BLOCKS_CACHE") or None
    disk = BlockCache(cache_dir) if cache_dir else None
    source = disk.get(program) if disk is not None else None
    if source is None:
        source = generate_source(program)
        if disk is not None:
            disk.put(program, source)
    art = CompiledBlocks(source, program)
    if len(_MEMO) >= _MEMO_CAP:
        _MEMO.clear()
    _MEMO[key] = art
    return art


def bind_functional(sim, cache_dir: Optional[str] = None) -> BoundBlocks:
    """Compile ``sim.program`` and bind it to ``sim``'s live state."""
    art = compile_blocks(sim.program, cache_dir)
    return art.bind(sim.regs.raw, sim.memory.read, sim.memory.write,
                    sim.ctl_writes.append)


# ======================================================================
# functional dispatcher
# ======================================================================
def run_functional_blocks(sim, max_instructions: int) -> int:
    """Block-dispatch twin of ``FunctionalSimulator.run`` (no observer).

    The fast loop only runs a block while at least ``max_len`` budget
    remains, so a block can never overrun ``max_instructions``; the
    precise tail (and any stretch between an indirect jump and the next
    leader) single-steps on the interpreter's execution plans, which
    keeps trap PCs, retire counts and error messages bit-identical.
    """
    b = sim._blocks
    D_get = b.D.get
    pc_of = b.pc_of
    pcs_of = b.pcs_of
    S = b.S
    S[1] = 0
    S[2] = 0
    margin = max_instructions - b.max_len
    plans = sim._plans
    program = sim.program
    base = program.text_base
    n = len(plans)
    pc = sim.pc
    try:
        while not sim.halted:
            fn = D_get(pc)
            if fn is not None and S[2] <= margin:
                try:
                    while True:
                        nxt = fn()
                        if nxt is None:
                            break
                        fn = nxt
                        if S[2] > margin:
                            break
                except BaseException:
                    # only memory accesses raise, and each is preceded
                    # by an S[0] progress write: S[0] slots of the
                    # faulting block retired before pcs[S[0]] trapped
                    S[2] += S[0]
                    sim.pc = pcs_of[fn][S[0]]
                    raise
                if nxt is None:
                    if S[1] == 1:          # halt retired inside a block
                        sim.halted = True
                        sim.pc = S[3]
                        break
                    pc = S[3]              # left the fast path
                    continue
                pc = pc_of[fn]             # budget margin reached
                continue
            # -- precise path: one interpreted step on the plans --
            sim.pc = pc
            if S[2] >= max_instructions:
                raise SimulationError(
                    "instruction budget (%d) exhausted at pc=0x%x"
                    % (max_instructions, pc))
            i = (pc - base) >> 2
            if pc & 3 or not 0 <= i < n:
                program.instr_at(pc)       # raises the canonical error
            pc = plans[i]()
            S[2] += 1
            sim.pc = pc
    finally:
        sim.instructions_retired += S[2]
    return S[2]


# ======================================================================
# pipeline fast loop
# ======================================================================
def run_pipeline_blocks(sim):
    """Monolithic fast twin of ``PipelineSimulator.run``/``tick``.

    A statement-for-statement transcription of ``tick()`` with every
    latch, flag and counter held in locals for the whole run, the EX
    dispatch inlined on ``_Decoded`` integer codes (``exk`` for the
    stage, ``aluk``/``condk``/``lfk`` for the hot ALU ops, zero-tests
    and load fixups), the cache access and the not-taken/bimodal
    predictors inlined with their state hoisted into locals, operand
    forwarding and squash/redirect inlined, and retired/squashed slots
    recycled through a free list.  State (latches, stats, cache
    counters) is written back in ``finally`` so budget errors and
    telemetry-free inspection see the same simulator the interpreted
    loop would leave behind.  Bit-identical timing is locked by the
    golden-stats suite.
    """
    from repro.predictors.bimodal import BimodalPredictor
    from repro.predictors.simple import NotTakenPredictor
    from repro.sim.pipeline import _Slot

    stats = sim.stats
    if sim.halted:
        return stats
    max_cycles = sim.config.max_cycles
    asbr = sim.asbr
    predictor = sim.predictor
    pred_predict = predictor.predict
    pred_update = predictor.update
    # specialize the two predictors every paper configuration uses;
    # exact-type checks so subclasses keep the generic call path
    if type(predictor) is NotTakenPredictor:
        pmode = 1
        counters = p_mask = btb_tags = btb_targets = b_mask = None
    elif type(predictor) is BimodalPredictor:
        pmode = 2
        counters = predictor._counters
        p_mask = predictor._mask
        btb = predictor.btb
        btb_tags = btb._tags
        btb_targets = btb._targets
        b_mask = btb._mask
    else:
        pmode = 0
        counters = p_mask = btb_tags = btb_targets = b_mask = None
    regs = sim._reglist
    mem_read = sim._mem_read
    mem_write = sim._mem_write
    dec = sim._dec
    base = sim._text_base
    end = sim._text_end
    bdt_commit = sim._bdt_commit
    rel_mem = sim._rel_mem
    rel_ex = sim._rel_ex
    pending = sim._pending_releases     # list identity is stable
    foreign_decode = sim._foreign_decode
    if asbr is not None:
        try_fold = asbr.try_fold
        acquire = asbr.producer_decoded
        release = asbr.producer_value
        cancel = asbr.producer_squashed
        ctl_write = asbr.control_write
    else:
        try_fold = acquire = release = cancel = ctl_write = None

    # cache geometry and statistics, hoisted (Cache.access inlined below)
    icache = sim.icache
    ic_sets = icache._sets
    ic_shift = icache._block_shift
    ic_smask = icache._set_mask
    ic_assoc = icache.config.assoc
    ic_pen = icache.config.miss_penalty
    ic_wbpen = icache.config.writeback_penalty
    ic_stats = icache.stats
    ic_acc = ic_stats.accesses
    ic_miss = ic_stats.misses
    ic_wbk = ic_stats.writebacks
    dcache = sim.dcache
    dc_sets = dcache._sets
    dc_shift = dcache._block_shift
    dc_smask = dcache._set_mask
    dc_assoc = dcache.config.assoc
    dc_pen = dcache.config.miss_penalty
    dc_wbpen = dcache.config.writeback_penalty
    dc_stats = dcache.stats
    dc_acc = dc_stats.accesses
    dc_miss = dc_stats.misses
    dc_wbk = dc_stats.writebacks

    # latches and fetch state
    s_if = sim.s_if
    if_wait = sim.if_wait
    s_id = sim.s_id
    s_ex = sim.s_ex
    s_mem = sim.s_mem
    s_wb = sim.s_wb
    fetch_pc = sim.fetch_pc
    fetch_halted = sim._fetch_halted
    suppress = sim._suppress_fetch
    halted = False

    # statistics counters
    cycles = stats.cycles
    committed = stats.committed
    fetched = stats.fetched
    squashed = stats.squashed
    branches = stats.branches
    mispredicts = stats.branch_mispredicts
    folds = stats.folds_committed
    uncond_folds = stats.uncond_folds_committed
    lookups = stats.predictor_lookups
    jump_bubbles = stats.jump_bubbles
    jr_redirects = stats.jr_redirects
    load_use = stats.load_use_stalls
    istalls = stats.icache_miss_stalls
    dstalls = stats.dcache_miss_stalls

    pool = []       # retired/squashed slots, recycled at fetch

    try:
        while True:
            if cycles >= max_cycles:
                raise SimulationError(
                    "cycle budget (%d) exhausted; fetch_pc=0x%x"
                    % (max_cycles, fetch_pc))
            cycles += 1
            suppress = False

            # ---- WB: commit ----------------------------------------
            wb = s_wb
            if wb is not None:
                d = wb.d
                dest = d.dest
                if dest is not None and dest != 0:
                    regs[dest] = wb.result & 4294967295
                    if wb.acquired_reg is not None and bdt_commit:
                        pending.append((dest, wb.result))
                if wb.folded:
                    folds += 1
                if wb.uncond_folded:
                    uncond_folds += 1
                committed += 1
                s_wb = None
                if d.is_halt:
                    # nothing younger may have architectural effect —
                    # and pending releases die with the wrong path
                    halted = True
                    break
                if d.is_ctl and asbr is not None:
                    ctl_write(d.imm)
                pool.append(wb)

            # ---- MEM: first-cycle work -----------------------------
            mem = s_mem
            if mem is not None and not mem.mem_done:
                d = mem.d
                mem.mem_done = True
                if d.is_load:
                    addr = mem.mem_addr
                    v = mem_read(addr, d.size)
                    lf = d.lfk
                    if lf == 1:                     # lw
                        mem.result = v & 4294967295
                    elif lf == 2:                   # lbu
                        mem.result = v & 255
                    elif lf == 3:                   # lhu
                        mem.result = v & 65535
                    elif lf == 4:                   # lb
                        v &= 255
                        mem.result = ((v - 256) & 4294967295
                                      if v & 128 else v)
                    elif lf == 5:                   # lh
                        v &= 65535
                        mem.result = ((v - 65536) & 4294967295
                                      if v & 32768 else v)
                    else:
                        mem.result = d.load_fix(v)
                    tag = addr >> dc_shift
                    way = dc_sets[tag & dc_smask]
                    dc_acc += 1
                    if tag in way:
                        way.move_to_end(tag)
                        mem.mem_wait = 0
                    else:
                        dc_miss += 1
                        extra = dc_pen
                        if len(way) >= dc_assoc:
                            _victim, dirty = way.popitem(last=False)
                            if dirty:
                                dc_wbk += 1
                                extra += dc_wbpen
                        way[tag] = False
                        mem.mem_wait = extra
                        dstalls += extra
                elif d.is_store:
                    addr = mem.mem_addr
                    mem_write(addr, mem.store_val, d.size)
                    tag = addr >> dc_shift
                    way = dc_sets[tag & dc_smask]
                    dc_acc += 1
                    if tag in way:
                        way.move_to_end(tag)
                        way[tag] = True
                        mem.mem_wait = 0
                    else:
                        dc_miss += 1
                        extra = dc_pen
                        if len(way) >= dc_assoc:
                            _victim, dirty = way.popitem(last=False)
                            if dirty:
                                dc_wbk += 1
                                extra += dc_wbpen
                        way[tag] = True
                        mem.mem_wait = extra
                        dstalls += extra

            # ---- EX: first-cycle work (may squash and redirect) ----
            ex = s_ex
            if ex is not None and not ex.ex_done:
                ex.ex_done = True
                d = ex.d
                k = d.exk
                if 1 <= k <= 3:                     # ALU_RRR/SHIFT_I/ALU_RRI
                    rr = d.rs
                    if rr == 0:
                        a = 0
                    elif mem is not None and mem.d.dest == rr:
                        a = mem.result
                    else:
                        a = regs[rr]
                    if k == 3:
                        b2 = d.imm
                    elif k == 2:
                        b2 = d.shamt
                    else:
                        rr = d.rt
                        if rr == 0:
                            b2 = 0
                        elif mem is not None and mem.d.dest == rr:
                            b2 = mem.result
                        else:
                            b2 = regs[rr]
                    ak = d.aluk
                    if ak == 1:                     # add/addu
                        ex.result = (a + b2) & 4294967295
                    elif ak == 3:                   # and
                        ex.result = a & b2
                    elif ak == 4:                   # or
                        ex.result = a | b2
                    elif ak == 2:                   # sub/subu
                        ex.result = (a - b2) & 4294967295
                    elif ak == 8:                   # sll
                        ex.result = (a << (b2 & 31)) & 4294967295
                    elif ak == 9:                   # srl
                        ex.result = (a & 4294967295) >> (b2 & 31)
                    elif ak == 6:                   # slt (sign-bias trick)
                        ex.result = (1 if ((a & 4294967295) ^ 2147483648)
                                     < ((b2 & 4294967295) ^ 2147483648)
                                     else 0)
                    elif ak == 7:                   # sltu
                        ex.result = (1 if (a & 4294967295)
                                     < (b2 & 4294967295) else 0)
                    elif ak == 5:                   # xor
                        ex.result = a ^ b2
                    else:                           # sra/mul/div/rem/nor
                        ex.result = d.alu(a, b2)
                elif k == 5:                        # LOAD
                    rr = d.rs
                    if rr == 0:
                        a = 0
                    elif mem is not None and mem.d.dest == rr:
                        a = mem.result
                    else:
                        a = regs[rr]
                    ex.mem_addr = (a + d.imm) & 4294967295
                elif k == 8 or k == 7:              # BRANCH_Z / BRANCH_CMP
                    rr = d.rs
                    if rr == 0:
                        a = 0
                    elif mem is not None and mem.d.dest == rr:
                        a = mem.result
                    else:
                        a = regs[rr]
                    if k == 8:
                        ck = d.condk
                        if ck == 1:                 # ==0
                            taken = a == 0
                        elif ck == 2:               # !=0
                            taken = a != 0
                        elif ck == 3:               # <0
                            taken = a >= 2147483648
                        elif ck == 4:               # <=0
                            taken = a == 0 or a >= 2147483648
                        elif ck == 5:               # >0
                            taken = 0 < a < 2147483648
                        elif ck == 6:               # >=0
                            taken = a < 2147483648
                        else:
                            taken = d.cond(a)
                    else:
                        rr = d.rt
                        if rr == 0:
                            bb = 0
                        elif mem is not None and mem.d.dest == rr:
                            bb = mem.result
                        else:
                            bb = regs[rr]
                        taken = (a == bb) == d.eq_sense
                    target = d.br_target
                    actual = target if taken else d.pc4
                    branches += 1
                    if pmode == 2:                  # bimodal, inlined
                        pp = ex.pc
                        pi = (pp >> 2) & p_mask
                        c = counters[pi]
                        if taken:
                            if c < 3:
                                counters[pi] = c + 1
                            bi = (pp >> 2) & b_mask
                            btb_tags[bi] = pp
                            btb_targets[bi] = target
                        elif c > 0:
                            counters[pi] = c - 1
                    elif pmode == 0:
                        pred_update(ex.pc, taken, target)
                    # pmode == 1: not-taken update is a no-op
                    if actual != ex.pred_next_pc:
                        mispredicts += 1
                        # EX redirect: squash the two younger stages
                        sq = s_id
                        if sq is not None:
                            squashed += 1
                            ar = sq.acquired_reg
                            if ar is not None:
                                cancel(ar)
                                sq.acquired_reg = None
                            pool.append(sq)
                            s_id = None
                        sq = s_if
                        if sq is not None:
                            squashed += 1
                            ar = sq.acquired_reg
                            if ar is not None:
                                cancel(ar)
                                sq.acquired_reg = None
                            pool.append(sq)
                            s_if = None
                        if_wait = 0
                        fetch_pc = actual
                        suppress = True
                        fetch_halted = False
                elif k == 6:                        # STORE
                    rr = d.rs
                    if rr == 0:
                        a = 0
                    elif mem is not None and mem.d.dest == rr:
                        a = mem.result
                    else:
                        a = regs[rr]
                    rr = d.rt
                    if rr == 0:
                        bb = 0
                    elif mem is not None and mem.d.dest == rr:
                        bb = mem.result
                    else:
                        bb = regs[rr]
                    ex.mem_addr = (a + d.imm) & 4294967295
                    ex.store_val = bb
                elif k == 4:                        # LUI
                    ex.result = d.result_const
                elif k == 9:                        # JAL
                    ex.result = d.pc4
                elif k == 10 or k == 11:            # JR / JALR
                    if k == 11:
                        ex.result = d.pc4
                    rr = d.rs
                    if rr == 0:
                        a = 0
                    elif mem is not None and mem.d.dest == rr:
                        a = mem.result
                    else:
                        a = regs[rr]
                    sq = s_id
                    if sq is not None:
                        squashed += 1
                        ar = sq.acquired_reg
                        if ar is not None:
                            cancel(ar)
                            sq.acquired_reg = None
                        pool.append(sq)
                        s_id = None
                    sq = s_if
                    if sq is not None:
                        squashed += 1
                        ar = sq.acquired_reg
                        if ar is not None:
                            cancel(ar)
                            sq.acquired_reg = None
                        pool.append(sq)
                        s_if = None
                    if_wait = 0
                    fetch_pc = a
                    suppress = True
                    fetch_halted = False
                    jr_redirects += 1
                # else k == 0: JUMP/HALT/CTL — nothing to compute

            # ---- ID: first-cycle work (jump redirect, BDT acquire) -
            did = s_id
            if did is not None and not did.id_done:
                did.id_done = True
                d = did.d
                if asbr is not None:
                    dest = d.dest
                    if dest is not None and dest != 0:
                        acquire(dest)
                        did.acquired_reg = dest
                if d.is_halt:
                    fetch_halted = True
                elif d.is_jump:
                    sq = s_if
                    if sq is not None:
                        squashed += 1
                        ar = sq.acquired_reg
                        if ar is not None:
                            cancel(ar)
                            sq.acquired_reg = None
                        pool.append(sq)
                        s_if = None
                    if_wait = 0
                    fetch_pc = d.jump_target
                    suppress = True
                    jump_bubbles += 1

            # ---- IF: start a new fetch -----------------------------
            if s_if is None and not suppress and not fetch_halted:
                pc = fetch_pc
                if not (pc & 3) and base <= pc < end:
                    d = dec[(pc - base) >> 2]
                    tag = pc >> ic_shift
                    way = ic_sets[tag & ic_smask]
                    ic_acc += 1
                    if tag in way:
                        way.move_to_end(tag)
                        if_wait = 0
                    else:
                        ic_miss += 1
                        extra = ic_pen
                        if len(way) >= ic_assoc:
                            _victim, dirty = way.popitem(last=False)
                            if dirty:
                                ic_wbk += 1
                                extra += ic_wbpen
                        way[tag] = False
                        if_wait = extra
                        istalls += extra
                    uf = d.uncond_fold
                    if uf is not None:
                        td, tpc, next_pc = uf
                        if pool:
                            slot = pool.pop()
                            slot.d = td
                            slot.pc = tpc
                            slot.folded = False
                            slot.mem_wait = 0
                            slot.mem_done = False
                            slot.ex_done = False
                            slot.id_done = False
                            slot.acquired_reg = None
                        else:
                            slot = _Slot(td, tpc)
                        slot.uncond_folded = True
                        s_if = slot
                        fetched += 1
                        fetch_pc = next_pc
                    elif d.is_branch:
                        fold = None
                        if try_fold is not None:
                            fold = try_fold(pc)
                        if fold is not None:
                            fd = foreign_decode(fold.instr, fold.instr_pc)
                            if pool:
                                slot = pool.pop()
                                slot.d = fd
                                slot.pc = fold.instr_pc
                                slot.uncond_folded = False
                                slot.mem_wait = 0
                                slot.mem_done = False
                                slot.ex_done = False
                                slot.id_done = False
                                slot.acquired_reg = None
                            else:
                                slot = _Slot(fd, fold.instr_pc)
                            slot.folded = True
                            s_if = slot
                            fetched += 1
                            fetch_pc = fold.next_pc
                        else:
                            lookups += 1
                            if pmode == 2:          # bimodal, inlined
                                if counters[(pc >> 2) & p_mask] >= 2:
                                    bi = (pc >> 2) & b_mask
                                    pt = (btb_targets[bi]
                                          if btb_tags[bi] == pc else None)
                                else:
                                    pt = None
                            elif pmode == 1:        # not-taken
                                pt = None
                            else:
                                pred = pred_predict(pc)
                                pt = (pred.target if pred.taken
                                      and pred.target is not None else None)
                            if pool:
                                slot = pool.pop()
                                slot.d = d
                                slot.pc = pc
                                slot.folded = False
                                slot.uncond_folded = False
                                slot.mem_wait = 0
                                slot.mem_done = False
                                slot.ex_done = False
                                slot.id_done = False
                                slot.acquired_reg = None
                            else:
                                slot = _Slot(d, pc)
                            slot.pred_next_pc = pt if pt is not None else d.pc4
                            s_if = slot
                            fetched += 1
                            fetch_pc = slot.pred_next_pc
                    else:
                        if pool:
                            slot = pool.pop()
                            slot.d = d
                            slot.pc = pc
                            slot.folded = False
                            slot.uncond_folded = False
                            slot.mem_wait = 0
                            slot.mem_done = False
                            slot.ex_done = False
                            slot.id_done = False
                            slot.acquired_reg = None
                        else:
                            slot = _Slot(d, pc)
                        s_if = slot
                        fetched += 1
                        fetch_pc = d.pc4

            # ---- advance latches downstream-first ------------------
            # MEM -> WB
            if mem is not None and mem.mem_done:
                if mem.mem_wait > 0:
                    mem.mem_wait -= 1
                else:
                    ar = mem.acquired_reg
                    if ar is not None and (rel_mem
                                           or (rel_ex and mem.d.is_load)):
                        pending.append((ar, mem.result))
                        mem.acquired_reg = None
                    s_wb = mem
                    s_mem = None

            # EX -> MEM
            if ex is not None and ex.ex_done and s_mem is None:
                if rel_ex:
                    ar = ex.acquired_reg
                    if ar is not None and not ex.d.is_load:
                        pending.append((ar, ex.result))
                        ex.acquired_reg = None
                s_mem = ex
                s_ex = None

            # ID -> EX (load-use interlock against this cycle's EX)
            if did is not None and did.id_done and s_ex is None:
                if ex is not None and ex.d.is_load:
                    if ex.d.dest_mask & did.d.src_mask:
                        load_use += 1
                    else:
                        s_ex = did
                        s_id = None
                else:
                    s_ex = did
                    s_id = None

            # IF -> ID
            if s_if is not None:
                if if_wait > 0:
                    if_wait -= 1
                elif s_id is None:
                    s_id = s_if
                    s_if = None

            # ---- apply deferred BDT releases -----------------------
            if pending:
                for reg, value in pending:
                    release(reg, value)
                pending.clear()  # noqa: B038 — shared-identity list
    finally:
        stats.cycles = cycles
        stats.committed = committed
        stats.fetched = fetched
        stats.squashed = squashed
        stats.branches = branches
        stats.branch_mispredicts = mispredicts
        stats.folds_committed = folds
        stats.uncond_folds_committed = uncond_folds
        stats.predictor_lookups = lookups
        stats.jump_bubbles = jump_bubbles
        stats.jr_redirects = jr_redirects
        stats.load_use_stalls = load_use
        stats.icache_miss_stalls = istalls
        stats.dcache_miss_stalls = dstalls
        ic_stats.accesses = ic_acc
        ic_stats.misses = ic_miss
        ic_stats.writebacks = ic_wbk
        dc_stats.accesses = dc_acc
        dc_stats.misses = dc_miss
        dc_stats.writebacks = dc_wbk
        sim.s_if = s_if
        sim.if_wait = if_wait
        sim.s_id = s_id
        sim.s_ex = s_ex
        sim.s_mem = s_mem
        sim.s_wb = s_wb
        sim.fetch_pc = fetch_pc
        sim._fetch_halted = fetch_halted
        sim._suppress_fetch = suppress
        if halted:
            sim.halted = True
    return stats
