"""R10000-style out-of-order pipeline simulator.

The third timing machine: an out-of-order backend organized after the
classic MIPS R10000 (Yeager 1996) so the paper's fetch-stage ASBR
folding can be measured on a core that already hides branch latency
behind dynamic scheduling (ROADMAP item 4).  Structures:

* **in-order front end** — up to ``issue_width`` instructions fetched
  and decoded per cycle into a small fetch buffer (the shared decode
  table of :mod:`repro.sim.core`); the decoupled BTB/FTQ/FDIP front end
  (:mod:`repro.frontend`) attaches unchanged through the same surface
  the in-order pipeline exposes;
* **register rename** — a 32-entry map table (architectural → physical)
  backed by ``phys_regs`` physical registers and a free list; r0 is
  pinned to physical 0 and never renamed;
* **map-table checkpointing** — every renamed conditional branch copies
  the map table; misprediction recovery restores the checkpoint and
  selectively squashes younger entries (their physical registers are
  reclaimed by walking the active list tail, which also undoes frees
  the checkpoint cannot know about);
* **integer issue queue** — single unified queue with broadcast wakeup
  (a completing op sets its physical register ready) and oldest-first
  select of up to ``issue_width`` ready ops per cycle;
* **active list (ROB)** — ``rob_size`` entries retiring up to
  ``issue_width`` per cycle in program order; stores write memory at
  commit, loads issue only when no older store is uncommitted (total
  store→load order, no speculative disambiguation), and exceptions are
  recorded in the entry and raised only when it reaches the head —
  precise by construction.

ASBR folding in an out-of-order machine
---------------------------------------
Folds happen at fetch exactly as on the in-order core — the BIT/BDT
semantics are untouched — and the replacement instruction retires as a
zero-latency op in the active list (the ledger invariant ``committed +
folds_committed + uncond_folds_committed == retired`` still holds).
Two hazards unique to dynamic scheduling are closed here, both required
for the "folds are non-speculative" guarantee to survive:

* **acquire at fetch** — with a multi-entry fetch buffer a producer
  could sit between fetch and rename unacquired while a younger branch
  folds on its *stale* direction bits; the in-order machine never
  exposes that window (one instruction in IF, ID-acquire runs before
  the next fetch), so the OoO front end acquires the BDT counter the
  cycle an instruction is fetched;
* **in-order, non-speculative release** — completions are out of
  order and may be wrong-path.  A wrong-path release would poison the
  direction bits, and even right-path releases applied out of program
  order would leave an *older* producer's value behind a zero counter.
  Releases therefore drain through a single program-ordered queue and
  the head releases only once no older conditional branch is still
  unresolved; ``bdt_update="mem"`` adds one cycle after completion and
  ``"commit"`` releases at retirement, mirroring the in-order
  forwarding points.  Squashed producers cancel (counter decrement,
  bits untouched) immediately — cancel order cannot corrupt the bits.

A saturated BDT validity counter (the paper's counter is 3 bits) now
back-pressures *fetch* instead of overflowing: an out-of-order window
can legitimately hold more in-flight producers of one register than the
counter can count, so the machine stalls fetch until it drains
(``bdt_fetch_stalls``) — the honest hardware integration.

Architectural behaviour is locked against the functional golden model
instruction-for-instruction: the commit stream (with each fold expanded
to the branch it elided plus its replacement) must equal the functional
retirement stream on the seeded ~200-program differential sweep
(``tests/test_differential_random.py``).

Telemetry uses the guarded-emit pattern of :mod:`repro.frontend`
(``self._emit`` is None until a tracer attaches): rename/issue/wakeup/
commit/recovery events with bit-identical stats traced or not.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.asbr.folding import ASBRUnit
from repro.asm.program import Program
from repro.isa.alu import MASK32
from repro.isa.instruction import Instruction
from repro.memory.cache import CacheConfig
from repro.memory.main_memory import MainMemory
from repro.predictors.base import BranchPredictor
from repro.sim.core import (
    EXK_ALU_RRI,
    EXK_ALU_RRR,
    EXK_BRANCH_CMP,
    EXK_BRANCH_Z,
    EXK_CONST,
    EXK_JAL,
    EXK_JALR,
    EXK_JR,
    EXK_LOAD,
    EXK_NONE,
    EXK_SHIFT_I,
    EXK_STORE,
    CoreStatsMixin,
    _build_dec_table,
    _decode,
    _Decoded,
    init_core_state,
)
from repro.sim.functional import SimulationError
from repro.telemetry.events import (
    BRANCH,
    CHECKPOINT_RESTORE,
    COMMIT,
    DECODE,
    FETCH,
    FOLD_HIT,
    FOLD_MISS,
    IQ_WAKEUP,
    ISSUE,
    RENAME_ALLOC,
    SQUASH,
    SQUASH_DEPTH,
    TraceEvent,
)

#: seq sentinel larger than any real sequence number
_NO_BRANCH = 1 << 62


@dataclass
class OoOConfig:
    """Out-of-order machine and memory-hierarchy parameters."""

    issue_width: int = 2          # fetch/rename/issue/commit width
    rob_size: int = 32            # active list entries
    iq_size: int = 16             # integer issue queue entries
    phys_regs: int = 64           # physical register file (> 32)
    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    max_cycles: int = 2_000_000_000

    def __post_init__(self) -> None:
        if not 1 <= self.issue_width <= 8:
            raise ValueError("issue_width must be in 1..8")
        if self.rob_size < 4:
            raise ValueError("rob_size must be at least 4")
        if self.iq_size < 2:
            raise ValueError("iq_size must be at least 2")
        if self.phys_regs <= 32:
            raise ValueError(
                "phys_regs must exceed the 32 architectural registers")
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")


@dataclass
class OoOStats(CoreStatsMixin):
    """Counters of the out-of-order machine.

    The first block mirrors :class:`~repro.sim.core.PipelineStats`
    field-for-field so every stats consumer (objectives, metrics,
    reports) reads either machine; ``load_use_stalls`` is always 0 here
    (the issue queue schedules around load latency) and
    ``jump_bubbles`` counts only unsteered jumps in frontend mode (the
    merged fetch/decode resolves direct jumps at fetch).
    """

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    squashed: int = 0
    branches: int = 0                # conditional branches committed
    branch_mispredicts: int = 0      # committed branches that recovered
    folds_committed: int = 0
    uncond_folds_committed: int = 0
    predictor_lookups: int = 0
    jump_bubbles: int = 0
    jr_redirects: int = 0
    load_use_stalls: int = 0
    icache_miss_stalls: int = 0
    dcache_miss_stalls: int = 0
    # ---- out-of-order structures ------------------------------------
    renamed: int = 0                 # ops allocated a ROB entry
    rename_stalls: int = 0           # cycles rename blocked (ROB/IQ/free)
    iq_wakeups: int = 0              # completion broadcasts
    checkpoints_taken: int = 0       # map-table copies (renamed branches)
    checkpoint_restores: int = 0     # misprediction recoveries
    squash_depth_sum: int = 0        # ROB entries killed across recoveries
    bdt_fetch_stalls: int = 0        # fetch held by a saturated BDT counter
    max_rob_occupancy: int = 0

    @property
    def avg_squash_depth(self) -> float:
        if not self.checkpoint_restores:
            return 0.0
        return self.squash_depth_sum / self.checkpoint_restores


class _Op:
    """One active-list entry (and its issue-queue view)."""

    __slots__ = ("seq", "d", "pc", "folded", "uncond_folded", "fold_pc",
                 "pred_next_pc", "new_phys", "old_phys", "src_phys",
                 "rs_phys", "rt_phys", "issued", "completed", "result",
                 "mem_addr", "store_val", "exception", "acquired_reg",
                 "released", "squashed", "checkpoint", "is_br",
                 "mispredicted", "taken", "bdt_ready", "ready_cycle")

    def __init__(self, d: _Decoded, pc: int, seq: int) -> None:
        self.seq = seq
        self.d = d
        self.pc = pc
        self.folded = False
        self.uncond_folded = False
        self.fold_pc = 0
        self.pred_next_pc = 0
        self.new_phys = -1
        self.old_phys = -1
        self.src_phys = ()
        self.rs_phys = 0
        self.rt_phys = 0
        self.issued = False
        self.completed = False
        self.result = 0
        self.mem_addr = 0
        self.store_val = 0
        self.exception: Optional[BaseException] = None
        self.acquired_reg: Optional[int] = None
        self.released = False
        self.squashed = False
        self.checkpoint: Optional[List[int]] = None
        self.is_br = False
        self.mispredicted = False
        self.taken = False
        self.bdt_ready: Optional[int] = None   # cycle the release may apply
        self.ready_cycle = 0                   # rename may consume from here

    @property
    def instr(self) -> Instruction:
        return self.d.instr


class OoOSimulator:
    """Runs one program to completion on the out-of-order machine."""

    def __init__(self, program: Program,
                 memory: Optional[MainMemory] = None,
                 predictor: Optional[BranchPredictor] = None,
                 asbr: Optional[ASBRUnit] = None,
                 config: Optional[OoOConfig] = None,
                 fold_unconditional: bool = False,
                 trace=None, frontend=None,
                 commit_log: Optional[list] = None) -> None:
        """Same construction surface as the in-order simulator (shared
        via :func:`repro.sim.core.init_core_state`), plus:

        ``config`` — an :class:`OoOConfig` (width/ROB/IQ/physical-reg
        knobs on top of the cache hierarchy).

        ``commit_log`` — optional list; every commit appends the retired
        architectural PCs in order (a fold appends the elided branch PC
        then the replacement's PC), giving the differential suite the
        exact functional retirement stream to compare against.

        ``trace`` — a :class:`repro.telemetry.Tracer`; the machine uses
        guarded emission (one None check per site) rather than the
        in-order machine's method-twin rebinding, so traced and plain
        runs are the same code path with bit-identical stats.
        """
        self.config = config if config is not None else OoOConfig()
        self.fold_unconditional = fold_unconditional
        init_core_state(self, program, memory, predictor, asbr,
                        self.config.icache, self.config.dcache)
        self.stats = OoOStats()
        self.commit_log = commit_log
        self._dec = _build_dec_table(program, fold_unconditional)
        self._foreign: Dict[tuple, _Decoded] = {}
        self._foreign_pin: List[Instruction] = []

        cfg = self.config
        self.width = cfg.issue_width
        # rename state: map table, physical regfile, ready bits, free list
        self.map: List[int] = list(range(32))
        self.preg: List[int] = [0] * cfg.phys_regs
        for r in range(32):
            self.preg[r] = self.regs.raw[r]
        self.pready: List[bool] = [True] * 32 + \
            [False] * (cfg.phys_regs - 32)
        self.free: List[int] = list(range(32, cfg.phys_regs))

        # machine state
        self.rob: "deque[_Op]" = deque()
        self.iq: List[_Op] = []
        self.fetch_buf: "deque[_Op]" = deque()
        self._exec: List[_Op] = []            # issued, completing later
        self._exec_done: List[int] = []       # completion cycles (paired)
        self._store_seqs: "deque[int]" = deque()
        self._unresolved_br: Dict[int, _Op] = {}
        self._bdt_queue: "deque[_Op]" = deque()
        self._fetch_wait = 0                  # I-cache miss / jump bubble
        self._fetch_block: Optional[_Op] = None   # jr/jalr awaiting target
        self._fetch_halted = False
        self._commit_wait = 0                 # store D-cache miss at commit
        self._seq = 0

        self.frontend = None
        if frontend is not None:
            from repro.frontend import attach_frontend
            attach_frontend(self, frontend)

        self.trace = None
        self._emit = None
        if trace is not None:
            self.trace = trace
            self._emit = trace.emit
            if self.frontend is not None:
                self.frontend._emit = trace.emit

    # ------------------------------------------------------------------
    def _foreign_decode(self, instr: Instruction, pc: int) -> _Decoded:
        """Memoized decode of an injected (BTI/BFI) instruction; same
        pin discipline as the in-order simulator."""
        key = (id(instr), pc)
        d = self._foreign.get(key)
        if d is None:
            d = _decode(instr, pc)
            self._foreign[key] = d
            self._foreign_pin.append(instr)
        return d

    # ==================================================================
    # public API
    # ==================================================================
    def run(self) -> OoOStats:
        """Simulate until the program's ``halt`` commits."""
        max_cycles = self.config.max_cycles
        stats = self.stats
        tick = self.tick
        while not self.halted:
            if stats.cycles >= max_cycles:
                raise SimulationError(
                    "cycle budget (%d) exhausted; fetch_pc=0x%x"
                    % (max_cycles, self.fetch_pc))
            tick()
        return stats

    # ==================================================================
    # one clock cycle
    # ==================================================================
    def tick(self) -> None:
        """Advance one clock.  Phase order inside the cycle: complete
        (wakeup + branch resolution), commit, select/issue, rename,
        fetch, then the end-of-cycle BDT release drain — so a value
        computed this cycle wakes dependants for next cycle's select
        and a release becomes fold-visible one cycle later, matching
        the in-order machine's end-of-tick release point."""
        stats = self.stats
        stats.cycles += 1
        cycle = stats.cycles

        if self._exec:
            self._complete(cycle)
        self._commit()
        if self.halted:
            return
        if self.iq:
            self._select_issue(cycle)
        if self.fetch_buf:
            self._rename(cycle)
        fe = self.frontend
        if fe is not None:
            fe.begin_cycle()
        if self._fetch_wait > 0:
            self._fetch_wait -= 1
        elif (self._fetch_block is None and not self._fetch_halted):
            if fe is not None:
                self._frontend_fetch(fe, cycle)
            else:
                self._fetch(cycle)
        if self._bdt_queue:
            self._drain_bdt_queue(cycle)

    # ==================================================================
    # complete: writeback, wakeup, branch resolution
    # ==================================================================
    def _complete(self, cycle: int) -> None:
        ex = self._exec
        done = self._exec_done
        stats = self.stats
        emit = self._emit
        i = 0
        resolved = []
        while i < len(ex):
            if done[i] > cycle:
                i += 1
                continue
            op = ex.pop(i)
            done.pop(i)
            op.completed = True
            if op.new_phys >= 0:
                self.preg[op.new_phys] = op.result
                self.pready[op.new_phys] = True
                stats.iq_wakeups += 1
                if emit is not None:
                    emit(TraceEvent(cycle, IQ_WAKEUP, op.pc, op.seq,
                                    {"preg": op.new_phys}))
            if op.acquired_reg is not None and not self._bdt_commit:
                # release point reached (execute: now; mem: +1 cycle);
                # the drain applies it in program order, unspeculated
                op.bdt_ready = cycle + 1 if self._rel_mem else cycle
            d = op.d
            exk = d.exk
            if exk == EXK_BRANCH_CMP or exk == EXK_BRANCH_Z:
                resolved.append(op)
            elif exk == EXK_JR or exk == EXK_JALR:
                stats.jr_redirects += 1
                if self._fetch_block is op:
                    self._fetch_block = None
                    self.fetch_pc = op.result if exk == EXK_JR \
                        else op.mem_addr
                    if self.frontend is not None:
                        self.frontend.redirect(self.fetch_pc)
        # resolve branches oldest-first: a younger mispredict must not
        # shadow an older one resolving the same cycle
        if resolved:
            resolved.sort(key=lambda o: o.seq)
            for op in resolved:
                self._resolve_branch(op, cycle)

    def _resolve_branch(self, op: _Op, cycle: int) -> None:
        if op.squashed:
            return                     # killed by an older branch just now
        d = op.d
        actual = d.br_target if op.taken else d.pc4
        self.predictor.update(op.pc, op.taken, d.br_target)
        self._unresolved_br.pop(op.seq, None)
        if self._emit is not None:
            self._emit(TraceEvent(cycle, BRANCH, op.pc, op.seq,
                                  {"taken": op.taken, "target": actual,
                                   "pred": op.pred_next_pc,
                                   "misp": actual != op.pred_next_pc,
                                   "srcs": list(d.srcs)}))
        if actual != op.pred_next_pc:
            op.mispredicted = True
            self._recover(op, actual, cycle)

    # ==================================================================
    # misprediction recovery: checkpoint restore + selective squash
    # ==================================================================
    def _recover(self, br: _Op, actual: int, cycle: int) -> None:
        stats = self.stats
        stats.checkpoint_restores += 1
        # map table straight from the branch's checkpoint (commit never
        # touches the map, so the copy is exact regardless of how many
        # older ops retired since it was taken) ...
        self.map = list(br.checkpoint)
        # ... and the free list by walking the active-list tail: the
        # checkpoint cannot know about physical registers freed by
        # commits after it was taken, so frees are undone per squashed op
        depth = 0
        rob = self.rob
        while rob and rob[-1].seq > br.seq:
            op = rob.pop()
            self._squash_op(op)
            if op.new_phys >= 0:
                self.free.append(op.new_phys)
            if op.d.is_store:
                if self._store_seqs and self._store_seqs[-1] == op.seq:
                    self._store_seqs.pop()
            self._unresolved_br.pop(op.seq, None)
            depth += 1
        # younger ops still in the fetch buffer never renamed: no
        # physical registers to reclaim, but acquired BDT counters must
        # cancel
        while self.fetch_buf:
            self._squash_op(self.fetch_buf.pop())
            depth += 1
        seq = br.seq
        self.iq = [o for o in self.iq if o.seq <= seq]
        keep_ex = [i for i, o in enumerate(self._exec) if o.seq <= seq]
        self._exec = [self._exec[i] for i in keep_ex]
        self._exec_done = [self._exec_done[i] for i in keep_ex]
        if self._fetch_block is not None and self._fetch_block.seq > seq:
            self._fetch_block = None
        stats.squash_depth_sum += depth
        self.fetch_pc = actual
        self._fetch_wait = 0
        self._fetch_halted = False
        if self.frontend is not None:
            self.frontend.redirect(actual)
        if self._emit is not None:
            self._emit(TraceEvent(cycle, CHECKPOINT_RESTORE, br.pc, br.seq,
                                  {"depth": depth}))
            self._emit(TraceEvent(cycle, SQUASH_DEPTH, br.pc, br.seq,
                                  {"depth": depth}))

    def _squash_op(self, op: _Op) -> None:
        op.squashed = True
        self.stats.squashed += 1
        if op.acquired_reg is not None and not op.released:
            self.asbr.producer_squashed(op.acquired_reg)
            op.released = True
        if self._emit is not None:
            self._emit(TraceEvent(self.stats.cycles, SQUASH, op.pc,
                                  op.seq))

    # ==================================================================
    # commit: in-order retirement from the active-list head
    # ==================================================================
    def _commit(self) -> None:
        if self._commit_wait > 0:
            self._commit_wait -= 1
            return
        stats = self.stats
        rob = self.rob
        log = self.commit_log
        emit = self._emit
        asbr = self.asbr
        for _ in range(self.width):
            if not rob or not rob[0].completed:
                return
            op = rob.popleft()
            if op.exception is not None:
                # precise: every older op has retired, nothing younger
                # had architectural effect
                raise op.exception
            d = op.d
            dest = d.dest
            if op.new_phys >= 0:
                self._reglist[dest] = self.preg[op.new_phys]
                self.free.append(op.old_phys)
            if d.is_store:
                self._mem_write(op.mem_addr, op.store_val, d.size)
                extra = self._dcache_access(op.mem_addr, True)
                if extra:
                    stats.dcache_miss_stalls += extra
                    self._commit_wait = extra
                self._store_seqs.popleft()
            if op.folded:
                stats.folds_committed += 1
            if op.uncond_folded:
                stats.uncond_folds_committed += 1
            if op.is_br:
                stats.branches += 1
                if op.mispredicted:
                    stats.branch_mispredicts += 1
            stats.committed += 1
            if op.acquired_reg is not None and self._bdt_commit:
                op.bdt_ready = stats.cycles
            if log is not None:
                if op.folded or op.uncond_folded:
                    log.append(op.fold_pc)
                log.append(op.pc)
            if emit is not None:
                data = {}
                if op.folded:
                    data = {"fold_pc": op.fold_pc}
                elif op.uncond_folded:
                    data = {"uncond_fold": True, "fold_pc": op.fold_pc}
                emit(TraceEvent(stats.cycles, COMMIT, op.pc, op.seq,
                                data))
            if d.is_halt:
                self.halted = True
                return
            if d.is_ctl and asbr is not None:
                asbr.control_write(d.imm)
            if self._commit_wait:
                return                 # store miss blocks younger commits

    # ==================================================================
    # select / issue
    # ==================================================================
    def _select_issue(self, cycle: int) -> None:
        iq = self.iq
        pready = self.pready
        stores = self._store_seqs
        issued = 0
        emit = self._emit
        i = 0
        while i < len(iq) and issued < self.width:
            op = iq[i]
            d = op.d
            ready = True
            for p in op.src_phys:
                if not pready[p]:
                    ready = False
                    break
            if ready and d.is_load and stores and stores[0] < op.seq:
                ready = False          # an older store is uncommitted
            if not ready:
                i += 1
                continue
            iq.pop(i)
            issued += 1
            op.issued = True
            if emit is not None:
                emit(TraceEvent(cycle, ISSUE, op.pc, op.seq,
                                {"dest": d.dest} if d.dest is not None
                                else {}))
            self._execute(op, cycle)

    def _execute(self, op: _Op, cycle: int) -> None:
        """Compute the op's result now (operands are final: every
        producer has completed) and schedule its completion."""
        d = op.d
        exk = d.exk
        preg = self.preg
        latency = 1
        if exk == EXK_ALU_RRR:
            op.result = d.alu(preg[op.rs_phys], preg[op.rt_phys]) & MASK32
        elif exk == EXK_ALU_RRI:
            op.result = d.alu(preg[op.rs_phys], d.imm) & MASK32
        elif exk == EXK_SHIFT_I:
            op.result = d.alu(preg[op.rs_phys], d.shamt) & MASK32
        elif exk == EXK_CONST:
            op.result = d.result_const
        elif exk == EXK_LOAD:
            addr = (preg[op.rs_phys] + d.imm) & MASK32
            op.mem_addr = addr
            try:
                op.result = d.load_fix(self._mem_read(addr, d.size))
            except Exception as exc:   # raised at commit, precise
                op.exception = exc
                op.result = 0
            extra = self._dcache_access(addr, False)
            if extra:
                self.stats.dcache_miss_stalls += extra
                latency += extra
        elif exk == EXK_STORE:
            op.mem_addr = (preg[op.rs_phys] + d.imm) & MASK32
            op.store_val = preg[op.rt_phys]
        elif exk == EXK_BRANCH_CMP:
            op.taken = (preg[op.rs_phys] == preg[op.rt_phys]) == d.eq_sense
        elif exk == EXK_BRANCH_Z:
            op.taken = d.cond(preg[op.rs_phys])
        elif exk == EXK_JAL:
            op.result = d.pc4
        elif exk == EXK_JR:
            op.result = preg[op.rs_phys]       # the redirect target
        elif exk == EXK_JALR:
            op.result = d.pc4
            op.mem_addr = preg[op.rs_phys]     # target rides along
        self._exec.append(op)
        self._exec_done.append(cycle + latency)

    # ==================================================================
    # rename / dispatch
    # ==================================================================
    def _rename(self, cycle: int) -> None:
        stats = self.stats
        buf = self.fetch_buf
        rob = self.rob
        iq = self.iq
        rob_size = self.config.rob_size
        iq_size = self.config.iq_size
        free = self.free
        mapt = self.map
        emit = self._emit
        renamed = 0
        while buf and renamed < self.width:
            op = buf[0]
            if op.ready_cycle > cycle:
                break                  # I-cache fill still in flight
            d = op.d
            exk = d.exk
            needs_iq = exk != EXK_NONE
            if (len(rob) >= rob_size
                    or (needs_iq and len(iq) >= iq_size)
                    or (d.dest is not None and d.dest != 0 and not free)):
                stats.rename_stalls += 1
                break
            buf.popleft()
            renamed += 1
            # operand physical registers before any same-group dest
            # rename of this op
            op.rs_phys = mapt[d.rs] if d.rs is not None else 0
            op.rt_phys = mapt[d.rt] if d.rt is not None else 0
            op.src_phys = tuple(mapt[s] for s in d.srcs)
            dest = d.dest
            if dest is not None and dest != 0:
                op.old_phys = mapt[dest]
                op.new_phys = free.pop()
                mapt[dest] = op.new_phys
                self.pready[op.new_phys] = False
            if op.is_br:
                op.checkpoint = list(mapt)
                self._unresolved_br[op.seq] = op
                stats.checkpoints_taken += 1
            if d.is_store:
                self._store_seqs.append(op.seq)
            rob.append(op)
            stats.renamed += 1
            if needs_iq:
                iq.append(op)
            else:
                op.completed = True    # j / halt / ctl: nothing to execute
            if emit is not None:
                emit(TraceEvent(cycle, DECODE, op.pc, op.seq))
                if op.new_phys >= 0:
                    emit(TraceEvent(cycle, RENAME_ALLOC, op.pc, op.seq,
                                    {"dest": dest, "new": op.new_phys,
                                     "old": op.old_phys}))
        if len(rob) > stats.max_rob_occupancy:
            stats.max_rob_occupancy = len(rob)

    # ==================================================================
    # fetch (coupled mode): up to `width` per cycle, folds at fetch
    # ==================================================================
    def _acquire(self, op: _Op) -> bool:
        """BDT acquire at fetch; False when the validity counter is
        saturated (fetch must stall until it drains)."""
        asbr = self.asbr
        if asbr is None:
            return True
        dest = op.d.dest
        if dest is None or dest == 0:
            return True
        entry = asbr.bdt.entries[dest]
        if entry.counter >= asbr.bdt.counter_max:
            self.stats.bdt_fetch_stalls += 1
            return False
        asbr.producer_decoded(dest)
        op.acquired_reg = dest
        self._bdt_queue.append(op)
        return True

    def _new_op(self, d: _Decoded, pc: int) -> _Op:
        stats = self.stats
        op = _Op(d, pc, self._seq)
        self._seq += 1
        stats.fetched += 1
        op.ready_cycle = stats.cycles + 1
        return op

    def _fetch(self, cycle: int) -> None:
        stats = self.stats
        buf = self.fetch_buf
        cap = 2 * self.width
        dec = self._dec
        base = self._text_base
        end = self._text_end
        emit = self._emit
        fetched = 0
        while fetched < self.width and len(buf) < cap:
            pc = self.fetch_pc
            if pc & 3 or not base <= pc < end:
                return        # off the text segment (wrong path): wait
            d = dec[(pc - base) >> 2]

            uf = d.uncond_fold
            if uf is not None:
                td, tpc, next_pc = uf
                op = self._new_op(td, tpc)
                op.uncond_folded = True
                op.fold_pc = pc
                if not self._acquire(op):
                    self._unfetch(op)
                    return
                buf.append(op)
                fetched += 1
                extra = self._icache_access(pc)
                if emit is not None:
                    emit(TraceEvent(cycle, FETCH, tpc, op.seq,
                                    {"fold": "uncond", "branch_pc": pc}))
                self.fetch_pc = next_pc
                if self._miss(op, extra) or next_pc != pc + 4:
                    return             # fill in flight / group ends
                continue

            if d.is_branch:
                if self.asbr is not None:
                    fold = self.asbr.try_fold(pc)
                    if fold is not None:
                        fd = self._foreign_decode(fold.instr, fold.instr_pc)
                        op = self._new_op(fd, fold.instr_pc)
                        op.folded = True
                        op.fold_pc = pc
                        if not self._acquire(op):
                            self._unfetch(op)
                            return
                        buf.append(op)
                        fetched += 1
                        extra = self._icache_access(pc)
                        if emit is not None:
                            emit(TraceEvent(cycle, FOLD_HIT, pc, op.seq,
                                            {"taken": fold.taken,
                                             "instr_pc": fold.instr_pc,
                                             "next_pc": fold.next_pc}))
                            emit(TraceEvent(cycle, FETCH, fold.instr_pc,
                                            op.seq, {"fold": "asbr",
                                                     "branch_pc": pc}))
                        self.fetch_pc = fold.next_pc
                        if self._miss(op, extra) or fold.next_pc != pc + 4:
                            return
                        continue
                    elif emit is not None:
                        emit(TraceEvent(cycle, FOLD_MISS, pc,
                                        data={"reason":
                                              self.asbr.miss_reason(pc)}))
                pred = self.predictor.predict(pc)
                stats.predictor_lookups += 1
                op = self._new_op(d, pc)
                op.is_br = True
                if pred.taken and pred.target is not None:
                    op.pred_next_pc = pred.target
                else:
                    op.pred_next_pc = d.pc4
                buf.append(op)         # branches produce nothing: no acquire
                fetched += 1
                extra = self._icache_access(pc)
                if emit is not None:
                    emit(TraceEvent(cycle, FETCH, pc, op.seq))
                self.fetch_pc = op.pred_next_pc
                if self._miss(op, extra) or op.pred_next_pc != d.pc4:
                    return             # fill in flight / predicted taken
                continue

            op = self._new_op(d, pc)
            if not self._acquire(op):
                self._unfetch(op)
                return
            buf.append(op)
            fetched += 1
            extra = self._icache_access(pc)
            if emit is not None:
                emit(TraceEvent(cycle, FETCH, pc, op.seq))
            exk = d.exk
            if d.is_jump:
                # merged fetch/decode resolves direct jumps immediately
                self.fetch_pc = d.jump_target
                self._miss(op, extra)
                return
            if exk == EXK_JR or exk == EXK_JALR:
                self._fetch_block = op   # target unknown until execute
                self._miss(op, extra)
                return
            if d.is_halt:
                self._fetch_halted = True
                self._miss(op, extra)
                return
            self.fetch_pc = d.pc4
            if self._miss(op, extra):
                return

    def _unfetch(self, op: _Op) -> None:
        """Undo a speculative _new_op when the BDT counter stalls the
        fetch: the op never entered the machine."""
        self.stats.fetched -= 1
        self._seq -= 1

    def _miss(self, op: _Op, extra: int) -> bool:
        """Account an I-cache miss: the fetched op's rename is delayed
        and fetch pauses for the fill; a miss ends the fetch group."""
        if not extra:
            return False
        self.stats.icache_miss_stalls += extra
        op.ready_cycle += extra
        self._fetch_wait = extra
        return True

    # ==================================================================
    # fetch (decoupled front-end mode): pop FTQ entries
    # ==================================================================
    def _frontend_fetch(self, fe, cycle: int) -> None:
        stats = self.stats
        buf = self.fetch_buf
        cap = 2 * self.width
        dec = self._dec
        base = self._text_base
        fetched = 0
        while fetched < self.width and len(buf) < cap:
            entry = fe.fetch_entry()
            if entry is None:
                return
            d = dec[(entry.pc - base) >> 2]

            if entry.uncond_fold:
                op = self._new_op(d, entry.pc)
                op.uncond_folded = True
                op.fold_pc = entry.fetch_addr
                op.pred_next_pc = entry.pred_next_pc
                if not self._acquire(op):
                    self._unfetch(op)
                    fe.redirect(entry.fetch_addr)   # re-pushed after drain
                    return
                buf.append(op)
                fetched += 1
                fe.note_uncond_fetch(entry.pc, op.seq, entry.fetch_addr)
                extra = fe.demand_access(entry.fetch_addr)
                self.fetch_pc = entry.pred_next_pc
                if self._miss(op, extra):
                    return
                continue

            if d.is_branch and self.asbr is not None:
                fold = self.asbr.try_fold(entry.pc)
                if fold is not None:
                    fd = self._foreign_decode(fold.instr, fold.instr_pc)
                    op = self._new_op(fd, fold.instr_pc)
                    op.folded = True
                    op.fold_pc = entry.pc
                    if not self._acquire(op):
                        self._unfetch(op)
                        fe.redirect(entry.pc)
                        return
                    buf.append(op)
                    fetched += 1
                    fe.note_fold_hit(fold, entry.pc, op.seq)
                    extra = fe.demand_access(entry.fetch_addr)
                    self.fetch_pc = fold.next_pc
                    fe.fold_consumed(fold)
                    if self._miss(op, extra):
                        return
                    continue           # FTQ realigned; keep fetching
                fe.note_fold_miss(entry.pc, self.asbr)

            if d.is_branch:
                op = self._new_op(d, entry.pc)
                op.is_br = True
                op.pred_next_pc = entry.pred_next_pc
                buf.append(op)
                fetched += 1
                fe.note_fetch(entry.pc, op.seq)
                extra = fe.demand_access(entry.fetch_addr)
                self.fetch_pc = entry.pred_next_pc
                if self._miss(op, extra) or entry.pred_next_pc != d.pc4:
                    return             # fill in flight / predicted taken
                continue

            op = self._new_op(d, entry.pc)
            op.pred_next_pc = entry.pred_next_pc
            if not self._acquire(op):
                self._unfetch(op)
                fe.redirect(entry.pc)
                return
            buf.append(op)
            fetched += 1
            fe.note_fetch(entry.pc, op.seq)
            extra = fe.demand_access(entry.fetch_addr)
            miss = self._miss(op, extra)
            exk = op.d.exk
            if d.is_jump:
                self.fetch_pc = d.jump_target
                if entry.pred_next_pc == d.jump_target:
                    fe.stats.jumps_steered += 1
                    return             # taken transfer ends the group
                stats.jump_bubbles += 1
                if self._fetch_wait < 1:
                    self._fetch_wait = 1   # unsteered: one dead cycle
                fe.jump_resolved(entry.pc, d.jump_target)
                return
            if exk == EXK_JR or exk == EXK_JALR:
                self._fetch_block = op
                return
            if d.is_halt:
                self._fetch_halted = True
                return
            self.fetch_pc = entry.pred_next_pc
            if miss:
                return

    # ==================================================================
    # BDT release drain: program order, never speculative
    # ==================================================================
    def _drain_bdt_queue(self, cycle: int) -> None:
        q = self._bdt_queue
        unresolved = self._unresolved_br
        asbr = self.asbr
        while q:
            op = q[0]
            if op.released:            # squashed (cancelled) earlier
                q.popleft()
                continue
            if op.bdt_ready is None or op.bdt_ready > cycle:
                return
            if unresolved:
                oldest = min(unresolved)
                if oldest < op.seq:
                    return             # still speculative: hold the value
            asbr.producer_value(op.acquired_reg,
                                self.preg[op.new_phys]
                                if op.new_phys >= 0 else op.result)
            op.released = True
            q.popleft()
