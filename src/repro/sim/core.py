"""Shared scaffolding for the cycle-accurate simulators.

Both timing simulators — the 5-stage in-order pipeline
(:mod:`repro.sim.pipeline`) and the R10000-style out-of-order backend
(:mod:`repro.sim.ooo`) — fetch, decode and retire the same ISA against
the same memory hierarchy, attach the same decoupled front end
(:mod:`repro.frontend`) and the same ASBR folding unit, and report the
same core statistics.  This module holds everything that is *machine
independent* so the simulators share it instead of forking it:

* the construction-time decode machinery (:class:`_Decoded`,
  :func:`_decode`, :func:`_build_dec_table`, the interned-table memo)
  together with the EX dispatch handlers and the integer kind codes the
  block engine inlines on;
* :class:`PipelineStats`, the statistics record every experiment,
  cache entry and objective extractor consumes (the out-of-order
  machine extends it via :class:`CoreStatsMixin`);
* :func:`init_core_state`, the shared architectural-state constructor
  that establishes the *frontend attach surface*: after it runs, a
  simulator exposes ``fetch_pc`` / ``predictor`` / ``icache`` /
  ``stats`` / ``_text_base`` / ``_text_end`` / ``_dec`` exactly as
  :func:`repro.frontend.attach_frontend` and
  :class:`repro.frontend.DecoupledFrontend` expect, so the BPU+FTQ+FDIP
  front end attaches to either machine unchanged.

The in-order simulator re-exports every moved name, so existing imports
(``repro.sim.blocks``, ``repro.telemetry.traced``, the test-suite) keep
resolving; ``tests/test_stats_golden.py`` locks that the extraction
left the in-order cycle counts bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.asm.program import Program, STACK_TOP
from repro.isa.alu import LOAD_FIX, MASK32, ZERO_TESTS_U, alu_fn
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Kind
from repro.isa.registers import RegisterFile
from repro.memory.cache import Cache
from repro.memory.main_memory import MainMemory
from repro.predictors.simple import NotTakenPredictor

_LOAD_SIZE = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}
_STORE_SIZE = {"sb": 1, "sh": 2, "sw": 4}


class CoreStatsMixin:
    """Derived metrics shared by every timing simulator's stats record."""

    @property
    def cpi(self) -> float:
        return self.cycles / self.committed if self.committed else 0.0

    @property
    def branch_accuracy(self) -> float:
        """Direction+target accuracy of the (auxiliary) predictor."""
        if not self.branches:
            return 0.0
        return 1.0 - self.branch_mispredicts / self.branches


@dataclass
class PipelineStats(CoreStatsMixin):
    """Everything the experiments report."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0             # instructions that entered the pipeline
    squashed: int = 0            # wrong-path instructions killed
    branches: int = 0            # conditional branches committed (unfolded)
    branch_mispredicts: int = 0
    folds_committed: int = 0     # committed replacement (BTI/BFI) instrs;
                                 # each stands for one right-path fold
    uncond_folds_committed: int = 0  # CRISP-style unconditional folds
    predictor_lookups: int = 0   # fetch-stage direction predictions made
    jump_bubbles: int = 0        # ID-redirect bubbles from j/jal
    jr_redirects: int = 0        # EX redirects from jr/jalr
    load_use_stalls: int = 0
    icache_miss_stalls: int = 0
    dcache_miss_stalls: int = 0


# ======================================================================
# construction-time decode
# ======================================================================
class _Decoded:
    """One statically-decoded instruction at a fixed text address."""

    __slots__ = ("instr", "pc", "pc4", "ex", "exk", "dest", "srcs",
                 "src_mask", "dest_mask", "aluk", "condk", "lfk",
                 "is_load", "is_store", "is_branch", "is_halt", "is_ctl",
                 "is_jump", "rs", "rt", "imm", "shamt", "alu",
                 "result_const", "size", "load_fix",
                 "br_target", "cond", "eq_sense", "jump_target",
                 "uncond_fold")


#: integer EX-dispatch codes mirroring the ``_ex_*`` handlers below; the
#: block engine (repro.sim.blocks) branches on these in its monolithic
#: loop — an if/elif on a small int beats an indirect call per stage
EXK_NONE = 0        # JUMP / HALT / CTL: nothing to compute
EXK_ALU_RRR = 1
EXK_SHIFT_I = 2
EXK_ALU_RRI = 3
EXK_CONST = 4       # LUI
EXK_LOAD = 5
EXK_STORE = 6
EXK_BRANCH_CMP = 7
EXK_BRANCH_Z = 8
EXK_JAL = 9
EXK_JR = 10
EXK_JALR = 11

#: sub-dispatch codes letting the block engine inline the hot ALU
#: operations, zero-tests and load fixups as plain expressions instead
#: of indirect calls; 0 always means "call the generic callable"
_ALU_CODE = {"add": 1, "addu": 1, "sub": 2, "subu": 2, "and": 3,
             "or": 4, "xor": 5, "slt": 6, "sltu": 7, "sll": 8, "srl": 9}
_COND_CODE = {"==0": 1, "!=0": 2, "<0": 3, "<=0": 4, ">0": 5, ">=0": 6}
_LOAD_CODE = {"lw": 1, "lbu": 2, "lhu": 3, "lb": 4, "lh": 5}


def _ex_alu_rrr(sim, slot, d):
    slot.result = d.alu(sim._operand(d.rs), sim._operand(d.rt))


def _ex_shift_i(sim, slot, d):
    slot.result = d.alu(sim._operand(d.rs), d.shamt)


def _ex_alu_rri(sim, slot, d):
    slot.result = d.alu(sim._operand(d.rs), d.imm)


def _ex_const(sim, slot, d):            # LUI
    slot.result = d.result_const


def _ex_load(sim, slot, d):
    slot.mem_addr = (sim._operand(d.rs) + d.imm) & MASK32


def _ex_store(sim, slot, d):
    slot.mem_addr = (sim._operand(d.rs) + d.imm) & MASK32
    slot.store_val = sim._operand(d.rt)


def _ex_branch_cmp(sim, slot, d):
    taken = (sim._operand(d.rs) == sim._operand(d.rt)) == d.eq_sense
    target = d.br_target
    actual = target if taken else d.pc4
    stats = sim.stats
    stats.branches += 1
    sim.predictor.update(slot.pc, taken, target)
    if actual != slot.pred_next_pc:
        stats.branch_mispredicts += 1
        sim._redirect(actual)


def _ex_branch_z(sim, slot, d):
    taken = d.cond(sim._operand(d.rs))
    target = d.br_target
    actual = target if taken else d.pc4
    stats = sim.stats
    stats.branches += 1
    sim.predictor.update(slot.pc, taken, target)
    if actual != slot.pred_next_pc:
        stats.branch_mispredicts += 1
        sim._redirect(actual)


def _ex_jal(sim, slot, d):
    slot.result = d.pc4


def _ex_jr(sim, slot, d):
    sim._redirect(sim._operand(d.rs))
    sim.stats.jr_redirects += 1


def _ex_jalr(sim, slot, d):
    slot.result = d.pc4
    sim._redirect(sim._operand(d.rs))
    sim.stats.jr_redirects += 1


def _ex_none(sim, slot, d):             # JUMP/HALT/CTL: nothing to compute
    pass


def _decode(instr: Instruction, pc: int) -> _Decoded:
    """Build the decoded record for ``instr`` at address ``pc``."""
    d = _Decoded()
    spec = instr.spec
    k = spec.kind
    d.instr = instr
    d.pc = pc
    d.pc4 = (pc + 4) & MASK32
    d.dest = instr.dest_reg
    d.srcs = tuple(instr.src_regs)
    # register bitmasks: the block engine's hazard check is one AND
    # (`dest_mask & src_mask`), equivalent to `dest in srcs` with the
    # dest None/r0 guards folded in (r0 never sets a dest bit)
    d.dest_mask = 1 << d.dest if d.dest is not None and d.dest != 0 else 0
    mask = 0
    for s in d.srcs:
        mask |= 1 << s
    d.src_mask = mask
    d.aluk = 0
    d.condk = 0
    d.lfk = 0
    d.is_load = k is Kind.LOAD
    d.is_store = k is Kind.STORE
    d.is_branch = instr.is_branch
    d.is_halt = k is Kind.HALT
    d.is_ctl = k is Kind.CTL
    d.is_jump = k is Kind.JUMP or k is Kind.JAL
    d.rs = instr.rs
    d.rt = instr.rt
    d.imm = instr.imm
    d.shamt = instr.shamt
    d.alu = None
    d.result_const = 0
    d.size = 0
    d.load_fix = None
    d.br_target = 0
    d.cond = None
    d.eq_sense = True
    d.jump_target = 0
    d.uncond_fold = None

    if k is Kind.ALU_RRR:
        d.alu = alu_fn(spec.alu_op)
        d.aluk = _ALU_CODE.get(spec.alu_op, 0)
        d.ex = _ex_alu_rrr
        d.exk = EXK_ALU_RRR
    elif k is Kind.SHIFT_I:
        d.alu = alu_fn(spec.alu_op)
        d.aluk = _ALU_CODE.get(spec.alu_op, 0)
        d.ex = _ex_shift_i
        d.exk = EXK_SHIFT_I
    elif k is Kind.ALU_RRI:
        d.alu = alu_fn(spec.alu_op)
        d.aluk = _ALU_CODE.get(spec.alu_op, 0)
        d.ex = _ex_alu_rri
        d.exk = EXK_ALU_RRI
    elif k is Kind.LUI:
        d.result_const = (instr.imm << 16) & MASK32
        d.ex = _ex_const
        d.exk = EXK_CONST
    elif k is Kind.LOAD:
        d.size = _LOAD_SIZE[instr.op]
        d.load_fix = LOAD_FIX[instr.op]
        d.lfk = _LOAD_CODE.get(instr.op, 0)
        d.ex = _ex_load
        d.exk = EXK_LOAD
    elif k is Kind.STORE:
        d.size = _STORE_SIZE[instr.op]
        d.ex = _ex_store
        d.exk = EXK_STORE
    elif k is Kind.BRANCH_CMP:
        d.eq_sense = instr.op == "beq"
        d.br_target = instr.branch_target(pc)
        d.ex = _ex_branch_cmp
        d.exk = EXK_BRANCH_CMP
    elif k is Kind.BRANCH_Z:
        d.cond = ZERO_TESTS_U[spec.condition.value]
        d.condk = _COND_CODE.get(spec.condition.value, 0)
        d.br_target = instr.branch_target(pc)
        d.ex = _ex_branch_z
        d.exk = EXK_BRANCH_Z
    elif k is Kind.JUMP:
        d.jump_target = instr.jump_target(pc)
        d.ex = _ex_none
        d.exk = EXK_NONE
    elif k is Kind.JAL:
        d.jump_target = instr.jump_target(pc)
        d.ex = _ex_jal
        d.exk = EXK_JAL
    elif k is Kind.JR:
        d.ex = _ex_jr
        d.exk = EXK_JR
    elif k is Kind.JALR:
        d.ex = _ex_jalr
        d.exk = EXK_JALR
    else:                               # HALT, CTL
        d.ex = _ex_none
        d.exk = EXK_NONE
    return d


def _build_dec_table(program: Program,
                     fold_unconditional: bool) -> List[_Decoded]:
    """Decode every text slot and resolve unconditional fold targets.

    ``d.uncond_fold`` is ``(target_record, target_pc, next_fetch_pc)``
    when a statically-unconditional transfer (``j`` / ``beq r0, r0``)
    can be folded at fetch, else None — see
    ``PipelineSimulator.fold_unconditional``.
    """
    dec = [_decode(instr, program.pc_of(i))
           for i, instr in enumerate(program.instrs)]
    if not fold_unconditional:
        return dec
    base, end = program.text_base, program.text_end
    for d in dec:
        k = d.instr.spec.kind
        if k is Kind.JUMP:
            target = d.jump_target
        elif (k is Kind.BRANCH_CMP and d.instr.op == "beq"
                and d.rs == 0 and d.rt == 0):
            target = d.br_target
        else:
            continue
        if target & 3 or not base <= target < end:
            continue
        td = dec[(target - base) >> 2]
        if td.instr.is_control or td.is_halt:
            continue
        d.uncond_fold = (td, target, (target + 4) & MASK32)
    return dec


#: interned decode tables for the block engine: _Decoded records are
#: immutable after construction, so simulators over the same (program,
#: fold flag) can share one table instead of re-deriving it per RunSpec.
#: Keyed on object identity plus the program's mutation ``version``
#: (``replace_instr`` bumps it); the table's records hold the program's
#: instructions, and the key tuple below pins the program itself, so a
#: live entry's id can never be recycled by a different program.
_DEC_MEMO: Dict[tuple, tuple] = {}
_DEC_MEMO_CAP = 64


def _interned_dec_table(program: Program,
                        fold_unconditional: bool) -> List[_Decoded]:
    key = (id(program), getattr(program, "version", 0),
           fold_unconditional)
    hit = _DEC_MEMO.get(key)
    if hit is not None and hit[0] is program:
        return hit[1]
    dec = _build_dec_table(program, fold_unconditional)
    if len(_DEC_MEMO) >= _DEC_MEMO_CAP:
        _DEC_MEMO.clear()
    _DEC_MEMO[key] = (program, dec)
    return dec


# ======================================================================
# shared architectural-state construction (the frontend attach surface)
# ======================================================================
def init_core_state(sim, program: Program, memory, predictor, asbr,
                    icache_cfg, dcache_cfg) -> None:
    """Construct the machine-independent half of a timing simulator.

    After this returns, ``sim`` exposes the full attach surface that
    :func:`repro.frontend.attach_frontend` and the ASBR unit rely on:
    ``program`` / ``memory`` (data segment + text image loaded),
    ``predictor`` (defaulted), ``asbr`` (BDT seeded against the initial
    register file), ``icache`` / ``dcache``, ``regs`` (with the stack
    pointer), ``fetch_pc`` / ``halted``, the text-bounds and
    memory/cache fast-path aliases, and the three BDT forwarding-point
    flags.  The caller still owns ``stats``, ``config`` and ``_dec``
    (they are machine-specific).
    """
    sim.program = program
    if memory is None:
        # data-segment initialisation is the caller's job when a
        # pre-built memory is supplied (see FunctionalSimulator)
        memory = MainMemory()
        for addr, word in program.data.items():
            memory.write_word(addr, word)
    sim.memory = memory
    for i, word in enumerate(program.words):
        sim.memory.write_word(program.pc_of(i), word)
    sim.predictor = predictor if predictor is not None \
        else NotTakenPredictor()
    sim.asbr = asbr
    sim.icache = Cache(icache_cfg, "icache")
    sim.dcache = Cache(dcache_cfg, "dcache")
    sim.regs = RegisterFile()
    sim.regs.write(29, STACK_TOP)
    if asbr is not None:
        # the BDT must agree with the initial register file, exactly
        # as loading it at program-upload time would (Section 7)
        for r in range(1, 32):
            asbr.bdt.set_value(r, sim.regs[r])

    sim.fetch_pc = program.entry if program.entry is not None \
        else program.text_base
    sim.halted = False

    # ---- fast-path aliases ------------------------------------------
    sim._reglist = sim.regs.raw
    sim._mem_read = sim.memory.read
    sim._mem_write = sim.memory.write
    sim._icache_access = sim.icache.access
    sim._dcache_access = sim.dcache.access
    sim._text_base = program.text_base
    sim._text_end = program.text_end
    sim._bdt_commit = asbr is not None and asbr.bdt_update == "commit"
    sim._rel_mem = asbr is not None and asbr.bdt_update == "mem"
    sim._rel_ex = asbr is not None and asbr.bdt_update == "execute"
