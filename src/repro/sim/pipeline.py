"""Cycle-accurate 5-stage in-order pipeline simulator.

Models the paper's evaluation platform (Section 8): a single-issue,
in-order, 5-stage (IF/ID/EX/MEM/WB) embedded core with 8KB instruction
and data caches, a pluggable branch predictor, and — optionally — the
ASBR folding unit in the fetch stage.

Timing model
------------
* Full ALU forwarding (EX/MEM -> EX and write-before-read register
  file), one-cycle load-use interlock.
* Conditional branches and ``jr``/``jalr`` resolve in EX; a misprediction
  squashes the two younger instructions and redirects fetch (2-cycle
  penalty).  ``j``/``jal`` redirect in ID (1-cycle penalty).  A correct
  taken prediction redirects fetch through the BTB with no penalty.
* Cache misses stall fetch (I-cache) or the MEM stage (D-cache) for the
  miss penalty.
* An ASBR fold consumes the branch in the fetch stage: the replacement
  instruction (BTI/BFI) occupies the branch's fetch slot with its own
  architectural PC, and fetch continues past it — the folded branch
  costs zero cycles and never enters the pipeline.

BDT timing (the *threshold*, Section 5.2) is emergent: values reach the
early-condition logic at the end of EX, MEM or WB depending on the
configured forwarding path, and a fetch-stage fold can only observe them
on the following cycle.  This reproduces exactly the paper's
distance-vs-threshold feasibility rule.

Architectural behaviour is defined by
:class:`~repro.sim.functional.FunctionalSimulator`; equality of final
register/memory state under every configuration is enforced by the
integration test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.asbr.folding import ASBRUnit
from repro.asm.program import Program, STACK_TOP
from repro.isa.alu import alu_execute, load_value, to_signed
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Kind
from repro.isa.registers import RegisterFile
from repro.memory.cache import Cache, CacheConfig
from repro.memory.main_memory import MainMemory
from repro.predictors.base import BranchPredictor
from repro.predictors.simple import NotTakenPredictor
from repro.sim.functional import SimulationError, _eval_zero

_LOAD_SIZE = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}
_STORE_SIZE = {"sb": 1, "sh": 2, "sw": 4}


@dataclass
class PipelineConfig:
    """Pipeline and memory-hierarchy parameters."""

    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    max_cycles: int = 2_000_000_000

    def __post_init__(self) -> None:
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")


@dataclass
class PipelineStats:
    """Everything the experiments report."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0             # instructions that entered the pipeline
    squashed: int = 0            # wrong-path instructions killed
    branches: int = 0            # conditional branches committed (unfolded)
    branch_mispredicts: int = 0
    folds_committed: int = 0     # committed replacement (BTI/BFI) instrs;
                                 # each stands for one right-path fold
    uncond_folds_committed: int = 0  # CRISP-style unconditional folds
    predictor_lookups: int = 0   # fetch-stage direction predictions made
    jump_bubbles: int = 0        # ID-redirect bubbles from j/jal
    jr_redirects: int = 0        # EX redirects from jr/jalr
    load_use_stalls: int = 0
    icache_miss_stalls: int = 0
    dcache_miss_stalls: int = 0

    @property
    def cpi(self) -> float:
        return self.cycles / self.committed if self.committed else 0.0

    @property
    def branch_accuracy(self) -> float:
        """Direction+target accuracy of the (auxiliary) predictor."""
        if not self.branches:
            return 0.0
        return 1.0 - self.branch_mispredicts / self.branches


class _Slot:
    """One in-flight instruction (the content of a pipeline latch)."""

    __slots__ = ("instr", "pc", "folded", "uncond_folded",
                 "pred_next_pc", "is_cond_branch",
                 "result", "mem_addr", "store_val", "mem_wait", "mem_done",
                 "ex_done", "id_done", "acquired_reg")

    def __init__(self, instr: Instruction, pc: int,
                 folded: bool = False, uncond_folded: bool = False) -> None:
        self.instr = instr
        self.pc = pc
        self.folded = folded
        self.uncond_folded = uncond_folded
        self.pred_next_pc = 0          # what fetch assumed comes next
        self.is_cond_branch = instr.is_branch
        self.result = 0
        self.mem_addr = 0
        self.store_val = 0
        self.mem_wait = 0
        self.mem_done = False
        self.ex_done = False
        self.id_done = False
        self.acquired_reg: Optional[int] = None


class PipelineSimulator:
    """Runs one program to completion and collects cycle statistics."""

    def __init__(self, program: Program,
                 memory: Optional[MainMemory] = None,
                 predictor: Optional[BranchPredictor] = None,
                 asbr: Optional[ASBRUnit] = None,
                 config: Optional[PipelineConfig] = None,
                 fold_unconditional: bool = False) -> None:
        """``fold_unconditional`` enables CRISP-style folding of
        statically-unconditional control transfers (``j`` and
        ``beq r0, r0``) at fetch — the classic scheme of Ditzel &
        McLellan the paper cites as related work [10].  Like an ASBR
        fold, the transfer is replaced in its fetch slot by its target
        instruction whenever that instruction is itself foldable
        (non-control)."""
        self.program = program
        self.config = config if config is not None else PipelineConfig()
        if memory is None:
            # data-segment initialisation is the caller's job when a
            # pre-built memory is supplied (see FunctionalSimulator)
            memory = MainMemory()
            for addr, word in program.data.items():
                memory.write_word(addr, word)
        self.memory = memory
        for i, word in enumerate(program.words):
            self.memory.write_word(program.pc_of(i), word)
        self.predictor = predictor if predictor is not None \
            else NotTakenPredictor()
        self.asbr = asbr
        self.fold_unconditional = fold_unconditional
        self.icache = Cache(self.config.icache, "icache")
        self.dcache = Cache(self.config.dcache, "dcache")
        self.regs = RegisterFile()
        self.regs.write(29, STACK_TOP)
        if asbr is not None:
            # the BDT must agree with the initial register file, exactly
            # as loading it at program-upload time would (Section 7)
            for r in range(1, 32):
                asbr.bdt.set_value(r, self.regs[r])
        self.stats = PipelineStats()

        self.fetch_pc = program.entry if program.entry is not None \
            else program.text_base
        self.halted = False

        # pipeline latches: the slot currently occupying each stage
        self.s_if: Optional[_Slot] = None     # being fetched (I$ wait)
        self.if_wait = 0
        self.s_id: Optional[_Slot] = None
        self.s_ex: Optional[_Slot] = None
        self.s_mem: Optional[_Slot] = None
        self.s_wb: Optional[_Slot] = None
        self._suppress_fetch = False
        self._fetch_halted = False            # halt decoded on current path
        self._pending_releases = []           # (reg, value) applied at EOT

    # ==================================================================
    # public API
    # ==================================================================
    def run(self) -> PipelineStats:
        """Simulate until the program's ``halt`` commits."""
        max_cycles = self.config.max_cycles
        while not self.halted:
            if self.stats.cycles >= max_cycles:
                raise SimulationError(
                    "cycle budget (%d) exhausted; fetch_pc=0x%x"
                    % (max_cycles, self.fetch_pc))
            self.tick()
        return self.stats

    # ==================================================================
    # one clock cycle
    # ==================================================================
    def tick(self) -> None:
        self.stats.cycles += 1
        self._suppress_fetch = False

        # ---- WB: commit -------------------------------------------------
        if self.s_wb is not None:
            self._commit(self.s_wb)
            self.s_wb = None
            if self.halted:
                # nothing younger may have architectural effect
                return

        # ---- MEM: first-cycle work --------------------------------------
        mem = self.s_mem
        if mem is not None and not mem.mem_done:
            self._mem_work(mem)

        # ---- EX: first-cycle work (may squash and redirect) -------------
        ex = self.s_ex
        if ex is not None and not ex.ex_done:
            self._ex_work(ex)

        # ---- ID: first-cycle work (jump redirect, BDT acquire) ----------
        did = self.s_id
        if did is not None and not did.id_done:
            self._id_work(did)

        # ---- IF: start a new fetch --------------------------------------
        if (self.s_if is None and not self._suppress_fetch
                and not self._fetch_halted):
            self._start_fetch()

        # ---- end of cycle: advance latches downstream-first -------------
        self._advance()

        # ---- apply deferred BDT releases (visible from next cycle) ------
        if self._pending_releases:
            asbr = self.asbr
            for reg, value in self._pending_releases:
                asbr.producer_value(reg, value)
            self._pending_releases.clear()

    # ==================================================================
    # stage work
    # ==================================================================
    def _commit(self, slot: _Slot) -> None:
        instr = slot.instr
        kind = instr.spec.kind
        dest = instr.dest_reg
        if dest is not None:
            self.regs.write(dest, slot.result)
            if (self.asbr is not None and slot.acquired_reg is not None):
                # commit-point BDT update (no forwarding paths configured)
                if self.asbr.bdt_update == "commit":
                    self._pending_releases.append((dest, slot.result))
        if kind is Kind.HALT:
            self.halted = True
        elif kind is Kind.CTL and self.asbr is not None:
            self.asbr.control_write(instr.imm)
        if slot.folded:
            self.stats.folds_committed += 1
        if slot.uncond_folded:
            self.stats.uncond_folds_committed += 1
        self.stats.committed += 1

    def _mem_work(self, slot: _Slot) -> None:
        instr = slot.instr
        slot.mem_done = True
        if instr.is_load:
            raw = self.memory.read(slot.mem_addr, _LOAD_SIZE[instr.op])
            slot.result = load_value(instr.op, raw)
            extra = self.dcache.access(slot.mem_addr, is_write=False)
            slot.mem_wait = extra
            self.stats.dcache_miss_stalls += extra
        elif instr.is_store:
            self.memory.write(slot.mem_addr, slot.store_val,
                              _STORE_SIZE[instr.op])
            extra = self.dcache.access(slot.mem_addr, is_write=True)
            slot.mem_wait = extra
            self.stats.dcache_miss_stalls += extra

    def _operand(self, reg: int) -> int:
        """EX-stage operand read with EX/MEM forwarding.

        Loads in the MEM stage have already performed their access (MEM
        work runs earlier in the same cycle), so their result is
        forwardable too; the load-use interlock guarantees a dependent
        instruction is never in EX during the load's first MEM cycle, so
        this never shortens the architectural load-use latency.
        """
        if reg == 0:
            return 0
        fwd = self.s_mem
        if fwd is not None and fwd.instr.dest_reg == reg:
            return fwd.result
        return self.regs[reg]

    def _ex_work(self, slot: _Slot) -> None:
        instr = slot.instr
        kind = instr.spec.kind
        slot.ex_done = True
        pc = slot.pc

        if kind is Kind.ALU_RRR:
            slot.result = alu_execute(instr.spec.alu_op,
                                      self._operand(instr.rs),
                                      self._operand(instr.rt))
        elif kind is Kind.SHIFT_I:
            slot.result = alu_execute(instr.spec.alu_op,
                                      self._operand(instr.rs), instr.shamt)
        elif kind is Kind.ALU_RRI:
            slot.result = alu_execute(instr.spec.alu_op,
                                      self._operand(instr.rs), instr.imm)
        elif kind is Kind.LUI:
            slot.result = (instr.imm << 16) & 0xFFFFFFFF
        elif kind is Kind.LOAD:
            slot.mem_addr = (self._operand(instr.rs) + instr.imm) & 0xFFFFFFFF
        elif kind is Kind.STORE:
            slot.mem_addr = (self._operand(instr.rs) + instr.imm) & 0xFFFFFFFF
            slot.store_val = self._operand(instr.rt)
        elif kind is Kind.BRANCH_CMP or kind is Kind.BRANCH_Z:
            self._resolve_branch(slot)
            return
        elif kind is Kind.JAL:
            slot.result = (pc + 4) & 0xFFFFFFFF
        elif kind is Kind.JR:
            self._redirect(self._operand(instr.rs))
            self.stats.jr_redirects += 1
        elif kind is Kind.JALR:
            slot.result = (pc + 4) & 0xFFFFFFFF
            self._redirect(self._operand(instr.rs))
            self.stats.jr_redirects += 1
        # JUMP/HALT/CTL: nothing to compute

    def _resolve_branch(self, slot: _Slot) -> None:
        instr = slot.instr
        pc = slot.pc
        if instr.spec.kind is Kind.BRANCH_CMP:
            eq = self._operand(instr.rs) == self._operand(instr.rt)
            taken = eq if instr.op == "beq" else not eq
        else:
            taken = _eval_zero(instr.spec.condition.value,
                               to_signed(self._operand(instr.rs)))
        target = instr.branch_target(pc)
        actual_next = target if taken else (pc + 4) & 0xFFFFFFFF
        self.stats.branches += 1
        self.predictor.update(pc, taken, target)
        if actual_next != slot.pred_next_pc:
            self.stats.branch_mispredicts += 1
            self._redirect(actual_next)

    def _redirect(self, new_pc: int) -> None:
        """EX-stage control redirect: squash the two younger stages."""
        self._squash(self.s_id)
        self.s_id = None
        self._squash(self.s_if)
        self.s_if = None
        self.if_wait = 0
        self.fetch_pc = new_pc
        self._suppress_fetch = True
        self._fetch_halted = False   # any halt seen downstream was wrong-path

    def _squash(self, slot: Optional[_Slot]) -> None:
        if slot is None:
            return
        self.stats.squashed += 1
        if self.asbr is not None and slot.acquired_reg is not None:
            self.asbr.producer_squashed(slot.acquired_reg)
            slot.acquired_reg = None

    def _id_work(self, slot: _Slot) -> None:
        instr = slot.instr
        slot.id_done = True
        dest = instr.dest_reg
        if self.asbr is not None and dest is not None and dest != 0:
            self.asbr.producer_decoded(dest)
            slot.acquired_reg = dest
        kind = instr.spec.kind
        if kind is Kind.HALT:
            # stop fetching down this path; an EX redirect re-enables it
            self._fetch_halted = True
        elif kind is Kind.JUMP or kind is Kind.JAL:
            # target known after decode: redirect next cycle's fetch
            self._squash(self.s_if)
            self.s_if = None
            self.if_wait = 0
            self.fetch_pc = instr.jump_target(slot.pc)
            self._suppress_fetch = True
            self.stats.jump_bubbles += 1

    # ==================================================================
    # fetch
    # ==================================================================
    def _in_text(self, pc: int) -> bool:
        return (self.program.text_base <= pc < self.program.text_end
                and pc % 4 == 0)

    @staticmethod
    def _static_uncond_target(instr: Instruction,
                              pc: int) -> Optional[int]:
        """Target of a statically-unconditional transfer, else None."""
        kind = instr.spec.kind
        if kind is Kind.JUMP:
            return instr.jump_target(pc)
        if kind is Kind.BRANCH_CMP and instr.op == "beq" \
                and instr.rs == 0 and instr.rt == 0:
            return instr.branch_target(pc)
        return None

    def _start_fetch(self) -> None:
        pc = self.fetch_pc
        if not self._in_text(pc):
            return  # ran off the text segment (wrong path) — fetch nothing
        instr = self.program.instrs[(pc - self.program.text_base) >> 2]
        extra = self.icache.access(pc)
        self.stats.icache_miss_stalls += extra
        self.if_wait = extra

        if self.fold_unconditional:
            target = self._static_uncond_target(instr, pc)
            if target is not None and self._in_text(target):
                tinstr = self.program.instrs[
                    (target - self.program.text_base) >> 2]
                if not tinstr.is_control \
                        and tinstr.spec.kind is not Kind.HALT:
                    self.s_if = _Slot(tinstr, target, uncond_folded=True)
                    self.stats.fetched += 1
                    self.fetch_pc = (target + 4) & 0xFFFFFFFF
                    return

        if instr.is_branch:
            if self.asbr is not None:
                fold = self.asbr.try_fold(pc)
                if fold is not None:
                    slot = _Slot(fold.instr, fold.instr_pc, folded=True)
                    self.s_if = slot
                    self.stats.fetched += 1
                    self.fetch_pc = fold.next_pc
                    return
            pred = self.predictor.predict(pc)
            self.stats.predictor_lookups += 1
            slot = _Slot(instr, pc)
            if pred.taken and pred.target is not None:
                slot.pred_next_pc = pred.target
            else:
                slot.pred_next_pc = (pc + 4) & 0xFFFFFFFF
            self.s_if = slot
            self.stats.fetched += 1
            self.fetch_pc = slot.pred_next_pc
            return

        self.s_if = _Slot(instr, pc)
        self.stats.fetched += 1
        self.fetch_pc = (pc + 4) & 0xFFFFFFFF

    # ==================================================================
    # latch advance (end of cycle), downstream first
    # ==================================================================
    def _advance(self) -> None:
        update = self.asbr.bdt_update if self.asbr is not None else None

        # MEM -> WB
        mem = self.s_mem
        if mem is not None and mem.mem_done:
            if mem.mem_wait > 0:
                mem.mem_wait -= 1
            else:
                if (update is not None and mem.acquired_reg is not None
                        and (update == "mem"
                             or (update == "execute" and mem.instr.is_load))):
                    self._pending_releases.append(
                        (mem.acquired_reg, mem.result))
                    mem.acquired_reg = None
                self.s_wb = mem
                self.s_mem = None

        # EX -> MEM
        ex = self.s_ex
        ex_is_load = False
        ex_dest = None
        if ex is not None and ex.ex_done and self.s_mem is None:
            if (update == "execute" and ex.acquired_reg is not None
                    and not ex.instr.is_load):
                self._pending_releases.append((ex.acquired_reg, ex.result))
                ex.acquired_reg = None
            self.s_mem = ex
            self.s_ex = None
        # the interlock below keys off whichever instruction occupied EX
        # during this cycle (ex), whether or not it just advanced
        if ex is not None:
            ex_is_load = ex.instr.is_load
            ex_dest = ex.instr.dest_reg

        # ID -> EX (load-use interlock against the instruction that was
        # in EX this cycle)
        did = self.s_id
        if did is not None and did.id_done and self.s_ex is None:
            if (ex_is_load and ex_dest is not None and ex_dest != 0
                    and ex_dest in did.instr.src_regs):
                self.stats.load_use_stalls += 1
            else:
                self.s_ex = did
                self.s_id = None

        # IF -> ID
        fslot = self.s_if
        if fslot is not None:
            if self.if_wait > 0:
                self.if_wait -= 1
            elif self.s_id is None:
                self.s_id = fslot
                self.s_if = None
