"""Cycle-accurate 5-stage in-order pipeline simulator.

Models the paper's evaluation platform (Section 8): a single-issue,
in-order, 5-stage (IF/ID/EX/MEM/WB) embedded core with 8KB instruction
and data caches, a pluggable branch predictor, and — optionally — the
ASBR folding unit in the fetch stage.

Timing model
------------
* Full ALU forwarding (EX/MEM -> EX and write-before-read register
  file), one-cycle load-use interlock.
* Conditional branches and ``jr``/``jalr`` resolve in EX; a misprediction
  squashes the two younger instructions and redirects fetch (2-cycle
  penalty).  ``j``/``jal`` redirect in ID (1-cycle penalty).  A correct
  taken prediction redirects fetch through the BTB with no penalty.
* Cache misses stall fetch (I-cache) or the MEM stage (D-cache) for the
  miss penalty.
* An ASBR fold consumes the branch in the fetch stage: the replacement
  instruction (BTI/BFI) occupies the branch's fetch slot with its own
  architectural PC, and fetch continues past it — the folded branch
  costs zero cycles and never enters the pipeline.

BDT timing (the *threshold*, Section 5.2) is emergent: values reach the
early-condition logic at the end of EX, MEM or WB depending on the
configured forwarding path, and a fetch-stage fold can only observe them
on the following cycle.  This reproduces exactly the paper's
distance-vs-threshold feasibility rule.

Fast path
---------
Every static instruction is decoded once at simulator construction into
a :class:`_Decoded` record: the EX-stage handler is a pre-bound
function, operand register indices, ALU callables, load widths and
sign-fixups are pre-resolved, and — because each text slot's PC is fixed
— branch/jump targets and the unconditional-fold target are absolute
constants.  ``tick()`` therefore never re-branches on the opcode; the
per-cycle work is a handful of attribute reads and one indirect call per
occupied stage.  Cycle counts are *bit-identical* to the original
re-dispatching implementation (``tests/test_stats_golden.py`` locks
them; ``tests/test_differential_random.py`` locks architectural state).

Telemetry
---------
Passing ``trace=Tracer(...)`` binds the instrumented twins of the hot
methods (``repro.telemetry.traced``) onto the instance at construction,
emitting typed per-cycle events (fetch/issue/commit, branch resolution,
fold attempts, BDT updates, squashes).  The hook check happens once,
here — with no tracer attached the fast path above is unchanged.

Architectural behaviour is defined by
:class:`~repro.sim.functional.FunctionalSimulator`; equality of final
register/memory state under every configuration is enforced by the
integration test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.asbr.folding import ASBRUnit
from repro.asm.program import Program
from repro.isa.alu import MASK32
from repro.isa.instruction import Instruction
from repro.memory.cache import CacheConfig
from repro.memory.main_memory import MainMemory
from repro.predictors.base import BranchPredictor
from repro.sim.functional import SimulationError

# The decode machinery, stats record and shared constructor live in
# repro.sim.core (shared with the out-of-order backend); every moved
# name is re-exported here so existing imports keep resolving.
from repro.sim.core import (  # noqa: F401  (re-exports)
    _ALU_CODE, _COND_CODE, _DEC_MEMO, _DEC_MEMO_CAP, _LOAD_CODE,
    _LOAD_SIZE, _STORE_SIZE, CoreStatsMixin, _Decoded, PipelineStats,
    EXK_ALU_RRI, EXK_ALU_RRR, EXK_BRANCH_CMP, EXK_BRANCH_Z, EXK_CONST,
    EXK_JAL, EXK_JALR, EXK_JR, EXK_LOAD, EXK_NONE, EXK_SHIFT_I,
    EXK_STORE,
    _build_dec_table, _decode, _interned_dec_table, init_core_state,
    _ex_alu_rri, _ex_alu_rrr, _ex_branch_cmp, _ex_branch_z, _ex_const,
    _ex_jal, _ex_jalr, _ex_jr, _ex_load, _ex_none, _ex_shift_i,
    _ex_store,
)


@dataclass
class PipelineConfig:
    """Pipeline and memory-hierarchy parameters."""

    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    max_cycles: int = 2_000_000_000

    def __post_init__(self) -> None:
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")


class _Slot:
    """One in-flight instruction (the content of a pipeline latch)."""

    __slots__ = ("d", "pc", "folded", "uncond_folded",
                 "pred_next_pc", "result", "mem_addr", "store_val",
                 "mem_wait", "mem_done", "ex_done", "id_done",
                 "acquired_reg",
                 # telemetry-only fields: written exclusively by the
                 # traced fast path (repro.telemetry.traced), so they
                 # are deliberately NOT initialised here — the untraced
                 # hot path never pays for them
                 "seq", "fold_pc", "fold_taken")

    def __init__(self, d: _Decoded, pc: int) -> None:
        self.d = d
        self.pc = pc
        self.folded = False            # fold paths set these after
        self.uncond_folded = False     # construction (kwargs are slow)
        self.pred_next_pc = 0          # what fetch assumed comes next
        self.result = 0
        self.mem_addr = 0
        self.store_val = 0
        self.mem_wait = 0
        self.mem_done = False
        self.ex_done = False
        self.id_done = False
        self.acquired_reg: Optional[int] = None

    @property
    def instr(self) -> Instruction:
        return self.d.instr


class PipelineSimulator:
    """Runs one program to completion and collects cycle statistics."""

    def __init__(self, program: Program,
                 memory: Optional[MainMemory] = None,
                 predictor: Optional[BranchPredictor] = None,
                 asbr: Optional[ASBRUnit] = None,
                 config: Optional[PipelineConfig] = None,
                 fold_unconditional: bool = False,
                 trace=None, engine: str = "interp",
                 frontend=None) -> None:
        """``fold_unconditional`` enables CRISP-style folding of
        statically-unconditional control transfers (``j`` and
        ``beq r0, r0``) at fetch — the classic scheme of Ditzel &
        McLellan the paper cites as related work [10].  Like an ASBR
        fold, the transfer is replaced in its fetch slot by its target
        instruction whenever that instruction is itself foldable
        (non-control).

        ``trace`` attaches a :class:`repro.telemetry.Tracer`: the
        instrumented twins of the hot methods are bound onto this
        instance (one check, here, at construction), so tracing has
        strictly zero cost when disabled.  Traced runs produce
        bit-identical statistics and architectural state.

        ``engine`` selects the execution engine: ``"interp"`` is the
        decoded-dispatch ``tick()`` loop; ``"blocks"`` runs the
        block-compiled fast loop (:mod:`repro.sim.blocks`) with
        bit-identical statistics; ``"superblocks"`` additionally
        compiles the ASBR fold checks, BDT update points and predictor
        decisions into the loop body with direct-threaded fold
        transfer (:mod:`repro.sim.superblocks`), still bit-identical.
        When telemetry is attached or ``tick`` has been rebound on the
        instance (fault injection), ``run`` transparently falls back
        to the interpreted loop.

        ``frontend`` attaches the decoupled front end
        (:mod:`repro.frontend`): pass a
        :class:`~repro.frontend.FrontendConfig` (or ``True`` for the
        defaults) to replace the coupled fetch stage with a BPU+FTQ
        running ahead of fetch and — when configured — FDIP I-cache
        prefetching.  Default None keeps the seed fetch path untouched
        (bit-identical stats, golden-locked); like telemetry, an
        attached frontend makes the blocks engine fall back to the
        interpreted loop."""
        if engine not in ("interp", "blocks", "superblocks"):
            raise ValueError(
                "unknown engine %r (expected 'interp', 'blocks' or "
                "'superblocks')" % (engine,))
        self.engine = engine
        self.config = config if config is not None else PipelineConfig()
        self.fold_unconditional = fold_unconditional
        # shared architectural state + frontend attach surface (memory
        # image, predictor default, caches, registers, BDT seed, fetch
        # pointer, fast-path aliases) — see repro.sim.core
        init_core_state(self, program, memory, predictor, asbr,
                        self.config.icache, self.config.dcache)
        self.stats = PipelineStats()

        # pipeline latches: the slot currently occupying each stage
        self.s_if: Optional[_Slot] = None     # being fetched (I$ wait)
        self.if_wait = 0
        self.s_id: Optional[_Slot] = None
        self.s_ex: Optional[_Slot] = None
        self.s_mem: Optional[_Slot] = None
        self.s_wb: Optional[_Slot] = None
        self._suppress_fetch = False
        self._fetch_halted = False            # halt decoded on current path
        self._pending_releases = []           # (reg, value) applied at EOT

        if engine in ("blocks", "superblocks"):
            # shared, interned table: computed once per (program, fold
            # flag) per process instead of once per simulator
            self._dec = _interned_dec_table(program, fold_unconditional)
        else:
            self._dec = _build_dec_table(program, fold_unconditional)
        # injected (BTI/BFI) instructions decoded on first use; the pin
        # list keeps every memoized instruction alive so a (id, pc) key
        # can never be recycled by a new object after BIT eviction
        self._foreign: Dict[tuple, _Decoded] = {}
        self._foreign_pin: List[Instruction] = []

        # ---- decoupled front end (opt-in; default path untouched) -------
        self.frontend = None
        if frontend is not None:
            from repro.frontend import attach_frontend
            attach_frontend(self, frontend)

        # ---- telemetry (the one and only disabled-path hook check) ------
        self.trace = None
        if trace is not None:
            from repro.telemetry.traced import attach
            attach(self, trace)

    def _foreign_decode(self, instr: Instruction, pc: int) -> _Decoded:
        """Decoded record for an injected (non-program) instruction,
        memoized per ``(instr, pc)`` for the life of the simulator.

        BIT entries pre-decode their own BTI/BFI objects, so a hot
        folded branch decodes its target exactly once.  The key includes
        the identity *and* the injection PC, and the memoized
        instruction is pinned: a ``ctlw`` reconfiguration may evict a
        BIT entry and free its BTI/BFI, and without the pin a later
        allocation could recycle the id and silently inherit a stale
        decode."""
        key = (id(instr), pc)
        d = self._foreign.get(key)
        if d is None:
            d = _decode(instr, pc)
            self._foreign[key] = d
            self._foreign_pin.append(instr)
        return d

    # ==================================================================
    # public API
    # ==================================================================
    def run(self) -> PipelineStats:
        """Simulate until the program's ``halt`` commits."""
        if (self.trace is None and self.frontend is None
                and type(self) is PipelineSimulator
                and "tick" not in self.__dict__):
            # telemetry attach and fault injection both rebind methods
            # on the instance (and tests may subclass); any of those
            # falls back to the interpreted loop so the instrumented
            # twins keep seeing every cycle
            if self.engine == "blocks":
                from repro.sim.blocks import run_pipeline_blocks
                return run_pipeline_blocks(self)
            if self.engine == "superblocks":
                from repro.sim.superblocks import run_pipeline_superblocks
                return run_pipeline_superblocks(self)
        max_cycles = self.config.max_cycles
        stats = self.stats
        tick = self.tick
        while not self.halted:
            if stats.cycles >= max_cycles:
                raise SimulationError(
                    "cycle budget (%d) exhausted; fetch_pc=0x%x"
                    % (max_cycles, self.fetch_pc))
            tick()
        return stats

    # ==================================================================
    # one clock cycle
    # ==================================================================
    def tick(self) -> None:
        """Advance one clock: stage work upstream-last, then the latch
        moves downstream-first (the end-of-cycle "advance" is inlined
        here — the latch state is already in locals)."""
        stats = self.stats
        stats.cycles += 1
        self._suppress_fetch = False
        asbr = self.asbr
        pending = self._pending_releases   # list identity is stable

        # ---- WB: commit -------------------------------------------------
        wb = self.s_wb
        if wb is not None:
            d = wb.d
            dest = d.dest
            if dest is not None and dest != 0:
                self._reglist[dest] = wb.result & MASK32
                if wb.acquired_reg is not None and self._bdt_commit:
                    # commit-point BDT update (no forwarding configured)
                    pending.append((dest, wb.result))
            if wb.folded:
                stats.folds_committed += 1
            if wb.uncond_folded:
                stats.uncond_folds_committed += 1
            stats.committed += 1
            self.s_wb = None
            if d.is_halt:
                # nothing younger may have architectural effect
                self.halted = True
                return
            if d.is_ctl and asbr is not None:
                asbr.control_write(d.imm)

        # ---- MEM: first-cycle work --------------------------------------
        mem = self.s_mem
        if mem is not None and not mem.mem_done:
            self._mem_work(mem)

        # ---- EX: first-cycle work (may squash and redirect) -------------
        ex = self.s_ex
        if ex is not None and not ex.ex_done:
            ex.ex_done = True
            d = ex.d
            d.ex(self, ex, d)

        # ---- ID: first-cycle work (jump redirect, BDT acquire) ----------
        # re-read: an EX redirect squashes the slot that was in ID
        did = self.s_id
        if did is not None and not did.id_done:
            did.id_done = True
            d = did.d
            if asbr is not None:
                dest = d.dest
                if dest is not None and dest != 0:
                    asbr.producer_decoded(dest)
                    did.acquired_reg = dest
            if d.is_halt:
                # stop fetching down this path; an EX redirect re-enables
                self._fetch_halted = True
            elif d.is_jump:
                fe = self.frontend
                if fe is not None and did.pred_next_pc == d.jump_target:
                    # the FTQ already steered fetch through the target
                    fe.stats.jumps_steered += 1
                else:
                    # target known after decode: redirect next cycle
                    self._squash(self.s_if)
                    self.s_if = None
                    self.if_wait = 0
                    self.fetch_pc = d.jump_target
                    self._suppress_fetch = True
                    stats.jump_bubbles += 1
                    if fe is not None:
                        fe.jump_resolved(did.pc, d.jump_target)

        # ---- IF: start a new fetch --------------------------------------
        fe = self.frontend
        if fe is not None:
            fe.begin_cycle()
            if (self.s_if is None and not self._suppress_fetch
                    and not self._fetch_halted):
                self._frontend_fetch(fe)
        elif (self.s_if is None and not self._suppress_fetch
                and not self._fetch_halted):
            self._start_fetch()

        # ---- end of cycle: advance latches downstream-first -------------
        # MEM -> WB
        if mem is not None and mem.mem_done:
            if mem.mem_wait > 0:
                mem.mem_wait -= 1
            else:
                if (mem.acquired_reg is not None
                        and (self._rel_mem
                             or (self._rel_ex and mem.d.is_load))):
                    pending.append((mem.acquired_reg, mem.result))
                    mem.acquired_reg = None
                self.s_wb = mem
                self.s_mem = None

        # EX -> MEM
        if ex is not None and ex.ex_done and self.s_mem is None:
            if (self._rel_ex and ex.acquired_reg is not None
                    and not ex.d.is_load):
                pending.append((ex.acquired_reg, ex.result))
                ex.acquired_reg = None
            self.s_mem = ex
            self.s_ex = None

        # ID -> EX (load-use interlock against the instruction that was
        # in EX this cycle — ex, whether or not it just advanced; note
        # did is still current: nothing below EX work touches s_id)
        if did is not None and did.id_done and self.s_ex is None:
            if ex is not None and ex.d.is_load:
                ex_dest = ex.d.dest
                if (ex_dest is not None and ex_dest != 0
                        and ex_dest in did.d.srcs):
                    stats.load_use_stalls += 1
                else:
                    self.s_ex = did
                    self.s_id = None
            else:
                self.s_ex = did
                self.s_id = None

        # IF -> ID
        fslot = self.s_if
        if fslot is not None:
            if self.if_wait > 0:
                self.if_wait -= 1
            elif self.s_id is None:
                self.s_id = fslot
                self.s_if = None

        # ---- apply deferred BDT releases (visible from next cycle) ------
        if pending:
            for reg, value in pending:
                asbr.producer_value(reg, value)
            pending.clear()

    # ==================================================================
    # stage work
    # ==================================================================
    def _mem_work(self, slot: _Slot) -> None:
        d = slot.d
        slot.mem_done = True
        if d.is_load:
            slot.result = d.load_fix(self._mem_read(slot.mem_addr, d.size))
            extra = self._dcache_access(slot.mem_addr, False)
            slot.mem_wait = extra
            self.stats.dcache_miss_stalls += extra
        elif d.is_store:
            self._mem_write(slot.mem_addr, slot.store_val, d.size)
            extra = self._dcache_access(slot.mem_addr, True)
            slot.mem_wait = extra
            self.stats.dcache_miss_stalls += extra

    def _operand(self, reg: int) -> int:
        """EX-stage operand read with EX/MEM forwarding.

        Loads in the MEM stage have already performed their access (MEM
        work runs earlier in the same cycle), so their result is
        forwardable too; the load-use interlock guarantees a dependent
        instruction is never in EX during the load's first MEM cycle, so
        this never shortens the architectural load-use latency.
        """
        if reg == 0:
            return 0
        fwd = self.s_mem
        if fwd is not None and fwd.d.dest == reg:
            return fwd.result
        return self._reglist[reg]

    def _redirect(self, new_pc: int) -> None:
        """EX-stage control redirect: squash the two younger stages."""
        self._squash(self.s_id)
        self.s_id = None
        self._squash(self.s_if)
        self.s_if = None
        self.if_wait = 0
        self.fetch_pc = new_pc
        self._suppress_fetch = True
        self._fetch_halted = False   # any halt seen downstream was wrong-path
        if self.frontend is not None:
            self.frontend.redirect(new_pc)

    def _squash(self, slot: Optional[_Slot]) -> None:
        if slot is None:
            return
        self.stats.squashed += 1
        if self.asbr is not None and slot.acquired_reg is not None:
            self.asbr.producer_squashed(slot.acquired_reg)
            slot.acquired_reg = None

    # ==================================================================
    # fetch
    # ==================================================================
    def _in_text(self, pc: int) -> bool:
        return (self._text_base <= pc < self._text_end
                and pc % 4 == 0)

    def _start_fetch(self) -> None:
        pc = self.fetch_pc
        if pc & 3 or not self._text_base <= pc < self._text_end:
            return  # ran off the text segment (wrong path) — fetch nothing
        d = self._dec[(pc - self._text_base) >> 2]
        stats = self.stats
        extra = self._icache_access(pc)
        self.if_wait = extra
        if extra:
            stats.icache_miss_stalls += extra

        uf = d.uncond_fold          # non-None only when folding is enabled
        if uf is not None:
            td, tpc, next_pc = uf
            slot = _Slot(td, tpc)
            slot.uncond_folded = True
            self.s_if = slot
            stats.fetched += 1
            self.fetch_pc = next_pc
            return

        if d.is_branch:
            if self.asbr is not None:
                fold = self.asbr.try_fold(pc)
                if fold is not None:
                    fd = self._foreign_decode(fold.instr, fold.instr_pc)
                    slot = _Slot(fd, fold.instr_pc)
                    slot.folded = True
                    self.s_if = slot
                    stats.fetched += 1
                    self.fetch_pc = fold.next_pc
                    return
            pred = self.predictor.predict(pc)
            stats.predictor_lookups += 1
            slot = _Slot(d, pc)
            if pred.taken and pred.target is not None:
                slot.pred_next_pc = pred.target
            else:
                slot.pred_next_pc = d.pc4
            self.s_if = slot
            stats.fetched += 1
            self.fetch_pc = slot.pred_next_pc
            return

        self.s_if = _Slot(d, pc)
        stats.fetched += 1
        self.fetch_pc = d.pc4

    def _frontend_fetch(self, fe) -> None:
        """Fetch-stage work in frontend mode: pop one FTQ entry.

        The BPU already did direction prediction and BTB target lookup
        at push time; here the entry is turned into a pipeline slot.
        ASBR folding still happens *now* — the BDT is a timed structure,
        so the fold decision cannot be taken ahead of fetch — and the
        FTQ is realigned (or re-steered) around the consumed
        instruction via ``fe.fold_consumed``.  An empty queue is a
        fetch bubble (counted in ``fe.stats.ftq_empty_cycles``).

        Entry PCs are in-text by construction: the BPU refuses to run
        past the text segment (it marks the FTQ unresolved instead).
        """
        entry = fe.fetch_entry()
        if entry is None:
            return
        stats = self.stats
        extra = fe.demand_access(entry.fetch_addr)
        self.if_wait = extra
        if extra:
            stats.icache_miss_stalls += extra
        d = self._dec[(entry.pc - self._text_base) >> 2]

        if entry.uncond_fold:
            slot = _Slot(d, entry.pc)
            slot.uncond_folded = True
            slot.pred_next_pc = entry.pred_next_pc
            self.s_if = slot
            stats.fetched += 1
            slot.seq = stats.fetched - 1
            fe.note_uncond_fetch(entry.pc, slot.seq, entry.fetch_addr)
            self.fetch_pc = entry.pred_next_pc
            return

        if d.is_branch and self.asbr is not None:
            fold = self.asbr.try_fold(entry.pc)
            if fold is not None:
                fd = self._foreign_decode(fold.instr, fold.instr_pc)
                slot = _Slot(fd, fold.instr_pc)
                slot.folded = True
                slot.fold_pc = entry.pc
                slot.fold_taken = fold.taken
                self.s_if = slot
                stats.fetched += 1
                slot.seq = stats.fetched - 1
                fe.note_fold_hit(fold, entry.pc, slot.seq)
                self.fetch_pc = fold.next_pc
                fe.fold_consumed(fold)
                return
            fe.note_fold_miss(entry.pc, self.asbr)

        slot = _Slot(d, entry.pc)
        slot.pred_next_pc = entry.pred_next_pc
        self.s_if = slot
        stats.fetched += 1
        slot.seq = stats.fetched - 1
        fe.note_fetch(entry.pc, slot.seq)
        self.fetch_pc = entry.pred_next_pc

